//! Workload generators and ground truth for the benchmark harness (§7.1).
//!
//! The paper evaluates on SIFT1B (128-dim SIFT descriptors), Deep1B (96-dim
//! L2-normalized CNN descriptors) and Recipe1M (two-vector text+image
//! entities). None of those datasets are redistributable at laptop scale, so
//! this crate generates **seeded synthetic equivalents** that preserve the
//! properties the experiments exercise: dimensionality, cluster structure
//! (so IVF bucket selectivity and graph navigability behave realistically),
//! value ranges (SIFT is non-negative and byte-bounded), normalization
//! (Deep), and cross-modal correlation (Recipe). Exact ground truth is
//! computed with a parallel brute-force scan.

use milvus_index::{distance, Metric, Neighbor, TopK, VectorSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Standard Gaussian via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// Generic clustered generator: `n` points of `dim` dimensions drawn around
/// `n_clusters` uniform centers in `[lo, hi]` with Gaussian `spread`.
pub fn clustered(
    n: usize,
    dim: usize,
    n_clusters: usize,
    lo: f32,
    hi: f32,
    spread: f32,
    seed: u64,
) -> VectorSet {
    assert!(n_clusters > 0, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..dim).map(|_| rng.gen_range(lo..hi)).collect())
        .collect();
    let mut vs = VectorSet::with_capacity(dim, n);
    for i in 0..n {
        let c = &centers[i % n_clusters];
        let v: Vec<f32> = c
            .iter()
            .map(|&x| (x + gaussian(&mut rng) * spread).clamp(lo, hi))
            .collect();
        vs.push(&v);
    }
    vs
}

/// SIFT-like data: 128-dim, non-negative, byte-bounded, clustered.
pub fn sift_like(n: usize, seed: u64) -> VectorSet {
    let n_clusters = (n / 100).clamp(16, 1024);
    clustered(n, 128, n_clusters, 0.0, 218.0, 18.0, seed)
}

/// Deep-like data: 96-dim, L2-normalized Gaussian mixture.
pub fn deep_like(n: usize, seed: u64) -> VectorSet {
    let n_clusters = (n / 100).clamp(16, 1024);
    let mut vs = clustered(n, 96, n_clusters, -1.0, 1.0, 0.25, seed);
    for i in 0..vs.len() {
        distance::normalize(vs.get_mut(i));
    }
    vs
}

/// Recipe-like two-vector entities: each entity's "text" and "image" vectors
/// share a latent cluster, so cross-modal neighbors correlate (§7.6's
/// Recipe1M analog). Returns `(text_vectors, image_vectors)`.
pub fn recipe_like(
    n: usize,
    text_dim: usize,
    image_dim: usize,
    seed: u64,
) -> (VectorSet, VectorSet) {
    let n_clusters = (n / 100).clamp(8, 512);
    let mut rng = StdRng::seed_from_u64(seed);
    let text_centers: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..text_dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let image_centers: Vec<Vec<f32>> = (0..n_clusters)
        .map(|_| (0..image_dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let mut text = VectorSet::with_capacity(text_dim, n);
    let mut image = VectorSet::with_capacity(image_dim, n);
    for i in 0..n {
        let c = i % n_clusters;
        let t: Vec<f32> =
            text_centers[c].iter().map(|&x| x + gaussian(&mut rng) * 0.2).collect();
        let m: Vec<f32> =
            image_centers[c].iter().map(|&x| x + gaussian(&mut rng) * 0.2).collect();
        text.push(&t);
        image.push(&m);
    }
    (text, image)
}

/// Query workload: perturbed copies of random data points (queries that have
/// true near neighbors, like real query logs).
pub fn queries_from(data: &VectorSet, m: usize, noise: f32, seed: u64) -> VectorSet {
    assert!(!data.is_empty(), "need data to derive queries");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51EE);
    let mut qs = VectorSet::with_capacity(data.dim(), m);
    for _ in 0..m {
        let base = data.get(rng.gen_range(0..data.len()));
        let v: Vec<f32> = base.iter().map(|&x| x + gaussian(&mut rng) * noise).collect();
        qs.push(&v);
    }
    qs
}

/// Uniform numeric attribute column in `[lo, hi)` (the §7.5 experiment
/// augments each vector with a random value in 0..10000).
pub fn attributes_uniform(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA77);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Exact top-k ids for every query (parallel brute force).
pub fn ground_truth(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    metric: Metric,
    k: usize,
) -> Vec<Vec<i64>> {
    assert_eq!(data.len(), ids.len());
    (0..queries.len())
        .into_par_iter()
        .map(|qi| {
            let q = queries.get(qi);
            let mut heap = TopK::new(k.max(1));
            for (row, v) in data.iter().enumerate() {
                heap.push(ids[row], distance::distance(metric, q, v));
            }
            heap.into_sorted().into_iter().map(|n| n.id).collect()
        })
        .collect()
}

/// Recall of `results` against `truth`: `|S ∩ S'| / |S|` averaged over
/// queries (§7.1's definition).
pub fn recall(truth: &[Vec<i64>], results: &[Vec<Neighbor>]) -> f32 {
    assert_eq!(truth.len(), results.len());
    if truth.is_empty() {
        return 1.0;
    }
    let mut hit = 0usize;
    let mut total = 0usize;
    for (t, r) in truth.iter().zip(results) {
        let tset: std::collections::HashSet<i64> = t.iter().copied().collect();
        hit += r.iter().filter(|n| tset.contains(&n.id)).count();
        total += t.len();
    }
    if total == 0 {
        1.0
    } else {
        hit as f32 / total as f32
    }
}

/// Recall over plain id lists (for callers that don't carry distances).
pub fn recall_ids(truth: &[Vec<i64>], results: &[Vec<i64>]) -> f32 {
    assert_eq!(truth.len(), results.len());
    let mut hit = 0usize;
    let mut total = 0usize;
    for (t, r) in truth.iter().zip(results) {
        let tset: std::collections::HashSet<i64> = t.iter().copied().collect();
        hit += r.iter().filter(|id| tset.contains(id)).count();
        total += t.len();
    }
    if total == 0 {
        1.0
    } else {
        hit as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sift_like_properties() {
        let d = sift_like(500, 1);
        assert_eq!(d.dim(), 128);
        assert_eq!(d.len(), 500);
        for v in d.iter() {
            for &x in v {
                assert!((0.0..=218.0).contains(&x));
            }
        }
    }

    #[test]
    fn deep_like_normalized() {
        let d = deep_like(100, 2);
        assert_eq!(d.dim(), 96);
        for v in d.iter() {
            let n = distance::norm_sq(v);
            assert!((n - 1.0).abs() < 1e-3, "norm² {n}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(sift_like(50, 9), sift_like(50, 9));
        assert_ne!(sift_like(50, 9), sift_like(50, 10));
    }

    #[test]
    fn queries_have_near_neighbors() {
        let d = sift_like(300, 3);
        let q = queries_from(&d, 10, 1.0, 4);
        let ids: Vec<i64> = (0..300).collect();
        let truth = ground_truth(&d, &ids, &q, Metric::L2, 1);
        // With tiny noise the nearest neighbor must be very close.
        for (qi, t) in truth.iter().enumerate() {
            let row = ids.iter().position(|&i| i == t[0]).unwrap();
            let dist = distance::l2_sq(q.get(qi), d.get(row));
            assert!(dist < 128.0 * 25.0, "query {qi} too far: {dist}");
        }
    }

    #[test]
    fn ground_truth_is_exact() {
        let d = clustered(50, 4, 5, -1.0, 1.0, 0.1, 5);
        let ids: Vec<i64> = (100..150).collect();
        let q = queries_from(&d, 3, 0.01, 6);
        let truth = ground_truth(&d, &ids, &q, Metric::L2, 5);
        assert_eq!(truth.len(), 3);
        for t in &truth {
            assert_eq!(t.len(), 5);
            assert!(t.iter().all(|&id| (100..150).contains(&id)));
        }
    }

    #[test]
    fn recall_metrics() {
        let truth = vec![vec![1, 2, 3]];
        let perfect = vec![vec![
            Neighbor::new(1, 0.0),
            Neighbor::new(2, 0.1),
            Neighbor::new(3, 0.2),
        ]];
        assert_eq!(recall(&truth, &perfect), 1.0);
        let partial = vec![vec![Neighbor::new(1, 0.0), Neighbor::new(9, 0.1)]];
        assert!((recall(&truth, &partial) - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(recall_ids(&truth, &[vec![3, 2, 1]]), 1.0);
    }

    #[test]
    fn recipe_vectors_correlated() {
        let (text, image) = recipe_like(200, 16, 12, 7);
        assert_eq!(text.len(), image.len());
        assert_eq!(text.dim(), 16);
        assert_eq!(image.dim(), 12);
        // Same-cluster entities (i and i + n_clusters) are closer in text
        // space than a cross-cluster pair, and likewise in image space.
        let n_clusters = 8; // 200/100 clamped to 8
        let same_t = distance::l2_sq(text.get(0), text.get(n_clusters));
        let diff_t = distance::l2_sq(text.get(0), text.get(1));
        assert!(same_t < diff_t, "text: same-cluster {same_t} vs cross {diff_t}");
        let same_i = distance::l2_sq(image.get(0), image.get(n_clusters));
        let diff_i = distance::l2_sq(image.get(0), image.get(1));
        assert!(same_i < diff_i, "image: same-cluster {same_i} vs cross {diff_i}");
    }

    #[test]
    fn attribute_column_in_range() {
        let a = attributes_uniform(1000, 0.0, 10000.0, 8);
        assert!(a.iter().all(|&x| (0.0..10000.0).contains(&x)));
        // Roughly uniform: mean near 5000.
        let mean = a.iter().sum::<f64>() / 1000.0;
        assert!((mean - 5000.0).abs() < 600.0, "mean {mean}");
    }
}

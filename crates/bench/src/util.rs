//! Shared harness utilities: scales, timing, row emission.

use std::time::{Duration, Instant};

/// Experiment scale. The paper runs at 10 M–1 B vectors on a cluster; this
/// harness runs laptop-scale equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Fast smoke scale (CI-friendly, ~seconds per figure).
    Quick,
    /// Default scale (the numbers recorded in EXPERIMENTS.md).
    Standard,
}

impl Scale {
    /// Base dataset size for the system-comparison figures.
    pub fn dataset_n(self) -> usize {
        match self {
            Scale::Quick => 10_000,
            Scale::Standard => 60_000,
        }
    }

    /// Query batch size for throughput measurements (paper uses 10 000).
    pub fn query_m(self) -> usize {
        match self {
            Scale::Quick => 100,
            Scale::Standard => 500,
        }
    }
}

/// Wall-clock timer.
pub struct Timer(Instant);

impl Timer {
    /// Start timing.
    pub fn start() -> Self {
        Self(Instant::now())
    }

    /// Elapsed duration.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// Elapsed seconds as f64.
    pub fn secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Queries per second given a batch of `m` queries taking `secs`.
pub fn qps(m: usize, secs: f64) -> f64 {
    if secs <= 0.0 {
        f64::INFINITY
    } else {
        m as f64 / secs
    }
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qps_math() {
        assert_eq!(qps(100, 2.0), 50.0);
        assert!(qps(1, 0.0).is_infinite());
    }

    #[test]
    fn scales_ordered() {
        assert!(Scale::Quick.dataset_n() < Scale::Standard.dataset_n());
    }
}

//! Quantized-scan shoot-out: the seed's decode-then-distance SQ8 path vs the
//! fused direct-on-u8 kernels, alongside FLAT and PQ ADC (pruned and
//! unpruned), at SIFT-like (dim 128) and GIST-like (dim 960) shapes.
//!
//! Emits `BENCH_quantized_scan.json` in the current directory:
//!
//! ```json
//! {"config": {...}, "results": [
//!   {"dim": 128, "engine": "sq8_fused", "best_us": 123, "mean_us": 130,
//!    "speedup_vs_sq8_decoded": 3.1}, ...]}
//! ```
//!
//! `--smoke` (or `--test`) shrinks the workload to a CI-friendly second
//! while still exercising every engine and the JSON path.

use std::hint::black_box;
use std::time::Instant;

use milvus_datagen as datagen;
use milvus_index::ivf::{IvfIndex, IvfVariant};
use milvus_index::topk::TopK;
use milvus_index::vectors::VectorSet;
use milvus_index::{distance, BuildParams, Metric, SearchParams, VectorIndex};

struct Shape {
    dim: usize,
    n: usize,
    nlist: usize,
    pq_m: usize,
    kmeans_iters: usize,
}

struct Measurement {
    dim: usize,
    engine: &'static str,
    best_us: f64,
    mean_us: f64,
}

fn time_engine(reps: usize, mut run: impl FnMut() -> usize) -> (f64, f64) {
    // One warm-up pass, then best/mean of `reps` timed passes; best-of
    // filters scheduler noise on shared CI.
    black_box(run());
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(run());
        let us = t.elapsed().as_secs_f64() * 1e6;
        best = best.min(us);
        total += us;
    }
    (best, total / reps as f64)
}

/// The seed's SQ8 scan, reproduced exactly: per bucket, allocate a scratch
/// `Vec<f32>`, decode every code row into it, then run the float kernel.
fn sq8_decoded_search(
    index: &IvfIndex,
    query: &[f32],
    params: &SearchParams,
) -> Vec<milvus_index::Neighbor> {
    let (vmin, vstep) = index.sq_params().expect("sq8 index");
    let dim = index.dim();
    let mut heap = TopK::new(params.k.max(1));
    for b in index.probe_buckets(query, params.nprobe) {
        let codes = index.bucket_codes(b).expect("sq8 codes");
        let ids = index.bucket_ids(b);
        let mut decoded = vec![0.0f32; dim];
        for (row, code) in codes.chunks_exact(dim).enumerate() {
            for d in 0..dim {
                decoded[d] = vmin[d] + code[d] as f32 * vstep[d];
            }
            heap.push(ids[row], distance::distance(Metric::L2, query, &decoded));
        }
    }
    heap.into_sorted()
}

/// PQ ADC without early abandon: full table lookups over the probed buckets
/// (isolates what the threshold pruning buys).
fn pq_unpruned_search(
    index: &IvfIndex,
    query: &[f32],
    params: &SearchParams,
) -> Vec<milvus_index::Neighbor> {
    let pq = index.pq_ref().expect("pq index");
    let table = pq.distance_table(query, Metric::L2);
    let mut heap = TopK::new(params.k.max(1));
    for b in index.probe_buckets(query, params.nprobe) {
        let codes = index.bucket_codes(b).expect("pq codes");
        let ids = index.bucket_ids(b);
        for (row, code) in codes.chunks_exact(pq.m()).enumerate() {
            heap.push(ids[row], table.lookup(code));
        }
    }
    heap.into_sorted()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test");
    let (shapes, n_queries, reps) = if smoke {
        (vec![Shape { dim: 32, n: 1500, nlist: 16, pq_m: 8, kmeans_iters: 4 }], 8, 1)
    } else {
        (
            vec![
                Shape { dim: 128, n: 20000, nlist: 64, pq_m: 16, kmeans_iters: 6 },
                Shape { dim: 960, n: 4000, nlist: 32, pq_m: 32, kmeans_iters: 4 },
            ],
            64,
            3,
        )
    };

    let mut results: Vec<Measurement> = Vec::new();
    for shape in &shapes {
        eprintln!("building indexes for dim={} n={} ...", shape.dim, shape.n);
        let data = datagen::clustered(shape.n, shape.dim, 32, 0.0, 100.0, 8.0, 42);
        let ids: Vec<i64> = (0..shape.n as i64).collect();
        let queries: VectorSet = datagen::queries_from(&data, n_queries, 2.0, 43);
        let params = BuildParams {
            metric: Metric::L2,
            nlist: shape.nlist,
            kmeans_iters: shape.kmeans_iters,
            pq_m: shape.pq_m,
            ..Default::default()
        };
        let flat = IvfIndex::build(IvfVariant::Flat, &data, &ids, &params).unwrap();
        let sq8 = IvfIndex::build(IvfVariant::Sq8, &data, &ids, &params).unwrap();
        let pq = IvfIndex::build(IvfVariant::Pq, &data, &ids, &params).unwrap();
        let sp = SearchParams { k: 10, nprobe: 16, ..Default::default() };

        let run_index = |idx: &IvfIndex| {
            let mut total = 0usize;
            for q in queries.iter() {
                total += idx.search(q, &sp).unwrap().len();
            }
            total
        };
        type Engine<'a> = (&'static str, Box<dyn FnMut() -> usize + 'a>);
        let engines: Vec<Engine> = vec![
            ("flat", Box::new(|| run_index(&flat))),
            (
                "sq8_decoded",
                Box::new(|| {
                    queries.iter().map(|q| sq8_decoded_search(&sq8, q, &sp).len()).sum()
                }),
            ),
            ("sq8_fused", Box::new(|| run_index(&sq8))),
            (
                "pq_adc_unpruned",
                Box::new(|| queries.iter().map(|q| pq_unpruned_search(&pq, q, &sp).len()).sum()),
            ),
            ("pq_adc_pruned", Box::new(|| run_index(&pq))),
        ];
        for (name, run) in engines {
            let (best_us, mean_us) = time_engine(reps, run);
            eprintln!(
                "dim={:>4}  {name:<16} best {best_us:>10.0} us  mean {mean_us:>10.0} us",
                shape.dim
            );
            results.push(Measurement { dim: shape.dim, engine: name, best_us, mean_us });
        }
    }

    let mut json = String::from("{\n  \"config\": {");
    json.push_str(&format!(
        "\"n_queries\": {n_queries}, \"k\": 10, \"nprobe\": 16, \"reps\": {reps}, \
         \"smoke\": {smoke}, \"simd\": \"{}\"",
        milvus_index::simd::active_level()
    ));
    json.push_str("},\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let baseline = results
            .iter()
            .find(|b| b.dim == r.dim && b.engine == "sq8_decoded")
            .map_or(f64::NAN, |b| b.best_us);
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"dim\": {}, \"engine\": \"{}\", \"best_us\": {:.1}, \"mean_us\": {:.1}, \
             \"speedup_vs_sq8_decoded\": {:.3}}}{}\n",
            r.dim,
            r.engine,
            r.best_us,
            r.mean_us,
            baseline / r.best_us,
            sep
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_quantized_scan.json", &json).expect("write bench json");
    eprintln!("wrote BENCH_quantized_scan.json");

    if !smoke {
        for dim in [128usize, 960] {
            let fused = results.iter().find(|r| r.dim == dim && r.engine == "sq8_fused");
            let decoded = results.iter().find(|r| r.dim == dim && r.engine == "sq8_decoded");
            if let (Some(f), Some(d)) = (fused, decoded) {
                eprintln!("fused SQ8 speedup over decode-then-distance at dim={dim}: {:.2}x", d.best_us / f.best_us);
            }
        }
    }
}

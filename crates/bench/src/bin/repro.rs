//! `repro` — regenerate every table and figure of the Milvus SIGMOD'21
//! evaluation (§7) on synthetic laptop-scale workloads.
//!
//! Usage:
//! ```text
//! repro [--quick] [--json out.json] [--table1] [--fig8] [--fig9] [--fig10]
//!       [--fig11] [--fig12] [--fig13] [--fig14] [--fig15] [--fig16] [--all]
//! ```
//! With no experiment flags, `--all` is assumed.

use milvus_bench::experiments as exp;
use milvus_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Standard };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let known = [
        "--table1", "--fig8", "--fig9", "--fig10", "--fig11", "--fig12", "--fig13", "--fig14",
        "--fig15", "--fig16", "--all", "--quick", "--json",
    ];
    for a in &args {
        if !known.contains(&a.as_str()) && json_path.as_deref() != Some(a.as_str()) {
            eprintln!("unknown flag {a}; known: {known:?}");
            std::process::exit(2);
        }
    }

    let explicit = args.iter().any(|a| a.starts_with("--fig") || a == "--table1");
    let wants =
        |flag: &str| args.iter().any(|a| a == flag) || args.iter().any(|a| a == "--all") || !explicit;

    println!("Milvus reproduction harness — scale: {scale:?}");
    let mut out = serde_json::Map::new();

    if wants("--table1") {
        out.insert("table1".into(), exp::table1::run());
    }
    if wants("--fig8") {
        out.insert("fig8".into(), exp::fig8_ivf::run(scale));
    }
    if wants("--fig9") {
        out.insert("fig9".into(), exp::fig9_hnsw::run(scale));
    }
    if wants("--fig10") {
        out.insert("fig10".into(), exp::fig10_scalability::run(scale));
    }
    if wants("--fig11") {
        out.insert("fig11".into(), exp::fig11_cache::run(scale));
    }
    if wants("--fig12") {
        out.insert("fig12".into(), exp::fig12_simd::run(scale));
    }
    if wants("--fig13") {
        out.insert("fig13".into(), exp::fig13_gpu::run(scale));
    }
    if wants("--fig14") {
        out.insert("fig14".into(), exp::fig14_filtering::run(scale));
    }
    if wants("--fig15") {
        out.insert("fig15".into(), exp::fig15_filtering_systems::run(scale));
    }
    if wants("--fig16") {
        out.insert("fig16".into(), exp::fig16_multivector::run(scale));
    }

    if let Some(path) = json_path {
        let blob = serde_json::to_string_pretty(&serde_json::Value::Object(out))
            .expect("serialize results");
        std::fs::write(&path, blob).expect("write results json");
        println!("\nresults written to {path}");
    }
}

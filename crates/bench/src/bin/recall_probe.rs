//! Ad-hoc recall probe used while tuning index parameters (not part of the
//! reproduction harness).
fn main() {
    use milvus_index::registry::IndexRegistry;
    use milvus_index::traits::{BuildParams, SearchParams};
    use milvus_index::Metric;
    let n = 4000;
    let data = milvus_datagen::sift_like(n, 601);
    let ids: Vec<i64> = (0..n as i64).collect();
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { metric: Metric::L2, nlist: 64, kmeans_iters: 5, hnsw_m: 16,
        hnsw_ef_construction: 150, nsg_out_degree: 24, annoy_n_trees: 16, pq_m: 16, ..Default::default() };
    let queries = milvus_datagen::queries_from(&data, 30, 1.0, 602);
    for k in [10usize, 50] {
        let truth = milvus_datagen::ground_truth(&data, &ids, &queries, Metric::L2, k);
        for (name, sp) in [("IVF_PQ", SearchParams{k,nprobe:32,..Default::default()}),
                           ("NSG", SearchParams{k,ef:128,..Default::default()})] {
            let idx = registry.build(name, &data, &ids, &params).unwrap();
            let results: Vec<_> = (0..queries.len()).map(|i| idx.search(queries.get(i), &sp).unwrap()).collect();
            println!("{name} k={k}: recall {}", milvus_datagen::recall(&truth, &results));
        }
    }
}

//! Batch-engine shoot-out: spawn-per-block engines vs their executor-backed
//! ports (persistent pool + register-tiled kernels), at batch sizes
//! m ∈ {1, 64, 1024}.
//!
//! Emits `BENCH_batch_engines.json` in the current directory:
//!
//! ```json
//! {"config": {...}, "results": [
//!   {"m": 1024, "engine": "cache_aware_exec", "best_us": 123, "mean_us": 130,
//!    "speedup_vs_cache_aware": 1.42}, ...]}
//! ```
//!
//! `--smoke` (or `--test`, for harness compatibility) shrinks the workload to
//! a CI-friendly second and still exercises every engine and the JSON path.

use std::hint::black_box;
use std::time::Instant;

use milvus_datagen as datagen;
use milvus_exec::Executor;
use milvus_index::batch::{
    cache_aware_search, cache_aware_search_exec, faiss_style_search, faiss_style_search_exec,
    BatchOptions,
};
use milvus_index::topk::Neighbor;
use milvus_index::vectors::VectorSet;
use milvus_index::Metric;

type EngineRun<'a> = Box<dyn FnMut() -> Vec<Vec<Neighbor>> + 'a>;

struct Workload {
    n: usize,
    dim: usize,
    k: usize,
    batch_sizes: Vec<usize>,
    reps: usize,
}

struct Measurement {
    m: usize,
    engine: &'static str,
    best_us: f64,
    mean_us: f64,
}

fn time_engine(reps: usize, mut run: impl FnMut() -> Vec<Vec<Neighbor>>) -> (f64, f64) {
    // One warm-up pass (page in data, spin up pool workers), then best/mean
    // of `reps` timed passes. Best-of filters scheduler noise on shared CI.
    black_box(run());
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..reps {
        let t = Instant::now();
        black_box(run());
        let us = t.elapsed().as_secs_f64() * 1e6;
        best = best.min(us);
        total += us;
    }
    (best, total / reps as f64)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test");
    let wl = if smoke {
        Workload { n: 1200, dim: 32, k: 10, batch_sizes: vec![1, 8, 64], reps: 2 }
    } else {
        Workload { n: 8000, dim: 128, k: 10, batch_sizes: vec![1, 64, 1024], reps: 5 }
    };
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());

    let data = datagen::clustered(wl.n, wl.dim, 32, 0.0, 100.0, 8.0, 42);
    let ids: Vec<i64> = (0..wl.n as i64).collect();
    let pool = Executor::new("bench_batch", threads);
    let opts = BatchOptions {
        k: wl.k,
        metric: Metric::L2,
        threads,
        l3_cache_bytes: 32 << 20,
    };

    let mut results: Vec<Measurement> = Vec::new();
    for &m in &wl.batch_sizes {
        let queries: VectorSet = datagen::queries_from(&data, m, 2.0, 43);

        let engines: Vec<(&'static str, EngineRun)> = vec![
            ("faiss_style", Box::new(|| faiss_style_search(&data, &ids, &queries, &opts))),
            ("cache_aware", Box::new(|| cache_aware_search(&data, &ids, &queries, &opts))),
            (
                "faiss_style_exec",
                Box::new(|| faiss_style_search_exec(&pool, &data, &ids, &queries, &opts)),
            ),
            (
                "cache_aware_exec",
                Box::new(|| cache_aware_search_exec(&pool, &data, &ids, &queries, &opts)),
            ),
        ];
        for (name, run) in engines {
            let (best_us, mean_us) = time_engine(wl.reps, run);
            eprintln!("m={m:>5}  {name:<18} best {best_us:>10.0} us  mean {mean_us:>10.0} us");
            results.push(Measurement { m, engine: name, best_us, mean_us });
        }
    }

    let mut json = String::from("{\n  \"config\": {");
    json.push_str(&format!(
        "\"n\": {}, \"dim\": {}, \"k\": {}, \"threads\": {}, \"reps\": {}, \"smoke\": {}",
        wl.n, wl.dim, wl.k, threads, wl.reps, smoke
    ));
    json.push_str("},\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let baseline = results
            .iter()
            .find(|b| b.m == r.m && b.engine == "cache_aware")
            .map_or(f64::NAN, |b| b.best_us);
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"m\": {}, \"engine\": \"{}\", \"best_us\": {:.1}, \"mean_us\": {:.1}, \
             \"speedup_vs_cache_aware\": {:.3}}}{}\n",
            r.m,
            r.engine,
            r.best_us,
            r.mean_us,
            baseline / r.best_us,
            sep
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_batch_engines.json", &json).expect("write bench json");
    eprintln!("wrote BENCH_batch_engines.json");

    if !smoke {
        let exec = results
            .iter()
            .find(|r| r.m == 1024 && r.engine == "cache_aware_exec")
            .expect("m=1024 measured");
        let spawn = results
            .iter()
            .find(|r| r.m == 1024 && r.engine == "cache_aware")
            .expect("m=1024 measured");
        let speedup = spawn.best_us / exec.best_us;
        eprintln!("executor-backed cache-aware speedup at m=1024: {speedup:.2}x");
    }
}

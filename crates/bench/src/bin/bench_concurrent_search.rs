//! Concurrent-search shoot-out: the coalescing query scheduler vs the
//! serial per-query path, at client concurrency c ∈ {1, 8, 64}.
//!
//! Twin collections hold identical flat (unindexed) data so every query is
//! a full segment scan — the shape where cross-query coalescing pays: the
//! ×4-tiled batch engine streams each data row once per query tile instead
//! of once per query. At c=1 the scheduler must cost nothing (passthrough);
//! at c=64 it must win throughput.
//!
//! Emits `BENCH_concurrent_search.json` in the current directory:
//!
//! ```json
//! {"config": {...}, "results": [
//!   {"concurrency": 64, "mode": "coalesced", "qps": 81234.5,
//!    "mean_latency_us": 780.1, "speedup_vs_serial": 1.62}, ...]}
//! ```
//!
//! `--smoke` (or `--test`) shrinks the workload to a CI-friendly second and
//! asserts the acceptance floor: coalesced QPS ≥ 1.2× serial at the highest
//! concurrency (exit 1 otherwise).

use std::hint::black_box;
use std::sync::{Arc, Barrier};
use std::time::Instant;

use milvus_core::{Collection, CollectionConfig, Milvus};
use milvus_datagen as datagen;
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::{InsertBatch, Schema};

struct Measurement {
    concurrency: usize,
    mode: &'static str,
    total_queries: usize,
    best_wall_us: f64,
    qps: f64,
    mean_latency_us: f64,
}

fn make_collection(m: &Milvus, name: &str, data: &VectorSet, coalescing: bool) -> Arc<Collection> {
    let mut cfg = CollectionConfig::for_tests();
    cfg.lsm.flush_threshold_bytes = 1 << 30; // one segment: isolate scan cost
    cfg.scheduler.coalescing = coalescing;
    cfg.scheduler.max_batch = 64;
    let col = m
        .create_collection(name, Schema::single("v", data.dim(), Metric::L2), cfg)
        .expect("create collection");
    let ids: Vec<i64> = (0..data.len() as i64).collect();
    col.insert(InsertBatch::single(ids, data.clone())).expect("insert");
    col.flush().expect("flush");
    col
}

/// One timed pass: `c` client threads, each firing `per_thread` searches
/// back to back. Each thread stamps its own start/end after the release
/// barrier (the driver thread may not be rescheduled promptly on a busy
/// single-core box, so it cannot keep the clock itself); the wall is
/// `max(end) - min(start)` across threads. Returns (wall_us, served).
fn storm(col: &Arc<Collection>, queries: &VectorSet, c: usize, per_thread: usize) -> (f64, usize) {
    let sp = SearchParams::top_k(10);
    let barrier = Barrier::new(c);
    let spans = std::thread::scope(|s| {
        let handles: Vec<_> = (0..c)
            .map(|t| {
                let (barrier, sp) = (&barrier, &sp);
                s.spawn(move || {
                    barrier.wait();
                    let start = Instant::now();
                    let mut served = 0usize;
                    for i in 0..per_thread {
                        let q = queries.get((t * per_thread + i) % queries.len());
                        served += black_box(col.search("v", q, sp).expect("search")).len().min(1);
                    }
                    (start, Instant::now(), served)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });
    let first = spans.iter().map(|(s, _, _)| *s).min().unwrap();
    let last = spans.iter().map(|(_, e, _)| *e).max().unwrap();
    let served = spans.iter().map(|(_, _, n)| n).sum();
    (last.duration_since(first).as_secs_f64() * 1e6, served)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke" || a == "--test");
    // The 8000×128 shape matches BENCH_batch_engines.json, where the ×4
    // register-tiled engine serves a 64-query batch ~2.4× cheaper per query
    // than one-at-a-time scans; smaller shapes are compute-light enough
    // that per-query overheads mask the tiling win.
    let (n, dim, per_thread, reps) =
        if smoke { (8000, 128, 6, 2) } else { (20000, 128, 16, 3) };
    let concurrencies = [1usize, 8, 64];

    eprintln!("building twin collections: n={n} dim={dim} ...");
    let data = datagen::clustered(n, dim, 32, 0.0, 100.0, 8.0, 42);
    let queries = datagen::queries_from(&data, 256, 2.0, 43);
    let m = Milvus::new();
    let serial = make_collection(&m, "bench_serial", &data, false);
    let coalesced = make_collection(&m, "bench_coalesced", &data, true);

    let mut results: Vec<Measurement> = Vec::new();
    for &c in &concurrencies {
        for (mode, col) in [("serial", &serial), ("coalesced", &coalesced)] {
            // Warm-up pass, then best-of-reps wall time: best-of filters
            // scheduler noise on shared CI.
            black_box(storm(col, &queries, c, per_thread));
            let mut best_wall = f64::INFINITY;
            let mut total_queries = 0usize;
            for _ in 0..reps {
                let (wall_us, served) = storm(col, &queries, c, per_thread);
                assert_eq!(served, c * per_thread, "every query must return hits");
                best_wall = best_wall.min(wall_us);
                total_queries = served;
            }
            let qps = total_queries as f64 / (best_wall / 1e6);
            let mean_latency_us = best_wall / per_thread as f64;
            eprintln!(
                "c={c:>3}  {mode:<10} best {best_wall:>10.0} us  {qps:>9.0} qps  \
                 mean client latency {mean_latency_us:>8.0} us"
            );
            results.push(Measurement {
                concurrency: c,
                mode,
                total_queries,
                best_wall_us: best_wall,
                qps,
                mean_latency_us,
            });
        }
    }

    let snap = milvus_obs::registry().snapshot();
    eprintln!(
        "scheduler counters: {} queries in {} batches (batch p50 {}), {} passthrough, {} shed",
        snap.counter(milvus_obs::SCHED_COALESCED_QUERIES, "bench_coalesced"),
        snap.counter(milvus_obs::SCHED_COALESCED_BATCHES, "bench_coalesced"),
        snap.histogram(milvus_obs::SCHED_BATCH_SIZE, "bench_coalesced").p50_us() as u64,
        snap.counter(milvus_obs::SCHED_PASSTHROUGH, "bench_coalesced"),
        snap.counter(milvus_obs::SCHED_SHED, "bench_coalesced"),
    );

    let serial_qps = |c: usize| {
        results
            .iter()
            .find(|r| r.concurrency == c && r.mode == "serial")
            .map_or(f64::NAN, |r| r.qps)
    };
    let mut json = String::from("{\n  \"config\": {");
    json.push_str(&format!(
        "\"n\": {n}, \"dim\": {dim}, \"k\": 10, \"per_thread\": {per_thread}, \
         \"reps\": {reps}, \"smoke\": {smoke}, \"simd\": \"{}\"",
        milvus_index::simd::active_level()
    ));
    json.push_str("},\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"concurrency\": {}, \"mode\": \"{}\", \"total_queries\": {}, \
             \"best_wall_us\": {:.1}, \"qps\": {:.1}, \"mean_latency_us\": {:.1}, \
             \"speedup_vs_serial\": {:.3}}}{}\n",
            r.concurrency,
            r.mode,
            r.total_queries,
            r.best_wall_us,
            r.qps,
            r.mean_latency_us,
            r.qps / serial_qps(r.concurrency),
            sep
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_concurrent_search.json", &json).expect("write bench json");
    eprintln!("wrote BENCH_concurrent_search.json");

    let c_max = *concurrencies.last().unwrap();
    let speedup = results
        .iter()
        .find(|r| r.concurrency == c_max && r.mode == "coalesced")
        .map_or(f64::NAN, |r| r.qps)
        / serial_qps(c_max);
    let single_tax = results
        .iter()
        .find(|r| r.concurrency == 1 && r.mode == "coalesced")
        .map_or(f64::NAN, |r| r.mean_latency_us)
        / results
            .iter()
            .find(|r| r.concurrency == 1 && r.mode == "serial")
            .map_or(f64::NAN, |r| r.mean_latency_us);
    eprintln!("coalescing speedup at c={c_max}: {speedup:.2}x");
    eprintln!("single-client latency ratio (coalesced/serial): {single_tax:.3}");
    if smoke && (speedup.is_nan() || speedup < 1.2) {
        eprintln!("FAIL: coalesced QPS at c={c_max} must be >= 1.2x serial, got {speedup:.2}x");
        std::process::exit(1);
    }
}

//! Figure 15: attribute filtering — Milvus (partition-based strategy E)
//! versus the baseline systems (Vearch-like fixed post-filter, relational
//! full-scan post-filter).

use milvus_baselines::{RelationalLikeEngine, VearchLikeEngine};
use milvus_datagen as datagen;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::Metric;
use serde_json::json;

use super::fig14_filtering::fixture;
use crate::util::{banner, Scale, Timer};

const SELECTIVITIES: &[f64] = &[0.0, 0.3, 0.7, 0.9, 0.99];

/// Run Figure 15 at `scale`.
pub fn run(scale: Scale) -> serde_json::Value {
    let n = scale.dataset_n();
    let (_, part, queries) = fixture(scale);
    let data = datagen::sift_like(n, 141);
    let ids: Vec<i64> = (0..n as i64).collect();
    let values = datagen::attributes_uniform(n, 0.0, 10_000.0, 142);
    let params = BuildParams { nlist: 256, kmeans_iters: 5, ..Default::default() };
    let vearch = VearchLikeEngine::build(&data, &ids, &values, n / 20, &params).expect("vearch");
    let relational = RelationalLikeEngine::build(Metric::L2, &data, &ids, &values);

    banner("Figure 15: attribute filtering across systems (k=50)");
    println!(
        "{:>12} {:>14} {:>16} {:>18}",
        "selectivity", "Milvus E (s)", "Vearch-like (s)", "Relational (s)"
    );

    let sp = SearchParams { k: 50, nprobe: 32, ..Default::default() };
    let m = queries.len();
    let mut rows = Vec::new();
    for &sel in SELECTIVITIES {
        let hi = 10_000.0 * (1.0 - sel);
        let pred = milvus_query::filtering::RangePredicate::new(0.0, hi);

        let t = Timer::start();
        for qi in 0..m {
            part.search(queries.get(qi), pred, &sp).expect("milvus");
        }
        let milvus_s = t.secs();

        let t = Timer::start();
        for qi in 0..m {
            vearch.filtered_search(queries.get(qi), 0.0, hi, &sp).expect("vearch");
        }
        let vearch_s = t.secs();

        let t = Timer::start();
        for qi in 0..m {
            relational.filtered_search(queries.get(qi), 0.0, hi, &sp);
        }
        let rel_s = t.secs();

        println!("{sel:>12.2} {milvus_s:>14.3} {vearch_s:>16.3} {rel_s:>18.3}");
        rows.push(json!({
            "selectivity": sel,
            "milvus_e_s": milvus_s,
            "vearch_like_s": vearch_s,
            "relational_s": rel_s,
        }));
    }
    json!(rows)
}

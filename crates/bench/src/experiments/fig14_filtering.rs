//! Figure 14: attribute-filtering strategies A–E in Milvus, execution time
//! vs query selectivity, two settings: (k=50, recall≥0.95) and (k=500,
//! recall≥0.85).
//!
//! Selectivity follows the paper's definition: the fraction of entities that
//! *fail* the constraint, so 0.99 means only 1% of rows pass.

use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::Metric;
use milvus_query::filtering::{FilterDataset, PartitionedDataset, RangePredicate, Strategy};
use serde_json::json;

use crate::util::{banner, Scale, Timer};

const SELECTIVITIES: &[f64] = &[0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99];

/// Predicate whose pass-fraction is `1 - selectivity` over a uniform
/// attribute in [0, 10000).
fn predicate(selectivity: f64) -> RangePredicate {
    RangePredicate::new(0.0, 10_000.0 * (1.0 - selectivity))
}

/// One (k, nprobe) setting of the experiment.
fn setting(
    name: &str,
    data: &FilterDataset,
    part: &PartitionedDataset,
    queries: &milvus_index::VectorSet,
    sp: &SearchParams,
) -> Vec<serde_json::Value> {
    banner(&format!("Figure 14 ({name}): filtering strategies A-E vs selectivity"));
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "selectivity", "A (s)", "B (s)", "C (s)", "D (s)", "E (s)"
    );
    let mut rows = Vec::new();
    for &sel in SELECTIVITIES {
        let pred = predicate(sel);
        let mut times = Vec::new();
        for strat in [Strategy::A, Strategy::B, Strategy::C, Strategy::D] {
            let t = Timer::start();
            for qi in 0..queries.len() {
                data.search(queries.get(qi), pred, sp, strat).expect("strategy search");
            }
            times.push(t.secs());
        }
        let t = Timer::start();
        for qi in 0..queries.len() {
            part.search(queries.get(qi), pred, sp).expect("strategy E search");
        }
        times.push(t.secs());
        println!(
            "{sel:>12.2} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            times[0], times[1], times[2], times[3], times[4]
        );
        rows.push(json!({
            "setting": name, "selectivity": sel,
            "A_s": times[0], "B_s": times[1], "C_s": times[2],
            "D_s": times[3], "E_s": times[4],
        }));
    }
    rows
}

/// Build the shared fixture: SIFT-like vectors + uniform attribute.
pub fn fixture(
    scale: Scale,
) -> (FilterDataset, PartitionedDataset, milvus_index::VectorSet) {
    let n = scale.dataset_n();
    let data = datagen::sift_like(n, 141);
    let ids: Vec<i64> = (0..n as i64).collect();
    let values = datagen::attributes_uniform(n, 0.0, 10_000.0, 142);
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { nlist: 256, kmeans_iters: 5, ..Default::default() };
    let dataset = FilterDataset::build(
        Metric::L2,
        data.clone(),
        ids.clone(),
        values.clone(),
        "attr",
        "IVF_FLAT",
        &registry,
        &params,
    )
    .expect("dataset");
    // ρ sized so each partition holds ~ n/10 rows (paper: ~1M at 100M scale).
    let part = PartitionedDataset::build(
        Metric::L2,
        &data,
        &ids,
        &values,
        "attr",
        10,
        "IVF_FLAT",
        &registry,
        &params,
    )
    .expect("partitioned");
    let queries = datagen::queries_from(&data, scale.query_m() / 5, 2.0, 143);
    (dataset, part, queries)
}

/// Run Figure 14 at `scale`.
pub fn run(scale: Scale) -> serde_json::Value {
    let (dataset, part, queries) = fixture(scale);
    // High-recall setting: k=50, generous nprobe.
    let sp_a = SearchParams { k: 50, nprobe: 64, ..Default::default() };
    let rows_a = setting("k=50, recall>=0.95", &dataset, &part, &queries, &sp_a);
    // Bigger-k, lower-recall setting.
    let sp_b = SearchParams { k: 500, nprobe: 16, ..Default::default() };
    let rows_b = setting("k=500, recall>=0.85", &dataset, &part, &queries, &sp_b);
    json!([rows_a, rows_b])
}

//! Figure 12: SIMD optimizations — AVX2 vs AVX-512 execution time across
//! data sizes (plus scalar and SSE for context; the paper reports AVX-512 ≈
//! 1.5× AVX2 on the batch workload).

use milvus_datagen as datagen;
use milvus_index::distance::l2_sq_with_level;
use milvus_index::SimdLevel;
use serde_json::json;

use crate::util::{banner, Scale, Timer};

/// Run Figure 12 at `scale`.
pub fn run(scale: Scale) -> serde_json::Value {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 10_000, 50_000],
        Scale::Standard => vec![1_000, 10_000, 100_000, 300_000],
    };
    let m = match scale {
        Scale::Quick => 100,
        Scale::Standard => 500,
    };
    let queries = datagen::sift_like(m, 121);

    banner("Figure 12: SIMD level comparison (batch distance computation)");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>16}",
        "data size", "scalar (s)", "SSE (s)", "AVX2 (s)", "AVX512 (s)", "AVX512 vs AVX2"
    );

    let mut rows = Vec::new();
    for &n in &sizes {
        let data = datagen::sift_like(n, 122);
        let mut timings = Vec::new();
        for level in SimdLevel::ALL {
            if !level.supported() {
                timings.push(f64::NAN);
                continue;
            }
            let t = Timer::start();
            let mut acc = 0.0f32;
            for qi in 0..m {
                let q = queries.get(qi);
                for v in data.iter() {
                    acc += l2_sq_with_level(q, v, level);
                }
            }
            std::hint::black_box(acc);
            timings.push(t.secs());
        }
        let ratio = timings[2] / timings[3].max(1e-12);
        println!(
            "{n:>10} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {ratio:>15.2}x",
            timings[0], timings[1], timings[2], timings[3]
        );
        rows.push(json!({
            "n": n,
            "scalar_s": timings[0], "sse_s": timings[1],
            "avx2_s": timings[2], "avx512_s": timings[3],
            "avx512_speedup_over_avx2": ratio,
        }));
    }
    json!(rows)
}

//! Table 1: the system functionality matrix, printed from live capability
//! introspection of this system and each implemented baseline.

use milvus_baselines::{
    FaissLikeEngine, RelationalLikeEngine, SptagLikeEngine, VearchLikeEngine,
};
use milvus_core::Capabilities;
use serde_json::json;

use crate::util::banner;

/// All capability rows.
pub fn rows() -> Vec<Capabilities> {
    vec![
        FaissLikeEngine::capabilities(),
        SptagLikeEngine::capabilities(),
        VearchLikeEngine::capabilities(),
        RelationalLikeEngine::capabilities(),
        Capabilities::milvus(),
    ]
}

/// Print the matrix and return it as JSON.
pub fn run() -> serde_json::Value {
    banner("Table 1: system comparison (functionality matrix)");
    println!("{}", Capabilities::header());
    let rows = rows();
    for r in &rows {
        println!("{}", r.row());
    }
    json!(rows
        .iter()
        .map(|r| json!({
            "system": r.system,
            "billion_scale": r.billion_scale,
            "dynamic_data": r.dynamic_data,
            "gpu": r.gpu,
            "attribute_filtering": r.attribute_filtering,
            "multi_vector_query": r.multi_vector_query,
            "distributed": r.distributed,
        }))
        .collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    #[test]
    fn only_milvus_has_every_column() {
        let rows = super::rows();
        let full: Vec<&str> = rows
            .iter()
            .filter(|r| {
                r.billion_scale
                    && r.dynamic_data
                    && r.gpu
                    && r.attribute_filtering
                    && r.multi_vector_query
                    && r.distributed
            })
            .map(|r| r.system)
            .collect();
        assert_eq!(full.len(), 1);
        assert!(full[0].contains("Milvus"));
    }
}

//! Figure 9: throughput vs recall on the HNSW graph index.
//!
//! Series: Milvus_HNSW (full SIMD dispatch, parallel queries), System A
//! (HNSW inside a generic engine: one query at a time), Vearch-like (HNSW
//! over never-merged small segments: one graph per fragment), System C
//! (HNSW walked with scalar distance kernels — generic row-store expression
//! evaluation). The paper omits System A on Deep (no inner product support)
//! and System C on Deep (index build never finished); we keep both panels
//! complete and note the difference in EXPERIMENTS.md.

use milvus_datagen as datagen;
use milvus_index::hnsw::HnswIndex;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{Metric, Neighbor, VectorIndex, VectorSet};
use serde_json::json;

use super::fig8_ivf::Point;
use crate::util::{banner, qps, Scale, Timer};

const EFS: &[usize] = &[16, 32, 64, 128, 256];

fn measure<F>(system: &str, param: usize, truth: &[Vec<i64>], m: usize, f: F) -> Point
where
    F: FnOnce() -> Vec<Vec<Neighbor>>,
{
    let t = Timer::start();
    let results = f();
    let secs = t.secs();
    Point {
        system: system.to_string(),
        param,
        recall: datagen::recall(truth, &results),
        qps: qps(m, secs),
    }
}

/// A fragmented "Vearch-like" HNSW deployment: one graph per small segment.
struct FragmentedHnsw {
    graphs: Vec<HnswIndex>,
}

impl FragmentedHnsw {
    fn build(data: &VectorSet, ids: &[i64], segment_rows: usize, params: &BuildParams) -> Self {
        let mut graphs = Vec::new();
        let mut start = 0;
        while start < ids.len() {
            let end = (start + segment_rows).min(ids.len());
            let rows: Vec<usize> = (start..end).collect();
            let seg = data.gather(&rows);
            graphs.push(HnswIndex::build(&seg, &ids[start..end], params).expect("hnsw build"));
            start = end;
        }
        Self { graphs }
    }

    fn search(&self, q: &[f32], sp: &SearchParams) -> Vec<Neighbor> {
        let lists: Vec<Vec<Neighbor>> =
            self.graphs.iter().map(|g| g.search(q, sp).expect("search")).collect();
        milvus_index::topk::merge_sorted(&lists, sp.k)
    }
}

fn panel(name: &str, data: &VectorSet, metric: Metric, scale: Scale) -> Vec<Point> {
    use rayon::prelude::*;
    let n = data.len();
    let m = scale.query_m();
    let k = 50;
    let ids: Vec<i64> = (0..n as i64).collect();
    let queries = datagen::queries_from(data, m, 2.0, 909);
    let truth = datagen::ground_truth(data, &ids, &queries, metric, k);
    let params = BuildParams { metric, hnsw_m: 16, hnsw_ef_construction: 150, ..Default::default() };
    let parallel = rayon::current_num_threads() > 1;

    let mut points = Vec::new();

    // Milvus HNSW: full SIMD dispatch; query-parallel when cores allow.
    let hnsw = HnswIndex::build(data, &ids, &params).expect("build hnsw");
    for &ef in EFS {
        let sp = SearchParams { k, ef, ..Default::default() };
        points.push(measure("Milvus_HNSW", ef, &truth, m, || {
            if parallel {
                (0..m)
                    .into_par_iter()
                    .map(|i| hnsw.search(queries.get(i), &sp).expect("search"))
                    .collect()
            } else {
                (0..m).map(|i| hnsw.search(queries.get(i), &sp).expect("search")).collect()
            }
        }));
    }

    // System A: the same graph inside a generic engine — sequential, scalar
    // distance kernels (no per-ISA tuning). On a multi-core host Milvus
    // additionally wins by query parallelism; on one core the kernel gap is
    // what remains measurable (see EXPERIMENTS.md).
    milvus_index::simd::force_level(milvus_index::simd::SimdLevel::Scalar)
        .expect("scalar always supported");
    for &ef in EFS {
        let sp = SearchParams { k, ef, ..Default::default() };
        points.push(measure("System A (scalar HNSW)", ef, &truth, m, || {
            (0..m).map(|i| hnsw.search(queries.get(i), &sp).expect("search")).collect()
        }));
    }
    milvus_index::simd::reset_level();

    // Vearch-like: fragmented graphs, every fragment searched per query.
    let fragmented = FragmentedHnsw::build(data, &ids, n / 20, &params);
    for &ef in EFS {
        let sp = SearchParams { k, ef, ..Default::default() };
        points.push(measure("Vearch-like (fragmented HNSW)", ef, &truth, m, || {
            (0..m).map(|i| fragmented.search(queries.get(i), &sp)).collect()
        }));
    }

    // System C: scalar graph walk + row-store tuple re-fetch: the index
    // yields candidate TIDs and the engine fetches each heap tuple to
    // recompute the distance (PASE-style integration).
    let row_heap: std::collections::HashMap<i64, Box<[f32]>> = ids
        .iter()
        .map(|&id| (id, data.get(id as usize).to_vec().into_boxed_slice()))
        .collect();
    milvus_index::simd::force_level(milvus_index::simd::SimdLevel::Scalar)
        .expect("scalar always supported");
    for &ef in EFS {
        // The index is asked for ef candidates; the engine re-scores them.
        let sp = SearchParams { k: ef.max(k), ef, ..Default::default() };
        points.push(measure("System C (row-store HNSW)", ef, &truth, m, || {
            (0..m)
                .map(|i| {
                    let q = queries.get(i);
                    let cands = hnsw.search(q, &sp).expect("search");
                    let mut heap = milvus_index::TopK::new(k);
                    for c in cands {
                        let v = &row_heap[&c.id];
                        let d = match metric {
                            Metric::InnerProduct => -milvus_index::distance::ip_with_level(
                                q,
                                v,
                                milvus_index::SimdLevel::Scalar,
                            ),
                            _ => milvus_index::distance::l2_sq_with_level(
                                q,
                                v,
                                milvus_index::SimdLevel::Scalar,
                            ),
                        };
                        heap.push(c.id, d);
                    }
                    heap.into_sorted()
                })
                .collect()
        }));
    }
    milvus_index::simd::reset_level();

    banner(&format!("Figure 9 ({name}): throughput vs recall, HNSW"));
    println!("{:<34} {:>7} {:>8} {:>12}", "system", "ef", "recall", "QPS");
    for p in &points {
        println!("{:<34} {:>7} {:>8.3} {:>12.1}", p.system, p.param, p.recall, p.qps);
    }
    points
}

/// Run Figure 9 at `scale`.
pub fn run(scale: Scale) -> serde_json::Value {
    let n = scale.dataset_n();
    let sift = datagen::sift_like(n, 9901);
    let sift_points = panel("SIFT-like", &sift, Metric::L2, scale);
    drop(sift);
    let deep = datagen::deep_like(n, 9902);
    let deep_points = panel("Deep-like", &deep, Metric::InnerProduct, scale);
    json!({ "sift": sift_points, "deep": deep_points })
}

//! One module per table/figure of the paper's §7 evaluation.

pub mod fig10_scalability;
pub mod fig11_cache;
pub mod fig12_simd;
pub mod fig13_gpu;
pub mod fig14_filtering;
pub mod fig15_filtering_systems;
pub mod fig16_multivector;
pub mod fig8_ivf;
pub mod fig9_hnsw;
pub mod table1;

//! Figure 16: multi-vector query processing on Recipe-like two-vector
//! entities (text + image), weighted-sum aggregation, k=50.
//!
//! (a) Euclidean distance: NRA-50, NRA-2048 vs iterative merging with
//!     k′ thresholds 4096/8192/16384 — throughput vs recall;
//! (b) inner product: iterative merging vs **vector fusion** (single search
//!     over the concatenated index), expected 3.4×–5.8× faster.

use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::Metric;
use milvus_query::multivector::MultiVectorEngine;
use serde_json::json;

use crate::util::{banner, qps, Scale, Timer};

fn build_engine(scale: Scale, metric: Metric, fusion: bool) -> (MultiVectorEngine, usize) {
    let n = scale.dataset_n();
    let (text, image) = datagen::recipe_like(n, 32, 24, 161);
    let ids: Vec<i64> = (0..n as i64).collect();
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { metric, nlist: 256, kmeans_iters: 5, ..Default::default() };
    let engine = MultiVectorEngine::build(
        metric,
        vec![text, image],
        ids,
        vec![0.6, 0.4],
        "IVF_FLAT",
        &registry,
        &params,
        fusion,
    )
    .expect("engine");
    (engine, n)
}

fn truth_for(
    engine: &MultiVectorEngine,
    queries: &[(Vec<f32>, Vec<f32>)],
    k: usize,
) -> Vec<Vec<i64>> {
    queries
        .iter()
        .map(|(q0, q1)| {
            engine
                .exact(&[q0, q1], k)
                .expect("exact")
                .into_iter()
                .map(|n| n.id)
                .collect()
        })
        .collect()
}

fn queries_for(scale: Scale, n: usize) -> Vec<(Vec<f32>, Vec<f32>)> {
    let m = (scale.query_m() / 5).max(20);
    let (text, image) = datagen::recipe_like(n, 32, 24, 161);
    let qt = datagen::queries_from(&text, m, 0.05, 162);
    let qi = datagen::queries_from(&image, m, 0.05, 162);
    (0..m).map(|i| (qt.get(i).to_vec(), qi.get(i).to_vec())).collect()
}

/// Figure 16(a): Euclidean — NRA vs iterative merging.
pub fn run_euclidean(scale: Scale) -> serde_json::Value {
    let (engine, n) = build_engine(scale, Metric::L2, false);
    let queries = queries_for(scale, n);
    let k = 50;
    let truth = truth_for(&engine, &queries, k);
    let sp = SearchParams { k, nprobe: 32, ..Default::default() };

    banner("Figure 16a: multi-vector (Euclidean) — NRA vs iterative merging");
    println!("{:<14} {:>8} {:>12}", "method", "recall", "QPS");
    let mut rows = Vec::new();

    for depth in [50usize, 2048] {
        let t = Timer::start();
        let results: Vec<_> = queries
            .iter()
            .map(|(q0, q1)| engine.nra_fixed(&[q0, q1], &sp, depth).expect("nra"))
            .collect();
        let secs = t.secs();
        let recall = datagen::recall(&truth, &results);
        let q = qps(queries.len(), secs);
        println!("{:<14} {recall:>8.3} {q:>12.1}", format!("NRA-{depth}"));
        rows.push(json!({ "method": format!("NRA-{depth}"), "recall": recall, "qps": q }));
    }

    for threshold in [4096usize, 8192, 16384] {
        let t = Timer::start();
        let results: Vec<_> = queries
            .iter()
            .map(|(q0, q1)| engine.iterative_merging(&[q0, q1], &sp, threshold).expect("img").0)
            .collect();
        let secs = t.secs();
        let recall = datagen::recall(&truth, &results);
        let q = qps(queries.len(), secs);
        println!("{:<14} {recall:>8.3} {q:>12.1}", format!("IMG-{threshold}"));
        rows.push(json!({ "method": format!("IMG-{threshold}"), "recall": recall, "qps": q }));
    }
    json!(rows)
}

/// Figure 16(b): inner product — iterative merging vs vector fusion.
pub fn run_inner_product(scale: Scale) -> serde_json::Value {
    let (engine, n) = build_engine(scale, Metric::InnerProduct, true);
    let queries = queries_for(scale, n);
    let k = 50;
    let truth = truth_for(&engine, &queries, k);
    let sp = SearchParams { k, nprobe: 32, ..Default::default() };

    banner("Figure 16b: multi-vector (inner product) — IMG vs vector fusion");
    println!("{:<14} {:>8} {:>12}", "method", "recall", "QPS");
    let mut rows = Vec::new();

    for threshold in [4096usize, 8192] {
        let t = Timer::start();
        let results: Vec<_> = queries
            .iter()
            .map(|(q0, q1)| engine.iterative_merging(&[q0, q1], &sp, threshold).expect("img").0)
            .collect();
        let secs = t.secs();
        let recall = datagen::recall(&truth, &results);
        let q = qps(queries.len(), secs);
        println!("{:<14} {recall:>8.3} {q:>12.1}", format!("IMG-{threshold}"));
        rows.push(json!({ "method": format!("IMG-{threshold}"), "recall": recall, "qps": q }));
    }

    let t = Timer::start();
    let results: Vec<_> = queries
        .iter()
        .map(|(q0, q1)| engine.vector_fusion(&[q0, q1], &sp).expect("fusion"))
        .collect();
    let secs = t.secs();
    let recall = datagen::recall(&truth, &results);
    let q = qps(queries.len(), secs);
    println!("{:<14} {recall:>8.3} {q:>12.1}", "vector fusion");
    rows.push(json!({ "method": "vector fusion", "recall": recall, "qps": q }));
    json!(rows)
}

/// Run both panels.
pub fn run(scale: Scale) -> serde_json::Value {
    json!({ "fig16a": run_euclidean(scale), "fig16b": run_inner_product(scale) })
}

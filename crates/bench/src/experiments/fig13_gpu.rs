//! Figure 13: GPU indexing — execution time of pure CPU SQ8, pure GPU SQ8
//! and hybrid SQ8H as the query batch size grows, with data too large for
//! the (simulated) GPU memory.
//!
//! Expected shape: GPU slower than CPU at small batches (transfer-bound);
//! the gap narrows with batch size; SQ8H beats both everywhere because only
//! the centroids live on the device and no segment data moves.

use std::sync::Arc;

use milvus_datagen as datagen;
use milvus_gpu::{ExecMode, GpuDevice, GpuSpec, Sq8hIndex};
use milvus_index::traits::{BuildParams, SearchParams};
use serde_json::json;

use crate::util::{banner, Scale};

/// Run Figure 13 at `scale`.
pub fn run(scale: Scale) -> serde_json::Value {
    let n = scale.dataset_n() * 2;
    let batch_sizes: &[usize] = match scale {
        Scale::Quick => &[1, 10, 100, 300],
        Scale::Standard => &[1, 10, 50, 100, 200, 500],
    };
    let data = datagen::sift_like(n, 131);
    let ids: Vec<i64> = (0..n as i64).collect();
    let params = BuildParams { nlist: 1024, kmeans_iters: 5, ..Default::default() };

    // Device memory ≈ 1/8 of the SQ8-encoded data so buckets must stream;
    // PCIe/kernel speeds calibrated to this host (see GpuSpec docs).
    let sq8_bytes = n * 128;
    let spec = GpuSpec::host_calibrated(sq8_bytes / 8);
    let device = Arc::new(GpuDevice::new(0, spec));
    let mut index =
        Sq8hIndex::build(&data, &ids, &params, Arc::clone(&device)).expect("build sq8h");
    // Algorithm 1's batch threshold is a tunable; the paper's example (1000)
    // was picked for its testbed's CPU/GPU crossover. Scale it to this
    // host's crossover so SQ8H switches to the all-GPU (multi-bucket copy)
    // path exactly where that path starts winning.
    index.batch_threshold = 300;

    banner("Figure 13: pure CPU vs pure GPU vs SQ8H (simulated device)");
    println!(
        "{:>7} {:>14} {:>14} {:>14} {:>11}",
        "batch", "pure CPU (s)", "pure GPU (s)", "SQ8H (s)", "SQ8H mode"
    );

    let sp = SearchParams { k: 50, nprobe: 8, ..Default::default() };
    let mut rows = Vec::new();
    for &nq in batch_sizes {
        let queries = datagen::queries_from(&data, nq, 2.0, 137);
        let (res_cpu, rep_cpu) = index.search_batch_mode(&queries, &sp, ExecMode::PureCpu);
        let (res_gpu, rep_gpu) = index.search_batch_mode(&queries, &sp, ExecMode::PureGpu);
        let (res_hyb, rep_hyb) = index.search_batch_mode(&queries, &sp, ExecMode::Sq8h);
        assert_eq!(res_cpu, res_gpu);
        assert_eq!(res_cpu, res_hyb);
        let (c, g, h) = (
            rep_cpu.total().as_secs_f64(),
            rep_gpu.total().as_secs_f64(),
            rep_hyb.total().as_secs_f64(),
        );
        println!("{nq:>7} {c:>14.4} {g:>14.4} {h:>14.4} {:>11?}", rep_hyb.resolved);
        rows.push(json!({
            "batch": nq,
            "pure_cpu_s": c,
            "pure_gpu_s": g,
            "sq8h_s": h,
            "gpu_transferred_bytes": rep_gpu.transferred_bytes,
            "sq8h_transferred_bytes": rep_hyb.transferred_bytes,
        }));
    }
    json!(rows)
}

//! Figure 10: scalability.
//!
//! (a) single node, throughput vs data size — throughput should drop roughly
//!     proportionally as the data grows (paper: 1 M → 1 B; here scaled);
//! (b) distributed, throughput vs reader count — near-linear scaling. Node
//!     parallelism is simulated: each reader accumulates its own busy clock,
//!     and a query wave's wall time is the max over readers (they run
//!     concurrently on independent machines in the real deployment).

use std::sync::Arc;

use milvus_datagen as datagen;
use milvus_distributed::Cluster;
use milvus_index::ivf::{IvfIndex, IvfVariant};
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{Metric, VectorIndex, VectorSet};
use milvus_storage::object_store::MemoryStore;
use milvus_storage::{InsertBatch, LsmConfig, Schema};
use serde_json::json;

use crate::util::{banner, qps, Scale, Timer};

/// Figure 10(a): throughput vs data size on one node.
pub fn run_single_node(scale: Scale) -> serde_json::Value {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 5_000, 20_000],
        Scale::Standard => vec![1_000, 10_000, 50_000, 100_000, 200_000],
    };
    let m = scale.query_m();
    let k = 50;
    banner("Figure 10a: throughput vs data size (single node, IVF_FLAT)");
    println!("{:>10} {:>12}", "data size", "QPS");

    let mut rows = Vec::new();
    let full = datagen::sift_like(*sizes.last().expect("non-empty"), 1001);
    for &n in &sizes {
        let rows_idx: Vec<usize> = (0..n).collect();
        let data = full.gather(&rows_idx);
        let ids: Vec<i64> = (0..n as i64).collect();
        let params = BuildParams { nlist: 1024, kmeans_iters: 5, ..Default::default() };
        let ivf = IvfIndex::build(IvfVariant::Flat, &data, &ids, &params).expect("build");
        let queries = datagen::queries_from(&data, m, 2.0, 77);
        let sp = SearchParams { k, nprobe: 8, ..Default::default() };
        let t = Timer::start();
        for i in 0..m {
            ivf.search(queries.get(i), &sp).expect("search");
        }
        let q = qps(m, t.secs());
        println!("{n:>10} {q:>12.1}");
        rows.push(json!({ "n": n, "qps": q }));
    }
    json!(rows)
}

/// Figure 10(b): throughput vs reader-node count (simulated parallelism).
pub fn run_distributed(scale: Scale) -> serde_json::Value {
    let n = scale.dataset_n();
    let m = scale.query_m();
    let node_counts: &[usize] = match scale {
        Scale::Quick => &[1, 2, 4],
        Scale::Standard => &[1, 2, 4, 8, 12],
    };
    // Plenty of shards per reader keeps the consistent-hash assignment
    // balanced (the critical path is the busiest reader, so shard-count
    // variance directly caps scaling).
    let shards = 96;
    let data = datagen::sift_like(n, 1002);
    let queries = datagen::queries_from(&data, m, 2.0, 177);
    let schema = Schema::single("v", 128, Metric::L2);

    banner("Figure 10b: throughput vs number of reader nodes (simulated)");
    println!("{:>7} {:>16} {:>14}", "nodes", "QPS (simulated)", "critical path");

    let mut rows = Vec::new();
    for &readers in node_counts {
        let cluster = Cluster::new(
            schema.clone(),
            shards,
            readers,
            Arc::new(MemoryStore::new()),
            LsmConfig { auto_merge: false, ..Default::default() },
        )
        .expect("cluster");
        let ids: Vec<i64> = (0..n as i64).collect();
        cluster
            .insert(InsertBatch::single(ids, VectorSet::from_flat(128, data.as_flat().to_vec())))
            .expect("insert");
        cluster.flush().expect("flush");

        cluster.reset_busy();
        let sp = SearchParams::top_k(50);
        for i in 0..m {
            cluster.search("v", queries.get(i), &sp).expect("search");
        }
        // Wall time of the wave on a real cluster = the busiest node.
        let critical = cluster.critical_path().as_secs_f64();
        let q = qps(m, critical);
        println!("{readers:>7} {q:>16.1} {critical:>13.3}s");
        rows.push(json!({ "nodes": readers, "qps": q, "critical_path_s": critical }));
    }
    json!(rows)
}

/// Run both panels.
pub fn run(scale: Scale) -> serde_json::Value {
    json!({ "fig10a": run_single_node(scale), "fig10b": run_distributed(scale) })
}

//! Figure 8: throughput vs recall on quantization-based (IVF) indexes,
//! SIFT-like and Deep-like datasets.
//!
//! Series: Milvus IVF_FLAT / IVF_SQ8 / IVF_PQ, Milvus GPU SQ8H (simulated
//! device), and the baselines — SPTAG-like (tree), Vearch-like (fragmented
//! segments), System B (relational brute force, single point), System C
//! (relational + scalar IVF). Recall is swept with `nprobe` (or the tree
//! search budget).

use std::sync::Arc;

use milvus_baselines::{
    RelationalLikeEngine, ScalarIvfEngine, SptagLikeEngine, VearchLikeEngine,
};
use milvus_datagen as datagen;
use milvus_gpu::{ExecMode, GpuDevice, GpuSpec, Sq8hIndex};
use milvus_index::ivf::{IvfIndex, IvfVariant};
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{Metric, Neighbor, VectorIndex, VectorSet};
use serde_json::json;

use crate::util::{banner, qps, Scale, Timer};

/// One measured point of a series.
#[derive(Debug, Clone)]
pub struct Point {
    /// Series (system/index) name.
    pub system: String,
    /// The swept parameter (nprobe / search budget).
    pub param: usize,
    /// Recall@k against exact ground truth.
    pub recall: f32,
    /// Queries per second.
    pub qps: f64,
}

serde::impl_serde_struct!(Point { system, param, recall, qps });

impl From<Point> for serde_json::Value {
    fn from(p: Point) -> Self {
        serde::Serialize::to_value(&p)
    }
}

const NPROBES: &[usize] = &[1, 2, 4, 8, 16, 32];

fn measure<F>(system: &str, param: usize, truth: &[Vec<i64>], m: usize, f: F) -> Point
where
    F: FnOnce() -> Vec<Vec<Neighbor>>,
{
    let t = Timer::start();
    let results = f();
    let secs = t.secs();
    Point {
        system: system.to_string(),
        param,
        recall: datagen::recall(truth, &results),
        qps: qps(m, secs),
    }
}

/// Milvus-side batched IVF execution: full SIMD dispatch, query-parallel
/// when the host has more than one core.
fn milvus_batch(ivf: &IvfIndex, queries: &VectorSet, sp: &SearchParams) -> Vec<Vec<Neighbor>> {
    use rayon::prelude::*;
    if rayon::current_num_threads() > 1 {
        (0..queries.len())
            .into_par_iter()
            .map(|i| ivf.search(queries.get(i), sp).expect("search"))
            .collect()
    } else {
        (0..queries.len()).map(|i| ivf.search(queries.get(i), sp).expect("search")).collect()
    }
}

/// Run one dataset panel.
fn panel(name: &str, data: &VectorSet, metric: Metric, scale: Scale) -> Vec<Point> {
    let n = data.len();
    let m = scale.query_m();
    let k = 50;
    let ids: Vec<i64> = (0..n as i64).collect();
    let queries = datagen::queries_from(data, m, 2.0, 99);
    let truth = datagen::ground_truth(data, &ids, &queries, metric, k);

    let params = BuildParams { metric, nlist: 1024, kmeans_iters: 6, pq_m: 8, ..Default::default() };
    let mut points = Vec::new();

    // Milvus CPU variants.
    for variant in [IvfVariant::Flat, IvfVariant::Sq8, IvfVariant::Pq] {
        let ivf = IvfIndex::build(variant, data, &ids, &params).expect("build ivf");
        for &nprobe in NPROBES {
            let sp = SearchParams { k, nprobe, ..Default::default() };
            points.push(measure(
                &format!("Milvus_{}", variant.name()),
                nprobe,
                &truth,
                m,
                || milvus_batch(&ivf, &queries, &sp),
            ));
        }
    }

    // Milvus GPU SQ8H (simulated device; data fits in device memory at this
    // scale, matching the paper's "GPU version is even faster" setting).
    let device = Arc::new(GpuDevice::new(0, GpuSpec { global_memory_bytes: 8 << 30, ..Default::default() }));
    let sq8h = Sq8hIndex::build(data, &ids, &params, device).expect("build sq8h");
    for &nprobe in NPROBES {
        let sp = SearchParams { k, nprobe, ..Default::default() };
        let t = Timer::start();
        let (results, rep) = sq8h.search_batch_mode(&queries, &sp, ExecMode::PureGpu);
        // Simulated execution: harness overhead (host-side exact compute)
        // replaced by the modeled device time.
        let _ = t;
        let secs = rep.total().as_secs_f64();
        points.push(Point {
            system: "Milvus_GPU_SQ8H".into(),
            param: nprobe,
            recall: datagen::recall(&truth, &results),
            qps: qps(m, secs),
        });
    }

    // SPTAG-like: tree forest, budget sweep.
    let sptag = SptagLikeEngine::build(data, &ids, &params).expect("build sptag");
    for budget in [512usize, 2048, 8192] {
        let sp = SearchParams { k, search_nodes: budget, ..Default::default() };
        points.push(measure("SPTAG-like", budget, &truth, m, || {
            sptag.search_batch(&queries, &sp).expect("sptag search")
        }));
    }

    // Vearch-like: 20 never-merged segments, sequential queries.
    let vearch =
        VearchLikeEngine::build(data, &ids, &vec![0.0; n], n / 20, &params).expect("build vearch");
    for &nprobe in NPROBES {
        let sp = SearchParams { k, nprobe, ..Default::default() };
        points.push(measure("Vearch-like", nprobe, &truth, m, || {
            vearch.search_batch(&queries, &sp).expect("vearch search")
        }));
    }

    // System B: relational brute force (single point, recall 1).
    let sys_b = RelationalLikeEngine::build(metric, data, &ids, &vec![0.0; n]);
    {
        let sp = SearchParams::top_k(k);
        // Brute force is slow; sample fewer queries and scale.
        let sample = (m / 10).max(10).min(m);
        let qs = queries.gather(&(0..sample).collect::<Vec<_>>());
        let t = Timer::start();
        let res = sys_b.search_batch(&qs, &sp);
        let secs = t.secs();
        points.push(Point {
            system: "System B (relational brute force)".into(),
            param: 0,
            recall: datagen::recall(&truth[..sample], &res),
            qps: qps(sample, secs),
        });
    }

    // System C: relational + scalar IVF.
    let sys_c = ScalarIvfEngine::build(data, &ids, &params).expect("build system c");
    for &nprobe in NPROBES {
        let sp = SearchParams { k, nprobe, ..Default::default() };
        points.push(measure("System C (scalar IVF)", nprobe, &truth, m, || {
            sys_c.search_batch(&queries, &sp)
        }));
    }

    banner(&format!("Figure 8 ({name}): throughput vs recall, IVF indexes"));
    println!("{:<34} {:>7} {:>8} {:>12}", "system", "param", "recall", "QPS");
    for p in &points {
        println!("{:<34} {:>7} {:>8.3} {:>12.1}", p.system, p.param, p.recall, p.qps);
    }
    points
}

/// Run Figure 8 at `scale`.
pub fn run(scale: Scale) -> serde_json::Value {
    let n = scale.dataset_n();
    let sift = datagen::sift_like(n, 8801);
    let sift_points = panel("SIFT-like", &sift, Metric::L2, scale);
    drop(sift);
    let deep = datagen::deep_like(n, 8802);
    let deep_points = panel("Deep-like", &deep, Metric::InnerProduct, scale);
    json!({ "sift": sift_points, "deep": deep_points })
}

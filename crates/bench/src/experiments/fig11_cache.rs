//! Figure 11: the cache-aware design vs the original (Faiss-style)
//! implementation — execution time of a 1000-query batch as the data size
//! grows, under two assumed L3 sizes (12 MB and 35.75 MB, the paper's two
//! CPUs). The cache-blocking benefit is a single-thread memory-locality
//! effect, so it reproduces on any core count.

use milvus_datagen as datagen;
use milvus_index::batch::{cache_aware_search, faiss_style_search, query_block_size, BatchOptions};
use milvus_index::Metric;
use serde_json::json;

use crate::util::{banner, Scale, Timer};

/// Run Figure 11 at `scale`.
pub fn run(scale: Scale) -> serde_json::Value {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![1_000, 10_000, 50_000],
        Scale::Standard => vec![1_000, 10_000, 100_000, 300_000],
    };
    let m = match scale {
        Scale::Quick => 200,
        Scale::Standard => 1000,
    };
    let k = 50;
    let dim = 128;
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let caches: &[(&str, usize)] = &[("12MB", 12 << 20), ("35.75MB", 35_750_000)];

    let queries = datagen::sift_like(m, 111);
    let mut rows = Vec::new();
    for &(cache_name, l3) in caches {
        banner(&format!(
            "Figure 11 ({cache_name} L3): cache-aware vs original, batch={m}"
        ));
        println!(
            "{:>10} {:>6} {:>14} {:>14} {:>9}",
            "data size", "s", "original (s)", "cache-aware", "speedup"
        );
        for &n in &sizes {
            let data = datagen::sift_like(n, 112);
            let ids: Vec<i64> = (0..n as i64).collect();
            let opts = BatchOptions { k, metric: Metric::L2, threads, l3_cache_bytes: l3 };
            let s = query_block_size(l3, dim, threads, k).min(m);

            let t = Timer::start();
            let original = faiss_style_search(&data, &ids, &queries, &opts);
            let orig_s = t.secs();

            let t = Timer::start();
            let aware = cache_aware_search(&data, &ids, &queries, &opts);
            let aware_s = t.secs();

            assert_eq!(original, aware, "engines disagree");
            let speedup = orig_s / aware_s.max(1e-12);
            println!("{n:>10} {s:>6} {orig_s:>14.3} {aware_s:>14.3} {speedup:>8.2}x");
            rows.push(json!({
                "l3": cache_name, "n": n, "block_s": s,
                "original_s": orig_s, "cache_aware_s": aware_s, "speedup": speedup,
            }));
        }
    }
    json!(rows)
}

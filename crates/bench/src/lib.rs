//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§7). The `repro` binary drives the experiment modules; each
//! module prints the same rows/series the paper reports and returns a JSON
//! value the harness can persist for EXPERIMENTS.md.
//!
//! Absolute numbers differ from the paper (different hardware, simulated
//! GPU/cluster, laptop-scale data); the *shape* — who wins, by what rough
//! factor, where crossovers fall — is the reproduction target.

pub mod experiments;
pub mod util;

pub use util::{Scale, Timer};

//! Distance-kernel microbenchmarks: metric × dimension × SIMD level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use milvus_datagen as datagen;
use milvus_index::distance::{ip_with_level, l2_sq_with_level};
use milvus_index::SimdLevel;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for dim in [96usize, 128, 512] {
        let data = datagen::clustered(2, dim, 1, -1.0, 1.0, 0.5, 7);
        let a = data.get(0).to_vec();
        let b = data.get(1).to_vec();
        for level in SimdLevel::ALL {
            if !level.supported() {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("l2/{level}"), dim),
                &dim,
                |bench, _| bench.iter(|| black_box(l2_sq_with_level(&a, &b, level))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("ip/{level}"), dim),
                &dim,
                |bench, _| bench.iter(|| black_box(ip_with_level(&a, &b, level))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);

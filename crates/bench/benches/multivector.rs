//! Multi-vector query benchmarks (ablation #7: IMG adaptive doubling vs
//! fixed-depth NRA; fusion as the decomposable fast path).

use criterion::{criterion_group, criterion_main, Criterion};
use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::Metric;
use milvus_query::multivector::MultiVectorEngine;
use std::hint::black_box;

fn bench_multivector(c: &mut Criterion) {
    let mut group = c.benchmark_group("multivector");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let n = 20_000;
    let (text, image) = datagen::recipe_like(n, 32, 24, 41);
    let ids: Vec<i64> = (0..n as i64).collect();
    let registry = IndexRegistry::with_builtins();
    let params =
        BuildParams { metric: Metric::InnerProduct, nlist: 128, kmeans_iters: 4, ..Default::default() };
    let engine = MultiVectorEngine::build(
        Metric::InnerProduct,
        vec![text.clone(), image.clone()],
        ids,
        vec![0.6, 0.4],
        "IVF_FLAT",
        &registry,
        &params,
        true,
    )
    .expect("engine");
    let q0 = text.get(7).to_vec();
    let q1 = image.get(7).to_vec();
    let sp = SearchParams { k: 50, nprobe: 16, ..Default::default() };

    group.bench_function("naive", |b| {
        b.iter(|| black_box(engine.naive(&[&q0, &q1], &sp).expect("naive")))
    });
    group.bench_function("nra_2048", |b| {
        b.iter(|| black_box(engine.nra_fixed(&[&q0, &q1], &sp, 2048).expect("nra")))
    });
    group.bench_function("iterative_merging_4096", |b| {
        b.iter(|| black_box(engine.iterative_merging(&[&q0, &q1], &sp, 4096).expect("img")))
    });
    group.bench_function("vector_fusion", |b| {
        b.iter(|| black_box(engine.vector_fusion(&[&q0, &q1], &sp).expect("fusion")))
    });
    group.finish();
}

criterion_group!(benches, bench_multivector);
criterion_main!(benches);

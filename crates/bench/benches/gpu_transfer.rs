//! GPU engine benchmarks (ablations #4/#5): multi-bucket vs bucket-by-bucket
//! PCIe copies, and the SQ8H hybrid split vs all-CPU / all-GPU.
//!
//! These measure the *simulator's* accounting (the modeled durations are the
//! result of interest); criterion here tracks the host cost of running the
//! model plus the exact host-side computation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use milvus_datagen as datagen;
use milvus_gpu::transfer::{CopyStrategy, TransferPlan};
use milvus_gpu::{ExecMode, GpuDevice, GpuSpec, Sq8hIndex};
use milvus_index::traits::{BuildParams, SearchParams};
use std::hint::black_box;

fn bench_transfer_plans(c: &mut Criterion) {
    let mut group = c.benchmark_group("gpu_transfer_model");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(200));

    let device = GpuDevice::new(0, GpuSpec::default());
    let buckets = vec![64 * 1024usize; 500];

    // Report the modeled durations once so the ablation numbers land in the
    // bench output.
    let faiss = TransferPlan::plan(&buckets, CopyStrategy::BucketByBucket);
    let milvus = TransferPlan::plan(&buckets, CopyStrategy::MultiBucket { chunk_bytes: 8 << 20 });
    println!(
        "modeled copy of 500×64KiB buckets: bucket-by-bucket={:?}, multi-bucket={:?}",
        device.transfer_cost(faiss.total_bytes, faiss.chunks),
        device.transfer_cost(milvus.total_bytes, milvus.chunks),
    );

    group.bench_function("plan_bucket_by_bucket", |b| {
        b.iter(|| black_box(TransferPlan::plan(&buckets, CopyStrategy::BucketByBucket)))
    });
    group.bench_function("plan_multi_bucket", |b| {
        b.iter(|| {
            black_box(TransferPlan::plan(
                &buckets,
                CopyStrategy::MultiBucket { chunk_bytes: 8 << 20 },
            ))
        })
    });
    group.finish();
}

fn bench_sq8h_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sq8h_modes");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let n = 20_000;
    let data = datagen::sift_like(n, 51);
    let ids: Vec<i64> = (0..n as i64).collect();
    let params = BuildParams { nlist: 128, kmeans_iters: 4, ..Default::default() };
    let device = Arc::new(GpuDevice::new(0, GpuSpec::host_calibrated(n * 16)));
    let index = Sq8hIndex::build(&data, &ids, &params, device).expect("build");
    let queries = datagen::queries_from(&data, 32, 2.0, 52);
    let sp = SearchParams { k: 50, nprobe: 8, ..Default::default() };

    for (name, mode) in [
        ("pure_cpu", ExecMode::PureCpu),
        ("pure_gpu", ExecMode::PureGpu),
        ("sq8h_hybrid", ExecMode::Sq8h),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(index.search_batch_mode(&queries, &sp, mode)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transfer_plans, bench_sq8h_modes);
criterion_main!(benches);

//! Attribute-filtering strategy benchmarks (ablation #3: partition-based E
//! vs cost-based D, plus the fixed strategies).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::Metric;
use milvus_query::filtering::{FilterDataset, PartitionedDataset, RangePredicate, Strategy};
use std::hint::black_box;

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("filtering");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let n = 30_000;
    let data = datagen::sift_like(n, 31);
    let ids: Vec<i64> = (0..n as i64).collect();
    let values = datagen::attributes_uniform(n, 0.0, 10_000.0, 32);
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { nlist: 128, kmeans_iters: 4, ..Default::default() };
    let dataset = FilterDataset::build(
        Metric::L2,
        data.clone(),
        ids.clone(),
        values.clone(),
        "a",
        "IVF_FLAT",
        &registry,
        &params,
    )
    .expect("dataset");
    let part = PartitionedDataset::build(
        Metric::L2, &data, &ids, &values, "a", 10, "IVF_FLAT", &registry, &params,
    )
    .expect("partitioned");
    let queries = datagen::queries_from(&data, 8, 2.0, 33);
    let sp = SearchParams { k: 50, nprobe: 16, ..Default::default() };

    for (sel_name, hi) in [("sel_0.5", 5_000.0), ("sel_0.99", 100.0)] {
        let pred = RangePredicate::new(0.0, hi);
        for strat in [Strategy::A, Strategy::B, Strategy::C, Strategy::D] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strat:?}"), sel_name),
                &pred,
                |b, &pred| {
                    let mut qi = 0usize;
                    b.iter(|| {
                        let q = queries.get(qi % queries.len());
                        qi += 1;
                        black_box(dataset.search(q, pred, &sp, strat).expect("search"))
                    })
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("E", sel_name), &pred, |b, &pred| {
            let mut qi = 0usize;
            b.iter(|| {
                let q = queries.get(qi % queries.len());
                qi += 1;
                black_box(part.search(q, pred, &sp).expect("search"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);

//! Index search microbenchmarks: one per built-in index type at a common
//! operating point.

use criterion::{criterion_group, criterion_main, Criterion};
use milvus_datagen as datagen;
use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use std::hint::black_box;

fn bench_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_search");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let n = 20_000;
    let data = datagen::sift_like(n, 11);
    let ids: Vec<i64> = (0..n as i64).collect();
    let queries = datagen::queries_from(&data, 16, 2.0, 12);
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { nlist: 256, kmeans_iters: 5, pq_m: 8, ..Default::default() };

    for name in ["FLAT", "IVF_FLAT", "IVF_SQ8", "IVF_PQ", "HNSW", "NSG", "ANNOY"] {
        let index = registry.build(name, &data, &ids, &params).expect("build");
        let sp = SearchParams { k: 50, nprobe: 16, ef: 100, search_nodes: 2000 };
        group.bench_function(name, |b| {
            let mut qi = 0usize;
            b.iter(|| {
                let q = queries.get(qi % queries.len());
                qi += 1;
                black_box(index.search(q, &sp).expect("search"))
            })
        });
    }
    group.finish();
}

fn bench_builds(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let n = 5_000;
    let data = datagen::sift_like(n, 13);
    let ids: Vec<i64> = (0..n as i64).collect();
    let registry = IndexRegistry::with_builtins();
    let params = BuildParams { nlist: 64, kmeans_iters: 4, pq_m: 8, ..Default::default() };

    // Quantization-based indexes are "much faster to build... when compared
    // to graph-based indexes" (§3) — this pair shows the gap.
    for name in ["IVF_FLAT", "HNSW"] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(registry.build(name, &data, &ids, &params).expect("build")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_indexes, bench_builds);
criterion_main!(benches);

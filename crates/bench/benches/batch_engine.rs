//! Ablation: the cache-aware batch engine (§3.2.1) vs the Faiss-style
//! thread-per-query engine (DESIGN.md ablations #1/#2, Figure 11's kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use milvus_datagen as datagen;
use milvus_exec::Executor;
use milvus_index::batch::{
    cache_aware_search, cache_aware_search_exec, faiss_style_search, BatchOptions,
};
use milvus_index::Metric;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_engine");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let pool = Executor::new("bench_batch_engine", 4);
    let queries = datagen::sift_like(64, 1);
    for n in [10_000usize, 50_000] {
        let data = datagen::sift_like(n, 2);
        let ids: Vec<i64> = (0..n as i64).collect();
        let opts = BatchOptions {
            k: 50,
            metric: Metric::L2,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            l3_cache_bytes: 32 << 20,
        };
        group.bench_with_input(BenchmarkId::new("faiss_style", n), &n, |b, _| {
            b.iter(|| black_box(faiss_style_search(&data, &ids, &queries, &opts)))
        });
        group.bench_with_input(BenchmarkId::new("cache_aware", n), &n, |b, _| {
            b.iter(|| black_box(cache_aware_search(&data, &ids, &queries, &opts)))
        });
        group.bench_with_input(BenchmarkId::new("cache_aware_exec", n), &n, |b, _| {
            b.iter(|| black_box(cache_aware_search_exec(&pool, &data, &ids, &queries, &opts)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);

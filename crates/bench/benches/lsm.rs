//! LSM storage-engine benchmarks: ingest throughput, flush cost, and the
//! tiered-merge ablation (DESIGN.md #6) — query cost over fragmented vs
//! merged segment sets.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use milvus_datagen as datagen;
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::merge::MergePolicy;
use milvus_storage::object_store::MemoryStore;
use milvus_storage::{InsertBatch, LsmConfig, LsmEngine, Schema};
use std::hint::black_box;

fn engine(auto_merge: bool) -> LsmEngine {
    let schema = Schema::single("v", 64, Metric::L2);
    let cfg = LsmConfig {
        flush_threshold_bytes: usize::MAX,
        auto_merge,
        merge_policy: MergePolicy { min_segments_per_merge: 2, ..Default::default() },
        persist_segments: false,
        ..Default::default()
    };
    LsmEngine::new(schema, cfg, Arc::new(MemoryStore::new()), None).expect("engine")
}

fn batch(start: i64, n: usize, data: &VectorSet, offset: usize) -> InsertBatch {
    let rows: Vec<usize> = (offset..offset + n).collect();
    InsertBatch::single((start..start + n as i64).collect(), data.gather(&rows))
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_ingest");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let data = datagen::clustered(60_000, 64, 32, -1.0, 1.0, 0.3, 21);

    group.bench_function("insert_1k_rows", |b| {
        b.iter_batched(
            || engine(false),
            |e| {
                e.insert(batch(0, 1000, &data, 0)).expect("insert");
                black_box(e.pending_rows())
            },
            criterion::BatchSize::SmallInput,
        )
    });

    group.bench_function("insert_flush_1k_rows", |b| {
        b.iter_batched(
            || engine(false),
            |e| {
                e.insert(batch(0, 1000, &data, 0)).expect("insert");
                e.flush().expect("flush");
                black_box(e.snapshot().live_rows())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// Ablation #6: search latency over many small segments vs the tier-merged
/// equivalent.
fn bench_merge_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsm_merge_ablation");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let data = datagen::clustered(20_000, 64, 32, -1.0, 1.0, 0.3, 22);
    let queries = datagen::queries_from(&data, 8, 0.1, 23);
    let sp = SearchParams::top_k(10);

    for (label, merged) in [("fragmented_20_segments", false), ("tier_merged", true)] {
        let e = engine(false);
        for i in 0..20 {
            e.insert(batch(i as i64 * 1000, 1000, &data, i * 1000)).expect("insert");
            e.flush().expect("flush");
        }
        if merged {
            while e.maybe_merge().expect("merge") > 0 {}
        }
        let snap = e.snapshot();
        let schema = e.schema().clone();
        group.bench_with_input(BenchmarkId::new("search", label), &label, |b, _| {
            let mut qi = 0usize;
            b.iter(|| {
                let q = queries.get(qi % queries.len());
                qi += 1;
                let lists: Vec<_> = snap
                    .segments
                    .iter()
                    .map(|s| s.search_field(&schema, "v", q, &sp, None).expect("search"))
                    .collect();
                black_box(milvus_storage::segment::merge_segment_results(&lists, sp.k))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_merge_ablation);
criterion_main!(benches);

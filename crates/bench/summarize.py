#!/usr/bin/env python3
"""Digest results_standard.json into the headline factors EXPERIMENTS.md
reports (who wins, by what factor, at comparable recall)."""
import json
import sys


def best_qps_at(points, system, min_recall):
    qs = [p["qps"] for p in points if p["system"] == system and p["recall"] >= min_recall]
    return max(qs) if qs else None


def fig_factor(points, base_sys, other_sys, min_recall):
    a = best_qps_at(points, base_sys, min_recall)
    b = best_qps_at(points, other_sys, min_recall)
    if a and b:
        return a / b
    return None


def main(path):
    data = json.load(open(path))

    print("== Figure 8 (IVF) factors at recall >= 0.9 ==")
    for panel in ("sift", "deep"):
        pts = data["fig8"][panel]
        milvus = "Milvus_IVF_FLAT"
        for other in [
            "Vearch-like",
            "SPTAG-like",
            "System B (relational brute force)",
            "System C (scalar IVF)",
        ]:
            thr = 0.9 if panel == "sift" else 0.85
            f = fig_factor(pts, milvus, other, thr)
            print(f"  {panel}: Milvus vs {other}: {f:.1f}x" if f else f"  {panel}: {other}: n/a")
        gpu = fig_factor(pts, "Milvus_GPU_SQ8H", milvus, 0.9 if panel == "sift" else 0.85)
        if gpu:
            print(f"  {panel}: GPU_SQ8H vs CPU IVF_FLAT: {gpu:.1f}x")

    print("== Figure 9 (HNSW) factors at recall >= 0.9 ==")
    for panel in ("sift", "deep"):
        pts = data["fig9"][panel]
        for other in [
            "System A (scalar HNSW)",
            "Vearch-like (fragmented HNSW)",
            "System C (row-store HNSW)",
        ]:
            f = fig_factor(pts, "Milvus_HNSW", other, 0.9)
            print(f"  {panel}: Milvus vs {other}: {f:.1f}x" if f else f"  {panel}: {other}: n/a")

    print("== Figure 10 ==")
    for row in data["fig10"]["fig10a"]:
        print(f"  10a n={row['n']}: {row['qps']:.0f} QPS")
    for row in data["fig10"]["fig10b"]:
        print(f"  10b nodes={row['nodes']}: {row['qps']:.0f} QPS (sim)")

    print("== Figure 11 cache-aware speedups ==")
    for row in data["fig11"]:
        print(f"  L3={row['l3']} n={row['n']}: {row['speedup']:.2f}x (s={row['block_s']})")

    print("== Figure 12 AVX512 vs AVX2 ==")
    for row in data["fig12"]:
        print(
            f"  n={row['n']}: avx512 {row['avx512_speedup_over_avx2']:.2f}x avx2; "
            f"avx2 {row['scalar_s']/row['avx2_s']:.2f}x scalar"
        )

    print("== Figure 13 (seconds) ==")
    for row in data["fig13"]:
        print(
            f"  batch={row['batch']}: cpu {row['pure_cpu_s']:.4f} gpu {row['pure_gpu_s']:.4f} "
            f"sq8h {row['sq8h_s']:.4f}"
        )

    print("== Figure 14: strategy E vs D speedup ==")
    for setting in data["fig14"]:
        for row in setting:
            if row["E_s"] > 0:
                print(
                    f"  {row['setting']} sel={row['selectivity']}: D/E = {row['D_s']/row['E_s']:.2f}x, "
                    f"best-fixed/E = {min(row['A_s'], row['B_s'], row['C_s'])/row['E_s']:.2f}x"
                )

    print("== Figure 15: Milvus E vs systems ==")
    for row in data["fig15"]:
        m = row["milvus_e_s"]
        if m > 0:
            print(
                f"  sel={row['selectivity']}: vearch {row['vearch_like_s']/m:.1f}x, "
                f"relational {row['relational_s']/m:.1f}x"
            )

    print("== Figure 16 ==")
    for row in data["fig16"]["fig16a"]:
        print(f"  16a {row['method']}: recall {row['recall']:.3f}, {row['qps']:.1f} QPS")
    for row in data["fig16"]["fig16b"]:
        print(f"  16b {row['method']}: recall {row['recall']:.3f}, {row['qps']:.1f} QPS")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "results_standard.json")

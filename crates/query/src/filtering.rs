//! Attribute filtering (§4.1, Figure 4).
//!
//! A hybrid query has a range constraint `Cα` (`a >= p1 && a <= p2`) and a
//! vector constraint `Cν` (top-k similarity). Five strategies:
//!
//! * **A — attribute-first-vector-full-scan**: resolve `Cα` via the sorted
//!   attribute column (binary search + skip pointers), then exactly scan the
//!   qualifying vectors. Exact; best when `Cα` is highly selective.
//! * **B — attribute-first-vector-search**: resolve `Cα` into a bitmap, then
//!   run the ANN index checking the bitmap per candidate.
//! * **C — vector-first-attribute-full-scan**: ANN search for `θ·k`
//!   candidates, then post-filter on the attribute.
//! * **D — cost-based**: estimate the cost of A/B/C and run the cheapest
//!   (AnalyticDB-V's approach).
//! * **E — partition-based (Milvus)**: pre-partition the data on the
//!   frequently-filtered attribute; a query only touches partitions whose
//!   range overlaps, and partitions *covered* by the query range skip the
//!   attribute check entirely, running pure vector search.

use std::collections::HashSet;

use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{distance, Metric, Neighbor, TopK, VectorIndex, VectorSet};
use milvus_storage::attribute::AttributeColumn;

use crate::error::{QueryError, Result};

/// The inclusive range constraint `Cα`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangePredicate {
    /// Lower bound `p1`.
    pub lo: f64,
    /// Upper bound `p2`.
    pub hi: f64,
}

impl RangePredicate {
    /// Construct; lo > hi yields an always-false predicate.
    pub fn new(lo: f64, hi: f64) -> Self {
        Self { lo, hi }
    }

    /// Whether `v` satisfies the constraint.
    #[inline]
    pub fn matches(self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }

    /// Whether this predicate fully covers `[min, max]`.
    #[inline]
    pub fn covers(self, min: f64, max: f64) -> bool {
        self.lo <= min && self.hi >= max
    }

    /// Whether this predicate overlaps `[min, max]`.
    #[inline]
    pub fn overlaps(self, min: f64, max: f64) -> bool {
        self.lo <= max && self.hi >= min
    }
}

/// Strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Attribute-first, vector full scan.
    A,
    /// Attribute-first, filtered vector search.
    B,
    /// Vector-first, attribute post-filter.
    C,
    /// Cost-based choice among A/B/C.
    D,
    /// Partition-based (only valid on a [`PartitionedDataset`]).
    E,
}

/// What a strategy execution did (assertions + cost-model validation).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecTrace {
    /// Vectors whose distance was actually computed.
    pub distance_computations: usize,
    /// The concrete strategy that ran (D resolves to A/B/C).
    pub resolved: Option<Strategy>,
    /// Partitions touched (strategy E).
    pub partitions_scanned: usize,
    /// Partitions where the attribute check was skipped (covered ranges).
    pub partitions_covered: usize,
}

/// One searchable slice of data: vectors + ids + attribute column + index.
pub struct FilterDataset {
    metric: Metric,
    vectors: VectorSet,
    /// Sorted ascending (the columnar layout of §2.4).
    ids: Vec<i64>,
    /// Attribute values aligned with `ids` rows.
    values: Vec<f64>,
    column: AttributeColumn,
    index: Box<dyn VectorIndex>,
    /// Over-fetch factor θ for strategy C (§7.5 uses θ = 1.1).
    pub theta: f64,
}

impl FilterDataset {
    /// Build from parallel arrays; constructs the attribute column and the
    /// ANN index (`index_type` from `registry`).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        metric: Metric,
        vectors: VectorSet,
        ids: Vec<i64>,
        values: Vec<f64>,
        attr_name: &str,
        index_type: &str,
        registry: &IndexRegistry,
        params: &BuildParams,
    ) -> Result<Self> {
        if vectors.len() != ids.len() || ids.len() != values.len() {
            return Err(QueryError::InvalidQuery(format!(
                "misaligned inputs: {} vectors, {} ids, {} values",
                vectors.len(),
                ids.len(),
                values.len()
            )));
        }
        if ids.windows(2).any(|w| w[0] >= w[1]) {
            return Err(QueryError::InvalidQuery("ids must be sorted ascending".into()));
        }
        let column = AttributeColumn::build(attr_name, &values, &ids);
        let mut build = params.clone();
        build.metric = metric;
        let index = registry.build(index_type, &vectors, &ids, &build)?;
        Ok(Self { metric, vectors, ids, values, column, index, theta: 1.1 })
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Attribute min/max.
    pub fn attr_min_max(&self) -> Option<(f64, f64)> {
        self.column.min_max()
    }

    /// Fraction of rows *failing* the predicate (the paper's definition of
    /// query selectivity in §7.5: higher = fewer rows pass).
    pub fn selectivity(&self, pred: RangePredicate) -> f64 {
        if self.ids.is_empty() {
            return 0.0;
        }
        1.0 - self.column.count_range(pred.lo, pred.hi) as f64 / self.ids.len() as f64
    }

    #[inline]
    fn row_of(&self, id: i64) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Execute under `strategy` (E is invalid here; use
    /// [`PartitionedDataset`]).
    pub fn search(
        &self,
        query: &[f32],
        pred: RangePredicate,
        params: &SearchParams,
        strategy: Strategy,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        match strategy {
            Strategy::A => self.strategy_a(query, pred, params),
            Strategy::B => self.strategy_b(query, pred, params),
            Strategy::C => self.strategy_c(query, pred, params),
            Strategy::D => self.strategy_d(query, pred, params),
            Strategy::E => Err(QueryError::InvalidQuery(
                "strategy E requires a PartitionedDataset".into(),
            )),
        }
    }

    /// [`Self::search`] recording a [`milvus_obs::SpanKind::Filter`] span
    /// (rows = actual distance computations) into a per-query trace.
    pub fn search_traced(
        &self,
        query: &[f32],
        pred: RangePredicate,
        params: &SearchParams,
        strategy: Strategy,
        qtrace: &mut milvus_obs::Trace,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        let t = qtrace.begin();
        let result = self.search(query, pred, params, strategy);
        if let Ok((_, exec)) = &result {
            let rows = exec.distance_computations as u64;
            qtrace.record_with(milvus_obs::SpanKind::Filter, t, |sp| sp.rows_scanned = rows);
        }
        result
    }

    /// Pure vector search, no attribute check (used by strategy E on covered
    /// partitions).
    pub fn vector_only(
        &self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        let res = self.index.search(query, params)?;
        let trace = ExecTrace {
            distance_computations: self.estimated_index_probes(params),
            resolved: Some(Strategy::C),
            ..Default::default()
        };
        Ok((res, trace))
    }

    /// Strategy A: binary-search the attribute column, then exact scan.
    fn strategy_a(
        &self,
        query: &[f32],
        pred: RangePredicate,
        params: &SearchParams,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        let rows = self.column.range_rows(pred.lo, pred.hi);
        let mut heap = TopK::new(params.k.max(1));
        for id in &rows {
            let row = self.row_of(*id).expect("column ids come from this dataset");
            heap.push(*id, distance::distance(self.metric, query, self.vectors.get(row)));
        }
        let trace = ExecTrace {
            distance_computations: rows.len(),
            resolved: Some(Strategy::A),
            ..Default::default()
        };
        Ok((heap.into_sorted(), trace))
    }

    /// Strategy B: bitmap from the attribute, filtered ANN search.
    fn strategy_b(
        &self,
        query: &[f32],
        pred: RangePredicate,
        params: &SearchParams,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        let bitmap: HashSet<i64> =
            self.column.range_rows(pred.lo, pred.hi).into_iter().collect();
        let res = self.index.search_filtered(query, params, &|id| bitmap.contains(&id))?;
        let trace = ExecTrace {
            distance_computations: self.estimated_index_probes(params),
            resolved: Some(Strategy::B),
            ..Default::default()
        };
        Ok((res, trace))
    }

    /// Strategy C: ANN search for θ·k, post-filter on the attribute; retries
    /// with a bigger fetch if fewer than k survive and more data exists.
    fn strategy_c(
        &self,
        query: &[f32],
        pred: RangePredicate,
        params: &SearchParams,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        let mut fetch = ((params.k as f64 * self.theta).ceil() as usize).max(params.k + 1);
        let mut computations = 0usize;
        loop {
            let mut sp = params.clone();
            sp.k = fetch.min(self.len().max(1));
            let cands = self.index.search(query, &sp)?;
            computations += self.estimated_index_probes(&sp);
            let kept: Vec<Neighbor> = cands
                .iter()
                .filter(|n| {
                    self.row_of(n.id)
                        .is_some_and(|row| pred.matches(self.values[row]))
                })
                .copied()
                .take(params.k)
                .collect();
            let exhausted = sp.k >= self.len();
            if kept.len() >= params.k || exhausted {
                let trace = ExecTrace {
                    distance_computations: computations,
                    resolved: Some(Strategy::C),
                    ..Default::default()
                };
                return Ok((kept, trace));
            }
            fetch *= 4;
        }
    }

    /// Strategy D: pick A, B or C by estimated cost (§4.1, following
    /// AnalyticDB-V).
    fn strategy_d(
        &self,
        query: &[f32],
        pred: RangePredicate,
        params: &SearchParams,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        let choice = self.plan(pred, params);
        self.search(query, pred, params, choice)
    }

    /// The cost model behind strategy D; exposed for tests and EXPERIMENTS.md.
    pub fn plan(&self, pred: RangePredicate, params: &SearchParams) -> Strategy {
        let n = self.len().max(1) as f64;
        let passing = self.column.count_range(pred.lo, pred.hi) as f64;
        // Cost A: one exact distance per passing row.
        let cost_a = passing;
        // Cost B/C: the ANN index examines roughly nprobe/nlist of the data
        // (IVF) — use the index-probe estimate; B additionally builds the
        // bitmap (one cheap op per passing row).
        let index_cost = self.estimated_index_probes(params) as f64;
        let cost_b = index_cost + passing * 0.1;
        // Cost C: may re-fetch when the filter is selective; expected fetch
        // inflation is 1/pass_rate.
        let pass_rate = (passing / n).max(1e-9);
        let needed = params.k as f64 * self.theta / pass_rate;
        let cost_c = if needed > n { f64::INFINITY } else { index_cost * (1.0 + needed / n) };
        if cost_a <= cost_b && cost_a <= cost_c {
            Strategy::A
        } else if cost_c <= cost_b {
            Strategy::C
        } else {
            Strategy::B
        }
    }

    /// Rough count of distance computations one index search performs.
    fn estimated_index_probes(&self, params: &SearchParams) -> usize {
        let n = self.len();
        match self.index.name() {
            "FLAT" => n,
            "IVF_FLAT" | "IVF_SQ8" | "IVF_PQ" => {
                let nlist = (n as f64).sqrt().ceil().max(1.0) as usize;
                (n * params.nprobe.min(nlist)) / nlist.max(1)
            }
            // Graph/tree indexes: ~ef·log n candidate evaluations.
            _ => params.ef.max(params.k) * ((n.max(2) as f64).log2() as usize),
        }
    }
}

/// Query-frequency tracking (§4.1: "we maintain the frequency of each
/// searched attribute in a hash table").
#[derive(Debug, Default)]
pub struct AttributeFrequency {
    counts: std::collections::HashMap<String, u64>,
}

impl AttributeFrequency {
    /// Record that a query filtered on `attr`.
    pub fn record(&mut self, attr: &str) {
        *self.counts.entry(attr.to_string()).or_insert(0) += 1;
    }

    /// The most frequently filtered attribute, if any.
    pub fn hottest(&self) -> Option<&str> {
        self.counts
            .iter()
            .max_by_key(|(name, c)| (**c, std::cmp::Reverse(name.as_str())))
            .map(|(name, _)| name.as_str())
    }

    /// Times `attr` was filtered on.
    pub fn count(&self, attr: &str) -> u64 {
        self.counts.get(attr).copied().unwrap_or(0)
    }
}

/// Strategy E: the dataset pre-partitioned on the hot attribute (§4.1).
pub struct PartitionedDataset {
    partitions: Vec<FilterDataset>,
    /// `[min, max]` attribute range per partition.
    ranges: Vec<(f64, f64)>,
}

impl PartitionedDataset {
    /// Partition `vectors` into `rho` equi-count partitions by attribute
    /// value (offline, from historical data — §4.1 recommends ~1M rows per
    /// partition; tests use small `rho`).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        metric: Metric,
        vectors: &VectorSet,
        ids: &[i64],
        values: &[f64],
        attr_name: &str,
        rho: usize,
        index_type: &str,
        registry: &IndexRegistry,
        params: &BuildParams,
    ) -> Result<Self> {
        if vectors.len() != ids.len() || ids.len() != values.len() {
            return Err(QueryError::InvalidQuery("misaligned inputs".into()));
        }
        if rho == 0 {
            return Err(QueryError::InvalidQuery("rho must be >= 1".into()));
        }
        // Sort rows by attribute value, slice into rho equal chunks.
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_by(|&a, &b| values[a].total_cmp(&values[b]).then(ids[a].cmp(&ids[b])));
        let chunk = ids.len().div_ceil(rho).max(1);
        let mut partitions = Vec::new();
        let mut ranges = Vec::new();
        for part in order.chunks(chunk) {
            // Re-sort the partition's rows by id (columnar layout contract).
            let mut rows: Vec<usize> = part.to_vec();
            rows.sort_by_key(|&r| ids[r]);
            let pvec = vectors.gather(&rows);
            let pids: Vec<i64> = rows.iter().map(|&r| ids[r]).collect();
            let pvals: Vec<f64> = rows.iter().map(|&r| values[r]).collect();
            let lo = pvals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = pvals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            partitions.push(FilterDataset::build(
                metric, pvec, pids, pvals, attr_name, index_type, registry, params,
            )?);
            ranges.push((lo, hi));
        }
        Ok(Self { partitions, ranges })
    }

    /// Number of partitions (ρ).
    pub fn rho(&self) -> usize {
        self.partitions.len()
    }

    /// Strategy E execution: prune non-overlapping partitions; covered
    /// partitions run pure vector search; boundary partitions run the
    /// cost-based strategy D.
    pub fn search(
        &self,
        query: &[f32],
        pred: RangePredicate,
        params: &SearchParams,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        let mut lists: Vec<Vec<Neighbor>> = Vec::new();
        let mut trace = ExecTrace { resolved: Some(Strategy::E), ..Default::default() };
        for (p, &(lo, hi)) in self.partitions.iter().zip(&self.ranges) {
            if !pred.overlaps(lo, hi) {
                continue;
            }
            trace.partitions_scanned += 1;
            let (res, t) = if pred.covers(lo, hi) {
                trace.partitions_covered += 1;
                p.vector_only(query, params)?
            } else {
                p.search(query, pred, params, Strategy::D)?
            };
            trace.distance_computations += t.distance_computations;
            lists.push(res);
        }
        Ok((milvus_index::topk::merge_sorted(&lists, params.k), trace))
    }

    /// [`Self::search`] recording one [`milvus_obs::SpanKind::Filter`] span
    /// (rows = distance computations across touched partitions) into a
    /// per-query trace.
    pub fn search_traced(
        &self,
        query: &[f32],
        pred: RangePredicate,
        params: &SearchParams,
        qtrace: &mut milvus_obs::Trace,
    ) -> Result<(Vec<Neighbor>, ExecTrace)> {
        let t = qtrace.begin();
        let result = self.search(query, pred, params);
        if let Ok((_, exec)) = &result {
            let rows = exec.distance_computations as u64;
            qtrace.record_with(milvus_obs::SpanKind::Filter, t, |sp| sp.rows_scanned = rows);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_datagen as datagen;

    struct Fixture {
        data: FilterDataset,
        vectors: VectorSet,
        ids: Vec<i64>,
        values: Vec<f64>,
    }

    fn fixture(n: usize, index_type: &str) -> Fixture {
        let vectors = datagen::clustered(n, 8, 10, -5.0, 5.0, 0.3, 42);
        let ids: Vec<i64> = (0..n as i64).collect();
        let values = datagen::attributes_uniform(n, 0.0, 10_000.0, 7);
        let registry = IndexRegistry::with_builtins();
        let params = BuildParams { nlist: 32, kmeans_iters: 5, ..Default::default() };
        let data = FilterDataset::build(
            Metric::L2,
            vectors.clone(),
            ids.clone(),
            values.clone(),
            "price",
            index_type,
            &registry,
            &params,
        )
        .unwrap();
        Fixture { data, vectors, ids, values }
    }

    /// Brute-force reference for filtered top-k.
    fn reference(f: &Fixture, query: &[f32], pred: RangePredicate, k: usize) -> Vec<i64> {
        let mut all: Vec<(i64, f32)> = (0..f.ids.len())
            .filter(|&r| pred.matches(f.values[r]))
            .map(|r| (f.ids[r], distance::l2_sq(query, f.vectors.get(r))))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all.into_iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn all_strategies_agree_with_reference_on_flat_index() {
        let f = fixture(400, "FLAT");
        let query = f.vectors.get(3).to_vec();
        let pred = RangePredicate::new(2000.0, 7000.0);
        let expect = reference(&f, &query, pred, 10);
        let sp = SearchParams { k: 10, nprobe: 32, ..Default::default() };
        for strat in [Strategy::A, Strategy::B, Strategy::C, Strategy::D] {
            let (res, trace) = f.data.search(&query, pred, &sp, strat).unwrap();
            let got: Vec<i64> = res.iter().map(|n| n.id).collect();
            assert_eq!(got, expect, "strategy {strat:?}");
            assert!(trace.resolved.is_some());
        }
    }

    #[test]
    fn results_respect_predicate_on_ivf_index() {
        let f = fixture(500, "IVF_FLAT");
        let query = f.vectors.get(7).to_vec();
        let pred = RangePredicate::new(0.0, 3000.0);
        let sp = SearchParams { k: 10, nprobe: 32, ..Default::default() };
        for strat in [Strategy::A, Strategy::B, Strategy::C, Strategy::D] {
            let (res, _) = f.data.search(&query, pred, &sp, strat).unwrap();
            for n in &res {
                let row = f.ids.binary_search(&n.id).unwrap();
                assert!(pred.matches(f.values[row]), "strategy {strat:?} leaked id {}", n.id);
            }
        }
    }

    #[test]
    fn strategy_a_work_shrinks_with_selectivity() {
        let f = fixture(1000, "FLAT");
        let query = f.vectors.get(0).to_vec();
        let sp = SearchParams::top_k(5);
        let (_, wide) = f.data.search(&query, RangePredicate::new(0.0, 9999.0), &sp, Strategy::A).unwrap();
        let (_, narrow) =
            f.data.search(&query, RangePredicate::new(0.0, 500.0), &sp, Strategy::A).unwrap();
        assert!(narrow.distance_computations < wide.distance_computations / 5);
    }

    #[test]
    fn planner_picks_a_for_highly_selective_predicates() {
        let f = fixture(1000, "IVF_FLAT");
        let sp = SearchParams { k: 10, nprobe: 4, ..Default::default() };
        // ~0.5% pass → A.
        assert_eq!(f.data.plan(RangePredicate::new(0.0, 50.0), &sp), Strategy::A);
        // Everything passes → a vector-index strategy, not A.
        assert_ne!(f.data.plan(RangePredicate::new(0.0, 10_000.0), &sp), Strategy::A);
    }

    #[test]
    fn strategy_c_retries_until_k_or_exhausted() {
        let f = fixture(300, "FLAT");
        let query = f.vectors.get(1).to_vec();
        // Selective predicate: only ~3% pass; θ·k initial fetch won't cover.
        let pred = RangePredicate::new(0.0, 300.0);
        let sp = SearchParams::top_k(5);
        let (res, _) = f.data.search(&query, pred, &sp, Strategy::C).unwrap();
        let expect = reference(&f, &query, pred, 5);
        let got: Vec<i64> = res.iter().map(|n| n.id).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn empty_predicate_returns_nothing() {
        let f = fixture(100, "FLAT");
        let query = f.vectors.get(0).to_vec();
        let pred = RangePredicate::new(5.0, 1.0); // lo > hi
        let sp = SearchParams::top_k(5);
        for strat in [Strategy::A, Strategy::B, Strategy::C, Strategy::D] {
            let (res, _) = f.data.search(&query, pred, &sp, strat).unwrap();
            assert!(res.is_empty(), "{strat:?}");
        }
    }

    #[test]
    fn partitioned_equals_reference() {
        let f = fixture(600, "FLAT");
        let registry = IndexRegistry::with_builtins();
        let params = BuildParams { nlist: 16, kmeans_iters: 5, ..Default::default() };
        let part = PartitionedDataset::build(
            Metric::L2,
            &f.vectors,
            &f.ids,
            &f.values,
            "price",
            6,
            "FLAT",
            &registry,
            &params,
        )
        .unwrap();
        assert_eq!(part.rho(), 6);
        let query = f.vectors.get(11).to_vec();
        let pred = RangePredicate::new(1500.0, 6500.0);
        let sp = SearchParams { k: 10, nprobe: 16, ..Default::default() };
        let (res, trace) = part.search(&query, pred, &sp).unwrap();
        let got: Vec<i64> = res.iter().map(|n| n.id).collect();
        assert_eq!(got, reference(&f, &query, pred, 10));
        // Half-open interior partitions must be covered (attribute check
        // skipped) and out-of-range partitions pruned.
        assert!(trace.partitions_covered >= 1, "{trace:?}");
        assert!(trace.partitions_scanned < 6, "{trace:?}");
    }

    #[test]
    fn partition_pruning_skips_disjoint_ranges() {
        let f = fixture(500, "FLAT");
        let registry = IndexRegistry::with_builtins();
        let params = BuildParams::default();
        let part = PartitionedDataset::build(
            Metric::L2, &f.vectors, &f.ids, &f.values, "price", 5, "FLAT", &registry, &params,
        )
        .unwrap();
        let query = f.vectors.get(0).to_vec();
        // Range entirely inside the lowest quintile.
        let pred = RangePredicate::new(0.0, 100.0);
        let (_, trace) = part.search(&query, pred, &SearchParams::top_k(3)).unwrap();
        assert_eq!(trace.partitions_scanned, 1);
    }

    #[test]
    fn frequency_tracking() {
        let mut freq = AttributeFrequency::default();
        freq.record("price");
        freq.record("price");
        freq.record("size");
        assert_eq!(freq.hottest(), Some("price"));
        assert_eq!(freq.count("price"), 2);
        assert_eq!(freq.count("missing"), 0);
    }

    #[test]
    fn selectivity_definition_matches_paper() {
        let f = fixture(1000, "FLAT");
        // Full range → selectivity ~0 (everything passes).
        assert!(f.data.selectivity(RangePredicate::new(0.0, 10_000.0)) < 0.01);
        // Empty range → selectivity 1.
        assert!(f.data.selectivity(RangePredicate::new(-2.0, -1.0)) > 0.99);
    }

    #[test]
    fn misaligned_inputs_rejected() {
        let registry = IndexRegistry::with_builtins();
        let r = FilterDataset::build(
            Metric::L2,
            VectorSet::from_flat(2, vec![0.0; 4]),
            vec![1],
            vec![1.0, 2.0],
            "a",
            "FLAT",
            &registry,
            &BuildParams::default(),
        );
        assert!(r.is_err());
    }
}

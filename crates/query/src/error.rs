//! Error type for query processing.

use std::fmt;

/// Errors produced by the query layer.
#[derive(Debug)]
pub enum QueryError {
    /// Bubbled up from the index layer.
    Index(milvus_index::IndexError),

    /// Bubbled up from the storage layer.
    Storage(milvus_storage::StorageError),

    /// Invalid query specification.
    InvalidQuery(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Index(e) => write!(f, "index error: {e}"),
            QueryError::Storage(e) => write!(f, "storage error: {e}"),
            QueryError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Index(e) => Some(e),
            QueryError::Storage(e) => Some(e),
            QueryError::InvalidQuery(_) => None,
        }
    }
}

impl From<milvus_index::IndexError> for QueryError {
    fn from(e: milvus_index::IndexError) -> Self {
        QueryError::Index(e)
    }
}

impl From<milvus_storage::StorageError> for QueryError {
    fn from(e: milvus_storage::StorageError) -> Self {
        QueryError::Storage(e)
    }
}

/// Convenience alias used throughout the query crate.
pub type Result<T> = std::result::Result<T, QueryError>;

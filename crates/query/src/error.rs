//! Error type for query processing.

use thiserror::Error;

/// Errors produced by the query layer.
#[derive(Debug, Error)]
pub enum QueryError {
    /// Bubbled up from the index layer.
    #[error("index error: {0}")]
    Index(#[from] milvus_index::IndexError),

    /// Bubbled up from the storage layer.
    #[error("storage error: {0}")]
    Storage(#[from] milvus_storage::StorageError),

    /// Invalid query specification.
    #[error("invalid query: {0}")]
    InvalidQuery(String),
}

/// Convenience alias used throughout the query crate.
pub type Result<T> = std::result::Result<T, QueryError>;

//! Multi-vector query processing (§4.2, Algorithm 2, Figure 16).
//!
//! Each entity carries `μ` vectors; a query scores entities with a monotonic
//! aggregation `g` (weighted sum here) over per-field similarities `f`.
//! Four algorithms:
//!
//! * **naive** — per-field top-k, union the candidates, re-score: the
//!   widely-used approach the paper shows can reach recall as low as 0.1;
//! * **NRA-N** — Fagin's No-Random-Access algorithm over per-field streams
//!   of fixed depth `N`;
//! * **vector fusion** — for decomposable `f` (inner product; also weighted
//!   L2 via √w scaling, an extension noted in DESIGN.md): concatenate the
//!   entity vectors once at build time and run a *single* top-k search with
//!   the aggregated query vector;
//! * **iterative merging** (Algorithm 2) — fetch per-field top-k′ lists,
//!   run the NRA determination over them, and double k′ until k results are
//!   fully determined or k′ reaches a threshold.

use std::collections::HashMap;

use milvus_index::registry::IndexRegistry;
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{distance, Metric, Neighbor, TopK, VectorIndex, VectorSet};

use crate::error::{QueryError, Result};

/// Outcome of an iterative-merging run (for tests and the Fig 16 bench).
#[derive(Debug, Clone, Copy)]
pub struct ImgTrace {
    /// Number of k′-doubling rounds executed.
    pub rounds: usize,
    /// Final k′ used.
    pub final_k_prime: usize,
    /// Whether NRA fully determined the top-k (vs best-effort fallback).
    pub fully_determined: bool,
}

/// A multi-vector collection with per-field ANN indexes.
pub struct MultiVectorEngine {
    metric: Metric,
    fields: Vec<VectorSet>,
    ids: Vec<i64>,
    /// id → row lookup for candidate re-scoring.
    row_index: HashMap<i64, usize>,
    weights: Vec<f32>,
    indexes: Vec<Box<dyn VectorIndex>>,
    /// Fusion index over concatenated (scaled) vectors, when built.
    fusion: Option<Box<dyn VectorIndex>>,
}

impl MultiVectorEngine {
    /// Build per-field indexes (`index_type`) and, when `with_fusion` and the
    /// metric is decomposable, the fusion index.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        metric: Metric,
        fields: Vec<VectorSet>,
        ids: Vec<i64>,
        weights: Vec<f32>,
        index_type: &str,
        registry: &IndexRegistry,
        params: &BuildParams,
        with_fusion: bool,
    ) -> Result<Self> {
        if fields.is_empty() {
            return Err(QueryError::InvalidQuery("need at least one vector field".into()));
        }
        if fields.len() != weights.len() {
            return Err(QueryError::InvalidQuery("one weight per field required".into()));
        }
        if weights.iter().any(|&w| w < 0.0) {
            return Err(QueryError::InvalidQuery(
                "weights must be non-negative for monotonic aggregation".into(),
            ));
        }
        for f in &fields {
            if f.len() != ids.len() {
                return Err(QueryError::InvalidQuery("field row count != ids".into()));
            }
        }
        let mut build = params.clone();
        build.metric = metric;
        let indexes = fields
            .iter()
            .map(|f| registry.build(index_type, f, &ids, &build))
            .collect::<std::result::Result<Vec<_>, _>>()?;

        let fusion = if with_fusion {
            Some(Self::build_fusion(metric, &fields, &ids, &weights, index_type, registry, &build)?)
        } else {
            None
        };

        let row_index = ids.iter().enumerate().map(|(row, &id)| (id, row)).collect();
        Ok(Self { metric, fields, ids, row_index, weights, indexes, fusion })
    }

    /// Concatenate each entity's vectors (§4.2 "stores for each entity e its
    /// μ vectors as a concatenated vector"), scaling so the single-index
    /// search computes the weighted aggregate exactly:
    /// * inner product: entity unscaled, query scaled by `w_i`;
    /// * L2: both sides scaled by `√w_i` (Σ w_i‖q_i−e_i‖² = ‖q′−e′‖²).
    fn build_fusion(
        metric: Metric,
        fields: &[VectorSet],
        ids: &[i64],
        weights: &[f32],
        index_type: &str,
        registry: &IndexRegistry,
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>> {
        if !matches!(metric, Metric::InnerProduct | Metric::L2) {
            return Err(QueryError::InvalidQuery(format!(
                "vector fusion requires a decomposable similarity; {metric} is not supported"
            )));
        }
        let total_dim: usize = fields.iter().map(VectorSet::dim).sum();
        let mut concat = VectorSet::with_capacity(total_dim, ids.len());
        let mut row_buf = Vec::with_capacity(total_dim);
        for row in 0..ids.len() {
            row_buf.clear();
            for (f, field) in fields.iter().enumerate() {
                let scale = if metric == Metric::L2 { weights[f].sqrt() } else { 1.0 };
                row_buf.extend(field.get(row).iter().map(|&x| x * scale));
            }
            concat.push(&row_buf);
        }
        Ok(registry.build(index_type, &concat, ids, params)?)
    }

    /// Number of vector fields μ.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    fn check_query(&self, query: &[&[f32]]) -> Result<()> {
        if query.len() != self.fields.len() {
            return Err(QueryError::InvalidQuery(format!(
                "query has {} fields, engine has {}",
                query.len(),
                self.fields.len()
            )));
        }
        for (q, f) in query.iter().zip(&self.fields) {
            if q.len() != f.dim() {
                return Err(QueryError::InvalidQuery("query field dimension mismatch".into()));
            }
        }
        Ok(())
    }

    /// Exact aggregated distance of entity at `row`.
    fn aggregate_row(&self, query: &[&[f32]], row: usize) -> f32 {
        self.fields
            .iter()
            .zip(query)
            .zip(&self.weights)
            .map(|((field, q), &w)| w * distance::distance(self.metric, q, field.get(row)))
            .sum()
    }

    #[inline]
    fn row_of(&self, id: i64) -> Option<usize> {
        self.row_index.get(&id).copied()
    }

    /// Exact brute-force top-k (ground truth for Fig 16).
    pub fn exact(&self, query: &[&[f32]], k: usize) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        let mut heap = TopK::new(k.max(1));
        for row in 0..self.len() {
            heap.push(self.ids[row], self.aggregate_row(query, row));
        }
        Ok(heap.into_sorted())
    }

    /// The naive approach: per-field top-k union, re-score candidates.
    pub fn naive(&self, query: &[&[f32]], params: &SearchParams) -> Result<Vec<Neighbor>> {
        self.naive_traced(query, params, &mut milvus_obs::Trace::disabled())
    }

    /// [`Self::naive`] recording one [`milvus_obs::SpanKind::IndexSearch`]
    /// span per field probe and a [`milvus_obs::SpanKind::Rerank`] span for
    /// the candidate re-scoring into a caller-supplied trace.
    pub fn naive_traced(
        &self,
        query: &[&[f32]],
        params: &SearchParams,
        qtrace: &mut milvus_obs::Trace,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        let mut candidates: Vec<i64> = Vec::new();
        for (index, q) in self.indexes.iter().zip(query) {
            let t = qtrace.begin();
            let found = index.search(q, params)?;
            qtrace.record_with(milvus_obs::SpanKind::IndexSearch, t, |sp| {
                sp.rows_scanned = found.len() as u64;
            });
            candidates.extend(found.into_iter().map(|n| n.id));
        }
        candidates.sort_unstable();
        candidates.dedup();
        let t = qtrace.begin();
        let ncands = candidates.len() as u64;
        let mut heap = TopK::new(params.k.max(1));
        for id in candidates {
            if let Some(row) = self.row_of(id) {
                heap.push(id, self.aggregate_row(query, row));
            }
        }
        qtrace.record_with(milvus_obs::SpanKind::Rerank, t, |sp| sp.rows_scanned = ncands);
        Ok(heap.into_sorted())
    }

    /// The standard NRA baseline over fixed-depth streams (the paper's
    /// NRA-50 / NRA-2048 series).
    ///
    /// Faithful to Fagin's algorithm as the paper describes its drawbacks:
    /// entries are consumed one sorted position at a time across the μ
    /// streams, and **every access updates the bounds of every candidate
    /// currently tracked** ("it incurs significant overhead to maintain the
    /// heap since every access in NRA needs to update the scores of the
    /// current objects in the heap", §4.2). Stops when the top-k is
    /// determined or the streams are exhausted; returns best-effort results
    /// when determination fails (the source of NRA's low recall).
    pub fn nra_fixed(
        &self,
        query: &[&[f32]],
        params: &SearchParams,
        depth: usize,
    ) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        let k = params.k.max(1);
        let lists = self.fetch_lists(query, params, depth)?;
        let mu = lists.len();
        let mut seen: HashMap<i64, Vec<Option<f32>>> = HashMap::new();
        let mut last = vec![0.0f32; mu];
        let max_depth = lists.iter().map(Vec::len).max().unwrap_or(0);

        for pos in 0..max_depth {
            // Sorted access: one entry per stream per step.
            for (f, list) in lists.iter().enumerate() {
                if let Some(n) = list.get(pos) {
                    seen.entry(n.id).or_insert_with(|| vec![None; mu])[f] = Some(n.dist);
                    last[f] = n.dist;
                }
            }
            // Per-access bookkeeping: recompute bounds for EVERY candidate
            // and test the stopping condition (the expensive part).
            let mut exact: Vec<Neighbor> = Vec::new();
            let mut min_partial = f32::INFINITY;
            for (&id, fields) in &seen {
                if fields.iter().all(Option::is_some) {
                    let score: f32 = fields
                        .iter()
                        .zip(&self.weights)
                        .map(|(d, &w)| w * d.expect("checked"))
                        .sum();
                    exact.push(Neighbor::new(id, score));
                } else {
                    let bound: f32 = fields
                        .iter()
                        .zip(&self.weights)
                        .zip(&last)
                        .map(|((d, &w), &l)| w * d.unwrap_or(l))
                        .sum();
                    min_partial = min_partial.min(bound);
                }
            }
            if exact.len() >= k {
                exact.sort_unstable();
                let t_unseen: f32 =
                    self.weights.iter().zip(&last).map(|(&w, &l)| w * l).sum();
                if exact[k - 1].dist <= min_partial.min(t_unseen) {
                    exact.truncate(k);
                    return Ok(exact);
                }
            }
        }

        // Streams exhausted without determination: best-effort re-scoring of
        // the union (the paper's NRA-50 recall ≈ 0.1 comes from here).
        let mut heap = TopK::new(k);
        for &id in seen.keys() {
            if let Some(row) = self.row_of(id) {
                heap.push(id, self.aggregate_row(query, row));
            }
        }
        Ok(heap.into_sorted())
    }

    /// Iterative merging (Algorithm 2): adaptive k′ doubling over NRA.
    pub fn iterative_merging(
        &self,
        query: &[&[f32]],
        params: &SearchParams,
        k_prime_threshold: usize,
    ) -> Result<(Vec<Neighbor>, ImgTrace)> {
        self.check_query(query)?;
        let mut k_prime = params.k.max(1);
        let mut rounds = 0;
        loop {
            rounds += 1;
            let lists = self.fetch_lists(query, params, k_prime)?;
            let (results, determined) = self.nra_determine(query, &lists, params.k);
            let exhausted = k_prime >= self.len();
            if determined || k_prime * 2 > k_prime_threshold || exhausted {
                let trace =
                    ImgTrace { rounds, final_k_prime: k_prime, fully_determined: determined };
                return Ok((results, trace));
            }
            k_prime *= 2;
        }
    }

    /// Vector fusion: one search over the concatenated index (§4.2).
    pub fn vector_fusion(&self, query: &[&[f32]], params: &SearchParams) -> Result<Vec<Neighbor>> {
        self.check_query(query)?;
        let Some(fusion) = &self.fusion else {
            return Err(QueryError::InvalidQuery(
                "engine built without a fusion index".into(),
            ));
        };
        // Aggregated query vector: w_i·q_i for IP, √w_i·q_i for L2.
        let total_dim: usize = self.fields.iter().map(VectorSet::dim).sum();
        let mut agg = Vec::with_capacity(total_dim);
        for (f, q) in query.iter().enumerate() {
            let scale =
                if self.metric == Metric::L2 { self.weights[f].sqrt() } else { self.weights[f] };
            agg.extend(q.iter().map(|&x| x * scale));
        }
        Ok(fusion.search(&agg, params)?)
    }

    /// Top-k′ per field via the per-field ANN indexes (the
    /// `VectorQuery(q.v_i, D_i, k')` of Algorithm 2).
    fn fetch_lists(
        &self,
        query: &[&[f32]],
        params: &SearchParams,
        k_prime: usize,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let mut sp = params.clone();
        sp.k = k_prime.min(self.len()).max(1);
        // Widen the beam with k′ so deep fetches stay accurate.
        sp.ef = sp.ef.max(sp.k);
        self.indexes
            .iter()
            .zip(query)
            .map(|(index, q)| Ok(index.search(q, &sp)?))
            .collect()
    }

    /// The NRA determination step (line 5 of Algorithm 2): given per-field
    /// sorted lists, compute the top-k and whether it is fully determined.
    ///
    /// An entity seen in every list has an exact score. The threshold
    /// `T = Σ w_i · last_i` bounds any entity not seen at all, and a
    /// partially-seen entity is bounded below by its partial sum plus
    /// `w_i · last_i` for unseen fields. Determination succeeds when k
    /// entities have exact scores no greater than every other bound.
    fn nra_determine(
        &self,
        query: &[&[f32]],
        lists: &[Vec<Neighbor>],
        k: usize,
    ) -> (Vec<Neighbor>, bool) {
        let mu = lists.len();
        let mut seen: HashMap<i64, Vec<Option<f32>>> = HashMap::new();
        let mut last = vec![f32::NEG_INFINITY; mu];
        for (f, list) in lists.iter().enumerate() {
            for n in list {
                seen.entry(n.id).or_insert_with(|| vec![None; mu])[f] = Some(n.dist);
            }
            if let Some(tail) = list.last() {
                last[f] = tail.dist;
            }
        }

        // Exact scores for fully-seen entities; lower bounds for the rest.
        let mut exact: Vec<Neighbor> = Vec::new();
        let mut partial_bounds: Vec<f32> = Vec::new();
        for (&id, fields) in &seen {
            if fields.iter().all(Option::is_some) {
                let score: f32 = fields
                    .iter()
                    .zip(&self.weights)
                    .map(|(d, &w)| w * d.expect("checked"))
                    .sum();
                exact.push(Neighbor::new(id, score));
            } else {
                let bound: f32 = fields
                    .iter()
                    .zip(&self.weights)
                    .zip(&last)
                    .map(|((d, &w), &l)| w * d.unwrap_or(l))
                    .sum();
                partial_bounds.push(bound);
            }
        }
        exact.sort_unstable();

        // Threshold for entirely-unseen entities.
        let t_unseen: f32 = self.weights.iter().zip(&last).map(|(&w, &l)| w * l).sum();
        let min_other = partial_bounds
            .iter()
            .copied()
            .fold(t_unseen, f32::min);

        let determined = exact.len() >= k && exact[k - 1].dist <= min_other;
        if determined {
            exact.truncate(k);
            return (exact, true);
        }

        // Best effort: re-score the union exactly (bounded work: the union
        // is at most μ·k′ entities).
        let mut heap = TopK::new(k.max(1));
        for &id in seen.keys() {
            if let Some(row) = self.row_of(id) {
                heap.push(id, self.aggregate_row(query, row));
            }
        }
        (heap.into_sorted(), false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_datagen as datagen;

    fn engine(n: usize, metric: Metric, index_type: &str, fusion: bool) -> MultiVectorEngine {
        let (text, image) = datagen::recipe_like(n, 12, 8, 5);
        let ids: Vec<i64> = (0..n as i64).collect();
        let registry = IndexRegistry::with_builtins();
        let params = BuildParams { nlist: 16, kmeans_iters: 5, ..Default::default() };
        MultiVectorEngine::build(
            metric,
            vec![text, image],
            ids,
            vec![0.6, 0.4],
            index_type,
            &registry,
            &params,
            fusion,
        )
        .unwrap()
    }

    fn query_of(e: &MultiVectorEngine, row: usize) -> (Vec<f32>, Vec<f32>) {
        (e.fields[0].get(row).to_vec(), e.fields[1].get(row).to_vec())
    }

    fn recall_of(expect: &[Neighbor], got: &[Neighbor]) -> f32 {
        let tset: std::collections::HashSet<i64> = expect.iter().map(|n| n.id).collect();
        got.iter().filter(|n| tset.contains(&n.id)).count() as f32 / expect.len() as f32
    }

    #[test]
    fn exact_self_query_returns_self() {
        let e = engine(200, Metric::L2, "FLAT", false);
        let (q0, q1) = query_of(&e, 17);
        let res = e.exact(&[&q0, &q1], 1).unwrap();
        assert_eq!(res[0].id, 17);
        assert!(res[0].dist.abs() < 1e-5);
    }

    #[test]
    fn fusion_matches_exact_for_inner_product() {
        let e = engine(300, Metric::InnerProduct, "FLAT", true);
        let (q0, q1) = query_of(&e, 3);
        let expect = e.exact(&[&q0, &q1], 10).unwrap();
        let got = e.vector_fusion(&[&q0, &q1], &SearchParams::top_k(10)).unwrap();
        assert_eq!(
            expect.iter().map(|n| n.id).collect::<Vec<_>>(),
            got.iter().map(|n| n.id).collect::<Vec<_>>()
        );
        // Scores agree too (decomposability).
        for (a, b) in expect.iter().zip(&got) {
            assert!((a.dist - b.dist).abs() < 1e-3);
        }
    }

    #[test]
    fn fusion_matches_exact_for_weighted_l2() {
        let e = engine(300, Metric::L2, "FLAT", true);
        let (q0, q1) = query_of(&e, 8);
        let expect = e.exact(&[&q0, &q1], 10).unwrap();
        let got = e.vector_fusion(&[&q0, &q1], &SearchParams::top_k(10)).unwrap();
        assert_eq!(
            expect.iter().map(|n| n.id).collect::<Vec<_>>(),
            got.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fusion_without_index_errors() {
        let e = engine(100, Metric::L2, "FLAT", false);
        let (q0, q1) = query_of(&e, 0);
        assert!(e.vector_fusion(&[&q0, &q1], &SearchParams::top_k(5)).is_err());
    }

    #[test]
    fn iterative_merging_beats_naive_recall() {
        let e = engine(500, Metric::L2, "FLAT", false);
        let mut naive_recall = 0.0;
        let mut img_recall = 0.0;
        for row in [5, 55, 155, 255, 355] {
            let (q0, q1) = query_of(&e, row);
            let sp = SearchParams::top_k(20);
            let expect = e.exact(&[&q0, &q1], 20).unwrap();
            let naive = e.naive(&[&q0, &q1], &sp).unwrap();
            let (img, _) = e.iterative_merging(&[&q0, &q1], &sp, 4096).unwrap();
            naive_recall += recall_of(&expect, &naive);
            img_recall += recall_of(&expect, &img);
        }
        assert!(img_recall >= naive_recall, "IMG {img_recall} < naive {naive_recall}");
        assert!(img_recall / 5.0 >= 0.9, "IMG recall too low: {}", img_recall / 5.0);
    }

    #[test]
    fn img_with_exact_lists_fully_determines() {
        let e = engine(200, Metric::L2, "FLAT", false);
        let (q0, q1) = query_of(&e, 42);
        let sp = SearchParams::top_k(5);
        let (res, trace) = e.iterative_merging(&[&q0, &q1], &sp, 16384).unwrap();
        assert!(trace.fully_determined, "{trace:?}");
        let expect = e.exact(&[&q0, &q1], 5).unwrap();
        assert_eq!(
            res.iter().map(|n| n.id).collect::<Vec<_>>(),
            expect.iter().map(|n| n.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn img_doubles_k_prime_when_needed() {
        let e = engine(400, Metric::L2, "FLAT", false);
        let (q0, q1) = query_of(&e, 9);
        let sp = SearchParams::top_k(10);
        let (_, trace) = e.iterative_merging(&[&q0, &q1], &sp, 16384).unwrap();
        assert!(trace.final_k_prime >= 10);
        assert!(trace.rounds >= 1);
    }

    #[test]
    fn nra_fixed_depth_improves_with_depth() {
        let e = engine(500, Metric::L2, "FLAT", false);
        let mut shallow = 0.0;
        let mut deep = 0.0;
        for row in [1, 101, 201] {
            let (q0, q1) = query_of(&e, row);
            let sp = SearchParams::top_k(20);
            let expect = e.exact(&[&q0, &q1], 20).unwrap();
            shallow += recall_of(&expect, &e.nra_fixed(&[&q0, &q1], &sp, 20).unwrap());
            deep += recall_of(&expect, &e.nra_fixed(&[&q0, &q1], &sp, 200).unwrap());
        }
        assert!(deep >= shallow, "deep {deep} < shallow {shallow}");
    }

    #[test]
    fn invalid_queries_rejected() {
        let e = engine(50, Metric::L2, "FLAT", false);
        let (q0, _) = query_of(&e, 0);
        // Wrong field count.
        assert!(e.exact(&[&q0], 5).is_err());
        // Wrong dimension.
        let bad = vec![0.0f32; 3];
        assert!(e.exact(&[&bad, &bad], 5).is_err());
    }

    #[test]
    fn negative_weights_rejected() {
        let (text, image) = datagen::recipe_like(50, 4, 4, 1);
        let registry = IndexRegistry::with_builtins();
        let r = MultiVectorEngine::build(
            Metric::L2,
            vec![text, image],
            (0..50).collect(),
            vec![0.5, -0.5],
            "FLAT",
            &registry,
            &BuildParams::default(),
            false,
        );
        assert!(r.is_err());
    }

    #[test]
    fn cosine_fusion_rejected() {
        let (text, image) = datagen::recipe_like(50, 4, 4, 2);
        let registry = IndexRegistry::with_builtins();
        let r = MultiVectorEngine::build(
            Metric::Cosine,
            vec![text, image],
            (0..50).collect(),
            vec![0.5, 0.5],
            "FLAT",
            &registry,
            &BuildParams::default(),
            true,
        );
        assert!(r.is_err());
    }
}

//! Advanced query processing (paper §4).
//!
//! * [`filtering`] — attribute filtering: the four strategies studied in
//!   AnalyticDB-V (A: attribute-first full scan, B: attribute-first vector
//!   search, C: vector-first post-filter, D: cost-based) plus Milvus's
//!   partition-based strategy E (§4.1, Figures 4/14/15).
//! * [`multivector`] — multi-vector queries: the naive per-field approach,
//!   Fagin's NRA, **vector fusion** for decomposable similarity functions,
//!   and **iterative merging** (Algorithm 2) with adaptive `k'` doubling
//!   (§4.2, Figure 16).

pub mod error;
pub mod filtering;
pub mod multivector;

pub use error::{QueryError, Result};
pub use filtering::{FilterDataset, PartitionedDataset, RangePredicate, Strategy};
pub use multivector::MultiVectorEngine;

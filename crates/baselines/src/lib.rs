//! Baseline comparator systems for the §7 evaluation.
//!
//! The paper compares Milvus against Jingdong Vearch, Microsoft SPTAG and
//! three anonymized commercial systems. None of those can run here, so this
//! crate implements **behavioural stand-ins** that embody exactly the design
//! deficiency the paper attributes to each competitor (§1, §7.2):
//!
//! * [`FaissLikeEngine`] — "the original implementation in Facebook Faiss":
//!   the same IVF structures, but thread-per-query scheduling that streams
//!   the entire working set through the caches once *per query* (§3.2.1) —
//!   the ablation baseline for the cache-aware engine;
//! * [`SptagLikeEngine`] — a tree-based index (our Annoy substrate with a
//!   large forest): decent speed, a recall ceiling, and a large memory
//!   footprint (the paper measured 14× Milvus), no dynamic data;
//! * [`VearchLikeEngine`] — a segment-per-shard vector system that never
//!   merges its many small segments and processes queries one at a time;
//!   attribute filtering only via fixed post-filtering;
//! * [`RelationalLikeEngine`] — the "one-size-fits-all" analog of Systems
//!   A/B/C (AnalyticDB-V / PASE style): a vector column bolted onto a row
//!   store — single-threaded, row-at-a-time evaluation, brute-force vector
//!   scan (the paper notes System B effectively ran brute force), attribute
//!   filtering by full-scan post-filter.
//!
//! Each engine reports the competitor's Table 1 row via
//! [`milvus_core::Capabilities`].

use milvus_core::Capabilities;
use milvus_index::ivf::{IvfIndex, IvfVariant};
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{
    annoy::AnnoyIndex, distance, hnsw::HnswIndex, IndexError, Metric, Neighbor, TopK,
    VectorIndex, VectorSet,
};

/// Result alias for baseline constructors.
pub type Result<T> = std::result::Result<T, IndexError>;

/// Which index family a Faiss-like engine wraps (IVF for Fig 8, HNSW for
/// Fig 9).
pub enum FaissIndexKind {
    /// A quantization-based IVF index.
    Ivf(IvfVariant),
    /// An HNSW graph.
    Hnsw,
}

/// The Faiss-style engine: same indexes, thread-per-query batch execution.
pub struct FaissLikeEngine {
    ivf: Option<IvfIndex>,
    hnsw: Option<HnswIndex>,
    /// Worker threads (OpenMP analog).
    pub threads: usize,
}

impl FaissLikeEngine {
    /// Build over static data (libraries assume data is static, §1).
    pub fn build(
        kind: FaissIndexKind,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Self> {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        match kind {
            FaissIndexKind::Ivf(variant) => Ok(Self {
                ivf: Some(IvfIndex::build(variant, vectors, ids, params)?),
                hnsw: None,
                threads,
            }),
            FaissIndexKind::Hnsw => Ok(Self {
                ivf: None,
                hnsw: Some(HnswIndex::build(vectors, ids, params)?),
                threads,
            }),
        }
    }

    fn search_one(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>> {
        if let Some(ivf) = &self.ivf {
            ivf.search(query, params)
        } else {
            self.hnsw.as_ref().expect("one index present").search(query, params)
        }
    }

    /// Thread-per-query batch execution: "each thread is assigned to work on
    /// a single query at a time" (§3.2.1). No query blocking, no data reuse
    /// across queries.
    pub fn search_batch(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let m = queries.len();
        if m == 0 {
            return Ok(Vec::new());
        }
        let threads = self.threads.max(1).min(m);
        let chunk = m.div_ceil(threads);
        let mut results: Vec<Result<Vec<Neighbor>>> = Vec::with_capacity(m);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(m);
                    scope.spawn(move || {
                        (lo..hi)
                            .map(|qi| self.search_one(queries.get(qi), params))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                results.extend(h.join().expect("faiss-like worker"));
            }
        });
        results.into_iter().collect()
    }

    /// Table 1 row for Faiss.
    pub fn capabilities() -> Capabilities {
        Capabilities {
            system: "Faiss-like (library)",
            billion_scale: true,
            dynamic_data: false,
            gpu: true,
            attribute_filtering: false,
            multi_vector_query: false,
            distributed: false,
        }
    }
}

/// The SPTAG-style tree engine.
pub struct SptagLikeEngine {
    forest: AnnoyIndex,
    /// Extra per-tree copies of the raw vectors (SPTAG's measured footprint
    /// was 14× Milvus's; tree indexes replicate structure per tree).
    replicated_bytes: usize,
}

impl SptagLikeEngine {
    /// Build a large forest over static data.
    pub fn build(vectors: &VectorSet, ids: &[i64], params: &BuildParams) -> Result<Self> {
        let mut p = params.clone();
        p.annoy_n_trees = p.annoy_n_trees.max(32);
        let forest = AnnoyIndex::build(vectors, ids, &p)?;
        let replicated_bytes = vectors.memory_bytes() * p.annoy_n_trees;
        Ok(Self { forest, replicated_bytes })
    }

    /// Single query.
    pub fn search(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>> {
        self.forest.search(query, params)
    }

    /// Thread-per-query batch.
    pub fn search_batch(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        (0..queries.len()).map(|i| self.search(queries.get(i), params)).collect()
    }

    /// Reported memory footprint including tree replication.
    pub fn memory_bytes(&self) -> usize {
        self.forest.memory_bytes() + self.replicated_bytes
    }

    /// Table 1 row for SPTAG.
    pub fn capabilities() -> Capabilities {
        Capabilities {
            system: "SPTAG-like (tree library)",
            billion_scale: true,
            dynamic_data: false,
            gpu: false,
            attribute_filtering: false,
            multi_vector_query: false,
            distributed: false,
        }
    }
}

/// The Vearch-style engine: many small never-merged segments, one query at a
/// time, post-filter-only attribute support.
pub struct VearchLikeEngine {
    metric: Metric,
    segments: Vec<IvfIndex>,
    /// Per-segment id lists (for the attribute post-filter).
    values: Vec<f64>,
    ids: Vec<i64>,
}

impl VearchLikeEngine {
    /// Build with `segment_rows`-sized segments that are never merged (the
    /// "not efficient on large-scale data" deficiency: per-query cost grows
    /// with segment count).
    pub fn build(
        vectors: &VectorSet,
        ids: &[i64],
        values: &[f64],
        segment_rows: usize,
        params: &BuildParams,
    ) -> Result<Self> {
        let segment_rows = segment_rows.max(1);
        let mut segments = Vec::new();
        let mut start = 0;
        while start < ids.len() {
            let end = (start + segment_rows).min(ids.len());
            let rows: Vec<usize> = (start..end).collect();
            let seg_vec = vectors.gather(&rows);
            let seg_ids = &ids[start..end];
            segments.push(IvfIndex::build(IvfVariant::Flat, &seg_vec, seg_ids, params)?);
            start = end;
        }
        Ok(Self { metric: params.metric, segments, values: values.to_vec(), ids: ids.to_vec() })
    }

    /// One query over every small segment, merged.
    pub fn search(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>> {
        let mut lists = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            lists.push(seg.search(query, params)?);
        }
        Ok(milvus_index::topk::merge_sorted(&lists, params.k))
    }

    /// Sequential batch (no intra-query parallelism).
    pub fn search_batch(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        (0..queries.len()).map(|i| self.search(queries.get(i), params)).collect()
    }

    /// Attribute filtering by fixed over-fetch post-filter only (no cost
    /// model, no partitioning).
    pub fn filtered_search(
        &self,
        query: &[f32],
        lo: f64,
        hi: f64,
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>> {
        let mut sp = params.clone();
        let n = self.ids.len();
        loop {
            sp.k = (sp.k * 4).min(n.max(1));
            let cands = self.search(query, &sp)?;
            let kept: Vec<Neighbor> = cands
                .into_iter()
                .filter(|c| {
                    self.ids
                        .binary_search(&c.id)
                        .ok()
                        .is_some_and(|row| self.values[row] >= lo && self.values[row] <= hi)
                })
                .take(params.k)
                .collect();
            if kept.len() >= params.k || sp.k >= n {
                return Ok(kept);
            }
        }
    }

    /// Table 1 row for Vearch.
    pub fn capabilities() -> Capabilities {
        Capabilities {
            system: "Vearch-like",
            billion_scale: false,
            dynamic_data: true,
            gpu: true,
            attribute_filtering: true,
            multi_vector_query: false,
            distributed: true,
        }
    }

    /// Metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }
}

/// The relational analog (Systems A/B/C): single-threaded row-at-a-time
/// brute force with a vector column.
pub struct RelationalLikeEngine {
    metric: Metric,
    /// Row store: each row is an individually boxed (id, vector, attr) tuple
    /// — the row-at-a-time layout a generic table gives you, as opposed to
    /// the columnar layout of §2.4. The boxing is deliberate: it models the
    /// pointer chase a tuple fetch costs.
    #[allow(clippy::vec_box)]
    rows: Vec<Box<(i64, Vec<f32>, f64)>>,
}

impl RelationalLikeEngine {
    /// Load the "table".
    pub fn build(metric: Metric, vectors: &VectorSet, ids: &[i64], values: &[f64]) -> Self {
        let rows = ids
            .iter()
            .zip(vectors.iter())
            .zip(values)
            .map(|((&id, v), &a)| Box::new((id, v.to_vec(), a)))
            .collect();
        Self { metric, rows }
    }

    /// Row-at-a-time distance with unvectorized kernels — generic expression
    /// evaluation in a row store, without the "fine-tuned optimizations for
    /// vectors" the paper says legacy engines miss (§1).
    fn row_distance(&self, query: &[f32], v: &[f32]) -> f32 {
        use milvus_index::simd::SimdLevel;
        match self.metric {
            Metric::L2 => distance::l2_sq_with_level(query, v, SimdLevel::Scalar),
            Metric::InnerProduct => -distance::ip_with_level(query, v, SimdLevel::Scalar),
            m => distance::distance(m, query, v),
        }
    }

    /// Single-threaded brute-force top-k (System B "used brute-force
    /// search", §7.2 footnote 11).
    pub fn search(&self, query: &[f32], params: &SearchParams) -> Vec<Neighbor> {
        let mut heap = TopK::new(params.k.max(1));
        for row in &self.rows {
            heap.push(row.0, self.row_distance(query, &row.1));
        }
        heap.into_sorted()
    }

    /// Sequential batch.
    pub fn search_batch(&self, queries: &VectorSet, params: &SearchParams) -> Vec<Vec<Neighbor>> {
        (0..queries.len()).map(|i| self.search(queries.get(i), params)).collect()
    }

    /// Attribute filtering: full scan evaluating the predicate row by row.
    pub fn filtered_search(
        &self,
        query: &[f32],
        lo: f64,
        hi: f64,
        params: &SearchParams,
    ) -> Vec<Neighbor> {
        let mut heap = TopK::new(params.k.max(1));
        for row in &self.rows {
            if row.2 >= lo && row.2 <= hi {
                heap.push(row.0, self.row_distance(query, &row.1));
            }
        }
        heap.into_sorted()
    }

    /// Table 1 row for the relational systems (AnalyticDB-V flavor).
    pub fn capabilities() -> Capabilities {
        Capabilities {
            system: "Relational-like (A/B/C)",
            billion_scale: true,
            dynamic_data: true,
            gpu: false,
            attribute_filtering: true,
            multi_vector_query: false,
            distributed: true,
        }
    }
}

/// "System C" analog: a relational engine that *did* add an IVF vector index
/// (PASE/AnalyticDB-V style) but evaluates distances row-at-a-time with
/// generic unvectorized kernels and processes queries one at a time.
pub struct ScalarIvfEngine {
    metric: Metric,
    ivf: IvfIndex,
    /// Row-store tuple heap: vectors live behind per-row pointers rather
    /// than in the contiguous columnar layout of §2.4, so every candidate
    /// costs a hash probe + pointer chase, as in a generic table engine.
    row_heap: std::collections::HashMap<i64, Box<[f32]>>,
}

impl ScalarIvfEngine {
    /// Build the IVF structure (reusing the coarse quantizer substrate).
    pub fn build(vectors: &VectorSet, ids: &[i64], params: &BuildParams) -> Result<Self> {
        if params.metric.is_binary() || params.metric == Metric::Cosine {
            return Err(IndexError::UnsupportedMetric {
                metric: params.metric.name(),
                index: "ScalarIvf",
            });
        }
        let row_heap = ids
            .iter()
            .zip(vectors.iter())
            .map(|(&id, v)| (id, v.to_vec().into_boxed_slice()))
            .collect();
        Ok(Self {
            metric: params.metric,
            ivf: IvfIndex::build(IvfVariant::Flat, vectors, ids, params)?,
            row_heap,
        })
    }

    /// Single query: IVF probing, then row-at-a-time tuple fetch + scalar
    /// distance per candidate.
    pub fn search(&self, query: &[f32], params: &SearchParams) -> Vec<Neighbor> {
        use milvus_index::simd::SimdLevel;
        let probes = self.ivf.probe_buckets(query, params.nprobe);
        let mut heap = TopK::new(params.k.max(1));
        for b in probes {
            for &id in self.ivf.bucket_ids(b) {
                let v = &self.row_heap[&id];
                let d = match self.metric {
                    Metric::L2 => distance::l2_sq_with_level(query, v, SimdLevel::Scalar),
                    Metric::InnerProduct => {
                        -distance::ip_with_level(query, v, SimdLevel::Scalar)
                    }
                    m => distance::distance(m, query, v),
                };
                heap.push(id, d);
            }
        }
        heap.into_sorted()
    }

    /// Sequential batch.
    pub fn search_batch(&self, queries: &VectorSet, params: &SearchParams) -> Vec<Vec<Neighbor>> {
        (0..queries.len()).map(|i| self.search(queries.get(i), params)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(n: usize) -> (VectorSet, Vec<i64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(1);
        let mut vs = VectorSet::new(8);
        for i in 0..n {
            let c = (i % 8) as f32;
            let v: Vec<f32> = (0..8).map(|_| c + rng.gen_range(-0.2f32..0.2)).collect();
            vs.push(&v);
        }
        let ids: Vec<i64> = (0..n as i64).collect();
        let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
        (vs, ids, vals)
    }

    fn params() -> BuildParams {
        BuildParams { nlist: 16, kmeans_iters: 5, ..Default::default() }
    }

    #[test]
    fn faiss_like_ivf_batch_matches_single() {
        let (vs, ids, _) = data(300);
        let engine =
            FaissLikeEngine::build(FaissIndexKind::Ivf(IvfVariant::Flat), &vs, &ids, &params())
                .unwrap();
        let queries = vs.gather(&[0, 10, 20]);
        let sp = SearchParams { k: 5, nprobe: 16, ..Default::default() };
        let batch = engine.search_batch(&queries, &sp).unwrap();
        assert_eq!(batch.len(), 3);
        for (qi, res) in batch.iter().enumerate() {
            let single = engine.search_one(queries.get(qi), &sp).unwrap();
            assert_eq!(res, &single);
        }
    }

    #[test]
    fn faiss_like_hnsw_works() {
        let (vs, ids, _) = data(300);
        let engine = FaissLikeEngine::build(FaissIndexKind::Hnsw, &vs, &ids, &params()).unwrap();
        let sp = SearchParams { k: 3, ef: 64, ..Default::default() };
        let res = engine.search_batch(&vs.gather(&[5]), &sp).unwrap();
        assert_eq!(res[0][0].id, 5);
    }

    #[test]
    fn sptag_like_memory_larger_than_data() {
        let (vs, ids, _) = data(200);
        let engine = SptagLikeEngine::build(&vs, &ids, &params()).unwrap();
        assert!(engine.memory_bytes() > vs.memory_bytes() * 10);
        let sp = SearchParams { k: 3, search_nodes: 500, ..Default::default() };
        let res = engine.search(vs.get(9), &sp).unwrap();
        assert_eq!(res[0].id, 9);
    }

    #[test]
    fn vearch_like_segments_and_filter() {
        let (vs, ids, vals) = data(240);
        let engine = VearchLikeEngine::build(&vs, &ids, &vals, 50, &params()).unwrap();
        assert_eq!(engine.segments.len(), 5);
        let sp = SearchParams { k: 5, nprobe: 16, ..Default::default() };
        let res = engine.search(vs.get(100), &sp).unwrap();
        assert_eq!(res[0].id, 100);
        // Filter keeps only ids with value in [50, 99].
        let filtered = engine.filtered_search(vs.get(60), 50.0, 99.0, &sp).unwrap();
        assert!(!filtered.is_empty());
        assert!(filtered.iter().all(|n| (50..=99).contains(&n.id)));
    }

    #[test]
    fn relational_like_exact_but_slow_shape() {
        let (vs, ids, vals) = data(150);
        let engine = RelationalLikeEngine::build(Metric::L2, &vs, &ids, &vals);
        let res = engine.search(vs.get(42), &SearchParams::top_k(1));
        assert_eq!(res[0].id, 42);
        let filtered = engine.filtered_search(vs.get(42), 100.0, 149.0, &SearchParams::top_k(3));
        assert!(filtered.iter().all(|n| n.id >= 100));
    }

    #[test]
    fn scalar_ivf_matches_ivf_results() {
        let (vs, ids, _) = data(300);
        let sys_c = ScalarIvfEngine::build(&vs, &ids, &params()).unwrap();
        let sp = SearchParams { k: 5, nprobe: 16, ..Default::default() };
        let res = sys_c.search(vs.get(33), &sp);
        assert_eq!(res[0].id, 33);
    }

    #[test]
    fn capability_rows_match_table1() {
        // Faiss: no dynamic data, no filtering, no distribution (Table 1).
        let f = FaissLikeEngine::capabilities();
        assert!(f.billion_scale && f.gpu && !f.dynamic_data && !f.attribute_filtering);
        // SPTAG: billion-scale only.
        let s = SptagLikeEngine::capabilities();
        assert!(s.billion_scale && !s.gpu && !s.distributed);
        // Vearch: dynamic + GPU + filtering + distributed, not billion-scale.
        let v = VearchLikeEngine::capabilities();
        assert!(v.dynamic_data && v.gpu && v.attribute_filtering && !v.billion_scale);
        // Relational: no GPU, no multi-vector.
        let r = RelationalLikeEngine::capabilities();
        assert!(r.dynamic_data && !r.gpu && !r.multi_vector_query);
        // Milvus: everything.
        let m = Capabilities::milvus();
        assert!(m.multi_vector_query);
    }
}

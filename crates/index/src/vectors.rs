//! [`VectorSet`]: a dense, contiguous collection of equal-dimension `f32`
//! vectors — the in-memory vector-column layout of §2.4 ("Milvus stores all
//! the vectors continuously without explicitly storing the row IDs", sorted
//! by row ID so row `i`'s vector is at offset `i * dim`).


/// A row-major matrix of `f32` vectors, all of dimension `dim`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VectorSet {
    dim: usize,
    data: Vec<f32>,
}

serde::impl_serde_struct!(VectorSet { dim, data });

impl VectorSet {
    /// Create an empty set of `dim`-dimensional vectors.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self { dim, data: Vec::new() }
    }

    /// Create with room for `n` vectors.
    pub fn with_capacity(dim: usize, n: usize) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        Self { dim, data: Vec::with_capacity(dim * n) }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of `dim`.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        assert!(dim > 0, "vector dimension must be positive");
        assert_eq!(data.len() % dim, 0, "flat buffer not a multiple of dim");
        Self { dim, data }
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True when no vectors are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow vector `i` (row-ID addressing, §2.4).
    #[inline]
    pub fn get(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutably borrow vector `i`.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Append one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn push(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "pushed vector has wrong dimension");
        self.data.extend_from_slice(v);
    }

    /// Append every vector of `other`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn extend_from(&mut self, other: &VectorSet) {
        assert_eq!(other.dim, self.dim, "dimension mismatch");
        self.data.extend_from_slice(&other.data);
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Iterate over vectors in row order.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Copy the rows at `indices` into a new set (used by IVF bucket builds
    /// and segment merges).
    pub fn gather(&self, indices: &[usize]) -> VectorSet {
        let mut out = VectorSet::with_capacity(self.dim, indices.len());
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }

    /// Approximate heap footprint in bytes (used by the bufferpool and the
    /// GPU memory model).
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

impl<'a> IntoIterator for &'a VectorSet {
    type Item = &'a [f32];
    type IntoIter = std::slice::ChunksExact<'a, f32>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.chunks_exact(self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut vs = VectorSet::new(3);
        vs.push(&[1.0, 2.0, 3.0]);
        vs.push(&[4.0, 5.0, 6.0]);
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.get(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn push_wrong_dim_panics() {
        let mut vs = VectorSet::new(3);
        vs.push(&[1.0]);
    }

    #[test]
    fn from_flat_and_iter() {
        let vs = VectorSet::from_flat(2, vec![1.0, 2.0, 3.0, 4.0]);
        let rows: Vec<_> = vs.iter().collect();
        assert_eq!(rows, vec![&[1.0, 2.0][..], &[3.0, 4.0][..]]);
    }

    #[test]
    fn gather_selects_rows() {
        let vs = VectorSet::from_flat(1, vec![10.0, 20.0, 30.0]);
        let g = vs.gather(&[2, 0]);
        assert_eq!(g.as_flat(), &[30.0, 10.0]);
    }

    #[test]
    fn memory_accounting() {
        let vs = VectorSet::from_flat(4, vec![0.0; 40]);
        assert_eq!(vs.memory_bytes(), 160);
    }
}

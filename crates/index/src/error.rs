//! Error type shared by all index operations.

use std::fmt;

/// Errors produced by index construction and search.
#[derive(Debug)]
pub enum IndexError {
    /// A vector had a different dimensionality than the index expects.
    DimensionMismatch { expected: usize, got: usize },

    /// The operation needs a trained index (e.g. IVF before add/search).
    NotTrained(&'static str),

    /// Not enough training points for the requested structure.
    InsufficientTrainingData { need: usize, got: usize },

    /// A parameter was outside its valid range.
    InvalidParameter { name: &'static str, reason: String },

    /// The metric is not supported by this index type.
    UnsupportedMetric { metric: &'static str, index: &'static str },

    /// No index with the given name is registered in the index registry.
    UnknownIndexType(String),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: index expects {expected}, got {got}")
            }
            IndexError::NotTrained(what) => write!(f, "index is not trained: {what}"),
            IndexError::InsufficientTrainingData { need, got } => {
                write!(f, "insufficient training data: need at least {need}, got {got}")
            }
            IndexError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            IndexError::UnsupportedMetric { metric, index } => {
                write!(f, "metric {metric} unsupported by {index}")
            }
            IndexError::UnknownIndexType(name) => write!(f, "unknown index type: {name}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// Convenience alias used throughout the index crate.
pub type Result<T> = std::result::Result<T, IndexError>;

impl IndexError {
    /// Helper for `InvalidParameter` with a formatted reason.
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        IndexError::InvalidParameter { name, reason: reason.into() }
    }
}

//! Error type shared by all index operations.

use thiserror::Error;

/// Errors produced by index construction and search.
#[derive(Debug, Error)]
pub enum IndexError {
    /// A vector had a different dimensionality than the index expects.
    #[error("dimension mismatch: index expects {expected}, got {got}")]
    DimensionMismatch { expected: usize, got: usize },

    /// The operation needs a trained index (e.g. IVF before add/search).
    #[error("index is not trained: {0}")]
    NotTrained(&'static str),

    /// Not enough training points for the requested structure.
    #[error("insufficient training data: need at least {need}, got {got}")]
    InsufficientTrainingData { need: usize, got: usize },

    /// A parameter was outside its valid range.
    #[error("invalid parameter {name}: {reason}")]
    InvalidParameter { name: &'static str, reason: String },

    /// The metric is not supported by this index type.
    #[error("metric {metric} unsupported by {index}")]
    UnsupportedMetric { metric: &'static str, index: &'static str },

    /// No index with the given name is registered in the index registry.
    #[error("unknown index type: {0}")]
    UnknownIndexType(String),
}

/// Convenience alias used throughout the index crate.
pub type Result<T> = std::result::Result<T, IndexError>;

impl IndexError {
    /// Helper for `InvalidParameter` with a formatted reason.
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        IndexError::InvalidParameter { name, reason: reason.into() }
    }
}

//! The extensible index abstraction (§2.2).
//!
//! "Milvus is designed to easily incorporate the new indexes with a
//! high-level abstraction. Developers only need to implement a few
//! pre-defined interfaces for adding a new index." — [`VectorIndex`] is that
//! interface; [`crate::registry`] is the factory that resolves index names to
//! builders.

use crate::error::Result;
use crate::metric::Metric;
use crate::topk::Neighbor;
use crate::vectors::VectorSet;

/// Index-build configuration. Individual index types read the knobs that
/// apply to them and ignore the rest, so one params struct can drive any
/// registered index.
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Similarity function.
    pub metric: Metric,
    /// IVF: number of coarse-quantizer buckets (paper default 16384, scaled
    /// down for small collections by [`BuildParams::effective_nlist`]).
    pub nlist: usize,
    /// PQ: number of sub-quantizers (`m`); must divide the dimension.
    pub pq_m: usize,
    /// PQ: bits per sub-quantizer code (8 → 256 centroids per sub-space).
    pub pq_nbits: u32,
    /// HNSW: max links per node at layers > 0 (`M`).
    pub hnsw_m: usize,
    /// HNSW: beam width during construction (`efConstruction`).
    pub hnsw_ef_construction: usize,
    /// NSG: out-degree bound (`R`).
    pub nsg_out_degree: usize,
    /// Annoy: number of random-projection trees.
    pub annoy_n_trees: usize,
    /// K-means: maximum Lloyd iterations for quantizer training.
    pub kmeans_iters: usize,
    /// Seed for all randomized build steps (determinism).
    pub seed: u64,
}

impl Default for BuildParams {
    fn default() -> Self {
        Self {
            metric: Metric::L2,
            nlist: 16384,
            pq_m: 8,
            pq_nbits: 8,
            hnsw_m: 16,
            hnsw_ef_construction: 200,
            nsg_out_degree: 32,
            annoy_n_trees: 8,
            kmeans_iters: 10,
            seed: 0x5EED,
        }
    }
}

impl BuildParams {
    /// Shorthand constructor with a metric.
    pub fn with_metric(metric: Metric) -> Self {
        Self { metric, ..Default::default() }
    }

    /// Bucket count actually used for a collection of `n` vectors: the paper
    /// uses nlist=16384 at billion scale; for small collections we cap at
    /// `sqrt(n)`-ish so buckets stay trainable.
    pub fn effective_nlist(&self, n: usize) -> usize {
        let cap = ((n as f64).sqrt().ceil() as usize).max(1);
        self.nlist.min(cap).max(1)
    }
}

/// Per-query search configuration.
///
/// `Eq`/`Hash` let the query scheduler group coalesced queries by
/// compatible parameters (all fields are plain integers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SearchParams {
    /// Number of results to return.
    pub k: usize,
    /// IVF: number of closest buckets to scan (`nprobe`, §3.1).
    pub nprobe: usize,
    /// Graph indexes: beam width (`efSearch`).
    pub ef: usize,
    /// Annoy: number of candidate leaves to inspect.
    pub search_nodes: usize,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self { k: 50, nprobe: 8, ef: 64, search_nodes: 1024 }
    }
}

impl SearchParams {
    /// Shorthand constructor: top-`k` with defaults elsewhere.
    pub fn top_k(k: usize) -> Self {
        Self { k, ..Default::default() }
    }

    /// Builder-style nprobe setter.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe;
        self
    }

    /// Builder-style ef setter.
    pub fn with_ef(mut self, ef: usize) -> Self {
        self.ef = ef;
        self
    }
}

/// The pre-defined interface every index implements (§2.2).
///
/// Indexes are built over a [`VectorSet`] whose row `i` is mapped to the
/// caller-provided id `ids[i]`; searches report those external ids.
pub trait VectorIndex: Send + Sync {
    /// Registry name of this index type (e.g. `"IVF_FLAT"`).
    fn name(&self) -> &'static str;

    /// The metric the index was built with.
    fn metric(&self) -> Metric;

    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when the index holds no vectors.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Search for the `params.k` nearest neighbors of `query`; results are
    /// sorted ascending by internal distance.
    fn search(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>>;

    /// Search with a row filter: `allow(id)` must return true for a result to
    /// be produced. Used by attribute-filtering strategy B (§4.1), where the
    /// bitmap of attribute-passing ids is consulted during the vector search.
    fn search_filtered(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: &dyn Fn(i64) -> bool,
    ) -> Result<Vec<Neighbor>>;

    /// Search many queries that share one [`SearchParams`], returning one
    /// sorted result list per query in input order. The default is the
    /// per-query loop — bit-identical to calling [`VectorIndex::search`] in
    /// a loop by construction; index types with batchable scan structure
    /// (IVF: shared bucket sweeps) override this to amortize work across
    /// the batch without changing any result.
    fn search_batch(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        (0..queries.len()).map(|i| self.search(queries.get(i), params)).collect()
    }

    /// Approximate main-memory footprint in bytes (Table/SPTAG memory
    /// comparisons, bufferpool accounting).
    fn memory_bytes(&self) -> usize;

    /// Downcast hook for the segment codec: IVF indexes are serializable
    /// ("both index and data are stored in the same segment", §2.3); other
    /// index types return `None` and are rebuilt after a load.
    fn as_ivf(&self) -> Option<&crate::ivf::IvfIndex> {
        None
    }
}

/// Builder interface registered in the [`crate::registry`].
pub trait IndexBuilder: Send + Sync {
    /// Registry name (e.g. `"HNSW"`).
    fn name(&self) -> &'static str;

    /// Build an index over `vectors`, mapping row `i` to `ids[i]`.
    fn build(
        &self,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_nlist_caps_small_collections() {
        let p = BuildParams::default();
        assert_eq!(p.effective_nlist(100), 10);
        assert_eq!(p.effective_nlist(0), 1);
        // Large n keeps the configured value.
        assert_eq!(p.effective_nlist(1_000_000_000), 16384);
    }

    #[test]
    fn search_params_builders() {
        let p = SearchParams::top_k(10).with_nprobe(4).with_ef(32);
        assert_eq!((p.k, p.nprobe, p.ef), (10, 4, 32));
    }
}

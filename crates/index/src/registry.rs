//! The extensible index registry (§2.2).
//!
//! "Developers only need to implement a few pre-defined interfaces for adding
//! a new index" — implement [`crate::traits::IndexBuilder`] and call
//! [`IndexRegistry::register`]. [`IndexRegistry::with_builtins`] pre-loads
//! every index type this crate ships.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::annoy::AnnoyBuilder;
use crate::error::{IndexError, Result};
use crate::flat::FlatBuilder;
use crate::hnsw::HnswBuilder;
use crate::ivf::{IvfBuilder, IvfVariant};
use crate::nsg::NsgBuilder;
use crate::traits::{BuildParams, IndexBuilder, VectorIndex};
use crate::vectors::VectorSet;

/// Thread-safe name → builder registry.
#[derive(Clone, Default)]
pub struct IndexRegistry {
    builders: Arc<RwLock<HashMap<String, Arc<dyn IndexBuilder>>>>,
}

impl IndexRegistry {
    /// An empty registry (for tests of the extension mechanism).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with FLAT, IVF_FLAT, IVF_SQ8, IVF_PQ, HNSW, NSG
    /// and ANNOY.
    pub fn with_builtins() -> Self {
        let reg = Self::default();
        reg.register(Arc::new(FlatBuilder));
        reg.register(Arc::new(IvfBuilder(IvfVariant::Flat)));
        reg.register(Arc::new(IvfBuilder(IvfVariant::Sq8)));
        reg.register(Arc::new(IvfBuilder(IvfVariant::Pq)));
        reg.register(Arc::new(HnswBuilder));
        reg.register(Arc::new(NsgBuilder));
        reg.register(Arc::new(AnnoyBuilder));
        reg
    }

    /// Register (or replace) a builder under its name.
    pub fn register(&self, builder: Arc<dyn IndexBuilder>) {
        self.builders.write().insert(builder.name().to_string(), builder);
    }

    /// Registered index-type names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.builders.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// True if `name` resolves to a builder.
    pub fn contains(&self, name: &str) -> bool {
        self.builders.read().contains_key(name)
    }

    /// Build an index of type `name` over `vectors`/`ids`.
    pub fn build(
        &self,
        name: &str,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>> {
        let builder = self
            .builders
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| IndexError::UnknownIndexType(name.to_string()))?;
        builder.build(vectors, ids, params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Metric;
    use crate::topk::Neighbor;
    use crate::traits::SearchParams;

    #[test]
    fn builtins_present() {
        let reg = IndexRegistry::with_builtins();
        for name in ["FLAT", "IVF_FLAT", "IVF_SQ8", "IVF_PQ", "HNSW", "NSG", "ANNOY"] {
            assert!(reg.contains(name), "missing {name}");
        }
    }

    #[test]
    fn unknown_type_errors() {
        let reg = IndexRegistry::empty();
        let vs = VectorSet::from_flat(2, vec![0.0, 0.0]);
        assert!(matches!(
            reg.build("LSH", &vs, &[0], &BuildParams::default()),
            Err(IndexError::UnknownIndexType(_))
        ));
    }

    #[test]
    fn all_builtins_build_and_search() {
        let reg = IndexRegistry::with_builtins();
        let mut vs = VectorSet::new(4);
        for i in 0..64 {
            vs.push(&[i as f32, (i * 2) as f32, 0.0, 1.0]);
        }
        let ids: Vec<i64> = (0..64).collect();
        let params = BuildParams { nlist: 4, pq_m: 2, ..Default::default() };
        for name in reg.names() {
            let idx = reg.build(&name, &vs, &ids, &params).unwrap();
            assert_eq!(idx.len(), 64, "{name}");
            let res = idx.search(vs.get(5), &SearchParams::top_k(3)).unwrap();
            assert!(!res.is_empty(), "{name} returned nothing");
        }
    }

    /// The extension mechanism: a custom index plugs in via the same trait.
    struct ConstIndex;
    struct ConstBuilder;

    impl crate::traits::VectorIndex for ConstIndex {
        fn name(&self) -> &'static str {
            "CONST"
        }
        fn metric(&self) -> Metric {
            Metric::L2
        }
        fn len(&self) -> usize {
            1
        }
        fn search(&self, _q: &[f32], _p: &SearchParams) -> crate::Result<Vec<Neighbor>> {
            Ok(vec![Neighbor::new(42, 0.0)])
        }
        fn search_filtered(
            &self,
            q: &[f32],
            p: &SearchParams,
            _allow: &dyn Fn(i64) -> bool,
        ) -> crate::Result<Vec<Neighbor>> {
            self.search(q, p)
        }
        fn memory_bytes(&self) -> usize {
            0
        }
    }

    impl IndexBuilder for ConstBuilder {
        fn name(&self) -> &'static str {
            "CONST"
        }
        fn build(
            &self,
            _vectors: &VectorSet,
            _ids: &[i64],
            _params: &BuildParams,
        ) -> crate::Result<Box<dyn crate::traits::VectorIndex>> {
            Ok(Box::new(ConstIndex))
        }
    }

    #[test]
    fn custom_index_plugs_in() {
        let reg = IndexRegistry::with_builtins();
        reg.register(Arc::new(ConstBuilder));
        let vs = VectorSet::from_flat(1, vec![0.0]);
        let idx = reg.build("CONST", &vs, &[0], &BuildParams::default()).unwrap();
        assert_eq!(idx.search(&[0.0], &SearchParams::top_k(1)).unwrap()[0].id, 42);
    }
}

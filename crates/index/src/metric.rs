//! Similarity functions offered by the system (paper §2.1).
//!
//! The paper lists Euclidean distance, inner product, cosine similarity,
//! Hamming distance and Jaccard distance; §6.2 additionally uses the Tanimoto
//! distance for chemical-structure search. Float metrics operate on `f32`
//! slices, binary metrics on bit-packed `u8` slices (see [`crate::binary`]).
//!
//! Internally every metric is normalised to a *distance* where **smaller is
//! better**: inner product and cosine are negated. This lets every index and
//! heap in the crate order candidates the same way.


/// A similarity function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Squared Euclidean distance (L2²). Monotonic in L2, cheaper to compute.
    L2,
    /// Inner product, negated so that smaller is better.
    InnerProduct,
    /// Cosine similarity, negated so that smaller is better.
    Cosine,
    /// Hamming distance over bit-packed binary vectors.
    Hamming,
    /// Jaccard distance over bit-packed binary vectors.
    Jaccard,
    /// Tanimoto distance over bit-packed binary vectors (chemical search, §6.2).
    Tanimoto,
}

serde::impl_serde_unit_enum!(Metric { L2, InnerProduct, Cosine, Hamming, Jaccard, Tanimoto });

impl Metric {
    /// True when the raw metric is a similarity (higher = better) that the
    /// crate internally negates into a distance.
    #[inline]
    pub fn is_similarity(self) -> bool {
        matches!(self, Metric::InnerProduct | Metric::Cosine)
    }

    /// True for metrics defined over bit-packed binary vectors.
    #[inline]
    pub fn is_binary(self) -> bool {
        matches!(self, Metric::Hamming | Metric::Jaccard | Metric::Tanimoto)
    }

    /// Convert an internal distance back to the user-facing score
    /// (e.g. re-negate inner product).
    #[inline]
    pub fn display_score(self, internal: f32) -> f32 {
        if self.is_similarity() {
            -internal
        } else {
            internal
        }
    }

    /// Stable identifier used in configs and the index registry.
    pub fn name(self) -> &'static str {
        match self {
            Metric::L2 => "L2",
            Metric::InnerProduct => "IP",
            Metric::Cosine => "COSINE",
            Metric::Hamming => "HAMMING",
            Metric::Jaccard => "JACCARD",
            Metric::Tanimoto => "TANIMOTO",
        }
    }

    /// Parse a metric from its [`name`](Metric::name).
    pub fn parse(s: &str) -> Option<Metric> {
        match s.to_ascii_uppercase().as_str() {
            "L2" | "EUCLIDEAN" => Some(Metric::L2),
            "IP" | "INNER_PRODUCT" => Some(Metric::InnerProduct),
            "COSINE" => Some(Metric::Cosine),
            "HAMMING" => Some(Metric::Hamming),
            "JACCARD" => Some(Metric::Jaccard),
            "TANIMOTO" => Some(Metric::Tanimoto),
            _ => None,
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        for m in [
            Metric::L2,
            Metric::InnerProduct,
            Metric::Cosine,
            Metric::Hamming,
            Metric::Jaccard,
            Metric::Tanimoto,
        ] {
            assert_eq!(Metric::parse(m.name()), Some(m));
        }
        assert_eq!(Metric::parse("bogus"), None);
    }

    #[test]
    fn similarity_classification() {
        assert!(Metric::InnerProduct.is_similarity());
        assert!(Metric::Cosine.is_similarity());
        assert!(!Metric::L2.is_similarity());
        assert!(Metric::Jaccard.is_binary());
        assert!(!Metric::L2.is_binary());
    }

    #[test]
    fn display_score_negates_similarities() {
        assert_eq!(Metric::InnerProduct.display_score(-3.0), 3.0);
        assert_eq!(Metric::L2.display_score(3.0), 3.0);
    }
}

//! Bounded top-k heaps.
//!
//! Every search path in the paper maintains "a k-sized heap to store the
//! results" (§3.2.1). [`TopK`] is a bounded max-heap on internal distance
//! (smaller = better): the root is the current worst kept result, so a
//! candidate only enters when it beats the root, and [`TopK::threshold`]
//! gives the pruning bound used by IVF scans and graph searches.

/// One search result: an external id plus its internal distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Caller-assigned identifier (row id, entity id…).
    pub id: i64,
    /// Internal distance, smaller = better (similarities are negated).
    pub dist: f32,
}

impl Neighbor {
    /// Construct a neighbor.
    #[inline]
    pub fn new(id: i64, dist: f32) -> Self {
        Self { id, dist }
    }
}

impl Eq for Neighbor {}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Neighbor {
    /// Orders by distance, tie-broken by id for determinism.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist.total_cmp(&other.dist).then(self.id.cmp(&other.id))
    }
}

/// A bounded max-heap keeping the `k` smallest-distance neighbors seen.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<Neighbor>,
}

impl TopK {
    /// Create a heap retaining at most `k` results.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k requires k >= 1");
        Self { k, heap: std::collections::BinaryHeap::with_capacity(k + 1) }
    }

    /// Capacity `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current number of retained results.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current worst retained distance, or `f32::INFINITY` while the heap
    /// is not yet full — i.e. the bound a new candidate must beat.
    #[inline]
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::INFINITY
        } else {
            self.heap.peek().map_or(f32::INFINITY, |n| n.dist)
        }
    }

    /// Offer a candidate; returns true if it was retained.
    #[inline]
    pub fn push(&mut self, id: i64, dist: f32) -> bool {
        if self.heap.len() < self.k {
            self.heap.push(Neighbor::new(id, dist));
            true
        } else {
            // Safe: k >= 1 so the heap is non-empty here.
            let worst = *self.heap.peek().expect("non-empty");
            let cand = Neighbor::new(id, dist);
            if cand < worst {
                self.heap.pop();
                self.heap.push(cand);
                true
            } else {
                false
            }
        }
    }

    /// Drain into a vector sorted ascending by distance (best first).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }

    /// Merge another heap's contents into this one (used to combine the
    /// per-thread heaps of the cache-aware engine, §3.2.1).
    pub fn merge(&mut self, other: TopK) {
        for n in other.heap {
            self.push(n.id, n.dist);
        }
    }
}

/// Merge several already-sorted result lists into a single sorted top-k
/// (used to combine per-segment results).
pub fn merge_sorted(lists: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    let mut heap = TopK::new(k.max(1));
    for list in lists {
        for n in list {
            heap.push(n.id, n.dist);
        }
    }
    if k == 0 {
        Vec::new()
    } else {
        heap.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_smallest() {
        let mut t = TopK::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            t.push(i as i64, *d);
        }
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.dist).collect::<Vec<_>>(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn threshold_tracks_worst() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::INFINITY);
        t.push(1, 10.0);
        assert_eq!(t.threshold(), f32::INFINITY); // not full yet
        t.push(2, 5.0);
        assert_eq!(t.threshold(), 10.0);
        t.push(3, 1.0);
        assert_eq!(t.threshold(), 5.0);
    }

    #[test]
    fn rejects_worse_when_full() {
        let mut t = TopK::new(1);
        assert!(t.push(1, 1.0));
        assert!(!t.push(2, 2.0));
        assert_eq!(t.into_sorted()[0].id, 1);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut t = TopK::new(2);
        t.push(9, 1.0);
        t.push(3, 1.0);
        t.push(5, 1.0);
        let out = t.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn merge_heaps() {
        let mut a = TopK::new(3);
        a.push(1, 1.0);
        a.push(2, 9.0);
        let mut b = TopK::new(3);
        b.push(3, 2.0);
        b.push(4, 3.0);
        a.merge(b);
        let out = a.into_sorted();
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3, 4]);
    }

    #[test]
    fn merge_sorted_lists() {
        let l1 = vec![Neighbor::new(1, 1.0), Neighbor::new(2, 4.0)];
        let l2 = vec![Neighbor::new(3, 2.0), Neighbor::new(4, 5.0)];
        let out = merge_sorted(&[l1, l2], 3);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3, 2]);
    }

    #[test]
    fn merge_sorted_k_zero() {
        assert!(merge_sorted(&[vec![Neighbor::new(1, 1.0)]], 0).is_empty());
    }
}

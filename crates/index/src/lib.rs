//! ANN index library for the Milvus reproduction.
//!
//! This crate is the from-scratch substrate that plays the role Facebook Faiss
//! plays for the real Milvus system (SIGMOD'21). It provides:
//!
//! * distance kernels for every similarity function the paper lists
//!   (Euclidean, inner product, cosine, Hamming, Jaccard, Tanimoto) with
//!   scalar, SSE, AVX2 and AVX-512 implementations behind **runtime SIMD
//!   dispatch** (paper §3.2.2 "automatic SIMD-instruction selection");
//! * the k-means coarse quantizer (paper §3.1);
//! * quantization-based indexes `IVF_FLAT`, `IVF_SQ8`, `IVF_PQ` (§2.2, §3.1);
//! * graph-based indexes `HNSW` and `NSG` (§2.2);
//! * a tree-based `Annoy`-style index (§2.2 footnote 3);
//! * an extensible [`VectorIndex`] trait + [`registry`] so new index types can
//!   be plugged in (§2.2 "easily incorporate the new indexes");
//! * the **cache-aware, fine-grained-parallel batch query engine** of §3.2.1
//!   (query blocking per Eq. (1), thread-per-data-range assignment,
//!   per-(thread, query) heaps) alongside the original Faiss-style
//!   thread-per-query engine used as the ablation baseline.
//!
//! Everything here is deterministic given a seed, so higher layers (storage,
//! query, distributed) and the benchmark harness can assert recall bounds.

pub mod annoy;
pub mod batch;
pub mod binary;
pub mod distance;
pub mod error;
pub mod flat;
pub mod hnsw;
pub mod ivf;
pub mod kmeans;
pub mod metric;
pub mod nsg;
pub mod registry;
pub mod simd;
pub mod topk;
pub mod traits;
pub mod vectors;

pub use error::{IndexError, Result};
pub use metric::Metric;
pub use simd::SimdLevel;
pub use topk::{Neighbor, TopK};
pub use traits::{BuildParams, SearchParams, VectorIndex};
pub use vectors::VectorSet;

//! Batch query execution: the cache-aware, fine-grained-parallel design of
//! §3.2.1 (Figure 3) and the original Faiss-style engine it replaces.
//!
//! The fundamental operation: given `m` queries and `n` data vectors, find
//! each query's top-k. Two engines are provided:
//!
//! * [`faiss_style_search`] — the paper's description of Faiss: each thread
//!   takes one whole query at a time and streams the *entire* data set
//!   through the CPU caches per query (`m/t` full passes per thread), with
//!   one k-heap per query. Poor cache reuse; poor parallelism for small `m`.
//!
//! * [`cache_aware_search`] — Milvus's design: threads are assigned *data
//!   ranges* (fine-grained parallelism), queries are processed in blocks of
//!   `s` chosen by Eq. (1) so that a block plus its heaps fits in L3. Each
//!   loaded data vector is compared against all `s` resident queries, and
//!   every (thread, query) pair gets its own heap (`H[r][j]` in Figure 3) to
//!   avoid synchronization; per-query heaps are merged at the end. Each
//!   thread touches the data `m/(s·t)` times — `s`× fewer than Faiss.

use milvus_obs as obs;

use crate::distance;
use crate::metric::Metric;
use crate::topk::{Neighbor, TopK};
use crate::vectors::VectorSet;

/// Tuning knobs for the batch engines.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Results per query.
    pub k: usize,
    /// Similarity function.
    pub metric: Metric,
    /// Worker threads (`t`). The data is split into `t` contiguous ranges.
    pub threads: usize,
    /// Assumed L3 cache size in bytes, the numerator of Eq. (1).
    pub l3_cache_bytes: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            k: 50,
            metric: Metric::L2,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            l3_cache_bytes: 32 * 1024 * 1024,
        }
    }
}

/// Equation (1): query-block size `s` such that `s` queries plus their
/// per-thread heaps fit in L3.
///
/// `s = L3 / (d·sizeof(f32) + t·k·(sizeof(i64)+sizeof(f32)))`
pub fn query_block_size(l3_bytes: usize, dim: usize, threads: usize, k: usize) -> usize {
    let per_query = dim * std::mem::size_of::<f32>()
        + threads * k * (std::mem::size_of::<i64>() + std::mem::size_of::<f32>());
    (l3_bytes / per_query.max(1)).max(1)
}

/// The Faiss-style baseline: one thread per query, each query streams the
/// whole data set (§3.2.1 "Original implementation in Facebook Faiss").
pub fn faiss_style_search(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    faiss_style_search_traced(data, ids, queries, opts, &mut obs::Trace::disabled())
}

/// [`faiss_style_search`] recording one [`obs::SpanKind::BatchScan`] span for
/// the whole pass into a caller-supplied trace.
pub fn faiss_style_search_traced(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
    trace: &mut obs::Trace,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.len(), ids.len(), "ids must match data rows");
    assert_eq!(data.dim(), queries.dim(), "query dimension mismatch");
    let m = queries.len();
    if m == 0 || data.is_empty() {
        return vec![Vec::new(); m];
    }
    let t_scan = trace.begin();
    obs::counter(obs::BATCH_QUERIES, "faiss_style").add(m as u64);
    let _span = obs::span(obs::BATCH_LATENCY, "faiss_style");
    let threads = opts.threads.max(1).min(m);
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); m];

    // Static round-robin assignment of queries to threads, as OpenMP's
    // default scheduling would do.
    std::thread::scope(|scope| {
        let chunks: Vec<(usize, &mut [Vec<Neighbor>])> =
            results.chunks_mut(m.div_ceil(threads)).enumerate().collect();
        for (chunk_idx, out) in chunks {
            let start = chunk_idx * m.div_ceil(threads);
            scope.spawn(move || {
                for (off, slot) in out.iter_mut().enumerate() {
                    let q = queries.get(start + off);
                    let mut heap = TopK::new(opts.k.max(1));
                    for (&id, v) in ids.iter().zip(data.iter()) {
                        heap.push(id, distance::distance(opts.metric, q, v));
                    }
                    *slot = heap.into_sorted();
                }
            });
        }
    });
    let rows = (m as u64) * (data.len() as u64);
    trace.record_with(obs::SpanKind::BatchScan, t_scan, |sp| sp.rows_scanned = rows);
    results
}

/// The Milvus cache-aware engine (§3.2.1, Figure 3).
pub fn cache_aware_search(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    cache_aware_search_traced(data, ids, queries, opts, &mut obs::Trace::disabled())
}

/// [`cache_aware_search`] recording one [`obs::SpanKind::BatchScan`] span per
/// query block and one [`obs::SpanKind::HeapMerge`] span per block merge into
/// a caller-supplied trace. The hot loop itself is untouched: a disabled
/// trace records nothing and never reads the clock.
pub fn cache_aware_search_traced(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
    trace: &mut obs::Trace,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.len(), ids.len(), "ids must match data rows");
    assert_eq!(data.dim(), queries.dim(), "query dimension mismatch");
    let m = queries.len();
    let n = data.len();
    if m == 0 || n == 0 {
        return vec![Vec::new(); m];
    }
    obs::counter(obs::BATCH_QUERIES, "cache_aware").add(m as u64);
    let _span = obs::span(obs::BATCH_LATENCY, "cache_aware");
    let k = opts.k.max(1);
    let t = opts.threads.max(1).min(n);
    let s = query_block_size(opts.l3_cache_bytes, data.dim(), t, k).min(m);

    // Thread r owns data rows [bounds[r], bounds[r+1]).
    let chunk = n.div_ceil(t);
    let bounds: Vec<usize> = (0..=t).map(|i| (i * chunk).min(n)).collect();

    let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(m);
    for block_start in (0..m).step_by(s) {
        let block_end = (block_start + s).min(m);
        let block_len = block_end - block_start;
        let t_block = trace.begin();

        // One heap per (thread, query-in-block): H[r][j] in Figure 3.
        let per_thread: Vec<Vec<TopK>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..t)
                .map(|r| {
                    let (lo, hi) = (bounds[r], bounds[r + 1]);
                    scope.spawn(move || {
                        let mut heaps: Vec<TopK> =
                            (0..block_len).map(|_| TopK::new(k)).collect();
                        for (row, &id) in (lo..hi).zip(&ids[lo..hi]) {
                            let v = data.get(row);
                            // The loaded vector is reused for the entire
                            // resident query block — the cache win.
                            for (j, heap) in heaps.iter_mut().enumerate() {
                                let q = queries.get(block_start + j);
                                heap.push(id, distance::distance(opts.metric, q, v));
                            }
                        }
                        heaps
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
        });
        trace.record_with(obs::SpanKind::BatchScan, t_block, |sp| {
            sp.rows_scanned = (block_len as u64) * (n as u64);
        });

        // Merge the t heaps of each query.
        let t_merge = trace.begin();
        for j in 0..block_len {
            let mut merged = TopK::new(k);
            for thread_heaps in &per_thread {
                merged.merge(thread_heaps[j].clone());
            }
            results.push(merged.into_sorted());
        }
        trace.record(obs::SpanKind::HeapMerge, t_merge);
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn eq1_block_size() {
        // 32 MB L3, d=128, t=16, k=50: s = 32MiB / (512 + 16*50*12) = ~3355.
        let s = query_block_size(32 * 1024 * 1024, 128, 16, 50);
        assert_eq!(s, 32 * 1024 * 1024 / (128 * 4 + 16 * 50 * 12));
        // Tiny cache never yields zero.
        assert_eq!(query_block_size(1, 128, 16, 50), 1);
    }

    #[test]
    fn both_engines_agree_with_each_other() {
        let data = random_set(300, 16, 1);
        let ids: Vec<i64> = (0..300).collect();
        let queries = random_set(23, 16, 2);
        for metric in [Metric::L2, Metric::InnerProduct] {
            let opts = BatchOptions { k: 7, metric, threads: 4, l3_cache_bytes: 4096 };
            let a = faiss_style_search(&data, &ids, &queries, &opts);
            let b = cache_aware_search(&data, &ids, &queries, &opts);
            assert_eq!(a.len(), b.len());
            for (qa, qb) in a.iter().zip(&b) {
                assert_eq!(qa, qb, "engines disagree under {metric}");
            }
        }
    }

    #[test]
    fn agrees_with_single_query_flat_scan() {
        let data = random_set(100, 8, 3);
        let ids: Vec<i64> = (0..100).collect();
        let queries = random_set(5, 8, 4);
        let opts = BatchOptions { k: 5, metric: Metric::L2, threads: 3, ..Default::default() };
        let res = cache_aware_search(&data, &ids, &queries, &opts);
        for (qi, q) in queries.iter().enumerate() {
            let mut heap = TopK::new(5);
            for (row, v) in data.iter().enumerate() {
                heap.push(row as i64, distance::l2_sq(q, v));
            }
            assert_eq!(res[qi], heap.into_sorted());
        }
    }

    #[test]
    fn empty_inputs() {
        let data = random_set(10, 4, 5);
        let ids: Vec<i64> = (0..10).collect();
        let empty_q = VectorSet::new(4);
        let opts = BatchOptions::default();
        assert!(cache_aware_search(&data, &ids, &empty_q, &opts).is_empty());
        let empty_d = VectorSet::new(4);
        let q = random_set(3, 4, 6);
        let res = cache_aware_search(&empty_d, &[], &q, &opts);
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(Vec::is_empty));
    }

    #[test]
    fn block_smaller_than_batch_still_covers_all_queries() {
        let data = random_set(50, 32, 7);
        let ids: Vec<i64> = (0..50).collect();
        let queries = random_set(40, 32, 8);
        // Force s = 1 via a tiny cache: every query is its own block.
        let opts =
            BatchOptions { k: 3, metric: Metric::L2, threads: 2, l3_cache_bytes: 1 };
        let res = cache_aware_search(&data, &ids, &queries, &opts);
        assert_eq!(res.len(), 40);
        assert!(res.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn more_threads_than_rows() {
        let data = random_set(3, 4, 9);
        let ids: Vec<i64> = (0..3).collect();
        let queries = random_set(2, 4, 10);
        let opts = BatchOptions { k: 2, threads: 16, ..Default::default() };
        let res = cache_aware_search(&data, &ids, &queries, &opts);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].len(), 2);
    }

    #[test]
    fn faiss_style_more_threads_than_queries() {
        let data = random_set(20, 4, 11);
        let ids: Vec<i64> = (0..20).collect();
        let queries = random_set(2, 4, 12);
        let opts = BatchOptions { k: 4, threads: 8, ..Default::default() };
        let res = faiss_style_search(&data, &ids, &queries, &opts);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|r| r.len() == 4));
    }
}

//! Batch query execution: the cache-aware, fine-grained-parallel design of
//! §3.2.1 (Figure 3) and the original Faiss-style engine it replaces.
//!
//! The fundamental operation: given `m` queries and `n` data vectors, find
//! each query's top-k. Two engines are provided:
//!
//! * [`faiss_style_search`] — the paper's description of Faiss: each thread
//!   takes one whole query at a time and streams the *entire* data set
//!   through the CPU caches per query (`m/t` full passes per thread), with
//!   one k-heap per query. Poor cache reuse; poor parallelism for small `m`.
//!
//! * [`cache_aware_search`] — Milvus's design: threads are assigned *data
//!   ranges* (fine-grained parallelism), queries are processed in blocks of
//!   `s` chosen by Eq. (1) so that a block plus its heaps fits in L3. Each
//!   loaded data vector is compared against all `s` resident queries, and
//!   every (thread, query) pair gets its own heap (`H[r][j]` in Figure 3) to
//!   avoid synchronization; per-query heaps are merged at the end. Each
//!   thread touches the data `m/(s·t)` times — `s`× fewer than Faiss.
//!
//! Both engines also exist in executor-backed form
//! ([`faiss_style_search_exec`], [`cache_aware_search_exec`]): the same
//! algorithms scheduled on a persistent [`milvus_exec::Executor`] instead of
//! spawning OS threads per call, with the cache-aware variant additionally
//! using the register-tiled ×4 kernels (one data-vector load feeds four
//! query accumulators). All four engines resolve the metric's kernel
//! function pointer once per call — the hot loop never re-matches the
//! `Metric` enum or re-reads the SIMD level.

use milvus_exec::Executor;
use milvus_obs as obs;

use crate::distance::{self, PairKernel, Tile4Kernel};
use crate::metric::Metric;
use crate::topk::{Neighbor, TopK};
use crate::vectors::VectorSet;

/// Kernel dispatch hoisted out of the scan loops: resolved once per search
/// call from the metric + active SIMD level.
enum BlockKernel {
    /// Register-tiled path: score 4 queries per data-vector pass, with a
    /// per-pair kernel for the ragged tail of a query block.
    Tiled(Tile4Kernel, PairKernel),
    /// Metrics without a tiled form (cosine, SSE-only levels).
    Single(PairKernel),
}

fn block_kernel(metric: Metric) -> BlockKernel {
    match distance::tile4_kernel(metric) {
        Some(tile) => BlockKernel::Tiled(tile, distance::pair_kernel(metric)),
        None => BlockKernel::Single(distance::pair_kernel(metric)),
    }
}

/// Score data rows `[lo, hi)` against the query block starting at
/// `block_start`, pushing into one heap per resident query. Heap `j` always
/// sees per-pair results in row order, so the outcome is bit-identical
/// whether the kernel is tiled or not.
///
/// The tiled path registers-tiles over *data rows*: four rows are scored
/// against each resident query per kernel call, so every streamed query
/// vector is loaded once per four rows instead of once per row — a 4×
/// reduction of the loop's dominant memory traffic (the query block is far
/// larger than one data vector). L2² and IP are symmetric bit-for-bit
/// (`(a-b)² == (b-a)²`, `a·b == b·a` in IEEE), so calling the ×4 kernel
/// with rows in the "queries" slot yields exactly the per-pair results.
fn scan_range_into_heaps(
    kern: &BlockKernel,
    data: &VectorSet,
    ids: &[i64],
    range: std::ops::Range<usize>,
    queries: &VectorSet,
    block_start: usize,
    heaps: &mut [TopK],
) {
    let (lo, hi) = (range.start, range.end);
    match kern {
        BlockKernel::Tiled(tile, pair) => {
            let mut row = lo;
            while row + 4 <= hi {
                let vs = [data.get(row), data.get(row + 1), data.get(row + 2), data.get(row + 3)];
                let vids = [ids[row], ids[row + 1], ids[row + 2], ids[row + 3]];
                for (j, heap) in heaps.iter_mut().enumerate() {
                    let d = tile(vs, queries.get(block_start + j));
                    for (lane, dist) in d.into_iter().enumerate() {
                        heap.push(vids[lane], dist);
                    }
                }
                row += 4;
            }
            for (r, &id) in (row..hi).zip(&ids[row..hi]) {
                let v = data.get(r);
                for (j, heap) in heaps.iter_mut().enumerate() {
                    heap.push(id, pair(queries.get(block_start + j), v));
                }
            }
        }
        BlockKernel::Single(pair) => {
            for (row, &id) in (lo..hi).zip(&ids[lo..hi]) {
                let v = data.get(row);
                // The loaded vector is reused for the entire resident query
                // block — the cache win.
                for (j, heap) in heaps.iter_mut().enumerate() {
                    heap.push(id, pair(queries.get(block_start + j), v));
                }
            }
        }
    }
}

/// Tuning knobs for the batch engines.
#[derive(Debug, Clone)]
pub struct BatchOptions {
    /// Results per query.
    pub k: usize,
    /// Similarity function.
    pub metric: Metric,
    /// Worker threads (`t`). The data is split into `t` contiguous ranges.
    pub threads: usize,
    /// Assumed L3 cache size in bytes, the numerator of Eq. (1).
    pub l3_cache_bytes: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        Self {
            k: 50,
            metric: Metric::L2,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
            l3_cache_bytes: 32 * 1024 * 1024,
        }
    }
}

/// Equation (1): query-block size `s` such that `s` queries plus their
/// per-thread heaps fit in L3.
///
/// `s = L3 / (d·sizeof(f32) + t·k·(sizeof(i64)+sizeof(f32)))`
pub fn query_block_size(l3_bytes: usize, dim: usize, threads: usize, k: usize) -> usize {
    let per_query = dim * std::mem::size_of::<f32>()
        + threads * k * (std::mem::size_of::<i64>() + std::mem::size_of::<f32>());
    (l3_bytes / per_query.max(1)).max(1)
}

/// The Faiss-style baseline: one thread per query, each query streams the
/// whole data set (§3.2.1 "Original implementation in Facebook Faiss").
pub fn faiss_style_search(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    faiss_style_search_traced(data, ids, queries, opts, &mut obs::Trace::disabled())
}

/// [`faiss_style_search`] recording one [`obs::SpanKind::BatchScan`] span for
/// the whole pass into a caller-supplied trace.
pub fn faiss_style_search_traced(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
    trace: &mut obs::Trace,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.len(), ids.len(), "ids must match data rows");
    assert_eq!(data.dim(), queries.dim(), "query dimension mismatch");
    let m = queries.len();
    if m == 0 || data.is_empty() {
        return vec![Vec::new(); m];
    }
    let t_scan = trace.begin();
    obs::counter(obs::BATCH_QUERIES, "faiss_style").add(m as u64);
    let _span = obs::span(obs::BATCH_LATENCY, "faiss_style");
    let threads = opts.threads.max(1).min(m);
    let kern = distance::pair_kernel(opts.metric);
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); m];

    // Static round-robin assignment of queries to threads, as OpenMP's
    // default scheduling would do.
    std::thread::scope(|scope| {
        let chunks: Vec<(usize, &mut [Vec<Neighbor>])> =
            results.chunks_mut(m.div_ceil(threads)).enumerate().collect();
        for (chunk_idx, out) in chunks {
            let start = chunk_idx * m.div_ceil(threads);
            scope.spawn(move || {
                for (off, slot) in out.iter_mut().enumerate() {
                    let q = queries.get(start + off);
                    let mut heap = TopK::new(opts.k.max(1));
                    for (&id, v) in ids.iter().zip(data.iter()) {
                        heap.push(id, kern(q, v));
                    }
                    *slot = heap.into_sorted();
                }
            });
        }
    });
    let rows = (m as u64) * (data.len() as u64);
    trace.record_with(obs::SpanKind::BatchScan, t_scan, |sp| sp.rows_scanned = rows);
    results
}

/// The Milvus cache-aware engine (§3.2.1, Figure 3).
pub fn cache_aware_search(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    cache_aware_search_traced(data, ids, queries, opts, &mut obs::Trace::disabled())
}

/// [`cache_aware_search`] recording one [`obs::SpanKind::BatchScan`] span per
/// query block and one [`obs::SpanKind::HeapMerge`] span per block merge into
/// a caller-supplied trace. The hot loop itself is untouched: a disabled
/// trace records nothing and never reads the clock.
pub fn cache_aware_search_traced(
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
    trace: &mut obs::Trace,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.len(), ids.len(), "ids must match data rows");
    assert_eq!(data.dim(), queries.dim(), "query dimension mismatch");
    let m = queries.len();
    let n = data.len();
    if m == 0 || n == 0 {
        return vec![Vec::new(); m];
    }
    obs::counter(obs::BATCH_QUERIES, "cache_aware").add(m as u64);
    let _span = obs::span(obs::BATCH_LATENCY, "cache_aware");
    let k = opts.k.max(1);
    let t = opts.threads.max(1).min(n);
    let s = query_block_size(opts.l3_cache_bytes, data.dim(), t, k).min(m);
    let kern = BlockKernel::Single(distance::pair_kernel(opts.metric));

    // Thread r owns data rows [bounds[r], bounds[r+1]).
    let chunk = n.div_ceil(t);
    let bounds: Vec<usize> = (0..=t).map(|i| (i * chunk).min(n)).collect();

    let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(m);
    for block_start in (0..m).step_by(s) {
        let block_end = (block_start + s).min(m);
        let block_len = block_end - block_start;
        let t_block = trace.begin();

        // One heap per (thread, query-in-block): H[r][j] in Figure 3.
        let per_thread: Vec<Vec<TopK>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..t)
                .map(|r| {
                    let (lo, hi) = (bounds[r], bounds[r + 1]);
                    let kern = &kern;
                    scope.spawn(move || {
                        let mut heaps: Vec<TopK> =
                            (0..block_len).map(|_| TopK::new(k)).collect();
                        // The loaded vector is reused for the entire
                        // resident query block — the cache win.
                        scan_range_into_heaps(
                            kern, data, ids, lo..hi, queries, block_start, &mut heaps,
                        );
                        heaps
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("batch worker panicked")).collect()
        });
        trace.record_with(obs::SpanKind::BatchScan, t_block, |sp| {
            sp.rows_scanned = (block_len as u64) * (n as u64);
        });

        merge_block(per_thread, block_len, k, &mut results, trace);
    }
    results
}

/// Merge the `t` per-thread heaps of each query in a block, consuming them
/// (no heap clones) and appending one sorted result list per query.
fn merge_block(
    per_thread: Vec<Vec<TopK>>,
    block_len: usize,
    k: usize,
    results: &mut Vec<Vec<Neighbor>>,
    trace: &mut obs::Trace,
) {
    let t_merge = trace.begin();
    let mut merged: Vec<TopK> = (0..block_len).map(|_| TopK::new(k)).collect();
    for thread_heaps in per_thread {
        for (acc, heap) in merged.iter_mut().zip(thread_heaps) {
            acc.merge(heap);
        }
    }
    results.extend(merged.into_iter().map(TopK::into_sorted));
    trace.record(obs::SpanKind::HeapMerge, t_merge);
}

/// [`faiss_style_search`] scheduled on a persistent executor: one pool task
/// per query instead of one OS thread per query chunk. Results are
/// bit-identical to the spawning engine.
pub fn faiss_style_search_exec(
    exec: &Executor,
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.len(), ids.len(), "ids must match data rows");
    assert_eq!(data.dim(), queries.dim(), "query dimension mismatch");
    let m = queries.len();
    if m == 0 || data.is_empty() {
        return vec![Vec::new(); m];
    }
    obs::counter(obs::BATCH_QUERIES, "faiss_style_exec").add(m as u64);
    let _span = obs::span(obs::BATCH_LATENCY, "faiss_style_exec");
    let kern = distance::pair_kernel(opts.metric);
    let k = opts.k.max(1);
    exec.scoped_map(m, |qi| {
        let q = queries.get(qi);
        let mut heap = TopK::new(k);
        for (&id, v) in ids.iter().zip(data.iter()) {
            heap.push(id, kern(q, v));
        }
        heap.into_sorted()
    })
}

/// The cache-aware engine scheduled on a persistent executor, using the
/// register-tiled ×4 kernels where the metric has one. Per-pair results are
/// bit-identical to [`cache_aware_search`] (tiling replicates the untiled
/// accumulation order), so the two engines return identical lists.
pub fn cache_aware_search_exec(
    exec: &Executor,
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    cache_aware_search_exec_traced(exec, data, ids, queries, opts, &mut obs::Trace::disabled())
}

/// [`cache_aware_search_exec`] with the same tracing contract as
/// [`cache_aware_search_traced`]: one `BatchScan` span per query block and
/// one `HeapMerge` span per block merge. Spans cover the scoped fan-out and
/// are recorded on the calling thread after the join.
pub fn cache_aware_search_exec_traced(
    exec: &Executor,
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
    trace: &mut obs::Trace,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.len(), ids.len(), "ids must match data rows");
    assert_eq!(data.dim(), queries.dim(), "query dimension mismatch");
    let m = queries.len();
    let n = data.len();
    if m == 0 || n == 0 {
        return vec![Vec::new(); m];
    }
    obs::counter(obs::BATCH_QUERIES, "cache_aware_exec").add(m as u64);
    let _span = obs::span(obs::BATCH_LATENCY, "cache_aware_exec");
    let k = opts.k.max(1);
    let t = opts.threads.max(1).min(n);
    let s = query_block_size(opts.l3_cache_bytes, data.dim(), t, k).min(m);
    let kern = block_kernel(opts.metric);

    let chunk = n.div_ceil(t);
    let bounds: Vec<usize> = (0..=t).map(|i| (i * chunk).min(n)).collect();

    let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(m);
    for block_start in (0..m).step_by(s) {
        let block_end = (block_start + s).min(m);
        let block_len = block_end - block_start;
        let t_block = trace.begin();

        let range_scan = |r: usize| {
            let (lo, hi) = (bounds[r], bounds[r + 1]);
            let mut heaps: Vec<TopK> = (0..block_len).map(|_| TopK::new(k)).collect();
            scan_range_into_heaps(&kern, data, ids, lo..hi, queries, block_start, &mut heaps);
            heaps
        };
        // When traced, the timed fan-out exposes how long the block's range
        // tasks sat queued; the worst wait becomes one QueueWait span so the
        // profiler separates executor saturation from scan time without
        // recording `t` spans per block. The untraced path stays clock-free.
        let per_thread: Vec<Vec<TopK>> = if trace.enabled() {
            let timed = exec.scoped_map_timed(t, range_scan);
            let wait = timed.iter().map(|(_, timing)| *timing).max_by_key(|w| w.queue_wait());
            if let Some(wait) = wait {
                trace.record_window(obs::SpanKind::QueueWait, wait.enqueued, wait.started, |_| {});
            }
            timed.into_iter().map(|(heaps, _)| heaps).collect()
        } else {
            exec.scoped_map(t, range_scan)
        };
        trace.record_with(obs::SpanKind::BatchScan, t_block, |sp| {
            sp.rows_scanned = (block_len as u64) * (n as u64);
        });

        merge_block(per_thread, block_len, k, &mut results, trace);
    }
    results
}

/// The cache-aware engine over **SQ8 codes**: batch queries against a flat
/// `n × dim` u8 code matrix, never materializing decoded vectors.
///
/// Every query in a resident block is folded once into fused per-query state
/// ([`crate::distance::quant::PreparedSq8`]); executor range tasks then
/// stream the raw codes in ×4-row register tiles, so each 4-row group's
/// bytes are loaded once per resident query with zero per-row allocation.
/// Block sizing follows Eq. (1) — prepared state is one `dim`-float vector
/// per query, the same footprint the formula already charges.
///
/// Supports L2 and inner product (the metrics the SQ8 folding exists for);
/// cosine callers normalize and pass IP, as the IVF layer does.
pub fn sq8_cache_aware_search_exec(
    exec: &Executor,
    codes: &[u8],
    sq: &crate::ivf::sq8::ScalarQuantizer,
    ids: &[i64],
    queries: &VectorSet,
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    let dim = sq.dim();
    assert_eq!(codes.len(), ids.len() * dim, "codes must be n×dim bytes");
    assert_eq!(queries.dim(), dim, "query dimension mismatch");
    let m = queries.len();
    let n = ids.len();
    if m == 0 || n == 0 {
        return vec![Vec::new(); m];
    }
    obs::counter(obs::BATCH_QUERIES, "sq8_cache_aware_exec").add(m as u64);
    let _span = obs::span(obs::BATCH_LATENCY, "sq8_cache_aware_exec");
    let k = opts.k.max(1);
    let t = opts.threads.max(1).min(n);
    let s = query_block_size(opts.l3_cache_bytes, dim, t, k).min(m);

    let chunk = n.div_ceil(t);
    let bounds: Vec<usize> = (0..=t).map(|i| (i * chunk).min(n)).collect();

    let mut results: Vec<Vec<Neighbor>> = Vec::with_capacity(m);
    for block_start in (0..m).step_by(s) {
        let block_end = (block_start + s).min(m);
        // Preparation happens once per query (blocks partition the batch).
        let prepared: Vec<crate::distance::quant::PreparedSq8<'_>> = (block_start..block_end)
            .map(|qi| sq.prepare(queries.get(qi), opts.metric))
            .collect();
        let block_len = prepared.len();

        let per_thread: Vec<Vec<TopK>> = exec.scoped_map(t, |r| {
            let (lo, hi) = (bounds[r], bounds[r + 1]);
            let mut heaps: Vec<TopK> = (0..block_len).map(|_| TopK::new(k)).collect();
            let mut row = lo;
            while row + 4 <= hi {
                let off = row * dim;
                let rows = [
                    &codes[off..off + dim],
                    &codes[off + dim..off + 2 * dim],
                    &codes[off + 2 * dim..off + 3 * dim],
                    &codes[off + 3 * dim..off + 4 * dim],
                ];
                let vids = [ids[row], ids[row + 1], ids[row + 2], ids[row + 3]];
                for (p, heap) in prepared.iter().zip(heaps.iter_mut()) {
                    let d = p.distance_x4(rows);
                    for (lane, dist) in d.into_iter().enumerate() {
                        heap.push(vids[lane], dist);
                    }
                }
                row += 4;
            }
            for r in row..hi {
                let code = &codes[r * dim..(r + 1) * dim];
                for (p, heap) in prepared.iter().zip(heaps.iter_mut()) {
                    heap.push(ids[r], p.distance(code));
                }
            }
            heaps
        });

        merge_block(per_thread, block_len, k, &mut results, &mut obs::Trace::disabled());
    }
    results
}

/// Heterogeneous-k entry over [`cache_aware_search_exec`] for coalesced
/// scheduler batches whose queries agree on everything but `k`: run the
/// whole batch once at `max(ks)`, then truncate each query's sorted list to
/// its own `k`.
///
/// Exact for this engine because the scan is exhaustive: the sorted top-`j`
/// is a prefix of the sorted top-`k` for `j <= k` (same total order on
/// `(distance, id)`, same candidate set), so every truncated list is
/// bit-identical to a per-query run at that query's own `k`. `opts.k` is
/// ignored in favor of `ks`.
pub fn cache_aware_search_exec_hetk(
    exec: &Executor,
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    ks: &[usize],
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(queries.len(), ks.len(), "one k per query");
    let kmax = ks.iter().copied().max().unwrap_or(1).max(1);
    let opts = BatchOptions { k: kmax, ..opts.clone() };
    let mut results = cache_aware_search_exec(exec, data, ids, queries, &opts);
    for (r, &k) in results.iter_mut().zip(ks) {
        r.truncate(k.max(1));
    }
    results
}

/// Heterogeneous-k entry over [`sq8_cache_aware_search_exec`]; same
/// run-at-`max(ks)`-then-truncate contract and exactness argument as
/// [`cache_aware_search_exec_hetk`].
pub fn sq8_cache_aware_search_exec_hetk(
    exec: &Executor,
    codes: &[u8],
    sq: &crate::ivf::sq8::ScalarQuantizer,
    ids: &[i64],
    queries: &VectorSet,
    ks: &[usize],
    opts: &BatchOptions,
) -> Vec<Vec<Neighbor>> {
    assert_eq!(queries.len(), ks.len(), "one k per query");
    let kmax = ks.iter().copied().max().unwrap_or(1).max(1);
    let opts = BatchOptions { k: kmax, ..opts.clone() };
    let mut results = sq8_cache_aware_search_exec(exec, codes, sq, ids, queries, &opts);
    for (r, &k) in results.iter_mut().zip(ks) {
        r.truncate(k.max(1));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn eq1_block_size() {
        // 32 MB L3, d=128, t=16, k=50: s = 32MiB / (512 + 16*50*12) = ~3355.
        let s = query_block_size(32 * 1024 * 1024, 128, 16, 50);
        assert_eq!(s, 32 * 1024 * 1024 / (128 * 4 + 16 * 50 * 12));
        // Tiny cache never yields zero.
        assert_eq!(query_block_size(1, 128, 16, 50), 1);
    }

    #[test]
    fn both_engines_agree_with_each_other() {
        let data = random_set(300, 16, 1);
        let ids: Vec<i64> = (0..300).collect();
        let queries = random_set(23, 16, 2);
        for metric in [Metric::L2, Metric::InnerProduct] {
            let opts = BatchOptions { k: 7, metric, threads: 4, l3_cache_bytes: 4096 };
            let a = faiss_style_search(&data, &ids, &queries, &opts);
            let b = cache_aware_search(&data, &ids, &queries, &opts);
            assert_eq!(a.len(), b.len());
            for (qa, qb) in a.iter().zip(&b) {
                assert_eq!(qa, qb, "engines disagree under {metric}");
            }
        }
    }

    #[test]
    fn agrees_with_single_query_flat_scan() {
        let data = random_set(100, 8, 3);
        let ids: Vec<i64> = (0..100).collect();
        let queries = random_set(5, 8, 4);
        let opts = BatchOptions { k: 5, metric: Metric::L2, threads: 3, ..Default::default() };
        let res = cache_aware_search(&data, &ids, &queries, &opts);
        for (qi, q) in queries.iter().enumerate() {
            let mut heap = TopK::new(5);
            for (row, v) in data.iter().enumerate() {
                heap.push(row as i64, distance::l2_sq(q, v));
            }
            assert_eq!(res[qi], heap.into_sorted());
        }
    }

    #[test]
    fn empty_inputs() {
        let data = random_set(10, 4, 5);
        let ids: Vec<i64> = (0..10).collect();
        let empty_q = VectorSet::new(4);
        let opts = BatchOptions::default();
        assert!(cache_aware_search(&data, &ids, &empty_q, &opts).is_empty());
        let empty_d = VectorSet::new(4);
        let q = random_set(3, 4, 6);
        let res = cache_aware_search(&empty_d, &[], &q, &opts);
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(Vec::is_empty));
    }

    #[test]
    fn block_smaller_than_batch_still_covers_all_queries() {
        let data = random_set(50, 32, 7);
        let ids: Vec<i64> = (0..50).collect();
        let queries = random_set(40, 32, 8);
        // Force s = 1 via a tiny cache: every query is its own block.
        let opts =
            BatchOptions { k: 3, metric: Metric::L2, threads: 2, l3_cache_bytes: 1 };
        let res = cache_aware_search(&data, &ids, &queries, &opts);
        assert_eq!(res.len(), 40);
        assert!(res.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn more_threads_than_rows() {
        let data = random_set(3, 4, 9);
        let ids: Vec<i64> = (0..3).collect();
        let queries = random_set(2, 4, 10);
        let opts = BatchOptions { k: 2, threads: 16, ..Default::default() };
        let res = cache_aware_search(&data, &ids, &queries, &opts);
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].len(), 2);
    }

    #[test]
    fn exec_engines_are_bit_identical_to_spawning_engines() {
        let pool = Executor::new("t_batch", 3);
        let data = random_set(257, 24, 21);
        let ids: Vec<i64> = (0..257).map(|i| i * 3 + 1).collect();
        // 23 queries: exercises both full ×4 tiles and a ragged tail.
        let queries = random_set(23, 24, 22);
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let opts = BatchOptions { k: 9, metric, threads: 4, l3_cache_bytes: 8192 };
            let spawned = cache_aware_search(&data, &ids, &queries, &opts);
            let pooled = cache_aware_search_exec(&pool, &data, &ids, &queries, &opts);
            assert_eq!(spawned, pooled, "cache-aware engines disagree under {metric}");
            let spawned = faiss_style_search(&data, &ids, &queries, &opts);
            let pooled = faiss_style_search_exec(&pool, &data, &ids, &queries, &opts);
            assert_eq!(spawned, pooled, "faiss-style engines disagree under {metric}");
        }
    }

    #[test]
    fn exec_engine_empty_inputs() {
        let pool = Executor::new("t_batch_empty", 2);
        let data = random_set(10, 4, 23);
        let ids: Vec<i64> = (0..10).collect();
        let empty_q = VectorSet::new(4);
        let opts = BatchOptions::default();
        assert!(cache_aware_search_exec(&pool, &data, &ids, &empty_q, &opts).is_empty());
        let empty_d = VectorSet::new(4);
        let q = random_set(3, 4, 24);
        let res = cache_aware_search_exec(&pool, &empty_d, &[], &q, &opts);
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(Vec::is_empty));
    }

    #[test]
    fn sq8_batch_engine_matches_serial_fused_reference() {
        use crate::ivf::sq8::ScalarQuantizer;
        let pool = Executor::new("t_sq8_batch", 3);
        let data = random_set(257, 24, 31);
        let sq = ScalarQuantizer::train(&data);
        let mut codes = Vec::with_capacity(257 * 24);
        for row in data.iter() {
            sq.encode_into(row, &mut codes);
        }
        let ids: Vec<i64> = (0..257).map(|i| i * 2 + 5).collect();
        let queries = random_set(23, 24, 32);
        for metric in [Metric::L2, Metric::InnerProduct] {
            // Tiny cache forces multiple query blocks; 3 threads force range
            // splits and heap merges.
            let opts = BatchOptions { k: 9, metric, threads: 3, l3_cache_bytes: 4096 };
            let got = sq8_cache_aware_search_exec(&pool, &codes, &sq, &ids, &queries, &opts);
            assert_eq!(got.len(), 23);
            for (qi, res) in got.iter().enumerate() {
                let p = sq.prepare(queries.get(qi), metric);
                let mut heap = TopK::new(9);
                for (row, &id) in ids.iter().enumerate() {
                    heap.push(id, p.distance(&codes[row * 24..(row + 1) * 24]));
                }
                assert_eq!(*res, heap.into_sorted(), "sq8 batch diverged {metric} q={qi}");
            }
        }
    }

    #[test]
    fn sq8_batch_engine_empty_inputs() {
        use crate::ivf::sq8::ScalarQuantizer;
        let pool = Executor::new("t_sq8_empty", 2);
        let data = random_set(10, 4, 33);
        let sq = ScalarQuantizer::train(&data);
        let mut codes = Vec::new();
        for row in data.iter() {
            sq.encode_into(row, &mut codes);
        }
        let ids: Vec<i64> = (0..10).collect();
        let opts = BatchOptions::default();
        assert!(sq8_cache_aware_search_exec(&pool, &codes, &sq, &ids, &VectorSet::new(4), &opts)
            .is_empty());
        let q = random_set(3, 4, 34);
        let res = sq8_cache_aware_search_exec(&pool, &[], &sq, &[], &q, &opts);
        assert_eq!(res.len(), 3);
        assert!(res.iter().all(Vec::is_empty));
    }

    #[test]
    fn hetk_wrappers_match_per_query_runs_at_each_own_k() {
        use crate::ivf::sq8::ScalarQuantizer;
        let pool = Executor::new("t_hetk", 3);
        let data = random_set(157, 24, 41);
        let ids: Vec<i64> = (0..157).map(|i| i * 7 + 2).collect();
        let queries = random_set(6, 24, 42);
        let ks = [1usize, 3, 9, 2, 9, 5];
        let sq = ScalarQuantizer::train(&data);
        let mut codes = Vec::new();
        for row in data.iter() {
            sq.encode_into(row, &mut codes);
        }
        for metric in [Metric::L2, Metric::InnerProduct] {
            let opts = BatchOptions { k: 999, metric, threads: 3, l3_cache_bytes: 4096 };
            let got = cache_aware_search_exec_hetk(&pool, &data, &ids, &queries, &ks, &opts);
            for (qi, &k) in ks.iter().enumerate() {
                let one = queries.gather(&[qi]);
                let opts1 = BatchOptions { k, ..opts.clone() };
                let solo = cache_aware_search_exec(&pool, &data, &ids, &one, &opts1);
                assert_eq!(got[qi], solo[0], "flat hetk diverged {metric} q={qi} k={k}");
            }
            let got = sq8_cache_aware_search_exec_hetk(&pool, &codes, &sq, &ids, &queries, &ks, &opts);
            for (qi, &k) in ks.iter().enumerate() {
                let one = queries.gather(&[qi]);
                let opts1 = BatchOptions { k, ..opts.clone() };
                let solo = sq8_cache_aware_search_exec(&pool, &codes, &sq, &ids, &one, &opts1);
                assert_eq!(got[qi], solo[0], "sq8 hetk diverged {metric} q={qi} k={k}");
            }
        }
    }

    #[test]
    fn faiss_style_more_threads_than_queries() {
        let data = random_set(20, 4, 11);
        let ids: Vec<i64> = (0..20).collect();
        let queries = random_set(2, 4, 12);
        let opts = BatchOptions { k: 4, threads: 8, ..Default::default() };
        let res = faiss_style_search(&data, &ids, &queries, &opts);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|r| r.len() == 4));
    }
}

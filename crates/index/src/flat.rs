//! FLAT: exact brute-force index.
//!
//! The exact-search baseline (and the fine "quantizer" of IVF_FLAT, which
//! keeps original vector representations, §3.1). Also serves as the
//! ground-truth oracle for recall measurements in the benchmark harness.

use crate::distance;
use crate::error::{IndexError, Result};
use crate::metric::Metric;
use crate::topk::{Neighbor, TopK};
use crate::traits::{BuildParams, IndexBuilder, SearchParams, VectorIndex};
use crate::vectors::VectorSet;

/// Exact brute-force index over a dense vector set.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    metric: Metric,
    vectors: VectorSet,
    ids: Vec<i64>,
}

impl FlatIndex {
    /// Build over `vectors`, mapping row `i` to `ids[i]`.
    pub fn build(metric: Metric, vectors: VectorSet, ids: Vec<i64>) -> Result<Self> {
        if metric.is_binary() {
            return Err(IndexError::UnsupportedMetric { metric: metric.name(), index: "FLAT" });
        }
        if vectors.len() != ids.len() {
            return Err(IndexError::invalid(
                "ids",
                format!("{} ids for {} vectors", ids.len(), vectors.len()),
            ));
        }
        Ok(Self { metric, vectors, ids })
    }

    /// Borrow the underlying vectors (used by SQ8H and the GPU simulator).
    pub fn vectors(&self) -> &VectorSet {
        &self.vectors
    }

    /// Borrow the id mapping.
    pub fn ids(&self) -> &[i64] {
        &self.ids
    }

    fn check_dim(&self, query: &[f32]) -> Result<()> {
        if query.len() != self.vectors.dim() {
            return Err(IndexError::DimensionMismatch {
                expected: self.vectors.dim(),
                got: query.len(),
            });
        }
        Ok(())
    }
}

impl VectorIndex for FlatIndex {
    fn name(&self) -> &'static str {
        "FLAT"
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>> {
        self.check_dim(query)?;
        let mut heap = TopK::new(params.k.max(1));
        for (row, v) in self.vectors.iter().enumerate() {
            heap.push(self.ids[row], distance::distance(self.metric, query, v));
        }
        Ok(heap.into_sorted())
    }

    fn search_filtered(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: &dyn Fn(i64) -> bool,
    ) -> Result<Vec<Neighbor>> {
        self.check_dim(query)?;
        let mut heap = TopK::new(params.k.max(1));
        for (row, v) in self.vectors.iter().enumerate() {
            let id = self.ids[row];
            if allow(id) {
                heap.push(id, distance::distance(self.metric, query, v));
            }
        }
        Ok(heap.into_sorted())
    }

    fn memory_bytes(&self) -> usize {
        self.vectors.memory_bytes() + self.ids.len() * std::mem::size_of::<i64>()
    }
}

/// Registry builder for [`FlatIndex`].
pub struct FlatBuilder;

impl IndexBuilder for FlatBuilder {
    fn name(&self) -> &'static str {
        "FLAT"
    }

    fn build(
        &self,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>> {
        Ok(Box::new(FlatIndex::build(params.metric, vectors.clone(), ids.to_vec())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlatIndex {
        let vs = VectorSet::from_flat(2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 2.0, 3.0, 3.0]);
        FlatIndex::build(Metric::L2, vs, vec![10, 11, 12, 13]).unwrap()
    }

    #[test]
    fn exact_nearest() {
        let idx = sample();
        let res = idx.search(&[0.9, 0.1], &SearchParams::top_k(2)).unwrap();
        assert_eq!(res[0].id, 11);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn filtered_search_excludes() {
        let idx = sample();
        let res = idx
            .search_filtered(&[0.9, 0.1], &SearchParams::top_k(2), &|id| id != 11)
            .unwrap();
        assert_ne!(res[0].id, 11);
    }

    #[test]
    fn inner_product_prefers_large_dot() {
        let vs = VectorSet::from_flat(2, vec![1.0, 0.0, 5.0, 0.0]);
        let idx = FlatIndex::build(Metric::InnerProduct, vs, vec![0, 1]).unwrap();
        let res = idx.search(&[1.0, 0.0], &SearchParams::top_k(1)).unwrap();
        assert_eq!(res[0].id, 1);
        assert_eq!(Metric::InnerProduct.display_score(res[0].dist), 5.0);
    }

    #[test]
    fn dimension_mismatch_error() {
        let idx = sample();
        assert!(matches!(
            idx.search(&[1.0], &SearchParams::top_k(1)),
            Err(IndexError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn id_count_mismatch_error() {
        let vs = VectorSet::from_flat(2, vec![0.0; 4]);
        assert!(FlatIndex::build(Metric::L2, vs, vec![1]).is_err());
    }

    #[test]
    fn binary_metric_rejected() {
        let vs = VectorSet::from_flat(2, vec![0.0; 4]);
        assert!(matches!(
            FlatIndex::build(Metric::Hamming, vs, vec![1, 2]),
            Err(IndexError::UnsupportedMetric { .. })
        ));
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let idx = sample();
        let res = idx.search(&[0.0, 0.0], &SearchParams::top_k(100)).unwrap();
        assert_eq!(res.len(), 4);
    }
}

//! K-means clustering — the coarse quantizer of every IVF index (§3.1).
//!
//! "The K-means clustering algorithm is commonly used to construct the
//! codebook C where each codeword is the centroid and z(v) is the closest
//! centroid to v." We use k-means++ seeding followed by Lloyd iterations;
//! assignment is parallelized with rayon and uses the SIMD distance kernels.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::distance;
use crate::error::{IndexError, Result};
use crate::vectors::VectorSet;

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// The codebook: `k` centroids of the training dimension.
    pub centroids: VectorSet,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations actually executed.
    pub iterations: usize,
}

impl KMeans {
    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Index of the centroid closest to `v` (the quantizer `z(v)`).
    pub fn assign(&self, v: &[f32]) -> usize {
        nearest_centroid(&self.centroids, v).0
    }

    /// The `nprobe` centroid indices closest to `v`, best first (§3.1 step 1).
    pub fn assign_multi(&self, v: &[f32], nprobe: usize) -> Vec<usize> {
        let mut dists: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, distance::l2_sq(v, c)))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        dists.truncate(nprobe.max(1));
        dists.into_iter().map(|(i, _)| i).collect()
    }
}

/// Index and distance of the centroid nearest to `v`.
pub fn nearest_centroid(centroids: &VectorSet, v: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = distance::l2_sq(v, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// Train `k` centroids over `data` with k-means++ seeding and at most
/// `max_iters` Lloyd iterations. Deterministic for a given `seed`.
pub fn train(data: &VectorSet, k: usize, max_iters: usize, seed: u64) -> Result<KMeans> {
    let n = data.len();
    if k == 0 {
        return Err(IndexError::invalid("k", "must be >= 1"));
    }
    if n < k {
        return Err(IndexError::InsufficientTrainingData { need: k, got: n });
    }
    let dim = data.dim();
    let mut rng = StdRng::seed_from_u64(seed);

    let mut centroids = seed_plus_plus(data, k, &mut rng);
    let mut assignments = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // Assignment step (parallel, SIMD kernels under the hood).
        let stats: Vec<(usize, f32)> = (0..n)
            .into_par_iter()
            .map(|i| nearest_centroid(&centroids, data.get(i)))
            .collect();
        let new_inertia: f64 = stats.iter().map(|s| s.1 as f64).sum();
        for (i, s) in stats.iter().enumerate() {
            assignments[i] = s.0;
        }

        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (i, &c) in assignments.iter().enumerate() {
            counts[c] += 1;
            let row = data.get(i);
            for (d, &x) in row.iter().enumerate() {
                sums[c * dim + d] += x as f64;
            }
        }
        let mut next = VectorSet::with_capacity(dim, k);
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with a random training point so the
                // codebook keeps exactly k usable codewords.
                next.push(data.get(rng.gen_range(0..n)));
            } else {
                let inv = 1.0 / counts[c] as f64;
                let row: Vec<f32> =
                    (0..dim).map(|d| (sums[c * dim + d] * inv) as f32).collect();
                next.push(&row);
            }
        }
        centroids = next;

        // Convergence: relative inertia improvement below 0.1%.
        if new_inertia.is_finite() && inertia.is_finite() {
            let rel = (inertia - new_inertia).abs() / inertia.max(1e-12);
            inertia = new_inertia;
            if rel < 1e-3 {
                break;
            }
        } else {
            inertia = new_inertia;
        }
    }

    Ok(KMeans { centroids, inertia, iterations })
}

/// K-means++ seeding: first centroid uniform, the rest D²-weighted.
fn seed_plus_plus(data: &VectorSet, k: usize, rng: &mut StdRng) -> VectorSet {
    let n = data.len();
    let mut centroids = VectorSet::with_capacity(data.dim(), k);
    centroids.push(data.get(rng.gen_range(0..n)));
    let mut d2: Vec<f32> = (0..n)
        .map(|i| distance::l2_sq(data.get(i), centroids.get(0)))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().map(|&x| x as f64).sum();
        let pick = if total <= 0.0 {
            // All points coincide with current centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &x) in d2.iter().enumerate() {
                target -= x as f64;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.push(data.get(pick));
        let c = centroids.len() - 1;
        for (i, slot) in d2.iter_mut().enumerate() {
            let d = distance::l2_sq(data.get(i), centroids.get(c));
            if d < *slot {
                *slot = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(per: usize, centers: &[[f32; 2]], spread: f32, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(2);
        for c in centers {
            for _ in 0..per {
                vs.push(&[
                    c[0] + rng.gen_range(-spread..spread),
                    c[1] + rng.gen_range(-spread..spread),
                ]);
            }
        }
        vs
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let data = blobs(50, &[[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]], 0.5, 1);
        let km = train(&data, 3, 25, 42).unwrap();
        assert_eq!(km.k(), 3);
        // Every point should land within 2.0 of its centroid.
        for v in data.iter() {
            let (_, d) = nearest_centroid(&km.centroids, v);
            assert!(d < 4.0, "point too far from centroid: {d}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs(30, &[[0.0, 0.0], [5.0, 5.0]], 0.3, 7);
        let a = train(&data, 2, 10, 9).unwrap();
        let b = train(&data, 2, 10, 9).unwrap();
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn errors_on_too_few_points() {
        let data = blobs(1, &[[0.0, 0.0]], 0.1, 3);
        assert!(matches!(
            train(&data, 5, 10, 0),
            Err(IndexError::InsufficientTrainingData { .. })
        ));
    }

    #[test]
    fn errors_on_zero_k() {
        let data = blobs(5, &[[0.0, 0.0]], 0.1, 3);
        assert!(train(&data, 0, 10, 0).is_err());
    }

    #[test]
    fn assign_multi_orders_by_distance() {
        let mut cents = VectorSet::new(1);
        for x in [0.0f32, 10.0, 20.0] {
            cents.push(&[x]);
        }
        let km = KMeans { centroids: cents, inertia: 0.0, iterations: 0 };
        assert_eq!(km.assign_multi(&[9.0], 2), vec![1, 0]);
        assert_eq!(km.assign(&[19.0]), 2);
    }

    #[test]
    fn handles_duplicate_points() {
        let mut vs = VectorSet::new(2);
        for _ in 0..20 {
            vs.push(&[1.0, 1.0]);
        }
        let km = train(&vs, 4, 5, 11).unwrap();
        assert_eq!(km.k(), 4);
    }
}

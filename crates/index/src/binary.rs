//! Binary-vector metrics: Hamming, Jaccard and Tanimoto distance (§2.1, §6.2).
//!
//! Binary vectors are bit-packed into `u8` bytes, little-endian within each
//! byte (bit `i` of the vector is bit `i % 8` of byte `i / 8`).

use crate::metric::Metric;

/// Number of bytes needed to store `bits` bits.
#[inline]
pub fn bytes_for_bits(bits: usize) -> usize {
    bits.div_ceil(8)
}

/// Pack a boolean slice into bytes.
pub fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bytes_for_bits(bits.len())];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpack bytes into `nbits` booleans.
pub fn unpack_bits(bytes: &[u8], nbits: usize) -> Vec<bool> {
    (0..nbits).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

/// Hamming distance: number of differing bits.
#[inline]
pub fn hamming(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
}

/// Jaccard distance: `1 - |a ∧ b| / |a ∨ b|`; two empty sets have distance 0.
#[inline]
pub fn jaccard(a: &[u8], b: &[u8]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut inter = 0u32;
    let mut union = 0u32;
    for (x, y) in a.iter().zip(b) {
        inter += (x & y).count_ones();
        union += (x | y).count_ones();
    }
    if union == 0 {
        0.0
    } else {
        1.0 - inter as f32 / union as f32
    }
}

/// Tanimoto distance: `-log2(similarity)` of the Tanimoto coefficient, the
/// form used for chemical-fingerprint search (§6.2). Disjoint non-empty sets
/// yield `f32::INFINITY`.
#[inline]
pub fn tanimoto(a: &[u8], b: &[u8]) -> f32 {
    let sim = 1.0 - jaccard(a, b);
    if sim <= 0.0 {
        f32::INFINITY
    } else {
        -sim.log2()
    }
}

/// Internal distance (smaller = better) for a binary metric.
///
/// # Panics
/// Panics if called with a float metric.
#[inline]
pub fn binary_distance(metric: Metric, a: &[u8], b: &[u8]) -> f32 {
    match metric {
        Metric::Hamming => hamming(a, b) as f32,
        Metric::Jaccard => jaccard(a, b),
        Metric::Tanimoto => tanimoto(a, b),
        m => panic!("float metric {m} passed to binary_distance()"),
    }
}

/// A collection of equal-width bit-packed binary vectors.
#[derive(Debug, Clone, Default)]
pub struct BinaryVectorSet {
    nbits: usize,
    data: Vec<u8>,
}

impl BinaryVectorSet {
    /// Create an empty set of `nbits`-wide vectors.
    pub fn new(nbits: usize) -> Self {
        Self { nbits, data: Vec::new() }
    }

    /// Bit width of each vector.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Number of vectors stored.
    pub fn len(&self) -> usize {
        if self.nbits == 0 {
            0
        } else {
            self.data.len() / bytes_for_bits(self.nbits)
        }
    }

    /// True when no vectors are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append one packed vector.
    ///
    /// # Panics
    /// Panics if `packed` is not exactly `bytes_for_bits(nbits)` long.
    pub fn push(&mut self, packed: &[u8]) {
        assert_eq!(packed.len(), bytes_for_bits(self.nbits), "wrong packed width");
        self.data.extend_from_slice(packed);
    }

    /// Borrow vector `i`.
    pub fn get(&self, i: usize) -> &[u8] {
        let w = bytes_for_bits(self.nbits);
        &self.data[i * w..(i + 1) * w]
    }

    /// Brute-force top-k scan under `metric`; returns `(row, distance)` pairs
    /// sorted ascending by distance.
    pub fn search(&self, metric: Metric, query: &[u8], k: usize) -> Vec<(usize, f32)> {
        let mut all: Vec<(usize, f32)> = (0..self.len())
            .map(|i| (i, binary_distance(metric, query, self.get(i))))
            .collect();
        all.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let bits = vec![true, false, true, true, false, false, false, true, true, false];
        let packed = pack_bits(&bits);
        assert_eq!(unpack_bits(&packed, bits.len()), bits);
    }

    #[test]
    fn hamming_known() {
        assert_eq!(hamming(&[0b1010], &[0b0101]), 4);
        assert_eq!(hamming(&[0xFF, 0x00], &[0xFF, 0x00]), 0);
        assert_eq!(hamming(&[0x00], &[0xFF]), 8);
    }

    #[test]
    fn jaccard_known() {
        // a = {0,1}, b = {1,2}: intersection 1, union 3.
        assert!((jaccard(&[0b011], &[0b110]) - (1.0 - 1.0 / 3.0)).abs() < 1e-6);
        assert_eq!(jaccard(&[0], &[0]), 0.0);
        assert_eq!(jaccard(&[0b1], &[0b10]), 1.0);
    }

    #[test]
    fn tanimoto_identical_is_zero() {
        assert_eq!(tanimoto(&[0b1011], &[0b1011]), 0.0);
        assert_eq!(tanimoto(&[0b1], &[0b10]), f32::INFINITY);
    }

    #[test]
    fn set_search_orders_by_distance() {
        let mut set = BinaryVectorSet::new(8);
        set.push(&[0b0000_0000]);
        set.push(&[0b0000_1111]);
        set.push(&[0b1111_1111]);
        let res = set.search(Metric::Hamming, &[0b0000_0001], 3);
        assert_eq!(res.iter().map(|r| r.0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(res[0].1, 1.0);
    }

    #[test]
    fn empty_set() {
        let set = BinaryVectorSet::new(16);
        assert!(set.is_empty());
        assert!(set.search(Metric::Jaccard, &[0, 0], 5).is_empty());
    }
}

//! Runtime SIMD instruction selection (paper §3.2.2).
//!
//! The paper describes factoring the similarity-computing functions into one
//! source file per ISA level (SSE, AVX, AVX2, AVX-512), compiling each with
//! the matching flag, and at runtime hooking the right function pointers based
//! on CPU flags. Rust lets us express the same design with
//! `#[target_feature]` functions plus `is_x86_feature_detected!`: each level
//! lives in its own module of [`crate::distance`], and this module picks the
//! level once at startup and caches the choice in an atomic.

use std::sync::atomic::{AtomicU8, Ordering};

/// An ISA level for the distance kernels, ordered from weakest to strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar code; always available.
    Scalar = 0,
    /// 128-bit SSE (baseline on x86-64).
    Sse = 1,
    /// 256-bit AVX2 with FMA.
    Avx2 = 2,
    /// 512-bit AVX-512F.
    Avx512 = 3,
}

impl SimdLevel {
    /// All levels from weakest to strongest.
    pub const ALL: [SimdLevel; 4] =
        [SimdLevel::Scalar, SimdLevel::Sse, SimdLevel::Avx2, SimdLevel::Avx512];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse => "SSE",
            SimdLevel::Avx2 => "AVX2",
            SimdLevel::Avx512 => "AVX512",
        }
    }

    /// Whether the current CPU can execute kernels at this level.
    pub fn supported(self) -> bool {
        match self {
            SimdLevel::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse => is_x86_feature_detected!("sse4.1"),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => {
                is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
            }
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static ACTIVE_LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn detect_best() -> SimdLevel {
    for level in SimdLevel::ALL.iter().rev() {
        if level.supported() {
            return *level;
        }
    }
    SimdLevel::Scalar
}

/// The level kernels currently dispatch to. Detected once, overridable with
/// [`force_level`] (used by the Figure 12 benchmark to pin AVX2 vs AVX-512).
pub fn active_level() -> SimdLevel {
    let raw = ACTIVE_LEVEL.load(Ordering::Relaxed);
    if raw != LEVEL_UNSET {
        return match raw {
            0 => SimdLevel::Scalar,
            1 => SimdLevel::Sse,
            2 => SimdLevel::Avx2,
            _ => SimdLevel::Avx512,
        };
    }
    let best = detect_best();
    ACTIVE_LEVEL.store(best as u8, Ordering::Relaxed);
    best
}

/// Pin dispatch to a specific level. Returns `Err` with the detected best
/// level if the CPU cannot execute the requested one.
pub fn force_level(level: SimdLevel) -> Result<(), SimdLevel> {
    if !level.supported() {
        return Err(detect_best());
    }
    ACTIVE_LEVEL.store(level as u8, Ordering::Relaxed);
    Ok(())
}

/// Reset to auto-detection (used by tests that pin levels).
pub fn reset_level() {
    ACTIVE_LEVEL.store(LEVEL_UNSET, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_supported() {
        assert!(SimdLevel::Scalar.supported());
    }

    #[test]
    fn active_level_is_supported() {
        reset_level();
        assert!(active_level().supported());
    }

    #[test]
    fn force_and_reset() {
        assert!(force_level(SimdLevel::Scalar).is_ok());
        assert_eq!(active_level(), SimdLevel::Scalar);
        reset_level();
        assert!(active_level().supported());
    }

    #[test]
    fn levels_ordered() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse);
        assert!(SimdLevel::Avx2 < SimdLevel::Avx512);
    }
}

//! NSG: Navigating Spreading-out Graph index (§2.2, Fu et al., VLDB 2019 — the
//! paper calls it RNSG).
//!
//! A single-layer proximity graph with a designated *navigating node* (the
//! medoid). Construction: (1) an approximate kNN graph is produced with a
//! throw-away HNSW; (2) each node's candidate pool (kNN ∪ nodes visited while
//! searching the node from the medoid) is pruned with the MRNG edge-selection
//! rule bounding out-degree to `R`; (3) a spanning pass from the medoid
//! guarantees connectivity. Search is a beam search from the medoid.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::distance;
use crate::error::{IndexError, Result};
use crate::hnsw::HnswIndex;
use crate::metric::Metric;
use crate::topk::{Neighbor, TopK};
use crate::traits::{BuildParams, IndexBuilder, SearchParams, VectorIndex};
use crate::vectors::VectorSet;

/// An NSG graph index.
pub struct NsgIndex {
    metric: Metric,
    inner_metric: Metric,
    dim: usize,
    vectors: VectorSet,
    ids: Vec<i64>,
    adjacency: Vec<Vec<u32>>,
    medoid: u32,
}

impl NsgIndex {
    /// Build the graph over `vectors` (row `i` ↔ `ids[i]`).
    pub fn build(vectors: &VectorSet, ids: &[i64], params: &BuildParams) -> Result<Self> {
        if params.metric.is_binary() {
            return Err(IndexError::UnsupportedMetric {
                metric: params.metric.name(),
                index: "NSG",
            });
        }
        if vectors.len() != ids.len() {
            return Err(IndexError::invalid(
                "ids",
                format!("{} ids for {} vectors", ids.len(), vectors.len()),
            ));
        }
        if vectors.is_empty() {
            return Err(IndexError::InsufficientTrainingData { need: 1, got: 0 });
        }
        let dim = vectors.dim();
        let (inner_metric, data) = if params.metric == Metric::Cosine {
            let mut vs = vectors.clone();
            for i in 0..vs.len() {
                distance::normalize(vs.get_mut(i));
            }
            (Metric::InnerProduct, vs)
        } else {
            (params.metric, vectors.clone())
        };
        let n = data.len();
        let r = params.nsg_out_degree.max(2);

        // Step 1: approximate kNN lists from a scaffold HNSW over the same
        // (already normalized) data with its internal metric.
        let scaffold_params = BuildParams {
            metric: inner_metric,
            hnsw_m: r.clamp(4, 24),
            hnsw_ef_construction: (2 * r).max(64),
            seed: params.seed ^ 0x004E_5347,
            ..params.clone()
        };
        let scaffold_ids: Vec<i64> = (0..n as i64).collect();
        let scaffold = HnswIndex::build(&data, &scaffold_ids, &scaffold_params)?;

        // Step 2: medoid = point nearest the centroid.
        let mut centroid = vec![0.0f32; dim];
        for row in data.iter() {
            for (d, &x) in row.iter().enumerate() {
                centroid[d] += x;
            }
        }
        for x in centroid.iter_mut() {
            *x /= n as f32;
        }
        let medoid = (0..n)
            .min_by(|&a, &b| {
                distance::l2_sq(data.get(a), &centroid)
                    .total_cmp(&distance::l2_sq(data.get(b), &centroid))
            })
            .expect("non-empty") as u32;

        // Step 3: approximate kNN lists for every node (the base graph).
        let pool_size = (2 * r).max(16);
        let sp = SearchParams { k: pool_size, ef: (2 * pool_size).max(64), ..Default::default() };
        let knn: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|node| {
                scaffold
                    .search(data.get(node), &sp)
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|c| c.id as usize != node)
                    .map(|c| c.id as u32)
                    .collect()
            })
            .collect();

        // Step 4: per-node candidate pool = kNN ∪ nodes visited while
        // searching the node from the medoid over the kNN graph (this is
        // what gives NSG its navigable long-range edges: the visited set
        // spans the route from the navigating node), then MRNG pruning.
        let medoid_u = medoid;
        // A few pseudo-random long-link candidates per node keep the graph
        // navigable even when the data forms well-separated islands (the
        // small-world ingredient; MRNG pruning keeps only the non-dominated
        // directions).
        let n_random = ((n as f64).log2().ceil() as usize).clamp(4, 32);
        let adjacency: Vec<Vec<u32>> = (0..n)
            .into_par_iter()
            .map(|node| {
                let query = data.get(node);
                let visited =
                    knn_graph_search(&data, inner_metric, &knn, medoid_u, query, pool_size);
                let mut rng = StdRng::seed_from_u64(
                    params.seed ^ 0x105 ^ (node as u64).wrapping_mul(0x9E37_79B9),
                );
                let randoms = (0..n_random).map(|_| {
                    let c = rng.gen_range(0..n);
                    Neighbor::new(
                        c as i64,
                        distance::distance(inner_metric, query, data.get(c)),
                    )
                });
                let mut pool: Vec<Neighbor> = knn[node]
                    .iter()
                    .map(|&c| {
                        Neighbor::new(
                            c as i64,
                            distance::distance(inner_metric, query, data.get(c as usize)),
                        )
                    })
                    .chain(visited)
                    .chain(randoms)
                    .filter(|c| c.id as usize != node)
                    .collect();
                // Duplicates of an id carry identical distances, so the
                // (dist, id) sort makes them adjacent for dedup.
                pool.sort_unstable();
                pool.dedup_by_key(|c| c.id);
                mrng_prune(&data, inner_metric, query, &pool, r)
            })
            .collect();

        let mut index = Self {
            metric: params.metric,
            inner_metric,
            dim,
            vectors: data,
            ids: ids.to_vec(),
            adjacency,
            medoid,
        };
        index.ensure_connected();
        Ok(index)
    }

    /// DFS from the medoid; any unreached node gets a bridging edge from its
    /// nearest reached candidate (the NSG "spanning" pass).
    fn ensure_connected(&mut self) {
        let n = self.vectors.len();
        let mut seen = vec![false; n];
        let mut stack = vec![self.medoid];
        seen[self.medoid as usize] = true;
        let mut reached = 1usize;
        while let Some(u) = stack.pop() {
            for &v in &self.adjacency[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    reached += 1;
                    stack.push(v);
                }
            }
        }
        if reached == n {
            return;
        }
        for node in 0..n {
            if !seen[node] {
                // Bridge from the nearest reached node (linear scan is fine:
                // unreached nodes are rare on realistic data).
                let query = self.vectors.get(node).to_vec();
                let mut best = (self.medoid, f32::INFINITY);
                for (cand, &reached) in seen.iter().enumerate() {
                    if reached {
                        let d = distance::distance(
                            self.inner_metric,
                            &query,
                            self.vectors.get(cand),
                        );
                        if d < best.1 {
                            best = (cand as u32, d);
                        }
                    }
                }
                self.adjacency[best.0 as usize].push(node as u32);
                self.adjacency[node].push(best.0);
                // Newly reached: flood from it.
                let mut stack = vec![node as u32];
                seen[node] = true;
                while let Some(u) = stack.pop() {
                    for &v in &self.adjacency[u as usize].clone() {
                        if !seen[v as usize] {
                            seen[v as usize] = true;
                            stack.push(v);
                        }
                    }
                }
            }
        }
    }

    fn search_impl(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: Option<&dyn Fn(i64) -> bool>,
    ) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(IndexError::DimensionMismatch { expected: self.dim, got: query.len() });
        }
        let mut q = query.to_vec();
        if self.metric == Metric::Cosine {
            distance::normalize(&mut q);
        }
        let ef = params.ef.max(params.k).max(1);
        let n = self.vectors.len();
        let mut visited = vec![false; n];
        let mut best = TopK::new(ef);
        // Min-heap frontier keyed by distance: Reverse(Neighbor) with the
        // node index stored in the id field.
        let mut frontier = std::collections::BinaryHeap::new();
        let d0 = distance::distance(self.inner_metric, &q, self.vectors.get(self.medoid as usize));
        visited[self.medoid as usize] = true;
        best.push(self.medoid as i64, d0);
        frontier.push(std::cmp::Reverse(Neighbor::new(self.medoid as i64, d0)));

        while let Some(std::cmp::Reverse(cur)) = frontier.pop() {
            if cur.dist > best.threshold() && best.len() >= ef {
                break;
            }
            let node = cur.id as u32;
            for &nb in &self.adjacency[node as usize] {
                if !visited[nb as usize] {
                    visited[nb as usize] = true;
                    let dd = distance::distance(
                        self.inner_metric,
                        &q,
                        self.vectors.get(nb as usize),
                    );
                    if dd < best.threshold() {
                        best.push(nb as i64, dd);
                        frontier.push(std::cmp::Reverse(Neighbor::new(nb as i64, dd)));
                    }
                }
            }
        }

        let mut heap = TopK::new(params.k.max(1));
        for cand in best.into_sorted() {
            let id = self.ids[cand.id as usize];
            if allow.is_none_or(|f| f(id)) {
                heap.push(id, cand.dist);
            }
        }
        Ok(heap.into_sorted())
    }
}

/// Beam search over the intermediate kNN graph from `start`, returning the
/// visited nodes with their distances to `query` (bounded by `4 * width`).
fn knn_graph_search(
    data: &VectorSet,
    metric: Metric,
    knn: &[Vec<u32>],
    start: u32,
    query: &[f32],
    width: usize,
) -> Vec<Neighbor> {
    let n = knn.len();
    let cap = (4 * width).max(8);
    let mut visited_set = vec![false; n];
    let mut visited: Vec<Neighbor> = Vec::with_capacity(cap);
    let mut best = TopK::new(width.max(1));
    let mut frontier = std::collections::BinaryHeap::new();
    let d0 = distance::distance(metric, query, data.get(start as usize));
    visited_set[start as usize] = true;
    visited.push(Neighbor::new(start as i64, d0));
    best.push(start as i64, d0);
    frontier.push(std::cmp::Reverse(Neighbor::new(start as i64, d0)));

    while let Some(std::cmp::Reverse(cur)) = frontier.pop() {
        if cur.dist > best.threshold() || visited.len() >= cap {
            break;
        }
        for &nb in &knn[cur.id as usize] {
            if !visited_set[nb as usize] {
                visited_set[nb as usize] = true;
                let d = distance::distance(metric, query, data.get(nb as usize));
                visited.push(Neighbor::new(nb as i64, d));
                if d < best.threshold() {
                    best.push(nb as i64, d);
                    frontier.push(std::cmp::Reverse(Neighbor::new(nb as i64, d)));
                }
                if visited.len() >= cap {
                    break;
                }
            }
        }
    }
    visited
}

/// MRNG edge selection: keep a candidate only if no already-kept neighbor is
/// closer to it than the query is (same dominance rule HNSW uses).
fn mrng_prune(
    data: &VectorSet,
    metric: Metric,
    _query: &[f32],
    sorted_cands: &[Neighbor],
    r: usize,
) -> Vec<u32> {
    let mut kept: Vec<u32> = Vec::with_capacity(r);
    for c in sorted_cands {
        if kept.len() >= r {
            break;
        }
        let cu = c.id as usize;
        let dominated = kept.iter().any(|&k| {
            distance::distance(metric, data.get(cu), data.get(k as usize)) < c.dist
        });
        if !dominated {
            kept.push(c.id as u32);
        }
    }
    if kept.len() < r {
        for c in sorted_cands {
            if kept.len() >= r {
                break;
            }
            if !kept.contains(&(c.id as u32)) {
                kept.push(c.id as u32);
            }
        }
    }
    kept
}

impl VectorIndex for NsgIndex {
    fn name(&self) -> &'static str {
        "NSG"
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>> {
        self.search_impl(query, params, None)
    }

    fn search_filtered(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: &dyn Fn(i64) -> bool,
    ) -> Result<Vec<Neighbor>> {
        self.search_impl(query, params, Some(allow))
    }

    fn memory_bytes(&self) -> usize {
        let links: usize = self.adjacency.iter().map(|l| l.len() * 4).sum();
        self.vectors.memory_bytes() + links + self.ids.len() * 8
    }
}

/// Registry builder for [`NsgIndex`].
pub struct NsgBuilder;

impl IndexBuilder for NsgBuilder {
    fn name(&self) -> &'static str {
        "NSG"
    }

    fn build(
        &self,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>> {
        Ok(Box::new(NsgIndex::build(vectors, ids, params)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> (VectorSet, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        (vs, (0..n as i64).collect())
    }

    #[test]
    fn decent_recall_l2() {
        let (vs, ids) = random_data(400, 10, 21);
        let params = BuildParams { nsg_out_degree: 16, ..Default::default() };
        let nsg = NsgIndex::build(&vs, &ids, &params).unwrap();
        let flat = FlatIndex::build(Metric::L2, vs.clone(), ids.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = 0;
        let mut total = 0;
        for _ in 0..25 {
            let q: Vec<f32> = (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let sp = SearchParams { k: 10, ef: 100, ..Default::default() };
            let truth: std::collections::HashSet<i64> =
                flat.search(&q, &sp).unwrap().iter().map(|x| x.id).collect();
            let got = nsg.search(&q, &sp).unwrap();
            hits += got.iter().filter(|x| truth.contains(&x.id)).count();
            total += truth.len();
        }
        assert!(hits as f32 / total as f32 >= 0.8, "recall {}", hits as f32 / total as f32);
    }

    #[test]
    fn graph_is_connected_from_medoid() {
        let (vs, ids) = random_data(200, 6, 3);
        let nsg = NsgIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let n = nsg.vectors.len();
        let mut seen = vec![false; n];
        let mut stack = vec![nsg.medoid];
        seen[nsg.medoid as usize] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &nsg.adjacency[u as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        assert_eq!(count, n);
    }

    #[test]
    fn out_degree_mostly_bounded() {
        let (vs, ids) = random_data(300, 6, 9);
        let params = BuildParams { nsg_out_degree: 8, ..Default::default() };
        let nsg = NsgIndex::build(&vs, &ids, &params).unwrap();
        // Bridging edges may exceed R slightly; the bulk must respect it.
        let over = nsg.adjacency.iter().filter(|l| l.len() > 8 + 2).count();
        assert!(over * 10 < 300, "{over} nodes grossly over degree bound");
    }

    #[test]
    fn single_node() {
        let (vs, ids) = random_data(1, 4, 2);
        let nsg = NsgIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let res = nsg.search(vs.get(0), &SearchParams::top_k(3)).unwrap();
        assert_eq!(res.len(), 1);
    }

    #[test]
    fn filtered_search() {
        let (vs, ids) = random_data(150, 6, 13);
        let nsg = NsgIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let res = nsg
            .search_filtered(vs.get(0), &SearchParams { k: 5, ef: 64, ..Default::default() }, &|id| {
                id < 75
            })
            .unwrap();
        assert!(res.iter().all(|x| x.id < 75));
    }
}

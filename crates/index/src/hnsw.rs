//! HNSW: Hierarchical Navigable Small World graph index (§2.2, Malkov &
//! Yashunin, TPAMI 2020).
//!
//! A multi-layer proximity graph. Each node is assigned a top layer drawn
//! from an exponential distribution; upper layers form an expressway for the
//! greedy descent, and layer 0 holds all nodes. Search descends greedily to
//! layer 1, then runs a beam search of width `ef` at layer 0. Construction
//! inserts nodes one at a time, linking each to `M` neighbors chosen with the
//! select-neighbors heuristic and pruning back-links to the degree bound.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distance;
use crate::error::{IndexError, Result};
use crate::metric::Metric;
use crate::topk::{Neighbor, TopK};
use crate::traits::{BuildParams, IndexBuilder, SearchParams, VectorIndex};
use crate::vectors::VectorSet;

/// Candidate ordered by ascending distance (for the min-heap frontier).
#[derive(PartialEq)]
struct Candidate {
    dist: f32,
    node: u32,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want nearest-first.
        other.dist.total_cmp(&self.dist).then(other.node.cmp(&self.node))
    }
}

/// An HNSW graph index.
pub struct HnswIndex {
    metric: Metric,
    inner_metric: Metric,
    dim: usize,
    m: usize,
    m0: usize,
    vectors: VectorSet,
    ids: Vec<i64>,
    /// `layers[node][level]` = neighbor list of `node` at `level`.
    layers: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: usize,
}

impl HnswIndex {
    /// Build the graph over `vectors` (row `i` ↔ `ids[i]`).
    pub fn build(vectors: &VectorSet, ids: &[i64], params: &BuildParams) -> Result<Self> {
        if params.metric.is_binary() {
            return Err(IndexError::UnsupportedMetric {
                metric: params.metric.name(),
                index: "HNSW",
            });
        }
        if vectors.len() != ids.len() {
            return Err(IndexError::invalid(
                "ids",
                format!("{} ids for {} vectors", ids.len(), vectors.len()),
            ));
        }
        if vectors.is_empty() {
            return Err(IndexError::InsufficientTrainingData { need: 1, got: 0 });
        }
        if params.hnsw_m < 2 {
            return Err(IndexError::invalid("hnsw_m", "must be >= 2"));
        }

        let dim = vectors.dim();
        let (inner_metric, data) = if params.metric == Metric::Cosine {
            let mut vs = vectors.clone();
            for i in 0..vs.len() {
                distance::normalize(vs.get_mut(i));
            }
            (Metric::InnerProduct, vs)
        } else {
            (params.metric, vectors.clone())
        };

        let m = params.hnsw_m;
        let mut index = Self {
            metric: params.metric,
            inner_metric,
            dim,
            m,
            m0: m * 2,
            vectors: data,
            ids: ids.to_vec(),
            layers: Vec::with_capacity(ids.len()),
            entry: 0,
            max_level: 0,
        };

        let ml = 1.0 / (m as f64).ln();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let ef_c = params.hnsw_ef_construction.max(m + 1);
        for node in 0..index.vectors.len() {
            let level = (-(rng.gen_range(f64::MIN_POSITIVE..1.0)).ln() * ml).floor() as usize;
            index.insert(node as u32, level.min(16), ef_c);
        }
        Ok(index)
    }

    #[inline]
    fn dist(&self, a: u32, b: &[f32]) -> f32 {
        distance::distance(self.inner_metric, self.vectors.get(a as usize), b)
    }

    fn insert(&mut self, node: u32, level: usize, ef_construction: usize) {
        self.layers.push(vec![Vec::new(); level + 1]);
        if node == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }
        let query = self.vectors.get(node as usize).to_vec();
        let mut ep = self.entry;

        // Greedy descent through layers above the node's top level.
        for l in (level + 1..=self.max_level).rev() {
            ep = self.greedy_closest(&query, ep, l);
        }

        // At each level the node occupies, beam-search then link.
        for l in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(&query, ep, ef_construction, l);
            ep = found.first().map_or(ep, |c| c.node);
            let cap = if l == 0 { self.m0 } else { self.m };
            let selected = self.select_neighbors(&query, &found, self.m);
            for &n in &selected {
                self.layers[node as usize][l].push(n);
                self.layers[n as usize][l].push(node);
                if self.layers[n as usize][l].len() > cap {
                    self.prune(n, l, cap);
                }
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = node;
        }
    }

    /// Re-select the best `cap` links of `node` at `level` after an insert
    /// pushed it over the degree bound.
    fn prune(&mut self, node: u32, level: usize, cap: usize) {
        let base = self.vectors.get(node as usize).to_vec();
        let mut cands: Vec<Candidate> = self.layers[node as usize][level]
            .iter()
            .map(|&n| Candidate { dist: self.dist(n, &base), node: n })
            .collect();
        cands.sort_by(|a, b| a.dist.total_cmp(&b.dist));
        let kept = self.select_neighbors(&base, &cands, cap);
        self.layers[node as usize][level] = kept;
    }

    /// Malkov's select-neighbors heuristic: keep a candidate only if it is
    /// closer to the query than to every already-kept neighbor (encourages
    /// spatially diverse links).
    fn select_neighbors(&self, _query: &[f32], sorted: &[Candidate], m: usize) -> Vec<u32> {
        let mut kept: Vec<u32> = Vec::with_capacity(m);
        for c in sorted {
            if kept.len() >= m {
                break;
            }
            let dominated = kept.iter().any(|&k| {
                let d = distance::distance(
                    self.inner_metric,
                    self.vectors.get(c.node as usize),
                    self.vectors.get(k as usize),
                );
                d < c.dist
            });
            if !dominated {
                kept.push(c.node);
            }
        }
        // Backfill with nearest remaining if the heuristic was too strict.
        if kept.len() < m {
            for c in sorted {
                if kept.len() >= m {
                    break;
                }
                if !kept.contains(&c.node) {
                    kept.push(c.node);
                }
            }
        }
        kept
    }

    /// One-step-at-a-time greedy walk toward `query` at `level`.
    fn greedy_closest(&self, query: &[f32], start: u32, level: usize) -> u32 {
        let mut cur = start;
        let mut cur_d = self.dist(cur, query);
        loop {
            let mut improved = false;
            for &n in &self.layers[cur as usize][level] {
                let d = self.dist(n, query);
                if d < cur_d {
                    cur = n;
                    cur_d = d;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search of width `ef` at `level`; returns candidates sorted
    /// ascending by distance.
    fn search_layer(&self, query: &[f32], entry: u32, ef: usize, level: usize) -> Vec<Candidate> {
        let mut visited = vec![false; self.layers.len()];
        let mut frontier = std::collections::BinaryHeap::new();
        let mut best = TopK::new(ef.max(1));
        let d0 = self.dist(entry, query);
        visited[entry as usize] = true;
        frontier.push(Candidate { dist: d0, node: entry });
        best.push(entry as i64, d0);

        while let Some(c) = frontier.pop() {
            if c.dist > best.threshold() {
                break;
            }
            // A node inserted later can reference this one before this node's
            // own layer list grows; guard against levels it doesn't have.
            if level >= self.layers[c.node as usize].len() {
                continue;
            }
            for &n in &self.layers[c.node as usize][level] {
                if !visited[n as usize] {
                    visited[n as usize] = true;
                    let d = self.dist(n, query);
                    if d < best.threshold() {
                        best.push(n as i64, d);
                        frontier.push(Candidate { dist: d, node: n });
                    }
                }
            }
        }
        best.into_sorted()
            .into_iter()
            .map(|n| Candidate { dist: n.dist, node: n.id as u32 })
            .collect()
    }

    fn search_impl(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: Option<&dyn Fn(i64) -> bool>,
    ) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(IndexError::DimensionMismatch { expected: self.dim, got: query.len() });
        }
        let mut q = query.to_vec();
        if self.metric == Metric::Cosine {
            distance::normalize(&mut q);
        }
        let mut ep = self.entry;
        for l in (1..=self.max_level).rev() {
            ep = self.greedy_closest(&q, ep, l);
        }
        let ef = params.ef.max(params.k);
        let found = self.search_layer(&q, ep, ef, 0);
        let mut heap = TopK::new(params.k.max(1));
        for c in found {
            let id = self.ids[c.node as usize];
            if allow.is_none_or(|f| f(id)) {
                heap.push(id, c.dist);
            }
        }
        Ok(heap.into_sorted())
    }
}

impl VectorIndex for HnswIndex {
    fn name(&self) -> &'static str {
        "HNSW"
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>> {
        self.search_impl(query, params, None)
    }

    fn search_filtered(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: &dyn Fn(i64) -> bool,
    ) -> Result<Vec<Neighbor>> {
        self.search_impl(query, params, Some(allow))
    }

    fn memory_bytes(&self) -> usize {
        let links: usize = self
            .layers
            .iter()
            .map(|node| node.iter().map(|l| l.len() * 4).sum::<usize>())
            .sum();
        self.vectors.memory_bytes() + links + self.ids.len() * 8
    }
}

/// Registry builder for [`HnswIndex`].
pub struct HnswBuilder;

impl IndexBuilder for HnswBuilder {
    fn name(&self) -> &'static str {
        "HNSW"
    }

    fn build(
        &self,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>> {
        Ok(Box::new(HnswIndex::build(vectors, ids, params)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> (VectorSet, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        (vs, (0..n as i64).collect())
    }

    fn recall(metric: Metric, ef: usize, n: usize) -> f32 {
        let (vs, ids) = random_data(n, 12, 42);
        let params = BuildParams { metric, hnsw_m: 12, hnsw_ef_construction: 100, ..Default::default() };
        let hnsw = HnswIndex::build(&vs, &ids, &params).unwrap();
        let flat = FlatIndex::build(metric, vs.clone(), ids.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = 0;
        let mut total = 0;
        for _ in 0..30 {
            let q: Vec<f32> = (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let sp = SearchParams { k: 10, ef, ..Default::default() };
            let truth: std::collections::HashSet<i64> =
                flat.search(&q, &sp).unwrap().iter().map(|x| x.id).collect();
            let got = hnsw.search(&q, &sp).unwrap();
            hits += got.iter().filter(|x| truth.contains(&x.id)).count();
            total += truth.len();
        }
        hits as f32 / total as f32
    }

    #[test]
    fn high_recall_l2() {
        assert!(recall(Metric::L2, 128, 500) >= 0.9);
    }

    #[test]
    fn recall_grows_with_ef() {
        let lo = recall(Metric::L2, 10, 500);
        let hi = recall(Metric::L2, 200, 500);
        assert!(hi >= lo);
        assert!(hi >= 0.9);
    }

    #[test]
    fn cosine_supported() {
        assert!(recall(Metric::Cosine, 128, 400) >= 0.85);
    }

    #[test]
    fn single_point_graph() {
        let (vs, ids) = random_data(1, 4, 1);
        let hnsw = HnswIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let res = hnsw.search(vs.get(0), &SearchParams::top_k(5)).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].id, 0);
    }

    #[test]
    fn filtered_search() {
        let (vs, ids) = random_data(200, 8, 3);
        let hnsw = HnswIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let res = hnsw
            .search_filtered(vs.get(0), &SearchParams { k: 10, ef: 100, ..Default::default() }, &|id| {
                id >= 100
            })
            .unwrap();
        assert!(res.iter().all(|n| n.id >= 100));
        assert!(!res.is_empty());
    }

    #[test]
    fn self_query_returns_self_first() {
        let (vs, ids) = random_data(300, 8, 9);
        let hnsw = HnswIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let res = hnsw.search(vs.get(42), &SearchParams { k: 1, ef: 64, ..Default::default() }).unwrap();
        assert_eq!(res[0].id, 42);
    }

    #[test]
    fn rejects_small_m() {
        let (vs, ids) = random_data(10, 4, 1);
        let params = BuildParams { hnsw_m: 1, ..Default::default() };
        assert!(HnswIndex::build(&vs, &ids, &params).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (vs, ids) = random_data(200, 8, 5);
        let p = BuildParams::default();
        let a = HnswIndex::build(&vs, &ids, &p).unwrap();
        let b = HnswIndex::build(&vs, &ids, &p).unwrap();
        let q = vs.get(17);
        let sp = SearchParams { k: 10, ef: 50, ..Default::default() };
        assert_eq!(a.search(q, &sp).unwrap(), b.search(q, &sp).unwrap());
    }
}

//! 128-bit SSE kernels (one source file per ISA level, as in the paper).
#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Squared Euclidean distance using SSE.
///
/// # Safety
/// The caller must ensure the CPU supports SSE4.1
/// (checked by [`crate::simd::SimdLevel::supported`]).
#[target_feature(enable = "sse4.1")]
pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm_setzero_ps();
    let chunks = n / 4;
    for i in 0..chunks {
        let va = _mm_loadu_ps(a.as_ptr().add(i * 4));
        let vb = _mm_loadu_ps(b.as_ptr().add(i * 4));
        let d = _mm_sub_ps(va, vb);
        acc = _mm_add_ps(acc, _mm_mul_ps(d, d));
    }
    let mut sum = horizontal_sum(acc);
    for i in chunks * 4..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner product using SSE.
///
/// # Safety
/// The caller must ensure the CPU supports SSE4.1.
#[target_feature(enable = "sse4.1")]
pub unsafe fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm_setzero_ps();
    let chunks = n / 4;
    for i in 0..chunks {
        let va = _mm_loadu_ps(a.as_ptr().add(i * 4));
        let vb = _mm_loadu_ps(b.as_ptr().add(i * 4));
        acc = _mm_add_ps(acc, _mm_mul_ps(va, vb));
    }
    let mut sum = horizontal_sum(acc);
    for i in chunks * 4..n {
        sum += a[i] * b[i];
    }
    sum
}

#[inline]
unsafe fn horizontal_sum(v: __m128) -> f32 {
    let shuf = _mm_movehdup_ps(v);
    let sums = _mm_add_ps(v, shuf);
    let shuf = _mm_movehl_ps(shuf, sums);
    let sums = _mm_add_ss(sums, shuf);
    _mm_cvtss_f32(sums)
}

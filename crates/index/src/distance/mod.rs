//! Distance kernels with per-ISA implementations and runtime dispatch.
//!
//! Mirroring the paper's refactor of Faiss (§3.2.2), each ISA level lives in
//! its own source file — [`scalar`], [`sse`], [`avx2`], [`avx512`] — and the
//! public functions here dispatch on [`crate::simd::active_level`]. Kernels
//! operate on `f32` slices of equal length; binary metrics live in
//! [`crate::binary`].

pub mod avx2;
pub mod avx512;
pub mod quant;
pub mod scalar;
pub mod sse;

use crate::metric::Metric;
use crate::simd::{active_level, SimdLevel};

/// Squared Euclidean distance between `a` and `b`.
///
/// # Panics
/// Panics in debug builds if the slices differ in length.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    l2_sq_with_level(a, b, active_level())
}

/// Inner product of `a` and `b` (raw, not negated).
#[inline]
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    ip_with_level(a, b, active_level())
}

/// Cosine similarity of `a` and `b` (raw, not negated). Zero vectors yield 0.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot = inner_product(a, b);
    let na = inner_product(a, a).sqrt();
    let nb = inner_product(b, b).sqrt();
    let denom = na * nb;
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

/// Squared L2 norm of `v`.
#[inline]
pub fn norm_sq(v: &[f32]) -> f32 {
    inner_product(v, v)
}

/// L2-normalize `v` in place; zero vectors are left untouched.
pub fn normalize(v: &mut [f32]) {
    let n = norm_sq(v).sqrt();
    if n > 0.0 {
        let inv = 1.0 / n;
        for x in v.iter_mut() {
            *x *= inv;
        }
    }
}

/// Compute the *internal* distance (smaller = better) for a float metric.
///
/// # Panics
/// Panics if called with a binary metric — those are computed by
/// [`crate::binary::binary_distance`].
#[inline]
pub fn distance(metric: Metric, a: &[f32], b: &[f32]) -> f32 {
    match metric {
        Metric::L2 => l2_sq(a, b),
        Metric::InnerProduct => -inner_product(a, b),
        Metric::Cosine => -cosine(a, b),
        m => panic!("binary metric {m} passed to float distance()"),
    }
}

/// L2² at an explicit ISA level (benchmarks pin levels; normal code uses
/// [`l2_sq`]).
#[inline]
pub fn l2_sq_with_level(a: &[f32], b: &[f32], level: SimdLevel) -> f32 {
    match level {
        SimdLevel::Scalar => scalar::l2_sq(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { sse::l2_sq(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::l2_sq(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { avx512::l2_sq(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::l2_sq(a, b),
    }
}

/// Inner product at an explicit ISA level.
#[inline]
pub fn ip_with_level(a: &[f32], b: &[f32], level: SimdLevel) -> f32 {
    match level {
        SimdLevel::Scalar => scalar::inner_product(a, b),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Sse => unsafe { sse::inner_product(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::inner_product(a, b) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 => unsafe { avx512::inner_product(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => scalar::inner_product(a, b),
    }
}

// ---------------------------------------------------------------------------
// Hoisted-dispatch kernels (§3.2.2 refactor, second step): the batch engines
// resolve the metric match *and* the SIMD-level dispatch to a bare function
// pointer once per query block, instead of re-deciding both per vector pair.
// ---------------------------------------------------------------------------

/// A resolved per-pair kernel returning the *internal* distance
/// (smaller = better; similarities negated) — what [`distance`] computes,
/// with the metric and ISA dispatch already peeled off.
pub type PairKernel = fn(&[f32], &[f32]) -> f32;

/// A register-tiled kernel scoring one data vector against four resident
/// queries per pass, returning internal distances. Bit-identical per pair
/// to the [`PairKernel`] of the same metric.
pub type Tile4Kernel = fn([&[f32]; 4], &[f32]) -> [f32; 4];

fn l2_scalar_pair(a: &[f32], b: &[f32]) -> f32 {
    scalar::l2_sq(a, b)
}
fn ip_scalar_pair(a: &[f32], b: &[f32]) -> f32 {
    -scalar::inner_product(a, b)
}
fn cosine_pair(a: &[f32], b: &[f32]) -> f32 {
    -cosine(a, b)
}
fn l2_scalar_tile4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    scalar::l2_sq_x4(q, v)
}
fn ip_scalar_tile4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let s = scalar::inner_product_x4(q, v);
    [-s[0], -s[1], -s[2], -s[3]]
}

// Safety of every shim below: `pair_kernel`/`tile4_kernel` only hand one out
// when [`active_level`] reports the matching ISA, and `force_level` refuses
// unsupported levels, so the target-feature preconditions always hold.
#[cfg(target_arch = "x86_64")]
mod x86_shims {
    use super::{avx2, avx512, sse};

    /// The unchecked SIMD kernels read `a.len()` floats from both slices; a
    /// shorter `b` would be an out-of-bounds read from safe code (the scalar
    /// fallback panics instead). Debug-assert the length precondition the
    /// safe `PairKernel` signature cannot express.
    #[inline(always)]
    fn check_pair(a: &[f32], b: &[f32]) {
        debug_assert_eq!(a.len(), b.len(), "pair kernel: slice length mismatch");
    }

    /// Same precondition for the tiled kernels: every resident query must be
    /// at least as long as the data vector driving the loads.
    #[inline(always)]
    fn check_tile4(q: &[&[f32]; 4], v: &[f32]) {
        debug_assert!(
            q.iter().all(|qj| qj.len() == v.len()),
            "tile4 kernel: query/vector length mismatch"
        );
    }

    pub fn l2_sse_pair(a: &[f32], b: &[f32]) -> f32 {
        check_pair(a, b);
        unsafe { sse::l2_sq(a, b) }
    }
    pub fn ip_sse_pair(a: &[f32], b: &[f32]) -> f32 {
        check_pair(a, b);
        -unsafe { sse::inner_product(a, b) }
    }
    pub fn l2_avx2_pair(a: &[f32], b: &[f32]) -> f32 {
        check_pair(a, b);
        unsafe { avx2::l2_sq(a, b) }
    }
    pub fn ip_avx2_pair(a: &[f32], b: &[f32]) -> f32 {
        check_pair(a, b);
        -unsafe { avx2::inner_product(a, b) }
    }
    pub fn l2_avx512_pair(a: &[f32], b: &[f32]) -> f32 {
        check_pair(a, b);
        unsafe { avx512::l2_sq(a, b) }
    }
    pub fn ip_avx512_pair(a: &[f32], b: &[f32]) -> f32 {
        check_pair(a, b);
        -unsafe { avx512::inner_product(a, b) }
    }
    pub fn l2_avx2_tile4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
        check_tile4(&q, v);
        unsafe { avx2::l2_sq_x4(q, v) }
    }
    pub fn ip_avx2_tile4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
        check_tile4(&q, v);
        let s = unsafe { avx2::inner_product_x4(q, v) };
        [-s[0], -s[1], -s[2], -s[3]]
    }
    pub fn l2_avx512_tile4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
        check_tile4(&q, v);
        unsafe { avx512::l2_sq_x4(q, v) }
    }
    pub fn ip_avx512_tile4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
        check_tile4(&q, v);
        let s = unsafe { avx512::inner_product_x4(q, v) };
        [-s[0], -s[1], -s[2], -s[3]]
    }
}

/// Resolve the internal-distance kernel for `metric` at the active SIMD
/// level. Call once per block; the returned pointer is branch-free on the
/// metric and ISA. Values are bit-identical to [`distance`].
///
/// # Panics
/// Panics for binary metrics, like [`distance`].
pub fn pair_kernel(metric: Metric) -> PairKernel {
    let level = active_level();
    match metric {
        Metric::L2 => match level {
            SimdLevel::Scalar => l2_scalar_pair,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse => x86_shims::l2_sse_pair,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => x86_shims::l2_avx2_pair,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => x86_shims::l2_avx512_pair,
            #[cfg(not(target_arch = "x86_64"))]
            _ => l2_scalar_pair,
        },
        Metric::InnerProduct => match level {
            SimdLevel::Scalar => ip_scalar_pair,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Sse => x86_shims::ip_sse_pair,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => x86_shims::ip_avx2_pair,
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => x86_shims::ip_avx512_pair,
            #[cfg(not(target_arch = "x86_64"))]
            _ => ip_scalar_pair,
        },
        Metric::Cosine => cosine_pair,
        m => panic!("binary metric {m} passed to pair_kernel()"),
    }
}

/// Resolve the register-tiled 4-query kernel for `metric` at the active
/// SIMD level, if one exists. `None` (SSE level, cosine, binary metrics)
/// means the caller should fall back to [`pair_kernel`] per pair — results
/// are bit-identical either way.
pub fn tile4_kernel(metric: Metric) -> Option<Tile4Kernel> {
    let level = active_level();
    match metric {
        Metric::L2 => match level {
            SimdLevel::Scalar => Some(l2_scalar_tile4),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => Some(x86_shims::l2_avx2_tile4),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => Some(x86_shims::l2_avx512_tile4),
            _ => None,
        },
        Metric::InnerProduct => match level {
            SimdLevel::Scalar => Some(ip_scalar_tile4),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => Some(x86_shims::ip_avx2_tile4),
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx512 => Some(x86_shims::ip_avx512_tile4),
            _ => None,
        },
        _ => None,
    }
}

/// Distances from one query to every row of a contiguous `dim`-strided matrix,
/// written into `out` (one entry per row). The hot loop of every scan path.
pub fn distances_into(metric: Metric, query: &[f32], data: &[f32], dim: usize, out: &mut [f32]) {
    debug_assert_eq!(query.len(), dim);
    debug_assert_eq!(data.len(), out.len() * dim);
    for (row, slot) in data.chunks_exact(dim).zip(out.iter_mut()) {
        *slot = distance(metric, query, row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::SimdLevel;

    fn approx(a: f32, b: f32) -> bool {
        (a - b).abs() <= 1e-3 * (1.0 + a.abs().max(b.abs()))
    }

    fn test_vectors(dim: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
        (a, b)
    }

    #[test]
    fn all_levels_agree_on_l2() {
        // Odd dims exercise the remainder loops of each kernel.
        for dim in [1, 3, 8, 15, 16, 17, 31, 32, 33, 96, 100, 128, 133] {
            let (a, b) = test_vectors(dim);
            let reference = scalar::l2_sq(&a, &b);
            for level in SimdLevel::ALL {
                if level.supported() {
                    let got = l2_sq_with_level(&a, &b, level);
                    assert!(
                        approx(got, reference),
                        "l2 {level} dim={dim}: {got} vs {reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_levels_agree_on_ip() {
        for dim in [1, 3, 8, 15, 16, 17, 31, 32, 33, 96, 100, 128, 133] {
            let (a, b) = test_vectors(dim);
            let reference = scalar::inner_product(&a, &b);
            for level in SimdLevel::ALL {
                if level.supported() {
                    let got = ip_with_level(&a, &b, level);
                    assert!(
                        approx(got, reference),
                        "ip {level} dim={dim}: {got} vs {reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn l2_of_identical_vectors_is_zero() {
        let (a, _) = test_vectors(64);
        assert!(l2_sq(&a, &a) < 1e-6);
    }

    #[test]
    fn cosine_bounds_and_sign() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let c = vec![-1.0, 0.0];
        assert!(approx(cosine(&a, &a), 1.0));
        assert!(approx(cosine(&a, &b), 0.0));
        assert!(approx(cosine(&a, &c), -1.0));
    }

    #[test]
    fn cosine_zero_vector_is_zero() {
        let z = vec![0.0; 8];
        let a = vec![1.0; 8];
        assert_eq!(cosine(&z, &a), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!(approx(norm_sq(&v), 1.0));
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn internal_distance_negates_similarity() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        assert!(approx(distance(Metric::InnerProduct, &a, &b), -11.0));
        assert!(approx(distance(Metric::L2, &a, &b), 8.0));
    }

    #[test]
    fn hoisted_pair_kernel_is_bit_identical_to_distance() {
        for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
            let kern = pair_kernel(metric);
            for dim in [1, 7, 16, 33, 64, 128] {
                let (a, b) = test_vectors(dim);
                assert_eq!(
                    kern(&a, &b).to_bits(),
                    distance(metric, &a, &b).to_bits(),
                    "pair kernel diverged for {metric} dim={dim}"
                );
            }
        }
    }

    #[test]
    fn tiled_kernel_is_bit_identical_to_pair_kernel() {
        for metric in [Metric::L2, Metric::InnerProduct] {
            let Some(tile) = tile4_kernel(metric) else { continue };
            let pair = pair_kernel(metric);
            for dim in [1, 7, 16, 33, 64, 100, 128] {
                let (v, _) = test_vectors(dim);
                let qs: Vec<Vec<f32>> = (0..4)
                    .map(|j| (0..dim).map(|i| ((i * 3 + j * 17) as f32 * 0.07).sin()).collect())
                    .collect();
                let q = [&qs[0][..], &qs[1][..], &qs[2][..], &qs[3][..]];
                let tiled = tile(q, &v);
                for j in 0..4 {
                    assert_eq!(
                        tiled[j].to_bits(),
                        pair(q[j], &v).to_bits(),
                        "tile4 diverged for {metric} dim={dim} q={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn avx_tiled_kernels_match_their_untiled_forms_when_supported() {
        // Direct per-level checks, independent of the global active level.
        let dimensions = [8, 15, 16, 17, 32, 64, 96, 133];
        #[cfg(target_arch = "x86_64")]
        for dim in dimensions {
            let (v, _) = test_vectors(dim);
            let qs: Vec<Vec<f32>> = (0..4)
                .map(|j| (0..dim).map(|i| ((i + j * 13) as f32 * 0.19).cos()).collect())
                .collect();
            let q = [&qs[0][..], &qs[1][..], &qs[2][..], &qs[3][..]];
            if SimdLevel::Avx2.supported() {
                let l2 = unsafe { avx2::l2_sq_x4(q, &v) };
                let ip = unsafe { avx2::inner_product_x4(q, &v) };
                for j in 0..4 {
                    assert_eq!(l2[j].to_bits(), unsafe { avx2::l2_sq(q[j], &v) }.to_bits());
                    assert_eq!(
                        ip[j].to_bits(),
                        unsafe { avx2::inner_product(q[j], &v) }.to_bits()
                    );
                }
            }
            if SimdLevel::Avx512.supported() {
                let l2 = unsafe { avx512::l2_sq_x4(q, &v) };
                for j in 0..4 {
                    assert_eq!(l2[j].to_bits(), unsafe { avx512::l2_sq(q[j], &v) }.to_bits());
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = dimensions;
    }

    #[test]
    fn batch_matches_single() {
        let dim = 16;
        let (q, _) = test_vectors(dim);
        let data: Vec<f32> = (0..dim * 5).map(|i| (i as f32 * 0.05).sin()).collect();
        let mut out = vec![0.0; 5];
        distances_into(Metric::L2, &q, &data, dim, &mut out);
        for (i, row) in data.chunks_exact(dim).enumerate() {
            assert!(approx(out[i], l2_sq(&q, row)));
        }
    }
}

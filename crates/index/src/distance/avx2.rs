//! 256-bit AVX2+FMA kernels.
#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Squared Euclidean distance using AVX2/FMA.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let chunks = n / 8;
    for i in 0..chunks {
        let va = _mm256_loadu_ps(a.as_ptr().add(i * 8));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i * 8));
        let d = _mm256_sub_ps(va, vb);
        acc = _mm256_fmadd_ps(d, d, acc);
    }
    let mut sum = horizontal_sum(acc);
    for i in chunks * 8..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner product using AVX2/FMA.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let chunks = n / 8;
    for i in 0..chunks {
        let va = _mm256_loadu_ps(a.as_ptr().add(i * 8));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i * 8));
        acc = _mm256_fmadd_ps(va, vb, acc);
    }
    let mut sum = horizontal_sum(acc);
    for i in chunks * 8..n {
        sum += a[i] * b[i];
    }
    sum
}

/// Register-tiled L2² (Faiss-style multi-query tiling): one data vector
/// against four queries per pass, so each 256-bit load of `v` feeds four
/// FMA chains. Per pair the operation sequence matches [`l2_sq`] exactly,
/// keeping results bit-identical to the untiled kernel.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn l2_sq_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [_mm256_setzero_ps(); 4];
    let chunks = n / 8;
    for i in 0..chunks {
        let vv = _mm256_loadu_ps(v.as_ptr().add(i * 8));
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            let vq = _mm256_loadu_ps(qj.as_ptr().add(i * 8));
            let d = _mm256_sub_ps(vq, vv);
            *accj = _mm256_fmadd_ps(d, d, *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = horizontal_sum(*accj);
        for i in chunks * 8..n {
            let d = qj[i] - v[i];
            sum += d * d;
        }
        *oj = sum;
    }
    out
}

/// Register-tiled inner product; see [`l2_sq_x4`].
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn inner_product_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [_mm256_setzero_ps(); 4];
    let chunks = n / 8;
    for i in 0..chunks {
        let vv = _mm256_loadu_ps(v.as_ptr().add(i * 8));
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            let vq = _mm256_loadu_ps(qj.as_ptr().add(i * 8));
            *accj = _mm256_fmadd_ps(vq, vv, *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = horizontal_sum(*accj);
        for i in chunks * 8..n {
            sum += qj[i] * v[i];
        }
        *oj = sum;
    }
    out
}

// ---------------------------------------------------------------------------
// Fused SQ8 kernels: score u8 codes directly with cvtepu8 + FMA. The two
// 256-bit accumulators hold pinned lanes 0..8 / 8..16; reducing with
// `add_ps(lo, hi)` then [`horizontal_sum`] reproduces exactly the scalar
// reference's `reduce16` (`s_j = lane_j + lane_{j+8}`, then the
// `((s0+s4)+(s1+s5)) + ((s2+s6)+(s3+s7))` tree), so results are
// bit-identical to `scalar::sq8_dot` / `scalar::sq8_l2`.
// ---------------------------------------------------------------------------

/// Convert 16 u8 codes starting at `p` into two exact f32 octets.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn load_codes16(p: *const u8) -> (__m256, __m256) {
    let bytes = _mm_loadu_si128(p as *const __m128i);
    let lo = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(bytes));
    let hi = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_srli_si128(bytes, 8)));
    (lo, hi)
}

/// Fused SQ8 dot `Σ w_d·c_d` over raw u8 codes (AVX2+FMA).
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA, and that
/// `codes.len() == w.len()`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn sq8_dot(w: &[f32], codes: &[u8]) -> f32 {
    let n = w.len();
    let mut acc_lo = _mm256_setzero_ps();
    let mut acc_hi = _mm256_setzero_ps();
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let (c_lo, c_hi) = load_codes16(codes.as_ptr().add(base));
        let w_lo = _mm256_loadu_ps(w.as_ptr().add(base));
        let w_hi = _mm256_loadu_ps(w.as_ptr().add(base + 8));
        acc_lo = _mm256_fmadd_ps(c_lo, w_lo, acc_lo);
        acc_hi = _mm256_fmadd_ps(c_hi, w_hi, acc_hi);
    }
    let mut sum = horizontal_sum(_mm256_add_ps(acc_lo, acc_hi));
    for i in blocks * 16..n {
        sum = (codes[i] as f32).mul_add(w[i], sum);
    }
    sum
}

/// Fused SQ8 squared L2 `Σ (r_d − c_d·step_d)²` over raw u8 codes (AVX2+FMA).
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA, and that
/// `codes.len() == r.len() == step.len()`.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn sq8_l2(r: &[f32], step: &[f32], codes: &[u8]) -> f32 {
    let n = r.len();
    let mut acc_lo = _mm256_setzero_ps();
    let mut acc_hi = _mm256_setzero_ps();
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let (c_lo, c_hi) = load_codes16(codes.as_ptr().add(base));
        let r_lo = _mm256_loadu_ps(r.as_ptr().add(base));
        let r_hi = _mm256_loadu_ps(r.as_ptr().add(base + 8));
        let s_lo = _mm256_loadu_ps(step.as_ptr().add(base));
        let s_hi = _mm256_loadu_ps(step.as_ptr().add(base + 8));
        let u_lo = _mm256_fnmadd_ps(c_lo, s_lo, r_lo);
        let u_hi = _mm256_fnmadd_ps(c_hi, s_hi, r_hi);
        acc_lo = _mm256_fmadd_ps(u_lo, u_lo, acc_lo);
        acc_hi = _mm256_fmadd_ps(u_hi, u_hi, acc_hi);
    }
    let mut sum = horizontal_sum(_mm256_add_ps(acc_lo, acc_hi));
    for i in blocks * 16..n {
        let c = codes[i] as f32;
        let u = (-c).mul_add(step[i], r[i]);
        sum = u.mul_add(u, sum);
    }
    sum
}

/// ×4-row tiled [`sq8_dot`]: the prepared weights are loaded once per block
/// and feed four FMA chains, one per code row. Bit-identical per row to the
/// untiled kernel.
///
/// # Safety
/// Same preconditions as [`sq8_dot`] for every row.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn sq8_dot_x4(w: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    let n = w.len();
    let mut acc_lo = [_mm256_setzero_ps(); 4];
    let mut acc_hi = [_mm256_setzero_ps(); 4];
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let w_lo = _mm256_loadu_ps(w.as_ptr().add(base));
        let w_hi = _mm256_loadu_ps(w.as_ptr().add(base + 8));
        for j in 0..4 {
            let (c_lo, c_hi) = load_codes16(codes[j].as_ptr().add(base));
            acc_lo[j] = _mm256_fmadd_ps(c_lo, w_lo, acc_lo[j]);
            acc_hi[j] = _mm256_fmadd_ps(c_hi, w_hi, acc_hi[j]);
        }
    }
    let mut out = [0.0f32; 4];
    for j in 0..4 {
        let mut sum = horizontal_sum(_mm256_add_ps(acc_lo[j], acc_hi[j]));
        for i in blocks * 16..n {
            sum = (codes[j][i] as f32).mul_add(w[i], sum);
        }
        out[j] = sum;
    }
    out
}

/// ×4-row tiled [`sq8_l2`]; see [`sq8_dot_x4`].
///
/// # Safety
/// Same preconditions as [`sq8_l2`] for every row.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn sq8_l2_x4(r: &[f32], step: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    let n = r.len();
    let mut acc_lo = [_mm256_setzero_ps(); 4];
    let mut acc_hi = [_mm256_setzero_ps(); 4];
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let r_lo = _mm256_loadu_ps(r.as_ptr().add(base));
        let r_hi = _mm256_loadu_ps(r.as_ptr().add(base + 8));
        let s_lo = _mm256_loadu_ps(step.as_ptr().add(base));
        let s_hi = _mm256_loadu_ps(step.as_ptr().add(base + 8));
        for j in 0..4 {
            let (c_lo, c_hi) = load_codes16(codes[j].as_ptr().add(base));
            let u_lo = _mm256_fnmadd_ps(c_lo, s_lo, r_lo);
            let u_hi = _mm256_fnmadd_ps(c_hi, s_hi, r_hi);
            acc_lo[j] = _mm256_fmadd_ps(u_lo, u_lo, acc_lo[j]);
            acc_hi[j] = _mm256_fmadd_ps(u_hi, u_hi, acc_hi[j]);
        }
    }
    let mut out = [0.0f32; 4];
    for j in 0..4 {
        let mut sum = horizontal_sum(_mm256_add_ps(acc_lo[j], acc_hi[j]));
        for i in blocks * 16..n {
            let c = codes[j][i] as f32;
            let u = (-c).mul_add(step[i], r[i]);
            sum = u.mul_add(u, sum);
        }
        out[j] = sum;
    }
    out
}

#[inline]
pub(crate) unsafe fn horizontal_sum(v: __m256) -> f32 {
    let hi = _mm256_extractf128_ps(v, 1);
    let lo = _mm256_castps256_ps128(v);
    let sum128 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehdup_ps(sum128);
    let sums = _mm_add_ps(sum128, shuf);
    let shuf = _mm_movehl_ps(shuf, sums);
    let sums = _mm_add_ss(sums, shuf);
    _mm_cvtss_f32(sums)
}

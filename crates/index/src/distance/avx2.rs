//! 256-bit AVX2+FMA kernels.
#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Squared Euclidean distance using AVX2/FMA.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let chunks = n / 8;
    for i in 0..chunks {
        let va = _mm256_loadu_ps(a.as_ptr().add(i * 8));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i * 8));
        let d = _mm256_sub_ps(va, vb);
        acc = _mm256_fmadd_ps(d, d, acc);
    }
    let mut sum = horizontal_sum(acc);
    for i in chunks * 8..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner product using AVX2/FMA.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let chunks = n / 8;
    for i in 0..chunks {
        let va = _mm256_loadu_ps(a.as_ptr().add(i * 8));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i * 8));
        acc = _mm256_fmadd_ps(va, vb, acc);
    }
    let mut sum = horizontal_sum(acc);
    for i in chunks * 8..n {
        sum += a[i] * b[i];
    }
    sum
}

/// Register-tiled L2² (Faiss-style multi-query tiling): one data vector
/// against four queries per pass, so each 256-bit load of `v` feeds four
/// FMA chains. Per pair the operation sequence matches [`l2_sq`] exactly,
/// keeping results bit-identical to the untiled kernel.
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn l2_sq_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [_mm256_setzero_ps(); 4];
    let chunks = n / 8;
    for i in 0..chunks {
        let vv = _mm256_loadu_ps(v.as_ptr().add(i * 8));
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            let vq = _mm256_loadu_ps(qj.as_ptr().add(i * 8));
            let d = _mm256_sub_ps(vq, vv);
            *accj = _mm256_fmadd_ps(d, d, *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = horizontal_sum(*accj);
        for i in chunks * 8..n {
            let d = qj[i] - v[i];
            sum += d * d;
        }
        *oj = sum;
    }
    out
}

/// Register-tiled inner product; see [`l2_sq_x4`].
///
/// # Safety
/// The caller must ensure the CPU supports AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn inner_product_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [_mm256_setzero_ps(); 4];
    let chunks = n / 8;
    for i in 0..chunks {
        let vv = _mm256_loadu_ps(v.as_ptr().add(i * 8));
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            let vq = _mm256_loadu_ps(qj.as_ptr().add(i * 8));
            *accj = _mm256_fmadd_ps(vq, vv, *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = horizontal_sum(*accj);
        for i in chunks * 8..n {
            sum += qj[i] * v[i];
        }
        *oj = sum;
    }
    out
}

#[inline]
unsafe fn horizontal_sum(v: __m256) -> f32 {
    let hi = _mm256_extractf128_ps(v, 1);
    let lo = _mm256_castps256_ps128(v);
    let sum128 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehdup_ps(sum128);
    let sums = _mm_add_ps(sum128, shuf);
    let shuf = _mm_movehl_ps(shuf, sums);
    let sums = _mm_add_ss(sums, shuf);
    _mm_cvtss_f32(sums)
}

//! Portable scalar kernels — the reference implementation every SIMD level
//! is tested against, and the fallback on non-x86 targets.

/// Squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    // Four independent accumulators give the compiler room to pipeline even
    // without explicit SIMD.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            let d = a[base + lane] - b[base + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner product.
#[inline]
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Register-tiled L2²: score one data vector against four queries in a
/// single pass, loading each element of `v` once instead of four times.
///
/// Per (query, lane) the accumulation sequence is exactly that of
/// [`l2_sq`], so `l2_sq_x4(q, v)[j] == l2_sq(q[j], v)` bit-for-bit.
#[inline]
pub fn l2_sq_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [[0.0f32; 4]; 4]; // acc[query][lane]
    let chunks = n / 4;
    for i in 0..chunks {
        let base = i * 4;
        let vl = [v[base], v[base + 1], v[base + 2], v[base + 3]];
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            for (lane, al) in accj.iter_mut().enumerate() {
                let d = qj[base + lane] - vl[lane];
                *al += d * d;
            }
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = accj[0] + accj[1] + accj[2] + accj[3];
        for i in chunks * 4..n {
            let d = qj[i] - v[i];
            sum += d * d;
        }
        *oj = sum;
    }
    out
}

/// Register-tiled inner product: one data vector against four queries per
/// pass. Bit-identical per pair to [`inner_product`].
#[inline]
pub fn inner_product_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [[0.0f32; 4]; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let base = i * 4;
        let vl = [v[base], v[base + 1], v[base + 2], v[base + 3]];
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            for (lane, al) in accj.iter_mut().enumerate() {
                *al += qj[base + lane] * vl[lane];
            }
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = accj[0] + accj[1] + accj[2] + accj[3];
        for i in chunks * 4..n {
            sum += qj[i] * v[i];
        }
        *oj = sum;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_matches_pairwise_bitwise() {
        for dim in [1, 3, 4, 7, 16, 33, 64, 100] {
            let v: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.21).sin()).collect();
            let qs: Vec<Vec<f32>> = (0..4)
                .map(|j| (0..dim).map(|i| ((i + j * 31) as f32 * 0.13).cos()).collect())
                .collect();
            let q = [&qs[0][..], &qs[1][..], &qs[2][..], &qs[3][..]];
            let l2 = l2_sq_x4(q, &v);
            let ip = inner_product_x4(q, &v);
            for j in 0..4 {
                assert_eq!(l2[j].to_bits(), l2_sq(q[j], &v).to_bits(), "l2 dim={dim} q={j}");
                assert_eq!(
                    ip[j].to_bits(),
                    inner_product(q[j], &v).to_bits(),
                    "ip dim={dim} q={j}"
                );
            }
        }
    }

    #[test]
    fn known_values() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(l2_sq(&a, &b), 16.0 + 4.0 + 0.0 + 4.0 + 16.0);
        assert_eq!(inner_product(&a, &b), 5.0 + 8.0 + 9.0 + 8.0 + 5.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(l2_sq(&[], &[]), 0.0);
        assert_eq!(inner_product(&[], &[]), 0.0);
    }
}

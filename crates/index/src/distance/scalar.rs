//! Portable scalar kernels — the reference implementation every SIMD level
//! is tested against, and the fallback on non-x86 targets.

/// Squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    // Four independent accumulators give the compiler room to pipeline even
    // without explicit SIMD.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            let d = a[base + lane] - b[base + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner product.
#[inline]
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(l2_sq(&a, &b), 16.0 + 4.0 + 0.0 + 4.0 + 16.0);
        assert_eq!(inner_product(&a, &b), 5.0 + 8.0 + 9.0 + 8.0 + 5.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(l2_sq(&[], &[]), 0.0);
        assert_eq!(inner_product(&[], &[]), 0.0);
    }
}

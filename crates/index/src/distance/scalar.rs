//! Portable scalar kernels — the reference implementation every SIMD level
//! is tested against, and the fallback on non-x86 targets.

/// Squared Euclidean distance.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    // Four independent accumulators give the compiler room to pipeline even
    // without explicit SIMD.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            let d = a[base + lane] - b[base + lane];
            acc[lane] += d * d;
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner product.
#[inline]
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Register-tiled L2²: score one data vector against four queries in a
/// single pass, loading each element of `v` once instead of four times.
///
/// Per (query, lane) the accumulation sequence is exactly that of
/// [`l2_sq`], so `l2_sq_x4(q, v)[j] == l2_sq(q[j], v)` bit-for-bit.
#[inline]
pub fn l2_sq_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [[0.0f32; 4]; 4]; // acc[query][lane]
    let chunks = n / 4;
    for i in 0..chunks {
        let base = i * 4;
        let vl = [v[base], v[base + 1], v[base + 2], v[base + 3]];
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            for (lane, al) in accj.iter_mut().enumerate() {
                let d = qj[base + lane] - vl[lane];
                *al += d * d;
            }
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = accj[0] + accj[1] + accj[2] + accj[3];
        for i in chunks * 4..n {
            let d = qj[i] - v[i];
            sum += d * d;
        }
        *oj = sum;
    }
    out
}

/// Register-tiled inner product: one data vector against four queries per
/// pass. Bit-identical per pair to [`inner_product`].
#[inline]
pub fn inner_product_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [[0.0f32; 4]; 4];
    let chunks = n / 4;
    for i in 0..chunks {
        let base = i * 4;
        let vl = [v[base], v[base + 1], v[base + 2], v[base + 3]];
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            for (lane, al) in accj.iter_mut().enumerate() {
                *al += qj[base + lane] * vl[lane];
            }
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = accj[0] + accj[1] + accj[2] + accj[3];
        for i in chunks * 4..n {
            sum += qj[i] * v[i];
        }
        *oj = sum;
    }
    out
}

// ---------------------------------------------------------------------------
// Fused SQ8 quantized-scan kernels (scalar reference).
//
// These score u8 codes directly — no decoded scratch buffer — with the
// dequantization folded into per-query state prepared once per query
// (see `crate::distance::quant`). The accumulation order is pinned to a
// 16-virtual-lane layout mirroring one AVX-512 register (two AVX2
// registers): lane `l` accumulates elements `16·i + l` with true fused
// multiply-adds, lanes reduce as `s_j = lane_j + lane_{j+8}` followed by the
// tree `((s0+s4)+(s1+s5)) + ((s2+s6)+(s3+s7))`, and the `n % 16` tail is
// accumulated sequentially afterwards. The AVX2/AVX-512 kernels replicate
// this sequence exactly, so every ISA level is bit-identical to this
// reference.
// ---------------------------------------------------------------------------

/// Fold 16 pinned lanes exactly like the SIMD kernels: 512→256 by adding the
/// upper half onto the lower, then the AVX2 horizontal tree.
#[inline]
fn reduce16(l: &[f32; 16]) -> f32 {
    let mut s = [0.0f32; 8];
    for j in 0..8 {
        s[j] = l[j] + l[j + 8];
    }
    let t0 = s[0] + s[4];
    let t1 = s[1] + s[5];
    let t2 = s[2] + s[6];
    let t3 = s[3] + s[7];
    (t0 + t1) + (t2 + t3)
}

/// Fused SQ8 dot product `Σ_d w_d·c_d` over raw u8 codes.
///
/// With `w_d = q_d·step_d` prepared per query, `bias + Σ w_d·c_d` equals the
/// inner product of the query with the decoded vector — one pass over the
/// codes, no decode buffer.
#[inline]
pub fn sq8_dot(w: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(w.len(), codes.len());
    let n = w.len();
    let mut lanes = [0.0f32; 16];
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane = (codes[base + l] as f32).mul_add(w[base + l], *lane);
        }
    }
    let mut sum = reduce16(&lanes);
    for i in blocks * 16..n {
        sum = (codes[i] as f32).mul_add(w[i], sum);
    }
    sum
}

/// Fused SQ8 squared L2 `Σ_d (r_d − c_d·step_d)²` over raw u8 codes, with
/// `r_d = q_d − vmin_d` prepared per query.
#[inline]
pub fn sq8_l2(r: &[f32], step: &[f32], codes: &[u8]) -> f32 {
    debug_assert_eq!(r.len(), codes.len());
    debug_assert_eq!(r.len(), step.len());
    let n = r.len();
    let mut lanes = [0.0f32; 16];
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        for (l, lane) in lanes.iter_mut().enumerate() {
            let c = codes[base + l] as f32;
            let u = (-c).mul_add(step[base + l], r[base + l]);
            *lane = u.mul_add(u, *lane);
        }
    }
    let mut sum = reduce16(&lanes);
    for i in blocks * 16..n {
        let c = codes[i] as f32;
        let u = (-c).mul_add(step[i], r[i]);
        sum = u.mul_add(u, sum);
    }
    sum
}

/// ×4-row tiled [`sq8_dot`]: four code rows against one prepared query.
/// The scalar form simply delegates per row, which pins the tiled results
/// bit-identical to the untiled kernel by construction.
#[inline]
pub fn sq8_dot_x4(w: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    [sq8_dot(w, codes[0]), sq8_dot(w, codes[1]), sq8_dot(w, codes[2]), sq8_dot(w, codes[3])]
}

/// ×4-row tiled [`sq8_l2`]; see [`sq8_dot_x4`].
#[inline]
pub fn sq8_l2_x4(r: &[f32], step: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    [
        sq8_l2(r, step, codes[0]),
        sq8_l2(r, step, codes[1]),
        sq8_l2(r, step, codes[2]),
        sq8_l2(r, step, codes[3]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiled_matches_pairwise_bitwise() {
        for dim in [1, 3, 4, 7, 16, 33, 64, 100] {
            let v: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.21).sin()).collect();
            let qs: Vec<Vec<f32>> = (0..4)
                .map(|j| (0..dim).map(|i| ((i + j * 31) as f32 * 0.13).cos()).collect())
                .collect();
            let q = [&qs[0][..], &qs[1][..], &qs[2][..], &qs[3][..]];
            let l2 = l2_sq_x4(q, &v);
            let ip = inner_product_x4(q, &v);
            for j in 0..4 {
                assert_eq!(l2[j].to_bits(), l2_sq(q[j], &v).to_bits(), "l2 dim={dim} q={j}");
                assert_eq!(
                    ip[j].to_bits(),
                    inner_product(q[j], &v).to_bits(),
                    "ip dim={dim} q={j}"
                );
            }
        }
    }

    #[test]
    fn known_values() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(l2_sq(&a, &b), 16.0 + 4.0 + 0.0 + 4.0 + 16.0);
        assert_eq!(inner_product(&a, &b), 5.0 + 8.0 + 9.0 + 8.0 + 5.0);
    }

    #[test]
    fn empty_slices() {
        assert_eq!(l2_sq(&[], &[]), 0.0);
        assert_eq!(inner_product(&[], &[]), 0.0);
    }
}

//! Fused quantized-scan kernels: direct-on-u8 SQ8 distances with the
//! dequantization folded into per-query prepared state.
//!
//! The seed's SQ8 scan decoded every code row into a scratch `Vec<f32>` and
//! then ran the float kernel — two passes and an allocation shadowing every
//! bucket. The affine dequant `v_d = vmin_d + c_d·step_d` folds algebraically
//! into the metric instead:
//!
//! * **Inner product**: `⟨q, v⟩ = Σ q_d·vmin_d + Σ (q_d·step_d)·c_d`, so with
//!   per-query `w_d = q_d·step_d` and `bias = Σ q_d·vmin_d` prepared once, the
//!   scan is a single f32×u8 dot per vector.
//! * **L2²**: `‖q − v‖² = Σ ((q_d − vmin_d) − c_d·step_d)²`, so with
//!   `r_d = q_d − vmin_d` prepared once, the scan is one fused
//!   `fnmadd`+`fma` pass over the codes.
//!
//! Kernels exist at scalar / AVX2 / AVX-512 with ×4-row register tiling,
//! dispatched once per query through [`sq8_kernels`] (same hoisted pattern as
//! [`super::pair_kernel`]). All levels share a pinned 16-virtual-lane
//! accumulation order (see `distance/scalar.rs`), so every level and the
//! tiled forms are bit-identical to the scalar reference.

use super::scalar;
use crate::metric::Metric;
use crate::simd::{active_level, SimdLevel};

/// Fused SQ8 dot kernel: `(w, codes) → Σ w_d·c_d`.
pub type Sq8DotKernel = fn(&[f32], &[u8]) -> f32;
/// ×4-row tiled [`Sq8DotKernel`].
pub type Sq8DotX4Kernel = fn(&[f32], [&[u8]; 4]) -> [f32; 4];
/// Fused SQ8 L2² kernel: `(r, step, codes) → Σ (r_d − c_d·step_d)²`.
pub type Sq8L2Kernel = fn(&[f32], &[f32], &[u8]) -> f32;
/// ×4-row tiled [`Sq8L2Kernel`].
pub type Sq8L2X4Kernel = fn(&[f32], &[f32], [&[u8]; 4]) -> [f32; 4];

/// The full fused-SQ8 kernel set resolved at one ISA level.
#[derive(Clone, Copy)]
pub struct Sq8Kernels {
    /// Single-row fused dot.
    pub dot: Sq8DotKernel,
    /// ×4-row fused dot.
    pub dot_x4: Sq8DotX4Kernel,
    /// Single-row fused L2².
    pub l2: Sq8L2Kernel,
    /// ×4-row fused L2².
    pub l2_x4: Sq8L2X4Kernel,
}

const SCALAR_KERNELS: Sq8Kernels = Sq8Kernels {
    dot: scalar::sq8_dot,
    dot_x4: scalar_dot_x4,
    l2: scalar::sq8_l2,
    l2_x4: scalar_l2_x4,
};

fn scalar_dot_x4(w: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    scalar::sq8_dot_x4(w, codes)
}
fn scalar_l2_x4(r: &[f32], step: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    scalar::sq8_l2_x4(r, step, codes)
}

// Safety of the shims: `sq8_kernels` only hands these out when the matching
// ISA features are detected (the AVX-512 set additionally requires AVX2+FMA
// for its byte-expand and pinned reduction), and every caller goes through
// `PreparedSq8`, whose constructors guarantee the prepared slices share the
// quantizer's dimension. The debug_asserts restate the length precondition
// the safe fn signatures cannot express.
#[cfg(target_arch = "x86_64")]
mod x86_shims {
    use super::super::{avx2, avx512};

    #[inline(always)]
    fn check(w: &[f32], codes: &[u8]) {
        debug_assert_eq!(w.len(), codes.len(), "sq8 kernel: code length mismatch");
    }

    pub fn dot_avx2(w: &[f32], codes: &[u8]) -> f32 {
        check(w, codes);
        unsafe { avx2::sq8_dot(w, codes) }
    }
    pub fn dot_x4_avx2(w: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        for c in &codes {
            check(w, c);
        }
        unsafe { avx2::sq8_dot_x4(w, codes) }
    }
    pub fn l2_avx2(r: &[f32], step: &[f32], codes: &[u8]) -> f32 {
        check(r, codes);
        debug_assert_eq!(r.len(), step.len());
        unsafe { avx2::sq8_l2(r, step, codes) }
    }
    pub fn l2_x4_avx2(r: &[f32], step: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        for c in &codes {
            check(r, c);
        }
        debug_assert_eq!(r.len(), step.len());
        unsafe { avx2::sq8_l2_x4(r, step, codes) }
    }
    pub fn dot_avx512(w: &[f32], codes: &[u8]) -> f32 {
        check(w, codes);
        unsafe { avx512::sq8_dot(w, codes) }
    }
    pub fn dot_x4_avx512(w: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        for c in &codes {
            check(w, c);
        }
        unsafe { avx512::sq8_dot_x4(w, codes) }
    }
    pub fn l2_avx512(r: &[f32], step: &[f32], codes: &[u8]) -> f32 {
        check(r, codes);
        debug_assert_eq!(r.len(), step.len());
        unsafe { avx512::sq8_l2(r, step, codes) }
    }
    pub fn l2_x4_avx512(r: &[f32], step: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
        for c in &codes {
            check(r, c);
        }
        debug_assert_eq!(r.len(), step.len());
        unsafe { avx512::sq8_l2_x4(r, step, codes) }
    }
}

#[cfg(target_arch = "x86_64")]
const AVX2_KERNELS: Sq8Kernels = Sq8Kernels {
    dot: x86_shims::dot_avx2,
    dot_x4: x86_shims::dot_x4_avx2,
    l2: x86_shims::l2_avx2,
    l2_x4: x86_shims::l2_x4_avx2,
};

#[cfg(target_arch = "x86_64")]
const AVX512_KERNELS: Sq8Kernels = Sq8Kernels {
    dot: x86_shims::dot_avx512,
    dot_x4: x86_shims::dot_x4_avx512,
    l2: x86_shims::l2_avx512,
    l2_x4: x86_shims::l2_x4_avx512,
};

/// Resolve the fused SQ8 kernel set at the active SIMD level. Call once per
/// query (it is baked into [`PreparedSq8`]); the returned pointers are
/// branch-free on the ISA.
///
/// SSE has no u8-expand worth using, so it falls back to scalar. The AVX-512
/// kernels need AVX2+FMA for their byte-expand and pinned reduction, so the
/// Avx512 level only upgrades past AVX2 when both are detected.
pub fn sq8_kernels() -> Sq8Kernels {
    sq8_kernels_at(active_level())
}

/// [`sq8_kernels`] at an explicit level (benchmarks and bit-exactness tests
/// pin levels).
pub fn sq8_kernels_at(level: SimdLevel) -> Sq8Kernels {
    match level {
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 if level.supported() && SimdLevel::Avx2.supported() => AVX512_KERNELS,
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx512 | SimdLevel::Avx2 if SimdLevel::Avx2.supported() => AVX2_KERNELS,
        _ => SCALAR_KERNELS,
    }
}

/// Per-query prepared state for scanning SQ8 codes directly — built once per
/// query by [`prepare`](PreparedSq8::prepare), then applied to every bucket's
/// raw `u8` rows with zero allocation and no decode pass.
pub enum PreparedSq8<'a> {
    /// Inner-product folding: internal distance `−(bias + Σ w_d·c_d)`.
    Ip {
        /// `w_d = q_d·step_d`.
        w: Vec<f32>,
        /// `Σ q_d·vmin_d`.
        bias: f32,
        /// Resolved kernel set.
        kern: Sq8Kernels,
    },
    /// L2 folding: internal distance `Σ (r_d − c_d·step_d)²`.
    L2 {
        /// `r_d = q_d − vmin_d`.
        r: Vec<f32>,
        /// Borrowed from the quantizer: per-dimension step.
        step: &'a [f32],
        /// Resolved kernel set.
        kern: Sq8Kernels,
    },
}

impl<'a> PreparedSq8<'a> {
    /// Fold `query` against the quantizer's affine parameters for `metric`.
    ///
    /// Cosine callers must normalize the query first and pass
    /// [`Metric::InnerProduct`] — the IVF layer already rewrites cosine that
    /// way at build time.
    ///
    /// # Panics
    /// Panics if `query.len()` differs from the quantizer dimension, or for
    /// metrics other than L2/IP.
    pub fn prepare(vmin: &[f32], vstep: &'a [f32], query: &[f32], metric: Metric) -> Self {
        assert_eq!(query.len(), vmin.len(), "prepared SQ8 query dimension mismatch");
        assert_eq!(vmin.len(), vstep.len());
        let kern = sq8_kernels();
        match metric {
            Metric::InnerProduct => {
                let w: Vec<f32> = query.iter().zip(vstep).map(|(q, s)| q * s).collect();
                let bias = query.iter().zip(vmin).map(|(q, m)| q * m).sum();
                PreparedSq8::Ip { w, bias, kern }
            }
            Metric::L2 => {
                let r: Vec<f32> = query.iter().zip(vmin).map(|(q, m)| q - m).collect();
                PreparedSq8::L2 { r, step: vstep, kern }
            }
            m => panic!("metric {m} cannot be folded into an SQ8 scan"),
        }
    }

    /// Internal distance (smaller = better) from the prepared query to one
    /// raw code row.
    #[inline]
    pub fn distance(&self, codes: &[u8]) -> f32 {
        match self {
            PreparedSq8::Ip { w, bias, kern } => -(bias + (kern.dot)(w, codes)),
            PreparedSq8::L2 { r, step, kern } => (kern.l2)(r, step, codes),
        }
    }

    /// Internal distances to four raw code rows in one register-tiled pass.
    /// Bit-identical per row to [`distance`](Self::distance).
    #[inline]
    pub fn distance_x4(&self, codes: [&[u8]; 4]) -> [f32; 4] {
        match self {
            PreparedSq8::Ip { w, bias, kern } => {
                let d = (kern.dot_x4)(w, codes);
                [-(bias + d[0]), -(bias + d[1]), -(bias + d[2]), -(bias + d[3])]
            }
            PreparedSq8::L2 { r, step, kern } => (kern.l2_x4)(r, step, codes),
        }
    }

    /// The code length this prepared query expects.
    #[inline]
    pub fn dim(&self) -> usize {
        match self {
            PreparedSq8::Ip { w, .. } => w.len(),
            PreparedSq8::L2 { r, .. } => r.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantizer(dim: usize) -> (Vec<f32>, Vec<f32>) {
        let vmin: Vec<f32> = (0..dim).map(|d| -1.0 + (d as f32 * 0.17).sin() * 0.5).collect();
        let vstep: Vec<f32> = (0..dim).map(|d| 0.003 + (d as f32 * 0.29).cos().abs() * 0.01).collect();
        (vmin, vstep)
    }

    fn codes(dim: usize, seed: usize) -> Vec<u8> {
        (0..dim).map(|d| ((d * 37 + seed * 101 + 13) % 256) as u8).collect()
    }

    fn query(dim: usize) -> Vec<f32> {
        (0..dim).map(|d| (d as f32 * 0.23).sin()).collect()
    }

    const DIMS: [usize; 9] = [1, 7, 15, 16, 17, 32, 48, 100, 128];

    #[test]
    fn every_supported_level_is_bit_identical_to_scalar() {
        // Direct per-level kernel calls — no global force_level, so this is
        // race-free under parallel test threads.
        for dim in DIMS {
            let q = query(dim);
            let (vmin, vstep) = quantizer(dim);
            let w: Vec<f32> = q.iter().zip(&vstep).map(|(a, b)| a * b).collect();
            let r: Vec<f32> = q.iter().zip(&vmin).map(|(a, b)| a - b).collect();
            let c = codes(dim, 1);
            let ref_dot = scalar::sq8_dot(&w, &c);
            let ref_l2 = scalar::sq8_l2(&r, &vstep, &c);
            for level in SimdLevel::ALL {
                if !level.supported() {
                    continue;
                }
                let k = sq8_kernels_at(level);
                assert_eq!((k.dot)(&w, &c).to_bits(), ref_dot.to_bits(), "dot {level} dim={dim}");
                assert_eq!(
                    (k.l2)(&r, &vstep, &c).to_bits(),
                    ref_l2.to_bits(),
                    "l2 {level} dim={dim}"
                );
            }
        }
    }

    #[test]
    fn tiled_matches_untiled_at_every_level() {
        for dim in DIMS {
            let q = query(dim);
            let (vmin, vstep) = quantizer(dim);
            let w: Vec<f32> = q.iter().zip(&vstep).map(|(a, b)| a * b).collect();
            let r: Vec<f32> = q.iter().zip(&vmin).map(|(a, b)| a - b).collect();
            let rows: Vec<Vec<u8>> = (0..4).map(|j| codes(dim, j)).collect();
            let tile = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
            for level in SimdLevel::ALL {
                if !level.supported() {
                    continue;
                }
                let k = sq8_kernels_at(level);
                let dot4 = (k.dot_x4)(&w, tile);
                let l24 = (k.l2_x4)(&r, &vstep, tile);
                for j in 0..4 {
                    assert_eq!(
                        dot4[j].to_bits(),
                        (k.dot)(&w, tile[j]).to_bits(),
                        "dot_x4 {level} dim={dim} row={j}"
                    );
                    assert_eq!(
                        l24[j].to_bits(),
                        (k.l2)(&r, &vstep, tile[j]).to_bits(),
                        "l2_x4 {level} dim={dim} row={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_matches_decode_then_distance_approximately() {
        // The fused kernels reassociate the dequant algebra, so they are not
        // bit-equal to decode-then-distance — but they must agree to float
        // tolerance on every metric.
        for dim in DIMS {
            let q = query(dim);
            let (vmin, vstep) = quantizer(dim);
            let c = codes(dim, 3);
            let decoded: Vec<f32> =
                c.iter().zip(vmin.iter().zip(&vstep)).map(|(&b, (m, s))| m + b as f32 * s).collect();
            let ip = PreparedSq8::prepare(&vmin, &vstep, &q, Metric::InnerProduct);
            let l2 = PreparedSq8::prepare(&vmin, &vstep, &q, Metric::L2);
            let ref_ip = super::super::distance(Metric::InnerProduct, &q, &decoded);
            let ref_l2 = super::super::distance(Metric::L2, &q, &decoded);
            let tol = 1e-3 * (1.0 + ref_ip.abs().max(ref_l2.abs()));
            assert!((ip.distance(&c) - ref_ip).abs() <= tol, "ip dim={dim}");
            assert!((l2.distance(&c) - ref_l2).abs() <= tol, "l2 dim={dim}");
        }
    }

    #[test]
    fn prepared_x4_matches_single() {
        let dim = 96;
        let q = query(dim);
        let (vmin, vstep) = quantizer(dim);
        let rows: Vec<Vec<u8>> = (0..4).map(|j| codes(dim, j + 7)).collect();
        let tile = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
        for metric in [Metric::L2, Metric::InnerProduct] {
            let p = PreparedSq8::prepare(&vmin, &vstep, &q, metric);
            let x4 = p.distance_x4(tile);
            for j in 0..4 {
                assert_eq!(x4[j].to_bits(), p.distance(tile[j]).to_bits(), "{metric} row={j}");
            }
        }
    }
}

//! 512-bit AVX-512F kernels — the paper's headline SIMD addition over Faiss
//! (§3.2.2 "Supporting AVX512", evaluated in Figure 12).
#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Squared Euclidean distance using AVX-512F.
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let chunks = n / 16;
    for i in 0..chunks {
        let va = _mm512_loadu_ps(a.as_ptr().add(i * 16));
        let vb = _mm512_loadu_ps(b.as_ptr().add(i * 16));
        let d = _mm512_sub_ps(va, vb);
        acc = _mm512_fmadd_ps(d, d, acc);
    }
    let mut sum = _mm512_reduce_add_ps(acc);
    for i in chunks * 16..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Register-tiled L2²: one data vector against four queries per pass, so
/// each 512-bit load of `v` feeds four FMA chains. Bit-identical per pair
/// to [`l2_sq`].
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn l2_sq_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [_mm512_setzero_ps(); 4];
    let chunks = n / 16;
    for i in 0..chunks {
        let vv = _mm512_loadu_ps(v.as_ptr().add(i * 16));
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            let vq = _mm512_loadu_ps(qj.as_ptr().add(i * 16));
            let d = _mm512_sub_ps(vq, vv);
            *accj = _mm512_fmadd_ps(d, d, *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = _mm512_reduce_add_ps(*accj);
        for i in chunks * 16..n {
            let d = qj[i] - v[i];
            sum += d * d;
        }
        *oj = sum;
    }
    out
}

/// Register-tiled inner product; see [`l2_sq_x4`].
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn inner_product_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [_mm512_setzero_ps(); 4];
    let chunks = n / 16;
    for i in 0..chunks {
        let vv = _mm512_loadu_ps(v.as_ptr().add(i * 16));
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            let vq = _mm512_loadu_ps(qj.as_ptr().add(i * 16));
            *accj = _mm512_fmadd_ps(vq, vv, *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = _mm512_reduce_add_ps(*accj);
        for i in chunks * 16..n {
            sum += qj[i] * v[i];
        }
        *oj = sum;
    }
    out
}

// ---------------------------------------------------------------------------
// Fused SQ8 kernels: one 512-bit accumulator natively holds the 16 pinned
// virtual lanes of the scalar reference. The reduction splits 512→256 with
// the AVX512F-only `extractf64x4` cast (no DQ requirement) — giving
// `s_j = lane_j + lane_{j+8}` — then folds through the same AVX2 horizontal
// tree, so results are bit-identical to `scalar::sq8_dot` / `scalar::sq8_l2`
// and to the AVX2 kernels. These shims additionally require AVX2+FMA (the
// dispatcher in `distance::quant` only hands them out when both are
// detected).
// ---------------------------------------------------------------------------

/// Reduce the 16 pinned lanes exactly like the scalar reference's `reduce16`.
#[inline]
#[target_feature(enable = "avx512f,avx2,fma")]
unsafe fn reduce16(acc: __m512) -> f32 {
    let lo = _mm512_castps512_ps256(acc);
    let hi = _mm256_castpd_ps(_mm512_extractf64x4_pd(_mm512_castps_pd(acc), 1));
    super::avx2::horizontal_sum(_mm256_add_ps(lo, hi))
}

/// Fused SQ8 dot `Σ w_d·c_d` over raw u8 codes (AVX-512F + AVX2/FMA).
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F, AVX2 and FMA, and that
/// `codes.len() == w.len()`.
#[target_feature(enable = "avx512f,avx2,fma")]
pub unsafe fn sq8_dot(w: &[f32], codes: &[u8]) -> f32 {
    let n = w.len();
    let mut acc = _mm512_setzero_ps();
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let bytes = _mm_loadu_si128(codes.as_ptr().add(base) as *const __m128i);
        let c = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
        let wv = _mm512_loadu_ps(w.as_ptr().add(base));
        acc = _mm512_fmadd_ps(c, wv, acc);
    }
    let mut sum = reduce16(acc);
    for i in blocks * 16..n {
        sum = (codes[i] as f32).mul_add(w[i], sum);
    }
    sum
}

/// Fused SQ8 squared L2 `Σ (r_d − c_d·step_d)²` over raw u8 codes
/// (AVX-512F + AVX2/FMA).
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F, AVX2 and FMA, and that
/// `codes.len() == r.len() == step.len()`.
#[target_feature(enable = "avx512f,avx2,fma")]
pub unsafe fn sq8_l2(r: &[f32], step: &[f32], codes: &[u8]) -> f32 {
    let n = r.len();
    let mut acc = _mm512_setzero_ps();
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let bytes = _mm_loadu_si128(codes.as_ptr().add(base) as *const __m128i);
        let c = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
        let rv = _mm512_loadu_ps(r.as_ptr().add(base));
        let sv = _mm512_loadu_ps(step.as_ptr().add(base));
        let u = _mm512_fnmadd_ps(c, sv, rv);
        acc = _mm512_fmadd_ps(u, u, acc);
    }
    let mut sum = reduce16(acc);
    for i in blocks * 16..n {
        let c = codes[i] as f32;
        let u = (-c).mul_add(step[i], r[i]);
        sum = u.mul_add(u, sum);
    }
    sum
}

/// ×4-row tiled [`sq8_dot`]: prepared weights loaded once per 512-bit block,
/// feeding four FMA chains. Bit-identical per row to the untiled kernel.
///
/// # Safety
/// Same preconditions as [`sq8_dot`] for every row.
#[target_feature(enable = "avx512f,avx2,fma")]
pub unsafe fn sq8_dot_x4(w: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    let n = w.len();
    let mut acc = [_mm512_setzero_ps(); 4];
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let wv = _mm512_loadu_ps(w.as_ptr().add(base));
        for j in 0..4 {
            let bytes = _mm_loadu_si128(codes[j].as_ptr().add(base) as *const __m128i);
            let c = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
            acc[j] = _mm512_fmadd_ps(c, wv, acc[j]);
        }
    }
    let mut out = [0.0f32; 4];
    for j in 0..4 {
        let mut sum = reduce16(acc[j]);
        for i in blocks * 16..n {
            sum = (codes[j][i] as f32).mul_add(w[i], sum);
        }
        out[j] = sum;
    }
    out
}

/// ×4-row tiled [`sq8_l2`]; see [`sq8_dot_x4`].
///
/// # Safety
/// Same preconditions as [`sq8_l2`] for every row.
#[target_feature(enable = "avx512f,avx2,fma")]
pub unsafe fn sq8_l2_x4(r: &[f32], step: &[f32], codes: [&[u8]; 4]) -> [f32; 4] {
    let n = r.len();
    let mut acc = [_mm512_setzero_ps(); 4];
    let blocks = n / 16;
    for i in 0..blocks {
        let base = i * 16;
        let rv = _mm512_loadu_ps(r.as_ptr().add(base));
        let sv = _mm512_loadu_ps(step.as_ptr().add(base));
        for j in 0..4 {
            let bytes = _mm_loadu_si128(codes[j].as_ptr().add(base) as *const __m128i);
            let c = _mm512_cvtepi32_ps(_mm512_cvtepu8_epi32(bytes));
            let u = _mm512_fnmadd_ps(c, sv, rv);
            acc[j] = _mm512_fmadd_ps(u, u, acc[j]);
        }
    }
    let mut out = [0.0f32; 4];
    for j in 0..4 {
        let mut sum = reduce16(acc[j]);
        for i in blocks * 16..n {
            let c = codes[j][i] as f32;
            let u = (-c).mul_add(step[i], r[i]);
            sum = u.mul_add(u, sum);
        }
        out[j] = sum;
    }
    out
}

/// Inner product using AVX-512F.
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let chunks = n / 16;
    for i in 0..chunks {
        let va = _mm512_loadu_ps(a.as_ptr().add(i * 16));
        let vb = _mm512_loadu_ps(b.as_ptr().add(i * 16));
        acc = _mm512_fmadd_ps(va, vb, acc);
    }
    let mut sum = _mm512_reduce_add_ps(acc);
    for i in chunks * 16..n {
        sum += a[i] * b[i];
    }
    sum
}

//! 512-bit AVX-512F kernels — the paper's headline SIMD addition over Faiss
//! (§3.2.2 "Supporting AVX512", evaluated in Figure 12).
#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Squared Euclidean distance using AVX-512F.
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let chunks = n / 16;
    for i in 0..chunks {
        let va = _mm512_loadu_ps(a.as_ptr().add(i * 16));
        let vb = _mm512_loadu_ps(b.as_ptr().add(i * 16));
        let d = _mm512_sub_ps(va, vb);
        acc = _mm512_fmadd_ps(d, d, acc);
    }
    let mut sum = _mm512_reduce_add_ps(acc);
    for i in chunks * 16..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Register-tiled L2²: one data vector against four queries per pass, so
/// each 512-bit load of `v` feeds four FMA chains. Bit-identical per pair
/// to [`l2_sq`].
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn l2_sq_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [_mm512_setzero_ps(); 4];
    let chunks = n / 16;
    for i in 0..chunks {
        let vv = _mm512_loadu_ps(v.as_ptr().add(i * 16));
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            let vq = _mm512_loadu_ps(qj.as_ptr().add(i * 16));
            let d = _mm512_sub_ps(vq, vv);
            *accj = _mm512_fmadd_ps(d, d, *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = _mm512_reduce_add_ps(*accj);
        for i in chunks * 16..n {
            let d = qj[i] - v[i];
            sum += d * d;
        }
        *oj = sum;
    }
    out
}

/// Register-tiled inner product; see [`l2_sq_x4`].
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn inner_product_x4(q: [&[f32]; 4], v: &[f32]) -> [f32; 4] {
    let n = v.len();
    let mut acc = [_mm512_setzero_ps(); 4];
    let chunks = n / 16;
    for i in 0..chunks {
        let vv = _mm512_loadu_ps(v.as_ptr().add(i * 16));
        for (qj, accj) in q.iter().zip(acc.iter_mut()) {
            let vq = _mm512_loadu_ps(qj.as_ptr().add(i * 16));
            *accj = _mm512_fmadd_ps(vq, vv, *accj);
        }
    }
    let mut out = [0.0f32; 4];
    for ((qj, accj), oj) in q.iter().zip(&acc).zip(out.iter_mut()) {
        let mut sum = _mm512_reduce_add_ps(*accj);
        for i in chunks * 16..n {
            sum += qj[i] * v[i];
        }
        *oj = sum;
    }
    out
}

/// Inner product using AVX-512F.
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let chunks = n / 16;
    for i in 0..chunks {
        let va = _mm512_loadu_ps(a.as_ptr().add(i * 16));
        let vb = _mm512_loadu_ps(b.as_ptr().add(i * 16));
        acc = _mm512_fmadd_ps(va, vb, acc);
    }
    let mut sum = _mm512_reduce_add_ps(acc);
    for i in chunks * 16..n {
        sum += a[i] * b[i];
    }
    sum
}

//! 512-bit AVX-512F kernels — the paper's headline SIMD addition over Faiss
//! (§3.2.2 "Supporting AVX512", evaluated in Figure 12).
#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

/// Squared Euclidean distance using AVX-512F.
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let chunks = n / 16;
    for i in 0..chunks {
        let va = _mm512_loadu_ps(a.as_ptr().add(i * 16));
        let vb = _mm512_loadu_ps(b.as_ptr().add(i * 16));
        let d = _mm512_sub_ps(va, vb);
        acc = _mm512_fmadd_ps(d, d, acc);
    }
    let mut sum = _mm512_reduce_add_ps(acc);
    for i in chunks * 16..n {
        let d = a[i] - b[i];
        sum += d * d;
    }
    sum
}

/// Inner product using AVX-512F.
///
/// # Safety
/// The caller must ensure the CPU supports AVX-512F.
#[target_feature(enable = "avx512f")]
pub unsafe fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm512_setzero_ps();
    let chunks = n / 16;
    for i in 0..chunks {
        let va = _mm512_loadu_ps(a.as_ptr().add(i * 16));
        let vb = _mm512_loadu_ps(b.as_ptr().add(i * 16));
        acc = _mm512_fmadd_ps(va, vb, acc);
    }
    let mut sum = _mm512_reduce_add_ps(acc);
    for i in chunks * 16..n {
        sum += a[i] * b[i];
    }
    sum
}

//! Annoy-style random-projection forest (§2.2 footnote 3: "Milvus also
//! supports tree-based indexes, e.g., ANNOY").
//!
//! Each tree recursively splits the points by the hyperplane equidistant from
//! two randomly chosen points, until leaves hold at most `LEAF_SIZE` points.
//! Search walks every tree with a shared priority queue ordered by hyperplane
//! margin, collecting candidate leaves until `search_nodes` candidates have
//! been gathered, then scores the unique candidates exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distance;
use crate::error::{IndexError, Result};
use crate::metric::Metric;
use crate::topk::{Neighbor, TopK};
use crate::traits::{BuildParams, IndexBuilder, SearchParams, VectorIndex};
use crate::vectors::VectorSet;

const LEAF_SIZE: usize = 16;

/// One node of a projection tree.
enum TreeNode {
    /// Internal split: hyperplane normal + offset, children indices.
    Split { normal: Vec<f32>, offset: f32, left: u32, right: u32 },
    /// Leaf: row indices.
    Leaf(Vec<u32>),
}

/// A forest of random-projection trees.
pub struct AnnoyIndex {
    metric: Metric,
    inner_metric: Metric,
    dim: usize,
    vectors: VectorSet,
    ids: Vec<i64>,
    /// Per-tree node arenas; node 0 is each tree's root.
    trees: Vec<Vec<TreeNode>>,
}

impl AnnoyIndex {
    /// Build `params.annoy_n_trees` trees over `vectors`.
    pub fn build(vectors: &VectorSet, ids: &[i64], params: &BuildParams) -> Result<Self> {
        if params.metric.is_binary() {
            return Err(IndexError::UnsupportedMetric {
                metric: params.metric.name(),
                index: "ANNOY",
            });
        }
        if vectors.len() != ids.len() {
            return Err(IndexError::invalid(
                "ids",
                format!("{} ids for {} vectors", ids.len(), vectors.len()),
            ));
        }
        if vectors.is_empty() {
            return Err(IndexError::InsufficientTrainingData { need: 1, got: 0 });
        }
        if params.annoy_n_trees == 0 {
            return Err(IndexError::invalid("annoy_n_trees", "must be >= 1"));
        }
        let dim = vectors.dim();
        let (inner_metric, data) = if params.metric == Metric::Cosine {
            let mut vs = vectors.clone();
            for i in 0..vs.len() {
                distance::normalize(vs.get_mut(i));
            }
            (Metric::InnerProduct, vs)
        } else {
            (params.metric, vectors.clone())
        };

        let mut rng = StdRng::seed_from_u64(params.seed ^ 0xA220);
        let all_rows: Vec<u32> = (0..data.len() as u32).collect();
        let trees = (0..params.annoy_n_trees)
            .map(|_| {
                let mut arena = Vec::new();
                build_subtree(&data, &all_rows, &mut arena, &mut rng);
                arena
            })
            .collect();

        Ok(Self { metric: params.metric, inner_metric, dim, vectors: data, ids: ids.to_vec(), trees })
    }

    fn search_impl(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: Option<&dyn Fn(i64) -> bool>,
    ) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(IndexError::DimensionMismatch { expected: self.dim, got: query.len() });
        }
        let mut q = query.to_vec();
        if self.metric == Metric::Cosine {
            distance::normalize(&mut q);
        }
        let budget = params.search_nodes.max(params.k);

        // Max-heap over (priority, tree, node): the near side of a split gets
        // +|margin| (confident, explored first); the far side gets -|margin|,
        // so far sides of *close* splits re-open before far sides of distant
        // ones.
        let mut pq: std::collections::BinaryHeap<(Neighbor, u32, u32)> =
            std::collections::BinaryHeap::new();
        for (t, _) in self.trees.iter().enumerate() {
            pq.push((Neighbor::new(0, f32::INFINITY), t as u32, 0));
        }
        let mut candidates: Vec<u32> = Vec::with_capacity(budget * 2);
        while let Some((_, tree, node)) = pq.pop() {
            if candidates.len() >= budget {
                break;
            }
            match &self.trees[tree as usize][node as usize] {
                TreeNode::Leaf(rows) => candidates.extend_from_slice(rows),
                TreeNode::Split { normal, offset, left, right } => {
                    let margin = distance::inner_product(&q, normal) - offset;
                    let (near, far) = if margin <= 0.0 { (*left, *right) } else { (*right, *left) };
                    pq.push((Neighbor::new(0, margin.abs()), tree, near));
                    pq.push((Neighbor::new(0, -margin.abs()), tree, far));
                }
            }
        }

        candidates.sort_unstable();
        candidates.dedup();
        let mut heap = TopK::new(params.k.max(1));
        for row in candidates {
            let id = self.ids[row as usize];
            if allow.is_none_or(|f| f(id)) {
                let d = distance::distance(self.inner_metric, &q, self.vectors.get(row as usize));
                heap.push(id, d);
            }
        }
        Ok(heap.into_sorted())
    }
}

/// Recursively build a subtree over `rows`; returns the arena index.
fn build_subtree(
    data: &VectorSet,
    rows: &[u32],
    arena: &mut Vec<TreeNode>,
    rng: &mut StdRng,
) -> u32 {
    let my_idx = arena.len() as u32;
    if rows.len() <= LEAF_SIZE {
        arena.push(TreeNode::Leaf(rows.to_vec()));
        return my_idx;
    }
    // Hyperplane through the midpoint of two random points.
    let _ = data.dim();
    let mut split = None;
    for _ in 0..5 {
        let a = rows[rng.gen_range(0..rows.len())] as usize;
        let b = rows[rng.gen_range(0..rows.len())] as usize;
        if a == b {
            continue;
        }
        let va = data.get(a);
        let vb = data.get(b);
        let normal: Vec<f32> = va.iter().zip(vb).map(|(x, y)| x - y).collect();
        if distance::norm_sq(&normal) == 0.0 {
            continue;
        }
        let mid: Vec<f32> = va.iter().zip(vb).map(|(x, y)| (x + y) / 2.0).collect();
        let offset = distance::inner_product(&normal, &mid);
        split = Some((normal, offset));
        break;
    }
    let Some((normal, offset)) = split else {
        // Degenerate (all points identical): make a leaf even if oversized.
        arena.push(TreeNode::Leaf(rows.to_vec()));
        return my_idx;
    };

    let mut left_rows = Vec::new();
    let mut right_rows = Vec::new();
    for &r in rows {
        let side = distance::inner_product(data.get(r as usize), &normal) - offset;
        if side <= 0.0 {
            left_rows.push(r);
        } else {
            right_rows.push(r);
        }
    }
    if left_rows.is_empty() || right_rows.is_empty() {
        arena.push(TreeNode::Leaf(rows.to_vec()));
        return my_idx;
    }
    // Reserve our slot, then build children.
    arena.push(TreeNode::Leaf(Vec::new()));
    let left = build_subtree(data, &left_rows, arena, rng);
    let right = build_subtree(data, &right_rows, arena, rng);
    arena[my_idx as usize] = TreeNode::Split { normal, offset, left, right };
    my_idx
}

impl VectorIndex for AnnoyIndex {
    fn name(&self) -> &'static str {
        "ANNOY"
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.vectors.len()
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>> {
        self.search_impl(query, params, None)
    }

    fn search_filtered(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: &dyn Fn(i64) -> bool,
    ) -> Result<Vec<Neighbor>> {
        self.search_impl(query, params, Some(allow))
    }

    fn memory_bytes(&self) -> usize {
        let trees: usize = self
            .trees
            .iter()
            .map(|t| {
                t.iter()
                    .map(|n| match n {
                        TreeNode::Split { normal, .. } => normal.len() * 4 + 16,
                        TreeNode::Leaf(rows) => rows.len() * 4,
                    })
                    .sum::<usize>()
            })
            .sum();
        self.vectors.memory_bytes() + trees + self.ids.len() * 8
    }
}

/// Registry builder for [`AnnoyIndex`].
pub struct AnnoyBuilder;

impl IndexBuilder for AnnoyBuilder {
    fn name(&self) -> &'static str {
        "ANNOY"
    }

    fn build(
        &self,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>> {
        Ok(Box::new(AnnoyIndex::build(vectors, ids, params)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> (VectorSet, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        (vs, (0..n as i64).collect())
    }

    #[test]
    fn decent_recall() {
        let (vs, ids) = random_data(500, 8, 31);
        let params = BuildParams { annoy_n_trees: 12, ..Default::default() };
        let annoy = AnnoyIndex::build(&vs, &ids, &params).unwrap();
        let flat = FlatIndex::build(Metric::L2, vs.clone(), ids.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut hits = 0;
        let mut total = 0;
        for _ in 0..25 {
            let q: Vec<f32> = (0..8).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let sp = SearchParams { k: 10, search_nodes: 300, ..Default::default() };
            let truth: std::collections::HashSet<i64> =
                flat.search(&q, &sp).unwrap().iter().map(|x| x.id).collect();
            let got = annoy.search(&q, &sp).unwrap();
            hits += got.iter().filter(|x| truth.contains(&x.id)).count();
            total += truth.len();
        }
        assert!(hits as f32 / total as f32 >= 0.7, "recall {}", hits as f32 / total as f32);
    }

    #[test]
    fn more_search_nodes_no_worse_recall() {
        let (vs, ids) = random_data(400, 8, 5);
        let annoy = AnnoyIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let flat = FlatIndex::build(Metric::L2, vs.clone(), ids.clone()).unwrap();
        let q = vs.get(7).to_vec();
        let truth: std::collections::HashSet<i64> = flat
            .search(&q, &SearchParams::top_k(10))
            .unwrap()
            .iter()
            .map(|x| x.id)
            .collect();
        let r = |nodes| {
            let sp = SearchParams { k: 10, search_nodes: nodes, ..Default::default() };
            annoy
                .search(&q, &sp)
                .unwrap()
                .iter()
                .filter(|x| truth.contains(&x.id))
                .count()
        };
        assert!(r(400) >= r(20));
    }

    #[test]
    fn duplicate_points_build_ok() {
        let mut vs = VectorSet::new(4);
        for _ in 0..100 {
            vs.push(&[1.0, 2.0, 3.0, 4.0]);
        }
        let ids: Vec<i64> = (0..100).collect();
        let annoy = AnnoyIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let res = annoy.search(&[1.0, 2.0, 3.0, 4.0], &SearchParams::top_k(5)).unwrap();
        assert_eq!(res.len(), 5);
        assert!(res[0].dist < 1e-6);
    }

    #[test]
    fn filtered_search() {
        let (vs, ids) = random_data(200, 6, 17);
        let annoy = AnnoyIndex::build(&vs, &ids, &BuildParams::default()).unwrap();
        let sp = SearchParams { k: 10, search_nodes: 200, ..Default::default() };
        let res = annoy.search_filtered(vs.get(0), &sp, &|id| id % 3 == 0).unwrap();
        assert!(res.iter().all(|x| x.id % 3 == 0));
    }

    #[test]
    fn zero_trees_rejected() {
        let (vs, ids) = random_data(10, 4, 1);
        let params = BuildParams { annoy_n_trees: 0, ..Default::default() };
        assert!(AnnoyIndex::build(&vs, &ids, &params).is_err());
    }
}

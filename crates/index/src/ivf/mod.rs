//! Quantization-based indexes: IVF_FLAT, IVF_SQ8, IVF_PQ (§2.2, §3.1).
//!
//! All three share the same structure: a **coarse quantizer** (k-means over
//! the whole collection, §3.1) partitions vectors into `nlist` buckets; a
//! **fine quantizer** encodes the vectors inside each bucket:
//!
//! * `IVF_FLAT` keeps the original `f32` representation;
//! * `IVF_SQ8` scalar-quantizes each 4-byte float to a 1-byte integer
//!   (¼ the space, ~1% recall loss per the paper's footnote 6);
//! * `IVF_PQ` product-quantizes: the vector is split into `m` sub-vectors and
//!   each sub-space gets its own k-means codebook.
//!
//! Query processing is the paper's two steps: (1) find the `nprobe` closest
//! buckets by centroid distance; (2) scan each relevant bucket with the fine
//! quantizer. Cosine is supported by L2-normalizing stored vectors at build
//! time and the query at search time, then running inner product.

pub mod codec;
pub mod pq;
pub mod sq8;


use crate::distance;
use crate::error::{IndexError, Result};
use crate::kmeans::{self, KMeans};
use crate::metric::Metric;
use crate::topk::{Neighbor, TopK};
use crate::traits::{BuildParams, IndexBuilder, SearchParams, VectorIndex};
use crate::vectors::VectorSet;

use pq::ProductQuantizer;
use sq8::ScalarQuantizer;

/// Which fine quantizer an IVF index uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IvfVariant {
    /// Original vectors (IVF_FLAT).
    Flat,
    /// 1-byte scalar quantization (IVF_SQ8).
    Sq8,
    /// Product quantization (IVF_PQ).
    Pq,
}

serde::impl_serde_unit_enum!(IvfVariant { Flat, Sq8, Pq });

impl IvfVariant {
    /// Registry name.
    pub fn name(self) -> &'static str {
        match self {
            IvfVariant::Flat => "IVF_FLAT",
            IvfVariant::Sq8 => "IVF_SQ8",
            IvfVariant::Pq => "IVF_PQ",
        }
    }
}

/// Encoded contents of one bucket.
#[derive(Debug, Clone)]
pub(crate) enum BucketData {
    Flat(VectorSet),
    /// Per-vector u8 codes, `dim` bytes each.
    Sq8(Vec<u8>),
    /// Per-vector PQ codes, `m` bytes each.
    Pq(Vec<u8>),
}

/// One inverted list: external ids plus encoded vectors.
#[derive(Debug, Clone)]
pub(crate) struct Bucket {
    pub(crate) ids: Vec<i64>,
    pub(crate) data: BucketData,
}

impl Bucket {
    fn len(&self) -> usize {
        self.ids.len()
    }

    fn bytes(&self) -> usize {
        let payload = match &self.data {
            BucketData::Flat(v) => v.memory_bytes(),
            BucketData::Sq8(c) | BucketData::Pq(c) => c.len(),
        };
        payload + self.ids.len() * std::mem::size_of::<i64>()
    }
}

/// An IVF index with one of the three fine quantizers.
pub struct IvfIndex {
    variant: IvfVariant,
    metric: Metric,
    /// Metric actually used internally after cosine normalization.
    inner_metric: Metric,
    dim: usize,
    coarse: KMeans,
    buckets: Vec<Bucket>,
    sq: Option<ScalarQuantizer>,
    pq: Option<ProductQuantizer>,
    len: usize,
}

impl IvfIndex {
    /// Train + build in one step (training data = the indexed data, as in
    /// Faiss's common usage and the paper's experiments).
    pub fn build(
        variant: IvfVariant,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Self> {
        if params.metric.is_binary() {
            return Err(IndexError::UnsupportedMetric {
                metric: params.metric.name(),
                index: variant.name(),
            });
        }
        if vectors.len() != ids.len() {
            return Err(IndexError::invalid(
                "ids",
                format!("{} ids for {} vectors", ids.len(), vectors.len()),
            ));
        }
        if vectors.is_empty() {
            return Err(IndexError::InsufficientTrainingData { need: 1, got: 0 });
        }
        let dim = vectors.dim();

        // Cosine reduces to inner product over normalized vectors.
        let (inner_metric, prepared);
        let data: &VectorSet = if params.metric == Metric::Cosine {
            let mut vs = vectors.clone();
            for i in 0..vs.len() {
                distance::normalize(vs.get_mut(i));
            }
            inner_metric = Metric::InnerProduct;
            prepared = vs;
            &prepared
        } else {
            inner_metric = params.metric;
            prepared = VectorSet::new(dim);
            let _ = &prepared;
            vectors
        };

        let nlist = params.effective_nlist(data.len());
        let coarse = kmeans::train(data, nlist, params.kmeans_iters, params.seed)?;

        // Assign rows to buckets.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); nlist];
        for i in 0..data.len() {
            members[coarse.assign(data.get(i))].push(i);
        }

        // Train fine quantizers on the full data.
        let mut sq = None;
        let mut pq = None;
        match variant {
            IvfVariant::Flat => {}
            IvfVariant::Sq8 => sq = Some(ScalarQuantizer::train(data)),
            IvfVariant::Pq => {
                pq = Some(ProductQuantizer::train(
                    data,
                    params.pq_m,
                    params.pq_nbits,
                    params.kmeans_iters,
                    params.seed ^ 0x9A5E,
                )?)
            }
        }

        let buckets = members
            .into_iter()
            .map(|rows| {
                let bucket_ids: Vec<i64> = rows.iter().map(|&r| ids[r]).collect();
                let data = match variant {
                    IvfVariant::Flat => BucketData::Flat(data.gather(&rows)),
                    IvfVariant::Sq8 => {
                        let q = sq.as_ref().expect("sq trained");
                        let mut codes = Vec::with_capacity(rows.len() * dim);
                        for &r in &rows {
                            q.encode_into(data.get(r), &mut codes);
                        }
                        BucketData::Sq8(codes)
                    }
                    IvfVariant::Pq => {
                        let q = pq.as_ref().expect("pq trained");
                        let mut codes = Vec::with_capacity(rows.len() * q.m());
                        for &r in &rows {
                            q.encode_into(data.get(r), &mut codes);
                        }
                        BucketData::Pq(codes)
                    }
                };
                Bucket { ids: bucket_ids, data }
            })
            .collect();

        Ok(Self {
            variant,
            metric: params.metric,
            inner_metric,
            dim,
            coarse,
            buckets,
            sq,
            pq,
            len: data.len(),
        })
    }

    /// The coarse-quantizer centroids (resident in GPU memory under SQ8H).
    pub fn centroids(&self) -> &VectorSet {
        &self.coarse.centroids
    }

    /// The fine-quantizer variant.
    pub fn variant(&self) -> IvfVariant {
        self.variant
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Indexed row count (inherent twin of the trait method, for callers
    /// without the trait in scope).
    pub fn len_rows(&self) -> usize {
        self.len
    }

    /// The user-facing metric's stable name (codec).
    pub fn metric_name(&self) -> &'static str {
        self.metric.name()
    }

    /// Rough serialized size (codec pre-allocation).
    pub fn memory_bytes_estimate(&self) -> usize {
        self.buckets.iter().map(Bucket::bytes).sum::<usize>()
            + self.coarse.centroids.memory_bytes()
    }

    /// Scalar-quantizer parameters `(vmin, vstep)` for the SQ8 variant.
    pub fn sq_params(&self) -> Option<(&[f32], &[f32])> {
        self.sq.as_ref().map(|q| (q.vmin(), q.vstep()))
    }

    /// The product quantizer for the PQ variant.
    pub fn pq_ref(&self) -> Option<&ProductQuantizer> {
        self.pq.as_ref()
    }

    /// Raw encoded codes of bucket `b` (SQ8/PQ variants).
    pub fn bucket_codes(&self, b: usize) -> Option<&[u8]> {
        match &self.buckets[b].data {
            BucketData::Sq8(c) | BucketData::Pq(c) => Some(c),
            BucketData::Flat(_) => None,
        }
    }

    /// Reassemble an index from codec parts.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        variant: IvfVariant,
        metric: Metric,
        dim: usize,
        len: usize,
        centroids: VectorSet,
        buckets: Vec<Bucket>,
        sq: Option<ScalarQuantizer>,
        pq: Option<ProductQuantizer>,
    ) -> Result<Self> {
        if centroids.dim() != dim {
            return Err(IndexError::invalid("centroids", "dimension mismatch"));
        }
        let inner_metric =
            if metric == Metric::Cosine { Metric::InnerProduct } else { metric };
        Ok(Self {
            variant,
            metric,
            inner_metric,
            dim,
            coarse: KMeans { centroids, inertia: 0.0, iterations: 0 },
            buckets,
            sq,
            pq,
            len,
        })
    }

    /// Number of buckets (`nlist` after the small-collection cap).
    pub fn nlist(&self) -> usize {
        self.buckets.len()
    }

    /// Step 1 of query processing: indices of the `nprobe` closest buckets.
    pub fn probe_buckets(&self, query: &[f32], nprobe: usize) -> Vec<usize> {
        self.coarse.assign_multi(query, nprobe)
    }

    /// Number of vectors in bucket `b`.
    pub fn bucket_len(&self, b: usize) -> usize {
        self.buckets[b].len()
    }

    /// Encoded byte size of bucket `b` (drives the GPU PCIe transfer model).
    pub fn bucket_bytes(&self, b: usize) -> usize {
        self.buckets[b].bytes()
    }

    /// External ids of bucket `b`'s members.
    pub fn bucket_ids(&self, b: usize) -> &[i64] {
        &self.buckets[b].ids
    }

    /// Raw vectors of bucket `b` when the fine quantizer is FLAT (baseline
    /// engines scan buckets with their own kernels; `None` for SQ8/PQ).
    pub fn bucket_vectors(&self, b: usize) -> Option<&VectorSet> {
        match &self.buckets[b].data {
            BucketData::Flat(vs) => Some(vs),
            _ => None,
        }
    }

    /// Prepare a query for the internal metric (normalizes for cosine).
    fn prepare_query(&self, query: &[f32]) -> Vec<f32> {
        let mut q = query.to_vec();
        if self.metric == Metric::Cosine {
            distance::normalize(&mut q);
        }
        q
    }

    /// Fold a raw query into everything the bucket scans need — cosine
    /// normalization, the hoisted float kernels (FLAT), the fused SQ8 state
    /// (`w_d = q_d·step_d` + bias for IP, `r_d = q_d − vmin_d` for L2), or
    /// the stride-256 PQ ADC table. Built **once per query**; every probed
    /// bucket then scans raw rows with zero per-bucket allocation.
    pub fn prepare<'a>(&'a self, query: &[f32]) -> PreparedQuery<'a> {
        self.prepare_from_inner(self.prepare_query(query))
    }

    /// [`IvfIndex::prepare`] for a query already in the internal metric
    /// convention (no re-normalization — cosine normalizing twice would
    /// perturb bits).
    fn prepare_from_inner<'a>(&'a self, q: Vec<f32>) -> PreparedQuery<'a> {
        let state = match self.variant {
            IvfVariant::Flat => PreparedState::Flat {
                pair: distance::pair_kernel(self.inner_metric),
                tile4: distance::tile4_kernel(self.inner_metric),
            },
            IvfVariant::Sq8 => PreparedState::Sq8(
                self.sq.as_ref().expect("sq present").prepare(&q, self.inner_metric),
            ),
            IvfVariant::Pq => PreparedState::Pq(
                self.pq.as_ref().expect("pq present").distance_table(&q, self.inner_metric),
            ),
        };
        PreparedQuery { query: q, state }
    }

    /// Step 2 of query processing: scan one bucket into `heap`.
    ///
    /// `query` must already be prepared via the internal metric convention.
    /// This is the prepare-per-call convenience form; multi-bucket searches
    /// use [`IvfIndex::prepare`] + [`IvfIndex::scan_bucket_prepared`] so
    /// per-query state is built once, not once per bucket.
    pub fn scan_bucket(
        &self,
        b: usize,
        query: &[f32],
        heap: &mut TopK,
        allow: Option<&dyn Fn(i64) -> bool>,
    ) {
        let prepared = self.prepare_from_inner(query.to_vec());
        self.scan_bucket_prepared(b, &prepared, heap, allow);
    }

    /// Scan one bucket with per-query state prepared up front.
    ///
    /// The loop bodies are split by filter presence: the unfiltered paths
    /// run register-tiled ×4 row groups with **zero per-row indirect calls**
    /// (no `allow` closure dispatch in the hot loop), while the filtered
    /// paths check the predicate before computing anything. PQ scans
    /// additionally early-abandon against [`TopK::threshold`] every 8
    /// subquantizers (exactness preserved — see
    /// [`pq::DistanceTable::lookup_pruned`]).
    pub fn scan_bucket_prepared(
        &self,
        b: usize,
        prepared: &PreparedQuery<'_>,
        heap: &mut TopK,
        allow: Option<&dyn Fn(i64) -> bool>,
    ) {
        let bucket = &self.buckets[b];
        let ids = &bucket.ids[..];
        match (&bucket.data, &prepared.state) {
            (BucketData::Flat(vs), PreparedState::Flat { pair, tile4 }) => {
                let q = prepared.query.as_slice();
                match allow {
                    None => {
                        let n = vs.len();
                        let groups = n / 4;
                        if let Some(tile) = tile4 {
                            // L2/IP are bitwise symmetric in their arguments,
                            // so the 4 data rows ride in the kernel's query
                            // slot (same trick as the batch engines).
                            for g in 0..groups {
                                let base = g * 4;
                                let rows =
                                    [vs.get(base), vs.get(base + 1), vs.get(base + 2), vs.get(base + 3)];
                                let d = tile(rows, q);
                                for (j, dj) in d.iter().enumerate() {
                                    heap.push(ids[base + j], *dj);
                                }
                            }
                        } else {
                            for g in 0..groups {
                                let base = g * 4;
                                for j in 0..4 {
                                    heap.push(ids[base + j], pair(q, vs.get(base + j)));
                                }
                            }
                        }
                        for (row, &id) in ids.iter().enumerate().skip(groups * 4) {
                            heap.push(id, pair(q, vs.get(row)));
                        }
                    }
                    Some(f) => {
                        for (row, v) in vs.iter().enumerate() {
                            let id = ids[row];
                            if f(id) {
                                heap.push(id, pair(q, v));
                            }
                        }
                    }
                }
            }
            (BucketData::Sq8(codes), PreparedState::Sq8(p)) => {
                let dim = self.dim;
                match allow {
                    None => {
                        let n = ids.len();
                        let groups = n / 4;
                        for g in 0..groups {
                            let base = g * 4;
                            let off = base * dim;
                            let rows = [
                                &codes[off..off + dim],
                                &codes[off + dim..off + 2 * dim],
                                &codes[off + 2 * dim..off + 3 * dim],
                                &codes[off + 3 * dim..off + 4 * dim],
                            ];
                            let d = p.distance_x4(rows);
                            for (j, dj) in d.iter().enumerate() {
                                heap.push(ids[base + j], *dj);
                            }
                        }
                        for row in groups * 4..n {
                            heap.push(ids[row], p.distance(&codes[row * dim..(row + 1) * dim]));
                        }
                    }
                    Some(f) => {
                        for (row, code) in codes.chunks_exact(dim).enumerate() {
                            let id = ids[row];
                            if f(id) {
                                heap.push(id, p.distance(code));
                            }
                        }
                    }
                }
            }
            (BucketData::Pq(codes), PreparedState::Pq(table)) => {
                let m = table.m();
                match allow {
                    None => {
                        let n = ids.len();
                        let groups = n / 4;
                        for g in 0..groups {
                            let base = g * 4;
                            let off = base * m;
                            let rows = [
                                &codes[off..off + m],
                                &codes[off + m..off + 2 * m],
                                &codes[off + 2 * m..off + 3 * m],
                                &codes[off + 3 * m..off + 4 * m],
                            ];
                            // Threshold re-read per group: it only tightens
                            // as pushes land, so pruning stays exact.
                            let d = table.lookup4_pruned(rows, heap.threshold());
                            for (j, dj) in d.iter().enumerate() {
                                if let Some(dist) = dj {
                                    heap.push(ids[base + j], *dist);
                                }
                            }
                        }
                        for row in groups * 4..n {
                            if let Some(dist) =
                                table.lookup_pruned(&codes[row * m..(row + 1) * m], heap.threshold())
                            {
                                heap.push(ids[row], dist);
                            }
                        }
                    }
                    Some(f) => {
                        for (row, code) in codes.chunks_exact(m).enumerate() {
                            let id = ids[row];
                            if f(id) {
                                if let Some(dist) = table.lookup_pruned(code, heap.threshold()) {
                                    heap.push(id, dist);
                                }
                            }
                        }
                    }
                }
            }
            _ => unreachable!("prepared state always matches the index variant"),
        }
    }

    fn search_impl(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: Option<&dyn Fn(i64) -> bool>,
    ) -> Result<Vec<Neighbor>> {
        if query.len() != self.dim {
            return Err(IndexError::DimensionMismatch { expected: self.dim, got: query.len() });
        }
        let prepared = self.prepare(query);
        let probes = self.probe_buckets(prepared.query(), params.nprobe);
        let mut heap = TopK::new(params.k.max(1));
        for b in probes {
            self.scan_bucket_prepared(b, &prepared, &mut heap, allow);
        }
        Ok(heap.into_sorted())
    }
}

/// Per-query state for the bucket scans, built once by [`IvfIndex::prepare`]
/// and reused across every probed bucket (and across buckets fanned out on
/// the executor — it is `Sync` borrow-only data).
pub struct PreparedQuery<'a> {
    /// The query in the internal metric convention (cosine-normalized).
    query: Vec<f32>,
    state: PreparedState<'a>,
}

enum PreparedState<'a> {
    /// Hoisted float kernels for FLAT buckets.
    Flat { pair: distance::PairKernel, tile4: Option<distance::Tile4Kernel> },
    /// Fused direct-on-u8 state for SQ8 buckets.
    Sq8(distance::quant::PreparedSq8<'a>),
    /// Stride-256 ADC table for PQ buckets.
    Pq(pq::DistanceTable),
}

impl PreparedQuery<'_> {
    /// The internally-prepared query vector (what coarse probing consumes).
    pub fn query(&self) -> &[f32] {
        &self.query
    }
}

impl VectorIndex for IvfIndex {
    fn name(&self) -> &'static str {
        self.variant.name()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn len(&self) -> usize {
        self.len
    }

    fn search(&self, query: &[f32], params: &SearchParams) -> Result<Vec<Neighbor>> {
        self.search_impl(query, params, None)
    }

    fn search_filtered(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: &dyn Fn(i64) -> bool,
    ) -> Result<Vec<Neighbor>> {
        self.search_impl(query, params, Some(allow))
    }

    /// Bucket-major batched search: prepare every query once, invert the
    /// probe lists into bucket → queries, then sweep buckets in ascending
    /// order scanning each for all of its queries back-to-back. Each
    /// bucket's rows stay hot across the queries that probe it instead of
    /// being re-streamed per query.
    ///
    /// Bit-identical to the per-query loop: the retained top-k set of
    /// [`TopK`] is push-order-independent (total order on
    /// `(distance, id)`), and the PQ early-abandon check is
    /// exactness-preserving — a pruned row could never have entered the
    /// heap — so reordering bucket visits cannot change any sorted output.
    fn search_batch(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let m = queries.len();
        for i in 0..m {
            if queries.get(i).len() != self.dim {
                return Err(IndexError::DimensionMismatch {
                    expected: self.dim,
                    got: queries.get(i).len(),
                });
            }
        }
        let prepared: Vec<PreparedQuery> = (0..m).map(|i| self.prepare(queries.get(i))).collect();
        let mut heaps: Vec<TopK> = (0..m).map(|_| TopK::new(params.k.max(1))).collect();
        let mut by_bucket: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (qi, p) in prepared.iter().enumerate() {
            for b in self.probe_buckets(p.query(), params.nprobe) {
                by_bucket.entry(b).or_default().push(qi);
            }
        }
        for (b, qis) in by_bucket {
            for qi in qis {
                self.scan_bucket_prepared(b, &prepared[qi], &mut heaps[qi], None);
            }
        }
        Ok(heaps.into_iter().map(TopK::into_sorted).collect())
    }

    fn memory_bytes(&self) -> usize {
        let buckets: usize = self.buckets.iter().map(Bucket::bytes).sum();
        let centroids = self.coarse.centroids.memory_bytes();
        let pq = self.pq.as_ref().map_or(0, ProductQuantizer::memory_bytes);
        buckets + centroids + pq
    }

    fn as_ivf(&self) -> Option<&IvfIndex> {
        Some(self)
    }
}

/// Registry builder for the three IVF variants.
pub struct IvfBuilder(pub IvfVariant);

impl IndexBuilder for IvfBuilder {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn build(
        &self,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>> {
        Ok(Box::new(IvfIndex::build(self.0, vectors, ids, params)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered(n: usize, dim: usize, seed: u64) -> (VectorSet, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for i in 0..n {
            let center = (i % 8) as f32 * 10.0;
            let v: Vec<f32> =
                (0..dim).map(|_| center + rng.gen_range(-1.0f32..1.0)).collect();
            vs.push(&v);
        }
        let ids = (0..n as i64).collect();
        (vs, ids)
    }

    fn params() -> BuildParams {
        BuildParams { nlist: 16, kmeans_iters: 8, pq_m: 4, ..Default::default() }
    }

    #[test]
    fn batched_search_is_bit_identical_to_per_query_loop() {
        let (vs, ids) = clustered(600, 16, 13);
        let mut rng = StdRng::seed_from_u64(99);
        let mut queries = VectorSet::new(16);
        for _ in 0..9 {
            let center = rng.gen_range(0..8) as f32 * 10.0;
            let q: Vec<f32> = (0..16).map(|_| center + rng.gen_range(-1.0f32..1.0)).collect();
            queries.push(&q);
        }
        for variant in [IvfVariant::Flat, IvfVariant::Sq8, IvfVariant::Pq] {
            for metric in [Metric::L2, Metric::InnerProduct, Metric::Cosine] {
                let p = BuildParams { metric, ..params() };
                let ivf = IvfIndex::build(variant, &vs, &ids, &p).unwrap();
                let sp = SearchParams { k: 7, nprobe: 4, ..Default::default() };
                let batched = ivf.search_batch(&queries, &sp).unwrap();
                for (qi, batch_list) in batched.iter().enumerate() {
                    let serial = ivf.search(queries.get(qi), &sp).unwrap();
                    assert_eq!(
                        batch_list, &serial,
                        "bucket-major batch diverged: {variant:?} {metric} q={qi}"
                    );
                }
            }
        }
        // Dimension mismatch inside the batch surfaces the typed error.
        let mut bad = VectorSet::new(8);
        bad.push(&[0.0; 8]);
        let ivf = IvfIndex::build(IvfVariant::Flat, &vs, &ids, &params()).unwrap();
        assert!(ivf.search_batch(&bad, &SearchParams::default()).is_err());
    }

    fn recall_vs_flat(variant: IvfVariant, metric: Metric, nprobe: usize) -> f32 {
        let (vs, ids) = clustered(600, 16, 3);
        let p = BuildParams { metric, ..params() };
        let ivf = IvfIndex::build(variant, &vs, &ids, &p).unwrap();
        let flat =
            crate::flat::FlatIndex::build(metric, vs.clone(), ids.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut hit = 0usize;
        let mut total = 0usize;
        for _ in 0..20 {
            let center = rng.gen_range(0..8) as f32 * 10.0;
            let q: Vec<f32> =
                (0..16).map(|_| center + rng.gen_range(-1.0f32..1.0)).collect();
            let sp = SearchParams { k: 10, nprobe, ..Default::default() };
            let truth = flat.search(&q, &sp).unwrap();
            let got = ivf.search(&q, &sp).unwrap();
            let truth_ids: std::collections::HashSet<i64> =
                truth.iter().map(|n| n.id).collect();
            hit += got.iter().filter(|n| truth_ids.contains(&n.id)).count();
            total += truth.len();
        }
        hit as f32 / total as f32
    }

    #[test]
    fn ivf_flat_high_recall_with_enough_probes() {
        assert!(recall_vs_flat(IvfVariant::Flat, Metric::L2, 16) >= 0.99);
    }

    #[test]
    fn ivf_sq8_decent_recall() {
        // SQ8 trades ~a few points of recall for 4x compression; the paper
        // reports ~1% loss on SIFT. Our synthetic blobs quantize harder
        // because every dimension spans the full cluster range.
        assert!(recall_vs_flat(IvfVariant::Sq8, Metric::L2, 16) >= 0.75);
    }

    #[test]
    fn ivf_pq_reasonable_recall_on_clustered_data() {
        assert!(recall_vs_flat(IvfVariant::Pq, Metric::L2, 16) >= 0.6);
    }

    #[test]
    fn recall_increases_with_nprobe() {
        let lo = recall_vs_flat(IvfVariant::Flat, Metric::L2, 1);
        let hi = recall_vs_flat(IvfVariant::Flat, Metric::L2, 16);
        assert!(hi >= lo, "nprobe=16 recall {hi} < nprobe=1 recall {lo}");
    }

    #[test]
    fn cosine_metric_supported() {
        assert!(recall_vs_flat(IvfVariant::Flat, Metric::Cosine, 16) >= 0.95);
    }

    #[test]
    fn inner_product_supported() {
        assert!(recall_vs_flat(IvfVariant::Flat, Metric::InnerProduct, 16) >= 0.95);
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let (vs, ids) = clustered(300, 8, 5);
        let ivf = IvfIndex::build(IvfVariant::Flat, &vs, &ids, &params()).unwrap();
        let q = vs.get(0).to_vec();
        let sp = SearchParams { k: 20, nprobe: 16, ..Default::default() };
        let res = ivf.search_filtered(&q, &sp, &|id| id % 2 == 0).unwrap();
        assert!(!res.is_empty());
        assert!(res.iter().all(|n| n.id % 2 == 0));
    }

    #[test]
    fn sq8_uses_quarter_memory_of_flat() {
        let (vs, ids) = clustered(1000, 32, 9);
        let flat = IvfIndex::build(IvfVariant::Flat, &vs, &ids, &params()).unwrap();
        let sq8 = IvfIndex::build(IvfVariant::Sq8, &vs, &ids, &params()).unwrap();
        // Bucket payloads: 4 bytes/dim vs 1 byte/dim (ids overhead equal).
        assert!(sq8.memory_bytes() < flat.memory_bytes());
    }

    #[test]
    fn empty_input_rejected() {
        let vs = VectorSet::new(4);
        assert!(IvfIndex::build(IvfVariant::Flat, &vs, &[], &params()).is_err());
    }

    #[test]
    fn binary_metric_rejected() {
        let (vs, ids) = clustered(50, 4, 1);
        let p = BuildParams { metric: Metric::Hamming, ..params() };
        assert!(IvfIndex::build(IvfVariant::Flat, &vs, &ids, &p).is_err());
    }

    #[test]
    fn bucket_accessors_consistent() {
        let (vs, ids) = clustered(200, 8, 2);
        let ivf = IvfIndex::build(IvfVariant::Flat, &vs, &ids, &params()).unwrap();
        let total: usize = (0..ivf.nlist()).map(|b| ivf.bucket_len(b)).sum();
        assert_eq!(total, 200);
        assert!(ivf.bucket_bytes(0) >= ivf.bucket_len(0) * 8);
    }
}

//! Binary serialization of IVF indexes — "both index and data are stored in
//! the same segment" (§2.3), so the storage layer persists built indexes
//! alongside the vectors instead of rebuilding them on every load.
//!
//! Little-endian layout:
//! `magic "MIVF" | variant u8 | metric name | dim u32 | len u64 |
//!  centroids | fine-quantizer params | buckets (ids + codes)`

use crate::error::{IndexError, Result};
use crate::metric::Metric;
use crate::vectors::VectorSet;

use super::{IvfIndex, IvfVariant};

const MAGIC: &[u8; 4] = b"MIVF";

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_vectors(out: &mut Vec<u8>, vs: &VectorSet) {
    put_u32(out, vs.dim() as u32);
    put_u64(out, vs.len() as u64);
    for &x in vs.as_flat() {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn put_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    put_u64(out, xs.len() as u64);
    for &x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Cursor-style reader with bounds checking.
pub(super) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(super) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(IndexError::invalid("index blob", "truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| IndexError::invalid("index blob", "bad utf8"))
    }

    fn f32s(&mut self) -> Result<Vec<f32>> {
        let n = self.u64()? as usize;
        let raw = self.take(n.checked_mul(4).ok_or_else(|| {
            IndexError::invalid("index blob", "length overflow")
        })?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    fn vectors(&mut self) -> Result<VectorSet> {
        let dim = self.u32()? as usize;
        if dim == 0 {
            return Err(IndexError::invalid("index blob", "zero dim"));
        }
        let n = self.u64()? as usize;
        let raw = self.take(
            n.checked_mul(dim)
                .and_then(|x| x.checked_mul(4))
                .ok_or_else(|| IndexError::invalid("index blob", "size overflow"))?,
        )?;
        let flat: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok(VectorSet::from_flat(dim, flat))
    }
}

/// Serialize an IVF index to bytes.
pub fn encode_ivf(index: &IvfIndex) -> Vec<u8> {
    let mut out = Vec::with_capacity(index.memory_bytes_estimate() + 64);
    out.extend_from_slice(MAGIC);
    out.push(match index.variant() {
        IvfVariant::Flat => 0,
        IvfVariant::Sq8 => 1,
        IvfVariant::Pq => 2,
    });
    put_str(&mut out, index.metric_name());
    put_u32(&mut out, index.dim() as u32);
    put_u64(&mut out, index.len_rows() as u64);
    put_vectors(&mut out, index.centroids());

    // Fine quantizer parameters.
    match index.variant() {
        IvfVariant::Flat => {}
        IvfVariant::Sq8 => {
            let (vmin, vstep) = index.sq_params().expect("sq8 variant");
            put_f32s(&mut out, vmin);
            put_f32s(&mut out, vstep);
        }
        IvfVariant::Pq => {
            let pq = index.pq_ref().expect("pq variant");
            put_u32(&mut out, pq.m() as u32);
            put_u32(&mut out, pq.ksub() as u32);
            for sub in 0..pq.m() {
                put_vectors(&mut out, pq.codebook(sub));
            }
        }
    }

    // Buckets.
    put_u32(&mut out, index.nlist() as u32);
    for b in 0..index.nlist() {
        let ids = index.bucket_ids(b);
        put_u64(&mut out, ids.len() as u64);
        for &id in ids {
            out.extend_from_slice(&id.to_le_bytes());
        }
        match index.variant() {
            IvfVariant::Flat => {
                put_vectors(&mut out, index.bucket_vectors(b).expect("flat bucket"));
            }
            IvfVariant::Sq8 | IvfVariant::Pq => {
                let codes = index.bucket_codes(b).expect("encoded bucket");
                put_u64(&mut out, codes.len() as u64);
                out.extend_from_slice(codes);
            }
        }
    }
    out
}

/// Deserialize an IVF index from bytes produced by [`encode_ivf`].
pub fn decode_ivf(buf: &[u8]) -> Result<IvfIndex> {
    let mut r = Reader::new(buf);
    if r.take(4)? != MAGIC {
        return Err(IndexError::invalid("index blob", "bad magic"));
    }
    let variant = match r.u8()? {
        0 => IvfVariant::Flat,
        1 => IvfVariant::Sq8,
        2 => IvfVariant::Pq,
        v => return Err(IndexError::invalid("index blob", format!("bad variant {v}"))),
    };
    let metric = Metric::parse(&r.str()?)
        .ok_or_else(|| IndexError::invalid("index blob", "bad metric"))?;
    let dim = r.u32()? as usize;
    let len = r.u64()? as usize;
    let centroids = r.vectors()?;

    let mut sq = None;
    let mut pq = None;
    match variant {
        IvfVariant::Flat => {}
        IvfVariant::Sq8 => {
            let vmin = r.f32s()?;
            let vstep = r.f32s()?;
            if vmin.len() != dim || vstep.len() != dim {
                return Err(IndexError::invalid("index blob", "sq8 param size"));
            }
            sq = Some(super::sq8::ScalarQuantizer::from_params(vmin, vstep));
        }
        IvfVariant::Pq => {
            let m = r.u32()? as usize;
            let ksub = r.u32()? as usize;
            if m == 0 || !dim.is_multiple_of(m) {
                return Err(IndexError::invalid("index blob", "pq m"));
            }
            let mut codebooks = Vec::with_capacity(m);
            for _ in 0..m {
                let cb = r.vectors()?;
                if cb.len() != ksub || cb.dim() != dim / m {
                    return Err(IndexError::invalid("index blob", "pq codebook shape"));
                }
                codebooks.push(cb);
            }
            pq = Some(super::pq::ProductQuantizer::from_codebooks(dim, m, ksub, codebooks));
        }
    }

    let nlist = r.u32()? as usize;
    let mut buckets = Vec::with_capacity(nlist);
    for _ in 0..nlist {
        let n_ids = r.u64()? as usize;
        let mut ids = Vec::with_capacity(n_ids);
        for _ in 0..n_ids {
            let raw = r.take(8)?;
            ids.push(i64::from_le_bytes(raw.try_into().expect("8 bytes")));
        }
        let data = match variant {
            IvfVariant::Flat => {
                let vs = r.vectors()?;
                if vs.len() != n_ids {
                    return Err(IndexError::invalid("index blob", "bucket row mismatch"));
                }
                super::BucketData::Flat(vs)
            }
            IvfVariant::Sq8 | IvfVariant::Pq => {
                let n = r.u64()? as usize;
                let codes = r.take(n)?.to_vec();
                let width = if variant == IvfVariant::Sq8 {
                    dim
                } else {
                    pq.as_ref().expect("pq").m()
                };
                if n != n_ids * width {
                    return Err(IndexError::invalid("index blob", "code length mismatch"));
                }
                if variant == IvfVariant::Sq8 {
                    super::BucketData::Sq8(codes)
                } else {
                    super::BucketData::Pq(codes)
                }
            }
        };
        buckets.push(super::Bucket { ids, data });
    }

    IvfIndex::from_parts(variant, metric, dim, len, centroids, buckets, sq, pq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{BuildParams, SearchParams, VectorIndex};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn data(n: usize, dim: usize) -> (VectorSet, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut vs = VectorSet::new(dim);
        for i in 0..n {
            let c = (i % 8) as f32 * 3.0;
            let v: Vec<f32> = (0..dim).map(|_| c + rng.gen_range(-0.3f32..0.3)).collect();
            vs.push(&v);
        }
        (vs, (0..n as i64).collect())
    }

    fn roundtrip(variant: IvfVariant, metric: Metric) {
        let (vs, ids) = data(400, 8);
        let params = BuildParams { metric, nlist: 16, kmeans_iters: 5, pq_m: 4, ..Default::default() };
        let original = IvfIndex::build(variant, &vs, &ids, &params).unwrap();
        let blob = encode_ivf(&original);
        let decoded = decode_ivf(&blob).unwrap();
        assert_eq!(decoded.variant(), variant);
        assert_eq!(decoded.len_rows(), 400);
        // Search results must be identical.
        let sp = SearchParams { k: 10, nprobe: 16, ..Default::default() };
        for probe in [0usize, 17, 333] {
            let a = original.search(vs.get(probe), &sp).unwrap();
            let b = decoded.search(vs.get(probe), &sp).unwrap();
            assert_eq!(a, b, "{variant:?}/{metric} probe {probe}");
        }
    }

    #[test]
    fn flat_roundtrip_l2() {
        roundtrip(IvfVariant::Flat, Metric::L2);
    }

    #[test]
    fn sq8_roundtrip_l2() {
        roundtrip(IvfVariant::Sq8, Metric::L2);
    }

    #[test]
    fn pq_roundtrip_l2() {
        roundtrip(IvfVariant::Pq, Metric::L2);
    }

    #[test]
    fn flat_roundtrip_cosine() {
        roundtrip(IvfVariant::Flat, Metric::Cosine);
    }

    #[test]
    fn sq8_roundtrip_ip() {
        roundtrip(IvfVariant::Sq8, Metric::InnerProduct);
    }

    #[test]
    fn corrupt_blobs_rejected() {
        let (vs, ids) = data(100, 4);
        let params = BuildParams { nlist: 8, kmeans_iters: 3, ..Default::default() };
        let idx = IvfIndex::build(IvfVariant::Flat, &vs, &ids, &params).unwrap();
        let blob = encode_ivf(&idx);
        assert!(decode_ivf(b"XXXX").is_err());
        for cut in [0, 3, 5, 20, blob.len() / 2, blob.len() - 1] {
            assert!(decode_ivf(&blob[..cut]).is_err(), "cut {cut}");
        }
        // Flipped variant byte out of range.
        let mut bad = blob.clone();
        bad[4] = 9;
        assert!(decode_ivf(&bad).is_err());
    }
}

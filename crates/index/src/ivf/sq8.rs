//! Scalar quantization for IVF_SQ8 (§3.1).
//!
//! "IVF_SQ8 uses a compressed representation for the vectors by adopting a
//! one-dimensional quantizer (called 'scalar quantizer') to compress a 4-byte
//! float value to a 1-byte integer." Each dimension gets its own `[min, max]`
//! range learned from the training data; values are mapped affinely to 0..=255.


use crate::vectors::VectorSet;

/// Per-dimension affine quantizer `f32 → u8`.
#[derive(Debug, Clone)]
pub struct ScalarQuantizer {
    /// Per-dimension minimum of the training data.
    vmin: Vec<f32>,
    /// Per-dimension `(max - min) / 255`, zero for constant dimensions.
    vstep: Vec<f32>,
}

serde::impl_serde_struct!(ScalarQuantizer { vmin, vstep });

impl ScalarQuantizer {
    /// Learn per-dimension ranges from `data`.
    ///
    /// # Panics
    /// Panics if `data` is empty (the IVF build rejects that earlier).
    pub fn train(data: &VectorSet) -> Self {
        assert!(!data.is_empty(), "scalar quantizer needs training data");
        let dim = data.dim();
        let mut vmin = vec![f32::INFINITY; dim];
        let mut vmax = vec![f32::NEG_INFINITY; dim];
        for row in data.iter() {
            for (d, &x) in row.iter().enumerate() {
                vmin[d] = vmin[d].min(x);
                vmax[d] = vmax[d].max(x);
            }
        }
        let vstep = vmin
            .iter()
            .zip(&vmax)
            .map(|(&lo, &hi)| if hi > lo { (hi - lo) / 255.0 } else { 0.0 })
            .collect();
        Self { vmin, vstep }
    }

    /// Reassemble from persisted parameters (codec).
    pub fn from_params(vmin: Vec<f32>, vstep: Vec<f32>) -> Self {
        assert_eq!(vmin.len(), vstep.len(), "parameter arrays must align");
        Self { vmin, vstep }
    }

    /// Per-dimension minima.
    pub fn vmin(&self) -> &[f32] {
        &self.vmin
    }

    /// Per-dimension quantization steps.
    pub fn vstep(&self) -> &[f32] {
        &self.vstep
    }

    /// Vector dimensionality this quantizer was trained for.
    pub fn dim(&self) -> usize {
        self.vmin.len()
    }

    /// Encode `v`, appending `dim` bytes to `out`.
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        debug_assert_eq!(v.len(), self.dim());
        for (d, &x) in v.iter().enumerate() {
            let code = if self.vstep[d] == 0.0 {
                0.0
            } else {
                ((x - self.vmin[d]) / self.vstep[d]).clamp(0.0, 255.0)
            };
            out.push(code.round() as u8);
        }
    }

    /// Fold `query` into per-query fused-scan state for `metric` — done once
    /// per query, after which every bucket's raw codes are scored directly
    /// (no decode pass, no scratch allocation). See
    /// [`crate::distance::quant`].
    pub fn prepare<'a>(
        &'a self,
        query: &[f32],
        metric: crate::metric::Metric,
    ) -> crate::distance::quant::PreparedSq8<'a> {
        crate::distance::quant::PreparedSq8::prepare(&self.vmin, &self.vstep, query, metric)
    }

    /// Decode `code` (one vector, `dim` bytes) into `out`.
    pub fn decode_into(&self, code: &[u8], out: &mut [f32]) {
        debug_assert_eq!(code.len(), self.dim());
        debug_assert_eq!(out.len(), self.dim());
        for d in 0..code.len() {
            out[d] = self.vmin[d] + code[d] as f32 * self.vstep[d];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VectorSet {
        VectorSet::from_flat(2, vec![0.0, -1.0, 10.0, 1.0, 5.0, 0.0])
    }

    #[test]
    fn roundtrip_error_within_step() {
        let sq = ScalarQuantizer::train(&sample());
        let v = [7.3f32, 0.4];
        let mut codes = Vec::new();
        sq.encode_into(&v, &mut codes);
        let mut out = [0.0f32; 2];
        sq.decode_into(&codes, &mut out);
        // Error bounded by half a quantization step per dimension.
        assert!((out[0] - v[0]).abs() <= 10.0 / 255.0);
        assert!((out[1] - v[1]).abs() <= 2.0 / 255.0);
    }

    #[test]
    fn extremes_map_to_0_and_255() {
        let sq = ScalarQuantizer::train(&sample());
        let mut codes = Vec::new();
        sq.encode_into(&[0.0, -1.0], &mut codes);
        sq.encode_into(&[10.0, 1.0], &mut codes);
        assert_eq!(&codes, &[0, 0, 255, 255]);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let sq = ScalarQuantizer::train(&sample());
        let mut codes = Vec::new();
        sq.encode_into(&[-100.0, 100.0], &mut codes);
        assert_eq!(&codes, &[0, 255]);
    }

    #[test]
    fn constant_dimension_roundtrips_exactly() {
        let data = VectorSet::from_flat(1, vec![3.0, 3.0, 3.0]);
        let sq = ScalarQuantizer::train(&data);
        let mut codes = Vec::new();
        sq.encode_into(&[3.0], &mut codes);
        let mut out = [0.0f32];
        sq.decode_into(&codes, &mut out);
        assert_eq!(out[0], 3.0);
    }

    #[test]
    fn compression_is_4x() {
        // 1 byte per dimension vs 4 bytes for the float: the paper's "1/4 the
        // space of IVF_FLAT" claim, by construction.
        let sq = ScalarQuantizer::train(&sample());
        let mut codes = Vec::new();
        sq.encode_into(&[1.0, 0.0], &mut codes);
        assert_eq!(codes.len() * 4, 2 * std::mem::size_of::<f32>());
    }
}

//! Product quantization for IVF_PQ (§3.1, Jégou et al., TPAMI 2011).
//!
//! "IVF_PQ uses product quantization that splits each vector into multiple
//! sub-vectors and applies K-means for each sub-space." Search uses
//! asymmetric distance computation (ADC): per query, a lookup table of
//! sub-distances from each query sub-vector to every sub-codeword is built
//! once, after which each encoded vector's distance is `m` table lookups.

use crate::error::{IndexError, Result};
use crate::kmeans;
use crate::metric::Metric;
use crate::vectors::VectorSet;

/// A trained product quantizer: `m` sub-spaces × `2^nbits` codewords each.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    sub_dim: usize,
    ksub: usize,
    /// Codebooks laid out as `m` consecutive VectorSets of dim `sub_dim`.
    codebooks: Vec<VectorSet>,
}

/// Per-query ADC lookup table.
///
/// Rows are padded to a fixed stride of 256 entries (the `u8` code domain),
/// so a code byte indexes its row as `row[c as usize]` through a
/// `&[f32; 256]` view — no bounds check, no `sub * ksub + c` multiply, all
/// safe code. Padding slots beyond `ksub` are zero and unreachable (codes
/// are always `< ksub`).
pub struct DistanceTable {
    m: usize,
    /// `m * 256` sub-distances, one stride-256 row per sub-space.
    table: Vec<f32>,
    /// Whether partial sums grow monotonically (all entries ≥ 0), which is
    /// what makes early-abandon pruning exact. True for L2 tables; false for
    /// inner product, whose negated-similarity entries can be negative.
    monotone: bool,
}

/// Fixed row stride: one slot per possible `u8` code.
const STRIDE: usize = 256;

/// How many sub-quantizer rows the pruned lookups consume between threshold
/// checks (the ISSUE's "check every 8 subquantizers").
const PRUNE_BLOCK: usize = 8;

impl DistanceTable {
    /// Total distance of an encoded vector: sum of one lookup per sub-space.
    #[inline]
    pub fn lookup(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.m);
        let mut sum = 0.0;
        for (row, &c) in self.rows().zip(code) {
            sum += row[c as usize];
        }
        sum
    }

    /// Total distances of four encoded vectors in one pass: each stride-256
    /// row is resolved once and feeds four accumulators. Bit-identical per
    /// code to [`lookup`](Self::lookup) (same left-to-right sum per code).
    #[inline]
    pub fn lookup4(&self, codes: [&[u8]; 4]) -> [f32; 4] {
        for c in &codes {
            debug_assert_eq!(c.len(), self.m);
        }
        let mut sums = [0.0f32; 4];
        for (sub, row) in self.rows().enumerate() {
            for (s, c) in sums.iter_mut().zip(&codes) {
                *s += row[c[sub] as usize];
            }
        }
        sums
    }

    /// [`lookup`](Self::lookup) with early abandon: once the partial sum
    /// strictly exceeds `threshold` (checked every [`PRUNE_BLOCK`] rows),
    /// returns `None`.
    ///
    /// Pruning only fires on monotone (L2) tables, and only on a *strict*
    /// `>`: the heap keeps a candidate iff `cand < worst` (ties lose), so a
    /// partial already beyond the current worst can never be retained —
    /// abandoned codes are exactly those [`crate::topk::TopK::push`] would
    /// reject. Passing a non-monotone table or `f32::INFINITY` threshold
    /// degrades gracefully to a full lookup.
    #[inline]
    pub fn lookup_pruned(&self, code: &[u8], threshold: f32) -> Option<f32> {
        debug_assert_eq!(code.len(), self.m);
        if !self.monotone || threshold == f32::INFINITY {
            return Some(self.lookup(code));
        }
        let mut sum = 0.0;
        let mut sub = 0;
        for block in self.table.chunks_exact(STRIDE * PRUNE_BLOCK) {
            for (row, &c) in rows_of(block).zip(&code[sub..sub + PRUNE_BLOCK]) {
                sum += row[c as usize];
            }
            sub += PRUNE_BLOCK;
            if sum > threshold {
                return None;
            }
        }
        for (row, &c) in rows_of(&self.table[sub * STRIDE..]).zip(&code[sub..]) {
            sum += row[c as usize];
        }
        (sum <= threshold).then_some(sum)
    }

    /// ×4-tiled [`lookup_pruned`](Self::lookup_pruned): four codes advance
    /// together, each dropping out of the live set the moment its partial
    /// exceeds `threshold`. Surviving sums are bit-identical to
    /// [`lookup`](Self::lookup).
    #[inline]
    pub fn lookup4_pruned(&self, codes: [&[u8]; 4], threshold: f32) -> [Option<f32>; 4] {
        for c in &codes {
            debug_assert_eq!(c.len(), self.m);
        }
        if !self.monotone || threshold == f32::INFINITY {
            return self.lookup4(codes).map(Some);
        }
        let mut sums = [0.0f32; 4];
        let mut live = [true; 4];
        let mut sub = 0;
        for block in self.table.chunks_exact(STRIDE * PRUNE_BLOCK) {
            for (off, row) in rows_of(block).enumerate() {
                for (s, c) in sums.iter_mut().zip(&codes) {
                    *s += row[c[sub + off] as usize];
                }
            }
            sub += PRUNE_BLOCK;
            let mut any = false;
            for (l, s) in live.iter_mut().zip(&sums) {
                *l = *l && *s <= threshold;
                any |= *l;
            }
            if !any {
                return [None; 4];
            }
        }
        for (off, row) in rows_of(&self.table[sub * STRIDE..]).enumerate() {
            for (s, c) in sums.iter_mut().zip(&codes) {
                *s += row[c[sub + off] as usize];
            }
        }
        let mut out = [None; 4];
        for ((o, l), s) in out.iter_mut().zip(&live).zip(&sums) {
            if *l && *s <= threshold {
                *o = Some(*s);
            }
        }
        out
    }

    /// Number of sub-quantizers (bytes per code).
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    #[inline]
    fn rows(&self) -> impl Iterator<Item = &[f32; STRIDE]> {
        rows_of(&self.table)
    }
}

/// View a stride-256 region as fixed-size rows; the `try_into` always
/// succeeds and lets `row[u8 as usize]` index without a bounds check.
#[inline]
fn rows_of(region: &[f32]) -> impl Iterator<Item = &[f32; STRIDE]> {
    region.chunks_exact(STRIDE).map(|r| r.try_into().expect("stride-256 row"))
}

impl ProductQuantizer {
    /// Train codebooks over `data`, splitting each vector into `m` sub-vectors
    /// with `2^nbits` codewords per sub-space.
    pub fn train(
        data: &VectorSet,
        m: usize,
        nbits: u32,
        kmeans_iters: usize,
        seed: u64,
    ) -> Result<Self> {
        let dim = data.dim();
        if m == 0 || !dim.is_multiple_of(m) {
            return Err(IndexError::invalid(
                "pq_m",
                format!("m={m} must be positive and divide dim={dim}"),
            ));
        }
        if !(1..=8).contains(&nbits) {
            return Err(IndexError::invalid("pq_nbits", "must be in 1..=8"));
        }
        let sub_dim = dim / m;
        // Cap codewords at the training-set size so k-means stays trainable.
        let ksub = (1usize << nbits).min(data.len());
        let mut codebooks = Vec::with_capacity(m);
        for sub in 0..m {
            // Slice out the sub-vectors of this sub-space.
            let mut sub_data = VectorSet::with_capacity(sub_dim, data.len());
            for row in data.iter() {
                sub_data.push(&row[sub * sub_dim..(sub + 1) * sub_dim]);
            }
            let km = kmeans::train(&sub_data, ksub, kmeans_iters, seed.wrapping_add(sub as u64))?;
            codebooks.push(km.centroids);
        }
        Ok(Self { dim, m, sub_dim, ksub, codebooks })
    }

    /// Reassemble from persisted codebooks (codec).
    pub fn from_codebooks(
        dim: usize,
        m: usize,
        ksub: usize,
        codebooks: Vec<VectorSet>,
    ) -> Self {
        assert!(m > 0 && dim.is_multiple_of(m), "m must divide dim");
        assert_eq!(codebooks.len(), m, "one codebook per sub-space");
        Self { dim, m, sub_dim: dim / m, ksub, codebooks }
    }

    /// Codebook of sub-space `sub`.
    pub fn codebook(&self, sub: usize) -> &VectorSet {
        &self.codebooks[sub]
    }

    /// Number of sub-quantizers (bytes per code).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codewords per sub-space.
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Encode `v`, appending `m` bytes to `out`.
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        debug_assert_eq!(v.len(), self.dim);
        for sub in 0..self.m {
            let part = &v[sub * self.sub_dim..(sub + 1) * self.sub_dim];
            let (idx, _) = kmeans::nearest_centroid(&self.codebooks[sub], part);
            out.push(idx as u8);
        }
    }

    /// Decode a code into the concatenation of its codewords.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        debug_assert_eq!(code.len(), self.m);
        let mut out = Vec::with_capacity(self.dim);
        for (sub, &c) in code.iter().enumerate() {
            out.extend_from_slice(self.codebooks[sub].get(c as usize));
        }
        out
    }

    /// Build the per-query ADC table for `metric` (L2 or inner product;
    /// cosine is handled by normalization in the IVF layer).
    pub fn distance_table(&self, query: &[f32], metric: Metric) -> DistanceTable {
        debug_assert_eq!(query.len(), self.dim);
        // Stride-256 rows: slots past ksub stay zero and are never indexed
        // (codes are < ksub). L2 entries are all ≥ 0, making partial sums
        // monotone — the invariant early-abandon pruning relies on.
        let mut table = vec![0.0f32; self.m * STRIDE];
        for sub in 0..self.m {
            let qpart = &query[sub * self.sub_dim..(sub + 1) * self.sub_dim];
            for (c, codeword) in self.codebooks[sub].iter().enumerate() {
                table[sub * STRIDE + c] = match metric {
                    Metric::L2 => crate::distance::l2_sq(qpart, codeword),
                    Metric::InnerProduct => -crate::distance::inner_product(qpart, codeword),
                    m => panic!("PQ distance table for unsupported metric {m}"),
                };
            }
        }
        DistanceTable { m: self.m, table, monotone: metric == Metric::L2 }
    }

    /// Heap size of the codebooks.
    pub fn memory_bytes(&self) -> usize {
        self.codebooks.iter().map(VectorSet::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn m_must_divide_dim() {
        let data = random_data(50, 10, 1);
        assert!(ProductQuantizer::train(&data, 3, 8, 5, 0).is_err());
        assert!(ProductQuantizer::train(&data, 0, 8, 5, 0).is_err());
        assert!(ProductQuantizer::train(&data, 5, 8, 5, 0).is_ok());
    }

    #[test]
    fn nbits_range_checked() {
        let data = random_data(50, 8, 1);
        assert!(ProductQuantizer::train(&data, 4, 0, 5, 0).is_err());
        assert!(ProductQuantizer::train(&data, 4, 9, 5, 0).is_err());
    }

    #[test]
    fn encode_decode_reduces_error_vs_random() {
        let data = random_data(300, 8, 2);
        let pq = ProductQuantizer::train(&data, 4, 6, 10, 3).unwrap();
        let mut total_err = 0.0f32;
        for row in data.iter() {
            let mut code = Vec::new();
            pq.encode_into(row, &mut code);
            let dec = pq.decode(&code);
            total_err += crate::distance::l2_sq(row, &dec);
        }
        let avg = total_err / 300.0;
        // Random guessing would give ~ E||x-y||² = 2·dim·Var ≈ 5.3; the
        // quantizer should do far better.
        assert!(avg < 1.0, "avg reconstruction error {avg} too high");
    }

    #[test]
    fn adc_table_matches_decoded_distance_l2() {
        let data = random_data(200, 8, 4);
        let pq = ProductQuantizer::train(&data, 4, 5, 10, 5).unwrap();
        let q: Vec<f32> = data.get(0).to_vec();
        let table = pq.distance_table(&q, Metric::L2);
        for row in data.iter().take(20) {
            let mut code = Vec::new();
            pq.encode_into(row, &mut code);
            let via_table = table.lookup(&code);
            let via_decode = crate::distance::l2_sq(&q, &pq.decode(&code));
            assert!((via_table - via_decode).abs() < 1e-3);
        }
    }

    #[test]
    fn adc_table_matches_decoded_distance_ip() {
        let data = random_data(200, 8, 6);
        let pq = ProductQuantizer::train(&data, 2, 5, 10, 7).unwrap();
        let q: Vec<f32> = data.get(1).to_vec();
        let table = pq.distance_table(&q, Metric::InnerProduct);
        for row in data.iter().take(20) {
            let mut code = Vec::new();
            pq.encode_into(row, &mut code);
            let via_table = table.lookup(&code);
            let via_decode = -crate::distance::inner_product(&q, &pq.decode(&code));
            assert!((via_table - via_decode).abs() < 1e-3);
        }
    }

    #[test]
    fn tiled_and_pruned_lookups_match_lookup_bitwise() {
        // m=20 exercises two full PRUNE_BLOCKs plus a 4-row tail.
        let data = random_data(300, 40, 11);
        let pq = ProductQuantizer::train(&data, 20, 6, 8, 12).unwrap();
        let q: Vec<f32> = data.get(3).to_vec();
        for metric in [Metric::L2, Metric::InnerProduct] {
            let table = pq.distance_table(&q, metric);
            let codes: Vec<Vec<u8>> = (0..8)
                .map(|i| {
                    let mut c = Vec::new();
                    pq.encode_into(data.get(i * 7), &mut c);
                    c
                })
                .collect();
            for group in codes.chunks(4) {
                let tile = [&group[0][..], &group[1][..], &group[2][..], &group[3][..]];
                let tiled = table.lookup4(tile);
                let no_prune = table.lookup4_pruned(tile, f32::INFINITY);
                for j in 0..4 {
                    let reference = table.lookup(tile[j]);
                    assert_eq!(tiled[j].to_bits(), reference.to_bits(), "{metric} lookup4");
                    assert_eq!(no_prune[j], Some(reference), "{metric} lookup4_pruned(inf)");
                    assert_eq!(
                        table.lookup_pruned(tile[j], f32::INFINITY),
                        Some(reference),
                        "{metric} lookup_pruned(inf)"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_lookup_abandons_exactly_above_threshold() {
        let data = random_data(300, 40, 13);
        let pq = ProductQuantizer::train(&data, 20, 6, 8, 14).unwrap();
        let q: Vec<f32> = data.get(5).to_vec();
        let table = pq.distance_table(&q, Metric::L2);
        let full: Vec<(Vec<u8>, f32)> = (0..40)
            .map(|i| {
                let mut c = Vec::new();
                pq.encode_into(data.get(i * 5), &mut c);
                let d = table.lookup(&c);
                (c, d)
            })
            .collect();
        // Median distance as threshold: survivors must return their exact
        // full sum, everything strictly above must be abandoned.
        let mut dists: Vec<f32> = full.iter().map(|(_, d)| *d).collect();
        dists.sort_by(f32::total_cmp);
        let threshold = dists[dists.len() / 2];
        for (c, d) in &full {
            let got = table.lookup_pruned(c, threshold);
            if *d <= threshold {
                assert_eq!(got, Some(*d), "survivor must keep exact distance");
            } else {
                assert_eq!(got, None, "dist {d} > {threshold} must abandon");
            }
        }
        for group in full.chunks(4) {
            if group.len() < 4 {
                continue;
            }
            let tile = [&group[0].0[..], &group[1].0[..], &group[2].0[..], &group[3].0[..]];
            let got = table.lookup4_pruned(tile, threshold);
            for (g, (_, d)) in got.iter().zip(group) {
                assert_eq!(*g, (*d <= threshold).then_some(*d));
            }
        }
        // IP tables are non-monotone: pruning must degrade to full lookups.
        let ip = pq.distance_table(&q, Metric::InnerProduct);
        let mut c = Vec::new();
        pq.encode_into(data.get(0), &mut c);
        assert_eq!(ip.lookup_pruned(&c, f32::NEG_INFINITY), Some(ip.lookup(&c)));
    }

    #[test]
    fn small_training_set_caps_ksub() {
        let data = random_data(10, 4, 8);
        let pq = ProductQuantizer::train(&data, 2, 8, 5, 9).unwrap();
        assert!(pq.ksub() <= 10);
    }
}

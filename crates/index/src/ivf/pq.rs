//! Product quantization for IVF_PQ (§3.1, Jégou et al., TPAMI 2011).
//!
//! "IVF_PQ uses product quantization that splits each vector into multiple
//! sub-vectors and applies K-means for each sub-space." Search uses
//! asymmetric distance computation (ADC): per query, a lookup table of
//! sub-distances from each query sub-vector to every sub-codeword is built
//! once, after which each encoded vector's distance is `m` table lookups.

use crate::error::{IndexError, Result};
use crate::kmeans;
use crate::metric::Metric;
use crate::vectors::VectorSet;

/// A trained product quantizer: `m` sub-spaces × `2^nbits` codewords each.
#[derive(Debug, Clone)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    sub_dim: usize,
    ksub: usize,
    /// Codebooks laid out as `m` consecutive VectorSets of dim `sub_dim`.
    codebooks: Vec<VectorSet>,
}

/// Per-query ADC lookup table.
pub struct DistanceTable {
    m: usize,
    ksub: usize,
    /// `m * ksub` sub-distances, row-major by sub-space.
    table: Vec<f32>,
}

impl DistanceTable {
    /// Total distance of an encoded vector: sum of one lookup per sub-space.
    #[inline]
    pub fn lookup(&self, code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.m);
        let mut sum = 0.0;
        for (sub, &c) in code.iter().enumerate() {
            sum += self.table[sub * self.ksub + c as usize];
        }
        sum
    }
}

impl ProductQuantizer {
    /// Train codebooks over `data`, splitting each vector into `m` sub-vectors
    /// with `2^nbits` codewords per sub-space.
    pub fn train(
        data: &VectorSet,
        m: usize,
        nbits: u32,
        kmeans_iters: usize,
        seed: u64,
    ) -> Result<Self> {
        let dim = data.dim();
        if m == 0 || !dim.is_multiple_of(m) {
            return Err(IndexError::invalid(
                "pq_m",
                format!("m={m} must be positive and divide dim={dim}"),
            ));
        }
        if !(1..=8).contains(&nbits) {
            return Err(IndexError::invalid("pq_nbits", "must be in 1..=8"));
        }
        let sub_dim = dim / m;
        // Cap codewords at the training-set size so k-means stays trainable.
        let ksub = (1usize << nbits).min(data.len());
        let mut codebooks = Vec::with_capacity(m);
        for sub in 0..m {
            // Slice out the sub-vectors of this sub-space.
            let mut sub_data = VectorSet::with_capacity(sub_dim, data.len());
            for row in data.iter() {
                sub_data.push(&row[sub * sub_dim..(sub + 1) * sub_dim]);
            }
            let km = kmeans::train(&sub_data, ksub, kmeans_iters, seed.wrapping_add(sub as u64))?;
            codebooks.push(km.centroids);
        }
        Ok(Self { dim, m, sub_dim, ksub, codebooks })
    }

    /// Reassemble from persisted codebooks (codec).
    pub fn from_codebooks(
        dim: usize,
        m: usize,
        ksub: usize,
        codebooks: Vec<VectorSet>,
    ) -> Self {
        assert!(m > 0 && dim.is_multiple_of(m), "m must divide dim");
        assert_eq!(codebooks.len(), m, "one codebook per sub-space");
        Self { dim, m, sub_dim: dim / m, ksub, codebooks }
    }

    /// Codebook of sub-space `sub`.
    pub fn codebook(&self, sub: usize) -> &VectorSet {
        &self.codebooks[sub]
    }

    /// Number of sub-quantizers (bytes per code).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Codewords per sub-space.
    pub fn ksub(&self) -> usize {
        self.ksub
    }

    /// Encode `v`, appending `m` bytes to `out`.
    pub fn encode_into(&self, v: &[f32], out: &mut Vec<u8>) {
        debug_assert_eq!(v.len(), self.dim);
        for sub in 0..self.m {
            let part = &v[sub * self.sub_dim..(sub + 1) * self.sub_dim];
            let (idx, _) = kmeans::nearest_centroid(&self.codebooks[sub], part);
            out.push(idx as u8);
        }
    }

    /// Decode a code into the concatenation of its codewords.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        debug_assert_eq!(code.len(), self.m);
        let mut out = Vec::with_capacity(self.dim);
        for (sub, &c) in code.iter().enumerate() {
            out.extend_from_slice(self.codebooks[sub].get(c as usize));
        }
        out
    }

    /// Build the per-query ADC table for `metric` (L2 or inner product;
    /// cosine is handled by normalization in the IVF layer).
    pub fn distance_table(&self, query: &[f32], metric: Metric) -> DistanceTable {
        debug_assert_eq!(query.len(), self.dim);
        let mut table = vec![0.0f32; self.m * self.ksub];
        for sub in 0..self.m {
            let qpart = &query[sub * self.sub_dim..(sub + 1) * self.sub_dim];
            for (c, codeword) in self.codebooks[sub].iter().enumerate() {
                table[sub * self.ksub + c] = match metric {
                    Metric::L2 => crate::distance::l2_sq(qpart, codeword),
                    Metric::InnerProduct => -crate::distance::inner_product(qpart, codeword),
                    m => panic!("PQ distance table for unsupported metric {m}"),
                };
            }
        }
        DistanceTable { m: self.m, ksub: self.ksub, table }
    }

    /// Heap size of the codebooks.
    pub fn memory_bytes(&self) -> usize {
        self.codebooks.iter().map(VectorSet::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn m_must_divide_dim() {
        let data = random_data(50, 10, 1);
        assert!(ProductQuantizer::train(&data, 3, 8, 5, 0).is_err());
        assert!(ProductQuantizer::train(&data, 0, 8, 5, 0).is_err());
        assert!(ProductQuantizer::train(&data, 5, 8, 5, 0).is_ok());
    }

    #[test]
    fn nbits_range_checked() {
        let data = random_data(50, 8, 1);
        assert!(ProductQuantizer::train(&data, 4, 0, 5, 0).is_err());
        assert!(ProductQuantizer::train(&data, 4, 9, 5, 0).is_err());
    }

    #[test]
    fn encode_decode_reduces_error_vs_random() {
        let data = random_data(300, 8, 2);
        let pq = ProductQuantizer::train(&data, 4, 6, 10, 3).unwrap();
        let mut total_err = 0.0f32;
        for row in data.iter() {
            let mut code = Vec::new();
            pq.encode_into(row, &mut code);
            let dec = pq.decode(&code);
            total_err += crate::distance::l2_sq(row, &dec);
        }
        let avg = total_err / 300.0;
        // Random guessing would give ~ E||x-y||² = 2·dim·Var ≈ 5.3; the
        // quantizer should do far better.
        assert!(avg < 1.0, "avg reconstruction error {avg} too high");
    }

    #[test]
    fn adc_table_matches_decoded_distance_l2() {
        let data = random_data(200, 8, 4);
        let pq = ProductQuantizer::train(&data, 4, 5, 10, 5).unwrap();
        let q: Vec<f32> = data.get(0).to_vec();
        let table = pq.distance_table(&q, Metric::L2);
        for row in data.iter().take(20) {
            let mut code = Vec::new();
            pq.encode_into(row, &mut code);
            let via_table = table.lookup(&code);
            let via_decode = crate::distance::l2_sq(&q, &pq.decode(&code));
            assert!((via_table - via_decode).abs() < 1e-3);
        }
    }

    #[test]
    fn adc_table_matches_decoded_distance_ip() {
        let data = random_data(200, 8, 6);
        let pq = ProductQuantizer::train(&data, 2, 5, 10, 7).unwrap();
        let q: Vec<f32> = data.get(1).to_vec();
        let table = pq.distance_table(&q, Metric::InnerProduct);
        for row in data.iter().take(20) {
            let mut code = Vec::new();
            pq.encode_into(row, &mut code);
            let via_table = table.lookup(&code);
            let via_decode = -crate::distance::inner_product(&q, &pq.decode(&code));
            assert!((via_table - via_decode).abs() < 1e-3);
        }
    }

    #[test]
    fn small_training_set_caps_ksub() {
        let data = random_data(10, 4, 8);
        let pq = ProductQuantizer::train(&data, 2, 8, 5, 9).unwrap();
        assert!(pq.ksub() <= 10);
    }
}

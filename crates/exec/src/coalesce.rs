//! Cross-caller query coalescing: a bounded-window rendezvous that turns
//! concurrent single-query calls into one batched invocation.
//!
//! The batch engines ([`cache_aware` kernels in `milvus-index`]) amortize
//! each streamed data row across a ×4 tile of resident queries, but only
//! when queries arrive *as a batch*. The [`Coalescer`] makes concurrency
//! itself produce those batches:
//!
//! * **Zero-added-latency passthrough.** A submitter that finds the
//!   coalescer idle (no batch running, nothing queued) claims a token and
//!   runs the serial path itself — no timer, no queue round-trip, no added
//!   latency floor for sparse traffic.
//! * **Bounded window under contention.** Submitters that arrive while the
//!   token is held (or while others are queued) enqueue. The oldest pending
//!   query anchors the window: when it has waited `window`, or `max_batch`
//!   queries are pending — whichever comes first — the queue head becomes
//!   the *leader*, drains up to `max_batch` entries, and runs the caller's
//!   batch closure on its own thread. Followers block on a condvar and are
//!   handed their demultiplexed result.
//!
//! The closure is supplied per-submit (every caller passes the same logic;
//! whoever leads uses theirs), must return exactly one result per query in
//! input order, and must not panic — batch execution failures belong in the
//! result type `R`, not in unwinding, because followers are parked until
//! the leader scatters.
//!
//! This type is deliberately generic over `(Q, R)` and free of any
//! executor/search dependency: `milvus-core` wraps it per collection and
//! `milvus-distributed` per reader node.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Tuning for one [`Coalescer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoalesceConfig {
    /// Maximum time the oldest pending query is held before its batch runs
    /// regardless of size. Zero degenerates to "lead as soon as the token
    /// frees" (still batching whatever queued behind a running pass).
    pub window: Duration,
    /// Batch size that triggers immediate execution, and the cap on how
    /// many entries one leader drains.
    pub max_batch: usize,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig { window: Duration::from_millis(1), max_batch: 32 }
    }
}

struct Pending<Q> {
    id: u64,
    enqueued: Instant,
    query: Q,
}

/// A follower's delivered result: the value plus batch metadata for
/// metrics.
struct Delivered<R> {
    result: R,
    batch: usize,
    /// When the leader started executing the batch — the end of this
    /// query's coalesce wait.
    batch_started: Instant,
}

struct State<Q, R> {
    queue: VecDeque<Pending<Q>>,
    results: HashMap<u64, Delivered<R>>,
    next_id: u64,
    /// Execution token: true while a passthrough caller or a batch leader
    /// is running. At most one executes at a time; everyone else queues.
    busy: bool,
}

/// What [`Coalescer::submit`] decided for this caller.
pub enum Submitted<'a, Q, R> {
    /// The coalescer was idle: run the serial path yourself, then drop the
    /// guard to release the execution token.
    Pass(PassGuard<'a, Q, R>),
    /// The query ran inside a coalesced batch.
    Coalesced {
        /// This caller's demultiplexed result.
        result: R,
        /// Number of queries in the batch.
        batch: usize,
        /// True when this caller was the leader that executed the batch
        /// (exactly one per batch — the hook for batch-level metrics).
        led: bool,
        /// Time this query was held in the window before its batch ran.
        waited: Duration,
    },
}

/// RAII execution token for the passthrough path; dropping it (even during
/// unwind) releases the coalescer and wakes any queued submitters.
pub struct PassGuard<'a, Q, R> {
    co: &'a Coalescer<Q, R>,
}

impl<Q, R> Drop for PassGuard<'_, Q, R> {
    fn drop(&mut self) {
        let mut st = self.co.inner.lock();
        st.busy = false;
        drop(st);
        self.co.cv.notify_all();
    }
}

/// The rendezvous point. One per collection (or per reader node); cheap
/// when idle — a single uncontended lock acquisition per submit.
pub struct Coalescer<Q, R> {
    cfg: CoalesceConfig,
    inner: Mutex<State<Q, R>>,
    cv: Condvar,
}

impl<Q, R> Coalescer<Q, R> {
    /// Build a coalescer with the given window/batch bounds.
    pub fn new(cfg: CoalesceConfig) -> Self {
        Coalescer {
            cfg: CoalesceConfig { window: cfg.window, max_batch: cfg.max_batch.max(1) },
            inner: Mutex::new(State {
                queue: VecDeque::new(),
                results: HashMap::new(),
                next_id: 0,
                busy: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> CoalesceConfig {
        self.cfg
    }

    /// Queries currently held in the window (diagnostics/tests).
    pub fn pending(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Submit one query. Returns immediately with
    /// [`Submitted::Pass`] when idle; otherwise blocks until the query's
    /// batch has run and returns [`Submitted::Coalesced`].
    ///
    /// `run` receives the drained batch in queue order and must return one
    /// result per query, same order. It is invoked by exactly one caller
    /// per batch (the leader), on that caller's thread, with the coalescer
    /// lock released. It must not panic.
    pub fn submit<F>(&self, query: Q, run: F) -> Submitted<'_, Q, R>
    where
        F: FnOnce(Vec<Q>) -> Vec<R>,
    {
        let mut st = self.inner.lock();
        if !st.busy && st.queue.is_empty() {
            st.busy = true;
            drop(st);
            return Submitted::Pass(PassGuard { co: self });
        }
        let id = st.next_id;
        st.next_id += 1;
        let enqueued = Instant::now();
        st.queue.push_back(Pending { id, enqueued, query });
        if st.queue.len() >= self.cfg.max_batch {
            // The head may be asleep on its window timer; a full batch
            // should run now.
            self.cv.notify_all();
        }
        loop {
            if let Some(d) = st.results.remove(&id) {
                return Submitted::Coalesced {
                    result: d.result,
                    batch: d.batch,
                    led: false,
                    waited: d.batch_started.saturating_duration_since(enqueued),
                };
            }
            let head = st.queue.front().map(|p| (p.id, p.enqueued));
            match head {
                Some((hid, head_enq)) if hid == id && !st.busy => {
                    let deadline = head_enq + self.cfg.window;
                    let now = Instant::now();
                    if st.queue.len() >= self.cfg.max_batch || now >= deadline {
                        return self.lead(st, id, enqueued, run);
                    }
                    // Head waits only until its own window deadline; a
                    // timeout simply re-enters the loop and leads.
                    self.cv.wait_for(&mut st, deadline - now);
                }
                _ => {
                    // Not our turn (token held, or someone ahead of us owns
                    // the window). Batch completion, token release, and
                    // batch-full all notify.
                    self.cv.wait(&mut st);
                }
            }
        }
    }

    /// Become the leader: drain up to `max_batch`, execute, scatter results
    /// to followers, return our own.
    fn lead<F>(
        &self,
        mut st: parking_lot::MutexGuard<'_, State<Q, R>>,
        id: u64,
        enqueued: Instant,
        run: F,
    ) -> Submitted<'_, Q, R>
    where
        F: FnOnce(Vec<Q>) -> Vec<R>,
    {
        st.busy = true;
        let n = st.queue.len().min(self.cfg.max_batch);
        let drained: Vec<Pending<Q>> = st.queue.drain(..n).collect();
        drop(st);
        let mut ids = Vec::with_capacity(n);
        let mut queries = Vec::with_capacity(n);
        for p in drained {
            ids.push(p.id);
            queries.push(p.query);
        }
        let batch_started = Instant::now();
        let results = run(queries);
        debug_assert_eq!(results.len(), ids.len(), "batch closure must map 1:1");
        let mut own = None;
        let mut st = self.inner.lock();
        for (qid, result) in ids.iter().zip(results) {
            if *qid == id {
                own = Some(result);
            } else {
                st.results.insert(
                    *qid,
                    Delivered { result, batch: n, batch_started },
                );
            }
        }
        st.busy = false;
        drop(st);
        // Wake followers to collect results, and the next head (if entries
        // remained past max_batch) to start its own window.
        self.cv.notify_all();
        Submitted::Coalesced {
            result: own.expect("leader's own query missing from batch results"),
            batch: n,
            led: true,
            waited: batch_started.saturating_duration_since(enqueued),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn cfg(window_ms: u64, max_batch: usize) -> CoalesceConfig {
        CoalesceConfig { window: Duration::from_millis(window_ms), max_batch }
    }

    /// Serial submits always pass through — no queue, no timer.
    #[test]
    fn idle_submits_pass_through() {
        let co: Coalescer<u32, u32> = Coalescer::new(cfg(50, 8));
        for i in 0..5u32 {
            let start = Instant::now();
            match co.submit(i, |_| unreachable!("passthrough must not batch")) {
                Submitted::Pass(_guard) => {
                    // Serial path would run here; the guard releases on drop.
                }
                Submitted::Coalesced { .. } => panic!("expected passthrough"),
            }
            assert!(start.elapsed() < Duration::from_millis(40), "passthrough waited");
            assert_eq!(co.pending(), 0);
        }
    }

    /// Queries arriving while the token is held coalesce into one batch
    /// and each gets its own demultiplexed result.
    #[test]
    fn contending_submits_coalesce_and_demux() {
        let co: Coalescer<u32, u32> = Coalescer::new(cfg(500, 4));
        let batches = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let holder = match co.submit(99, |_| unreachable!()) {
                Submitted::Pass(g) => g,
                _ => panic!("first submit must pass"),
            };
            let workers: Vec<_> = (0..4u32)
                .map(|i| {
                    let co = &co;
                    let batches = &batches;
                    s.spawn(move || match co.submit(i, |qs| {
                        batches.fetch_add(1, Ordering::SeqCst);
                        qs.iter().map(|q| q * 10).collect()
                    }) {
                        Submitted::Coalesced { result, batch, .. } => (i, result, batch),
                        Submitted::Pass(_) => panic!("token held; must coalesce"),
                    })
                })
                .collect();
            // Wait until all four are queued (batch == max_batch triggers
            // execution as soon as the token frees).
            while co.pending() < 4 {
                std::thread::yield_now();
            }
            drop(holder);
            for w in workers {
                let (i, result, batch) = w.join().unwrap();
                assert_eq!(result, i * 10, "wrong result demuxed to query {i}");
                assert_eq!(batch, 4);
            }
        });
        assert_eq!(batches.load(Ordering::SeqCst), 1, "exactly one leader");
    }

    /// `max_batch` caps each leader's drain; leftovers form the next batch.
    #[test]
    fn max_batch_splits_into_multiple_batches() {
        let co: Coalescer<u32, u32> = Coalescer::new(cfg(5, 2));
        let batches = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let holder = match co.submit(99, |_| unreachable!()) {
                Submitted::Pass(g) => g,
                _ => panic!("first submit must pass"),
            };
            let workers: Vec<_> = (0..4u32)
                .map(|i| {
                    let co = &co;
                    let batches = &batches;
                    s.spawn(move || match co.submit(i, |qs| {
                        batches.fetch_add(1, Ordering::SeqCst);
                        qs.iter().map(|q| q + 100).collect()
                    }) {
                        Submitted::Coalesced { result, batch, .. } => (i, result, batch),
                        Submitted::Pass(_) => panic!("token held; must coalesce"),
                    })
                })
                .collect();
            while co.pending() < 4 {
                std::thread::yield_now();
            }
            drop(holder);
            for w in workers {
                let (i, result, batch) = w.join().unwrap();
                assert_eq!(result, i + 100);
                assert_eq!(batch, 2, "batches must be capped at max_batch");
            }
        });
        assert_eq!(batches.load(Ordering::SeqCst), 2);
    }

    /// A lone queued query still runs once its window expires — the head
    /// self-wakes off its deadline, nobody needs to nudge it.
    #[test]
    fn window_expiry_runs_a_singleton_batch() {
        let co: Coalescer<u32, u32> = Coalescer::new(cfg(10, 64));
        std::thread::scope(|s| {
            let holder = match co.submit(99, |_| unreachable!()) {
                Submitted::Pass(g) => g,
                _ => panic!("first submit must pass"),
            };
            let w = s.spawn(|| match co.submit(7, |qs| qs.iter().map(|q| q * 3).collect()) {
                Submitted::Coalesced { result, batch, led, .. } => (result, batch, led),
                Submitted::Pass(_) => panic!("token held; must coalesce"),
            });
            while co.pending() < 1 {
                std::thread::yield_now();
            }
            drop(holder);
            let (result, batch, led) = w.join().unwrap();
            assert_eq!(result, 21);
            assert_eq!(batch, 1);
            assert!(led, "a singleton batch is led by its only member");
        });
    }

    /// Exactly one caller per batch reports `led` — the metrics hook.
    #[test]
    fn exactly_one_leader_per_batch() {
        let co: Coalescer<u32, u32> = Coalescer::new(cfg(200, 3));
        std::thread::scope(|s| {
            let holder = match co.submit(99, |_| unreachable!()) {
                Submitted::Pass(g) => g,
                _ => panic!("first submit must pass"),
            };
            let workers: Vec<_> = (0..3u32)
                .map(|i| {
                    let co = &co;
                    s.spawn(move || match co.submit(i, |qs| qs.to_vec()) {
                        Submitted::Coalesced { led, .. } => led,
                        Submitted::Pass(_) => panic!("token held; must coalesce"),
                    })
                })
                .collect();
            while co.pending() < 3 {
                std::thread::yield_now();
            }
            drop(holder);
            let leaders = workers
                .into_iter()
                .map(|w| w.join().unwrap())
                .filter(|&led| led)
                .count();
            assert_eq!(leaders, 1);
        });
    }
}

//! Persistent work-stealing executor — the single parallelism substrate for
//! the query path and the batch engines.
//!
//! The paper's fine-grained-parallelism story (§3.2, Figure 3) assigns
//! threads to *data ranges*; before this crate every parallel site paid a
//! `std::thread::scope` spawn/join per query block, and `Collection::search`
//! scanned segments serially. This executor keeps a fixed set of workers
//! alive for the life of the process, so fan-out costs a queue push instead
//! of an OS thread spawn, and independent segment scans overlap.
//!
//! Design (vendored-deps-only: `std::thread` + lock-based crossbeam-style
//! deques):
//!
//! * **Per-worker injector queues.** Every worker owns a deque. External
//!   submitters distribute tasks round-robin across the worker deques;
//!   a worker submitting from inside a task pushes to its *own* deque
//!   (locality, like crossbeam's `Worker`/`Injector` split).
//! * **Work stealing.** An idle worker first drains its own deque (FIFO),
//!   then steals from its peers' back ends. A thread blocked in
//!   [`Executor::scope`] also steals — but only tasks belonging to its own
//!   scope, so callers help execute while they wait (nested scopes are
//!   deadlock-free even on one core) without an unrelated long task
//!   delaying their join.
//! * **Structured joins.** [`Executor::scope`] mirrors `std::thread::scope`:
//!   tasks may borrow from the enclosing stack frame, the scope does not
//!   return until every spawned task finished — even when the scope closure
//!   itself panics — and panics are re-raised at the join (closure panic
//!   first, then the first task panic).
//! * **Observability.** The pool exports `milvus_exec_tasks_total`,
//!   `milvus_exec_steals_total`, `milvus_exec_queue_depth` and
//!   busy/size worker gauges through `milvus-obs`, labeled by pool name.
//!
//! Determinism: [`Executor::scoped_map`] returns results in task-index
//! order regardless of which worker ran what, so callers (batch engines,
//! segment fan-out) produce bit-identical results to their serial forms.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use milvus_obs as obs;
use parking_lot::{Condvar, Mutex};

pub mod coalesce;

/// A queued unit of work. Scoped tasks are transmuted to `'static`; the
/// scope guarantees they complete before the borrowed frame unwinds.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A deque entry: the task plus the identity of the scope that spawned it.
/// Workers run anything; a thread blocked in [`Executor::scope`] only helps
/// with its *own* scope's tasks, so an unrelated long-running task can never
/// delay a join and helper threads never skew the busy-worker gauge.
struct QueuedTask {
    /// Address of the owning [`ScopeState`] — unique while any of the
    /// scope's tasks exist, because the scope drains them before returning.
    tag: usize,
    task: Task,
}

/// Process-unique executor ids so a worker thread can tell which pool it
/// belongs to (nested pools in tests).
static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(executor id, worker index)` when the current thread is a pool worker.
    static CURRENT_WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// Scheduling lane for a spawned task. Workers drain every `Normal` task
/// they can see (own deque plus steals) before touching the `Low` lane, so
/// background work (speculative scans, deprioritized queries) only runs on
/// capacity the foreground path is not using.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Foreground lane — the default for all existing callers.
    #[default]
    Normal,
    /// Background lane, drained only when no `Normal` task is available.
    Low,
}

struct Shared {
    id: u64,
    /// One lock-based deque per worker — the "per-worker injector queues".
    deques: Vec<Mutex<VecDeque<QueuedTask>>>,
    /// Second, low-priority lane: same shape, only consulted when the
    /// primary deques (own + stealable) are all empty.
    low_deques: Vec<Mutex<VecDeque<QueuedTask>>>,
    /// Round-robin cursor for external submissions.
    next_queue: AtomicUsize,
    /// Tasks currently queued (not yet picked up).
    queued: AtomicUsize,
    /// Workers currently blocked on `wake` — lets `inject` skip the
    /// lock+notify entirely while the pool is busy.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    // Metric handles, resolved once (recording is a bare atomic op).
    tasks_total: Arc<obs::Counter>,
    steals_total: Arc<obs::Counter>,
    queue_depth: Arc<obs::Gauge>,
    busy_workers: Arc<obs::Gauge>,
}

/// Remove the owner-side (front) task, or with a `filter` the frontmost task
/// whose tag matches.
fn pop_matching_front(dq: &mut VecDeque<QueuedTask>, filter: Option<usize>) -> Option<Task> {
    match filter {
        None => dq.pop_front().map(|qt| qt.task),
        Some(tag) => {
            let i = dq.iter().position(|qt| qt.tag == tag)?;
            dq.remove(i).map(|qt| qt.task)
        }
    }
}

/// Remove the steal-side (back) task, or with a `filter` the backmost task
/// whose tag matches.
fn pop_matching_back(dq: &mut VecDeque<QueuedTask>, filter: Option<usize>) -> Option<Task> {
    match filter {
        None => dq.pop_back().map(|qt| qt.task),
        Some(tag) => {
            let i = dq.iter().rposition(|qt| qt.tag == tag)?;
            dq.remove(i).map(|qt| qt.task)
        }
    }
}

impl Shared {
    /// Pop a task. Workers pass their own index and prefer their own deque;
    /// scope waiters additionally pass `filter = Some(scope tag)` so they
    /// only ever execute tasks belonging to their own scope. The whole
    /// primary lane — own front plus every stealable back — is exhausted
    /// before the low-priority lane is consulted at all.
    fn take_task(&self, own: Option<usize>, filter: Option<usize>) -> Option<(Task, bool)> {
        if self.queued.load(Ordering::Acquire) == 0 {
            return None;
        }
        for lane in [&self.deques, &self.low_deques] {
            if let Some(idx) = own {
                if let Some(task) = pop_matching_front(&mut lane[idx].lock(), filter) {
                    self.note_dequeue();
                    return Some((task, false));
                }
            }
            let n = lane.len();
            let start = own.map_or_else(|| self.next_queue.load(Ordering::Relaxed), |i| i + 1);
            for off in 0..n {
                let victim = (start + off) % n;
                if Some(victim) == own {
                    continue;
                }
                // Steal from the back, opposite the owner's pop end.
                if let Some(task) = pop_matching_back(&mut lane[victim].lock(), filter) {
                    self.note_dequeue();
                    self.steals_total.inc();
                    return Some((task, true));
                }
            }
        }
        None
    }

    fn note_dequeue(&self) {
        self.queued.fetch_sub(1, Ordering::AcqRel);
        self.queue_depth.add(-1);
    }

    /// Execute a task on a pool worker. The busy gauge is restored by a drop
    /// guard and the panic contained, so a panicking task can neither leak
    /// the gauge nor unwind through `worker_loop` and shrink the pool.
    /// (Scoped tasks capture their panics internally; a panic reaching here
    /// could only come from a future direct-inject path.)
    fn run(&self, task: Task) {
        struct BusyGuard<'a>(&'a obs::Gauge);
        impl Drop for BusyGuard<'_> {
            fn drop(&mut self) {
                self.0.add(-1);
            }
        }
        self.tasks_total.inc();
        self.busy_workers.add(1);
        let _busy = BusyGuard(&self.busy_workers);
        let _ = catch_unwind(AssertUnwindSafe(task));
    }

    /// Execute a task on a scope-waiter thread: counted in `tasks_total` but
    /// not in `busy_workers` — helpers are not workers, and nested helping on
    /// a worker would double-count it. Panics propagate to the caller (the
    /// scope drain loop), which records them in the scope's panic slot.
    fn run_helper(&self, task: Task) {
        self.tasks_total.inc();
        task();
    }

    fn inject(&self, tag: usize, task: Task, prio: Priority) {
        let idx = match CURRENT_WORKER.with(Cell::get) {
            Some((id, idx)) if id == self.id => idx,
            _ => self.next_queue.fetch_add(1, Ordering::Relaxed) % self.deques.len(),
        };
        let lane = match prio {
            Priority::Normal => &self.deques,
            Priority::Low => &self.low_deques,
        };
        lane[idx].lock().push_back(QueuedTask { tag, task });
        // SeqCst pairs with the sleeper protocol in `worker_loop`: either the
        // worker's queued-recheck sees this increment, or our sleepers-load
        // below sees the worker's registration and we notify.
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.queue_depth.add(1);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _g = self.sleep_lock.lock();
            self.wake.notify_all();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    CURRENT_WORKER.with(|w| w.set(Some((shared.id, idx))));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match shared.take_task(Some(idx), None) {
            Some((task, _stolen)) => shared.run(task),
            None => {
                let mut guard = shared.sleep_lock.lock();
                // Sleeper protocol: register under the lock, then re-check
                // for work. An injector either sees `queued` already bumped
                // (worker skips the wait) or sees `sleepers > 0` and
                // notifies under the same lock — no lost wakeup. The long
                // timeout is only a defensive fallback, so an idle pool is
                // event-driven instead of polling.
                shared.sleepers.fetch_add(1, Ordering::SeqCst);
                if shared.queued.load(Ordering::SeqCst) == 0
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    shared.wake.wait_for(&mut guard, Duration::from_millis(500));
                }
                shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// A persistent pool of worker threads with work-stealing deques.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    threads: usize,
}

impl Executor {
    /// Spin up a pool of `threads` workers. `name` labels the pool's metric
    /// series (`pool="<name>"` in `/metrics`).
    pub fn new(name: &str, threads: usize) -> Executor {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            id: NEXT_EXEC_ID.fetch_add(1, Ordering::Relaxed),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            low_deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_queue: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            tasks_total: obs::counter(obs::EXEC_TASKS, name),
            steals_total: obs::counter(obs::EXEC_STEALS, name),
            queue_depth: obs::gauge(obs::EXEC_QUEUE_DEPTH, name),
            busy_workers: obs::gauge(obs::EXEC_WORKERS_BUSY, name),
        });
        obs::gauge(obs::EXEC_WORKERS, name).set(threads as i64);
        let handles = (0..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("milvus-exec-{name}-{idx}"))
                    .spawn(move || worker_loop(shared, idx))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, handles: Mutex::new(handles), threads }
    }

    /// The process-global pool every query-path fan-out schedules onto.
    ///
    /// Sized at `available_parallelism`, floored at 4 so segment fan-out
    /// still overlaps storage waits (injected delays, bufferpool misses) on
    /// small hosts where scans are not compute-bound.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).max(4);
            Executor::new("global", threads)
        })
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run a structured-concurrency scope: tasks spawned on it may borrow
    /// from the caller's stack; the scope blocks (helping to execute its own
    /// queued tasks) until all of them finish. A panic in the closure or in
    /// any task is re-raised here only after every task completed — the
    /// closure's panic takes precedence, then the first task panic.
    pub fn scope<'env, T>(
        &self,
        f: impl for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    ) -> T {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        let tag = Arc::as_ptr(&state) as usize;
        let scope = Scope { exec: self, state: Arc::clone(&state), tag, _env: PhantomData };
        // The closure runs under catch_unwind because the drain loop below
        // MUST execute even if it panics: already-queued tasks borrow this
        // stack frame, and unwinding past it while they can still run on a
        // worker would be a use-after-free (std::thread::scope joins in a
        // drop guard for the same reason).
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help-while-waiting: drain *this scope's* tasks so nested scopes
        // cannot deadlock and a busy pool still makes progress on our tasks.
        // Restricting helpers to their own tag keeps the busy gauge honest
        // and stops an unrelated long task from delaying this join.
        let own = CURRENT_WORKER
            .with(Cell::get)
            .and_then(|(id, idx)| (id == self.shared.id).then_some(idx));
        while state.pending.load(Ordering::Acquire) > 0 {
            match self.shared.take_task(own, Some(tag)) {
                Some((task, _)) => {
                    // Scoped tasks contain their own panics; this guard is
                    // defense in depth so the drain loop itself can't unwind
                    // past the borrowed frame early.
                    if let Err(payload) =
                        catch_unwind(AssertUnwindSafe(|| self.shared.run_helper(task)))
                    {
                        let mut slot = state.panic.lock();
                        if slot.is_none() {
                            *slot = Some(payload);
                        }
                    }
                }
                None => {
                    let mut guard = state.done_lock.lock();
                    if state.pending.load(Ordering::Acquire) > 0 {
                        // Event-driven: task completion notifies `done`. The
                        // timeout is a liveness fallback for the rare case
                        // where a sibling task spawns onto this scope right
                        // after our queue scan.
                        state.done.wait_for(&mut guard, Duration::from_millis(25));
                    }
                }
            }
        }
        let task_panic = state.panic.lock().take();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(out) => {
                if let Some(payload) = task_panic {
                    resume_unwind(payload);
                }
                out
            }
        }
    }

    /// Fan `f(0) … f(n-1)` out across the pool and return the results in
    /// index order — deterministic regardless of execution interleaving.
    /// `n <= 1` runs inline (no queue round-trip).
    pub fn scoped_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.scoped_map_with(n, Priority::Normal, f)
    }

    /// [`Executor::scoped_map`] into an explicit lane. `Priority::Low`
    /// fan-outs (deprioritized scheduler batches) yield the pool to any
    /// concurrently queued foreground work; results and ordering are
    /// otherwise identical.
    pub fn scoped_map_with<R, F>(&self, n: usize, prio: Priority, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![f(0)];
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        {
            let base = SendPtr(slots.as_mut_ptr());
            let f = &f;
            self.scope(|s| {
                for i in 0..n {
                    s.spawn_prio(prio, move || {
                        let value = f(i);
                        // Safety: each task writes exactly one distinct slot,
                        // and the scope joins before `slots` is touched again.
                        unsafe { *base.slot(i) = Some(value) };
                    });
                }
            });
        }
        slots.into_iter().map(|r| r.expect("scoped task completed")).collect()
    }

    /// [`Executor::scoped_map`] plus a per-task [`TaskTiming`]: when each
    /// task was enqueued, when a worker started it, and when it finished.
    /// Queue wait (`started - enqueued`) and run time are thereby separable
    /// by observability code; the plain `scoped_map` stays clock-free for
    /// callers that do not need timings. Inline execution (`n <= 1`) reports
    /// a zero queue wait (`enqueued == started`).
    pub fn scoped_map_timed<R, F>(&self, n: usize, f: F) -> Vec<(R, TaskTiming)>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            let enqueued = Instant::now();
            let value = f(0);
            let finished = Instant::now();
            return vec![(value, TaskTiming { enqueued, started: enqueued, finished })];
        }
        let mut slots: Vec<Option<(R, TaskTiming)>> = (0..n).map(|_| None).collect();
        {
            let base = SendPtr(slots.as_mut_ptr());
            let f = &f;
            self.scope(|s| {
                for i in 0..n {
                    let enqueued = Instant::now();
                    s.spawn(move || {
                        let started = Instant::now();
                        let value = f(i);
                        let finished = Instant::now();
                        // Safety: each task writes exactly one distinct slot,
                        // and the scope joins before `slots` is touched again.
                        unsafe {
                            *base.slot(i) = Some((value, TaskTiming { enqueued, started, finished }))
                        };
                    });
                }
            });
        }
        slots.into_iter().map(|r| r.expect("scoped task completed")).collect()
    }
}

/// Wall-clock milestones of one fanned-out task, captured by
/// [`Executor::scoped_map_timed`].
#[derive(Debug, Clone, Copy)]
pub struct TaskTiming {
    /// When the task was pushed onto the pool.
    pub enqueued: Instant,
    /// When a worker (or a helping joiner) began executing it.
    pub started: Instant,
    /// When the task body returned.
    pub finished: Instant,
}

impl TaskTiming {
    /// Time spent queued before execution began.
    pub fn queue_wait(&self) -> Duration {
        self.started.saturating_duration_since(self.enqueued)
    }

    /// Time the task body ran.
    pub fn run_time(&self) -> Duration {
        self.finished.saturating_duration_since(self.started)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep_lock.lock();
            self.shared.wake.notify_all();
        }
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done_lock: Mutex<()>,
    done: Condvar,
}

/// Handle passed to [`Executor::scope`] closures; `'env` is the enclosing
/// frame tasks may borrow from.
pub struct Scope<'scope, 'env: 'scope> {
    exec: &'scope Executor,
    state: Arc<ScopeState>,
    /// Scope identity stamped on every spawned task (see [`QueuedTask`]).
    tag: usize,
    _env: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queue a task on the pool. It may borrow anything that outlives the
    /// scope; panics are captured and re-raised at the scope join.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.spawn_prio(Priority::Normal, f)
    }

    /// [`Scope::spawn`] into an explicit lane: `Priority::Low` tasks run
    /// only when no `Normal` task is queued anywhere in the pool.
    pub fn spawn_prio<F>(&self, prio: Priority, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = state.done_lock.lock();
                state.done.notify_all();
            }
        });
        // Safety: the scope's join loop guarantees the task runs to
        // completion before `'env` borrows expire (same contract as
        // `std::thread::scope`).
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task)
        };
        self.exec.shared.inject(self.tag, task, prio);
    }
}

/// Raw-pointer wrapper so disjoint slot writes can cross the `Send` bound.
/// Accessed only through [`SendPtr::slot`] so closures capture the wrapper
/// (which is `Send`), not the bare pointer field.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn slot(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_index_order() {
        let pool = Executor::new("t_order", 4);
        for round in 0..20 {
            let out = pool.scoped_map(16, |i| i * 2 + round);
            let expect: Vec<usize> = (0..16).map(|i| i * 2 + round).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let pool = Executor::new("t_borrow", 2);
        let data = [1u64, 2, 3, 4, 5];
        let sums = pool.scoped_map(data.len(), |i| data[i] * 10);
        assert_eq!(sums, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn timed_map_matches_plain_map_and_orders_milestones() {
        let pool = Executor::new("t_timed", 2);
        let out = pool.scoped_map_timed(8, |i| {
            std::thread::sleep(Duration::from_millis(2));
            i * 3
        });
        assert_eq!(out.iter().map(|(v, _)| *v).collect::<Vec<_>>(), (0..8).map(|i| i * 3).collect::<Vec<_>>());
        for (_, t) in &out {
            assert!(t.started >= t.enqueued, "started before enqueue");
            assert!(t.finished >= t.started, "finished before start");
            assert!(t.run_time() >= Duration::from_millis(1), "run_time={:?}", t.run_time());
        }
        // With 8 tasks on 2 workers, at least one task waited in queue while
        // earlier tasks held both workers.
        let waited = out.iter().filter(|(_, t)| t.queue_wait() > Duration::ZERO).count();
        assert!(waited >= 1, "no task ever queued");
        // Inline path: n == 1 reports zero queue wait.
        let one = pool.scoped_map_timed(1, |i| i);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].1.queue_wait(), Duration::ZERO);
    }

    #[test]
    fn panic_in_task_propagates_to_scope_caller() {
        let pool = Executor::new("t_panic", 2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| {});
                s.spawn(|| panic!("worker exploded"));
                s.spawn(|| {});
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "worker exploded");
        // The pool survives a propagated panic.
        assert_eq!(pool.scoped_map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn closure_panic_still_joins_spawned_tasks() {
        // Regression: if the scope closure panics after spawning, the drain
        // loop must still run every queued task (they borrow this frame)
        // before the panic is re-raised.
        let pool = Executor::new("t_unwind", 2);
        let ran = std::sync::atomic::AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        std::thread::sleep(Duration::from_millis(1));
                        ran.fetch_add(1, Ordering::SeqCst);
                    });
                }
                panic!("closure exploded");
            });
        }));
        let payload = result.expect_err("closure panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "closure exploded");
        assert_eq!(ran.load(Ordering::SeqCst), 8, "all tasks must finish before unwind");
        // Closure panic wins over a task panic raised in the same scope.
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task exploded"));
                panic!("closure exploded");
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "closure exploded");
        assert_eq!(pool.scoped_map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_scopes_complete_even_with_one_worker() {
        let pool = Executor::new("t_nested", 1);
        let out = pool.scoped_map(4, |i| {
            let inner = pool.scoped_map(3, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
    }

    #[test]
    fn steal_counter_is_monotonic_and_tasks_are_counted() {
        let pool = Executor::new("t_steal", 4);
        let tasks0 = obs::counter(obs::EXEC_TASKS, "t_steal").get();
        let steals0 = obs::counter(obs::EXEC_STEALS, "t_steal").get();
        let mut last_steals = steals0;
        for _ in 0..10 {
            // Nested fan-out seeds one worker's own deque, giving the other
            // workers something to steal.
            pool.scoped_map(8, |i| pool.scoped_map(4, move |j| i + j).len());
            let s = obs::counter(obs::EXEC_STEALS, "t_steal").get();
            assert!(s >= last_steals, "steal counter went backwards: {s} < {last_steals}");
            last_steals = s;
        }
        let tasks1 = obs::counter(obs::EXEC_TASKS, "t_steal").get();
        assert!(tasks1 >= tasks0 + 10 * 8, "tasks_total barely moved: {tasks0} -> {tasks1}");
    }

    #[test]
    fn queue_depth_returns_to_zero_when_idle() {
        let pool = Executor::new("t_depth", 2);
        pool.scoped_map(32, |i| i * i);
        assert_eq!(obs::gauge(obs::EXEC_QUEUE_DEPTH, "t_depth").get(), 0);
        assert_eq!(obs::gauge(obs::EXEC_WORKERS, "t_depth").get(), 2);
        // Helpers don't touch the busy gauge and workers restore it via a
        // drop guard, so it must settle back to zero (never negative, never
        // leaked above the worker count).
        assert_eq!(obs::gauge(obs::EXEC_WORKERS_BUSY, "t_depth").get(), 0);
    }

    #[test]
    fn busy_gauge_stays_bounded_by_worker_count_under_nested_help() {
        let pool = Executor::new("t_busy", 2);
        let gauge = obs::gauge(obs::EXEC_WORKERS_BUSY, "t_busy");
        let max_seen = std::sync::atomic::AtomicI64::new(0);
        // Nested scoped_map makes workers help from inside tasks; the outer
        // caller helps from a non-worker thread. Neither may overcount.
        pool.scoped_map(8, |i| {
            pool.scoped_map(4, |j| {
                max_seen.fetch_max(gauge.get(), Ordering::SeqCst);
                i + j
            })
            .len()
        });
        assert!(
            max_seen.load(Ordering::SeqCst) <= 2,
            "busy gauge exceeded worker count: {}",
            max_seen.load(Ordering::SeqCst)
        );
        assert_eq!(gauge.get(), 0);
    }

    #[test]
    fn low_priority_runs_after_all_normal_tasks() {
        let pool = Executor::new("t_prio", 1);
        let order: Mutex<Vec<&str>> = Mutex::new(Vec::new());
        let started = AtomicBool::new(false);
        pool.scope(|s| {
            // Pin the single worker until both lanes have drained on the
            // caller's helper thread, so pop order is observable.
            s.spawn(|| {
                started.store(true, Ordering::SeqCst);
                while order.lock().len() < 2 {
                    std::thread::yield_now();
                }
            });
            while !started.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            // Low is queued first but must still run last.
            s.spawn_prio(Priority::Low, || order.lock().push("L"));
            s.spawn_prio(Priority::Normal, || order.lock().push("N"));
        });
        assert_eq!(*order.lock(), vec!["N", "L"]);
        // Low-lane fan-out still returns index-ordered results.
        assert_eq!(pool.scoped_map_with(4, Priority::Low, |i| i * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn global_pool_is_a_singleton_with_at_least_four_workers() {
        let a = Executor::global() as *const _;
        let b = Executor::global() as *const _;
        assert_eq!(a, b);
        assert!(Executor::global().threads() >= 4);
    }
}

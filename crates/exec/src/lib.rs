//! Persistent work-stealing executor — the single parallelism substrate for
//! the query path and the batch engines.
//!
//! The paper's fine-grained-parallelism story (§3.2, Figure 3) assigns
//! threads to *data ranges*; before this crate every parallel site paid a
//! `std::thread::scope` spawn/join per query block, and `Collection::search`
//! scanned segments serially. This executor keeps a fixed set of workers
//! alive for the life of the process, so fan-out costs a queue push instead
//! of an OS thread spawn, and independent segment scans overlap.
//!
//! Design (vendored-deps-only: `std::thread` + lock-based crossbeam-style
//! deques):
//!
//! * **Per-worker injector queues.** Every worker owns a deque. External
//!   submitters distribute tasks round-robin across the worker deques;
//!   a worker submitting from inside a task pushes to its *own* deque
//!   (locality, like crossbeam's `Worker`/`Injector` split).
//! * **Work stealing.** An idle worker first drains its own deque (FIFO),
//!   then steals from its peers' back ends. A thread blocked in
//!   [`Executor::scope`] also steals — callers help execute while they
//!   wait, which makes nested scopes deadlock-free even on one core.
//! * **Structured joins.** [`Executor::scope`] mirrors `std::thread::scope`:
//!   tasks may borrow from the enclosing stack frame, the scope does not
//!   return until every spawned task finished, and a worker panic is
//!   propagated to the scope caller (first panic wins).
//! * **Observability.** The pool exports `milvus_exec_tasks_total`,
//!   `milvus_exec_steals_total`, `milvus_exec_queue_depth` and
//!   busy/size worker gauges through `milvus-obs`, labeled by pool name.
//!
//! Determinism: [`Executor::scoped_map`] returns results in task-index
//! order regardless of which worker ran what, so callers (batch engines,
//! segment fan-out) produce bit-identical results to their serial forms.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use milvus_obs as obs;
use parking_lot::{Condvar, Mutex};

/// A queued unit of work. Scoped tasks are transmuted to `'static`; the
/// scope guarantees they complete before the borrowed frame unwinds.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Process-unique executor ids so a worker thread can tell which pool it
/// belongs to (nested pools in tests).
static NEXT_EXEC_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(executor id, worker index)` when the current thread is a pool worker.
    static CURRENT_WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

struct Shared {
    id: u64,
    /// One lock-based deque per worker — the "per-worker injector queues".
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Round-robin cursor for external submissions.
    next_queue: AtomicUsize,
    /// Tasks currently queued (not yet picked up).
    queued: AtomicUsize,
    shutdown: AtomicBool,
    sleep_lock: Mutex<()>,
    wake: Condvar,
    // Metric handles, resolved once (recording is a bare atomic op).
    tasks_total: Arc<obs::Counter>,
    steals_total: Arc<obs::Counter>,
    queue_depth: Arc<obs::Gauge>,
    busy_workers: Arc<obs::Gauge>,
}

impl Shared {
    /// Pop a task. Workers pass their own index and prefer their own deque;
    /// helpers (scope waiters) pass `None` and every pop counts as a steal.
    fn take_task(&self, own: Option<usize>) -> Option<(Task, bool)> {
        if self.queued.load(Ordering::Acquire) == 0 {
            return None;
        }
        if let Some(idx) = own {
            if let Some(task) = self.deques[idx].lock().pop_front() {
                self.note_dequeue();
                return Some((task, false));
            }
        }
        let n = self.deques.len();
        let start = own.map_or_else(|| self.next_queue.load(Ordering::Relaxed), |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == own {
                continue;
            }
            // Steal from the back, opposite the owner's pop end.
            if let Some(task) = self.deques[victim].lock().pop_back() {
                self.note_dequeue();
                self.steals_total.inc();
                return Some((task, true));
            }
        }
        None
    }

    fn note_dequeue(&self) {
        self.queued.fetch_sub(1, Ordering::AcqRel);
        self.queue_depth.add(-1);
    }

    fn run(&self, task: Task) {
        self.busy_workers.add(1);
        self.tasks_total.inc();
        task();
        self.busy_workers.add(-1);
    }

    fn inject(&self, task: Task) {
        let idx = match CURRENT_WORKER.with(Cell::get) {
            Some((id, idx)) if id == self.id => idx,
            _ => self.next_queue.fetch_add(1, Ordering::Relaxed) % self.deques.len(),
        };
        self.deques[idx].lock().push_back(task);
        self.queued.fetch_add(1, Ordering::Release);
        self.queue_depth.add(1);
        let _g = self.sleep_lock.lock();
        self.wake.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>, idx: usize) {
    CURRENT_WORKER.with(|w| w.set(Some((shared.id, idx))));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match shared.take_task(Some(idx)) {
            Some((task, _stolen)) => shared.run(task),
            None => {
                let mut guard = shared.sleep_lock.lock();
                if shared.queued.load(Ordering::Acquire) == 0
                    && !shared.shutdown.load(Ordering::Acquire)
                {
                    // Timed wait: a lost wakeup only costs one re-scan.
                    shared.wake.wait_for(&mut guard, Duration::from_millis(10));
                }
            }
        }
    }
}

/// A persistent pool of worker threads with work-stealing deques.
pub struct Executor {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    threads: usize,
}

impl Executor {
    /// Spin up a pool of `threads` workers. `name` labels the pool's metric
    /// series (`pool="<name>"` in `/metrics`).
    pub fn new(name: &str, threads: usize) -> Executor {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            id: NEXT_EXEC_ID.fetch_add(1, Ordering::Relaxed),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            next_queue: AtomicUsize::new(0),
            queued: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            sleep_lock: Mutex::new(()),
            wake: Condvar::new(),
            tasks_total: obs::counter(obs::EXEC_TASKS, name),
            steals_total: obs::counter(obs::EXEC_STEALS, name),
            queue_depth: obs::gauge(obs::EXEC_QUEUE_DEPTH, name),
            busy_workers: obs::gauge(obs::EXEC_WORKERS_BUSY, name),
        });
        obs::gauge(obs::EXEC_WORKERS, name).set(threads as i64);
        let handles = (0..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("milvus-exec-{name}-{idx}"))
                    .spawn(move || worker_loop(shared, idx))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor { shared, handles: Mutex::new(handles), threads }
    }

    /// The process-global pool every query-path fan-out schedules onto.
    ///
    /// Sized at `available_parallelism`, floored at 4 so segment fan-out
    /// still overlaps storage waits (injected delays, bufferpool misses) on
    /// small hosts where scans are not compute-bound.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).max(4);
            Executor::new("global", threads)
        })
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run a structured-concurrency scope: tasks spawned on it may borrow
    /// from the caller's stack; the scope blocks (helping to execute queued
    /// tasks) until all of them finish. The first task panic is re-raised
    /// here after every sibling completed.
    pub fn scope<'env, T>(
        &self,
        f: impl for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
    ) -> T {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        });
        let scope = Scope { exec: self, state: Arc::clone(&state), _env: PhantomData };
        let out = f(&scope);
        // Help-while-waiting: drain pool tasks so nested scopes cannot
        // deadlock and a busy pool still makes progress on our tasks.
        while state.pending.load(Ordering::Acquire) > 0 {
            match self.shared.take_task(CURRENT_WORKER.with(Cell::get).and_then(|(id, idx)| {
                (id == self.shared.id).then_some(idx)
            })) {
                Some((task, _)) => self.shared.run(task),
                None => {
                    let mut guard = state.done_lock.lock();
                    if state.pending.load(Ordering::Acquire) > 0 {
                        state.done.wait_for(&mut guard, Duration::from_millis(1));
                    }
                }
            }
        }
        if let Some(payload) = state.panic.lock().take() {
            resume_unwind(payload);
        }
        out
    }

    /// Fan `f(0) … f(n-1)` out across the pool and return the results in
    /// index order — deterministic regardless of execution interleaving.
    /// `n <= 1` runs inline (no queue round-trip).
    pub fn scoped_map<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![f(0)];
        }
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        {
            let base = SendPtr(slots.as_mut_ptr());
            let f = &f;
            self.scope(|s| {
                for i in 0..n {
                    s.spawn(move || {
                        let value = f(i);
                        // Safety: each task writes exactly one distinct slot,
                        // and the scope joins before `slots` is touched again.
                        unsafe { *base.slot(i) = Some(value) };
                    });
                }
            });
        }
        slots.into_iter().map(|r| r.expect("scoped task completed")).collect()
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.sleep_lock.lock();
            self.shared.wake.notify_all();
        }
        for handle in self.handles.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done_lock: Mutex<()>,
    done: Condvar,
}

/// Handle passed to [`Executor::scope`] closures; `'env` is the enclosing
/// frame tasks may borrow from.
pub struct Scope<'scope, 'env: 'scope> {
    exec: &'scope Executor,
    state: Arc<ScopeState>,
    _env: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Queue a task on the pool. It may borrow anything that outlives the
    /// scope; panics are captured and re-raised at the scope join.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = state.done_lock.lock();
                state.done.notify_all();
            }
        });
        // Safety: the scope's join loop guarantees the task runs to
        // completion before `'env` borrows expire (same contract as
        // `std::thread::scope`).
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(task)
        };
        self.exec.shared.inject(task);
    }
}

/// Raw-pointer wrapper so disjoint slot writes can cross the `Send` bound.
/// Accessed only through [`SendPtr::slot`] so closures capture the wrapper
/// (which is `Send`), not the bare pointer field.
struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    fn slot(&self, i: usize) -> *mut T {
        unsafe { self.0.add(i) }
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_returns_results_in_index_order() {
        let pool = Executor::new("t_order", 4);
        for round in 0..20 {
            let out = pool.scoped_map(16, |i| i * 2 + round);
            let expect: Vec<usize> = (0..16).map(|i| i * 2 + round).collect();
            assert_eq!(out, expect);
        }
    }

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let pool = Executor::new("t_borrow", 2);
        let data = [1u64, 2, 3, 4, 5];
        let sums = pool.scoped_map(data.len(), |i| data[i] * 10);
        assert_eq!(sums, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn panic_in_task_propagates_to_scope_caller() {
        let pool = Executor::new("t_panic", 2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| {});
                s.spawn(|| panic!("worker exploded"));
                s.spawn(|| {});
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "worker exploded");
        // The pool survives a propagated panic.
        assert_eq!(pool.scoped_map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn nested_scopes_complete_even_with_one_worker() {
        let pool = Executor::new("t_nested", 1);
        let out = pool.scoped_map(4, |i| {
            let inner = pool.scoped_map(3, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![3, 33, 63, 93]);
    }

    #[test]
    fn steal_counter_is_monotonic_and_tasks_are_counted() {
        let pool = Executor::new("t_steal", 4);
        let tasks0 = obs::counter(obs::EXEC_TASKS, "t_steal").get();
        let steals0 = obs::counter(obs::EXEC_STEALS, "t_steal").get();
        let mut last_steals = steals0;
        for _ in 0..10 {
            // Nested fan-out seeds one worker's own deque, giving the other
            // workers something to steal.
            pool.scoped_map(8, |i| pool.scoped_map(4, move |j| i + j).len());
            let s = obs::counter(obs::EXEC_STEALS, "t_steal").get();
            assert!(s >= last_steals, "steal counter went backwards: {s} < {last_steals}");
            last_steals = s;
        }
        let tasks1 = obs::counter(obs::EXEC_TASKS, "t_steal").get();
        assert!(tasks1 >= tasks0 + 10 * 8, "tasks_total barely moved: {tasks0} -> {tasks1}");
    }

    #[test]
    fn queue_depth_returns_to_zero_when_idle() {
        let pool = Executor::new("t_depth", 2);
        pool.scoped_map(32, |i| i * i);
        assert_eq!(obs::gauge(obs::EXEC_QUEUE_DEPTH, "t_depth").get(), 0);
        assert_eq!(obs::gauge(obs::EXEC_WORKERS, "t_depth").get(), 2);
    }

    #[test]
    fn global_pool_is_a_singleton_with_at_least_four_workers() {
        let a = Executor::global() as *const _;
        let b = Executor::global() as *const _;
        assert_eq!(a, b);
        assert!(Executor::global().threads() >= 4);
    }
}

//! Segment-based multi-GPU scheduling (§3.3 "Supporting multi-GPU devices").
//!
//! Faiss fixes the device count at compile time; Milvus discovers devices at
//! runtime, lets them be added or removed elastically (the cloud scenario),
//! and assigns segment-granular search tasks so that "each segment can only
//! be served by a single GPU device". Assignment picks the device with the
//! least simulated busy time (load balancing).

use std::sync::Arc;

use parking_lot::RwLock;

use crate::device::{GpuDevice, GpuSpec};

/// Runtime-mutable pool of simulated GPUs.
#[derive(Default)]
pub struct MultiGpuScheduler {
    devices: RwLock<Vec<Arc<GpuDevice>>>,
}

impl MultiGpuScheduler {
    /// An empty scheduler (CPU-only until devices are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// A scheduler with `n` identical devices.
    pub fn with_devices(n: usize, spec: GpuSpec) -> Self {
        let s = Self::new();
        for i in 0..n {
            s.add_device(Arc::new(GpuDevice::new(i, spec.clone())));
        }
        s
    }

    /// Hot-add a device ("if there is a new GPU device installed, Milvus can
    /// immediately discover it").
    pub fn add_device(&self, device: Arc<GpuDevice>) {
        self.devices.write().push(device);
    }

    /// Remove a device by ordinal; returns true if one was removed.
    pub fn remove_device(&self, ordinal: usize) -> bool {
        let mut devices = self.devices.write();
        let before = devices.len();
        devices.retain(|d| d.ordinal != ordinal);
        devices.len() != before
    }

    /// Number of registered devices.
    pub fn device_count(&self) -> usize {
        self.devices.read().len()
    }

    /// Snapshot of registered devices.
    pub fn devices(&self) -> Vec<Arc<GpuDevice>> {
        self.devices.read().clone()
    }

    /// Pick the least-busy device for the next segment task, or `None` when
    /// no devices are registered.
    pub fn assign(&self) -> Option<Arc<GpuDevice>> {
        self.devices
            .read()
            .iter()
            .min_by_key(|d| d.busy_time())
            .cloned()
    }

    /// Assign one device per segment task and run `f(segment, device)`,
    /// returning per-task results. Each segment goes to exactly one device.
    pub fn schedule<T, R>(
        &self,
        segments: Vec<T>,
        mut f: impl FnMut(T, &GpuDevice) -> R,
    ) -> Option<Vec<R>> {
        if self.device_count() == 0 {
            return None;
        }
        let mut out = Vec::with_capacity(segments.len());
        for seg in segments {
            let dev = self.assign().expect("non-empty device pool");
            out.push(f(seg, &dev));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn empty_pool_yields_none() {
        let s = MultiGpuScheduler::new();
        assert!(s.assign().is_none());
        assert!(s.schedule(vec![1, 2], |_, _| ()).is_none());
    }

    #[test]
    fn hot_add_and_remove() {
        let s = MultiGpuScheduler::new();
        assert_eq!(s.device_count(), 0);
        s.add_device(Arc::new(GpuDevice::new(0, GpuSpec::default())));
        s.add_device(Arc::new(GpuDevice::new(1, GpuSpec::default())));
        assert_eq!(s.device_count(), 2);
        assert!(s.remove_device(0));
        assert!(!s.remove_device(0));
        assert_eq!(s.device_count(), 1);
    }

    #[test]
    fn load_balances_by_busy_time() {
        let s = MultiGpuScheduler::with_devices(2, GpuSpec::default());
        // Make device 0 busy.
        s.devices()[0].transfer(1 << 30, 1);
        let picked = s.assign().unwrap();
        assert_eq!(picked.ordinal, 1);
    }

    #[test]
    fn schedule_spreads_equal_work() {
        let s = MultiGpuScheduler::with_devices(4, GpuSpec::default());
        let tasks: Vec<usize> = (0..16).collect();
        let assigned = s
            .schedule(tasks, |_, dev| {
                dev.run_kernel(1_000_000_000); // equal work per task
                dev.ordinal
            })
            .unwrap();
        // Every device should receive 4 of the 16 equal tasks.
        let mut counts = [0usize; 4];
        for o in assigned {
            counts[o] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }

    #[test]
    fn new_device_attracts_next_task() {
        let s = MultiGpuScheduler::with_devices(1, GpuSpec::default());
        s.devices()[0].run_kernel(10_000_000_000);
        assert!(s.devices()[0].busy_time() > Duration::ZERO);
        // Hot-add an idle device: it must win the next assignment.
        s.add_device(Arc::new(GpuDevice::new(9, GpuSpec::default())));
        assert_eq!(s.assign().unwrap().ordinal, 9);
    }
}

//! The simulated GPU device: memory, clock, and cost accounting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

/// Calibrated device parameters. Defaults approximate the paper's Tesla T4 +
/// PCIe 3.0 x16 testbed relative to a single CPU core.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// Device global memory (the T4 has 16 GB; scale down together with the
    /// dataset so "data cannot fit in GPU memory" scenarios stay meaningful).
    pub global_memory_bytes: usize,
    /// Peak PCIe bandwidth (15.75 GB/s for PCIe 3.0 x16).
    pub pcie_bandwidth_bytes_per_sec: f64,
    /// Fixed cost per DMA transfer — this is what makes bucket-by-bucket
    /// copies achieve only 1–2 GB/s effective (§3.4).
    pub pcie_latency_per_transfer: Duration,
    /// Distance-computation throughput (multiply-adds per second).
    pub kernel_ops_per_sec: f64,
    /// Fixed cost per kernel launch.
    pub kernel_launch_overhead: Duration,
    /// Hard per-round result limit of the top-k kernel (§3.3: 1024, from the
    /// shared-memory limit).
    pub max_k_per_kernel: usize,
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self {
            global_memory_bytes: 256 << 20, // scaled-down T4
            pcie_bandwidth_bytes_per_sec: 15.75e9,
            pcie_latency_per_transfer: Duration::from_micros(30),
            kernel_ops_per_sec: 4.0e10,
            kernel_launch_overhead: Duration::from_micros(10),
            max_k_per_kernel: 1024,
        }
    }
}

impl GpuSpec {
    /// A spec whose PCIe/kernel speeds are scaled down by the ratio between
    /// the paper's 16-vCPU AVX-512 testbed and this benchmark host's single
    /// core (~64×), so the *relative* cost of transfers vs host compute —
    /// the quantity Figure 13's crossover depends on — is preserved at
    /// laptop scale. `global_memory_bytes` stays a free parameter because
    /// the experiment sets it relative to the dataset.
    pub fn host_calibrated(global_memory_bytes: usize) -> Self {
        Self {
            global_memory_bytes,
            pcie_bandwidth_bytes_per_sec: 15.75e9 / 64.0,
            pcie_latency_per_transfer: Duration::from_micros(500),
            kernel_ops_per_sec: 8.1e12 / 64.0,
            kernel_launch_overhead: Duration::from_micros(40),
            max_k_per_kernel: 1024,
        }
    }
}

/// Cumulative accounting for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Number of DMA transfers issued.
    pub transfers: u64,
    /// Total bytes moved over PCIe.
    pub transferred_bytes: u64,
    /// Kernel launches.
    pub kernel_launches: u64,
    /// Resident-set evictions.
    pub evictions: u64,
}

struct Resident {
    /// allocation key → (bytes, last-use tick)
    entries: HashMap<u64, (usize, u64)>,
    used: usize,
    tick: u64,
}

/// One simulated GPU.
pub struct GpuDevice {
    /// Device ordinal (multi-GPU scheduling).
    pub ordinal: usize,
    spec: GpuSpec,
    resident: Mutex<Resident>,
    /// Simulated busy time in nanoseconds.
    busy_ns: AtomicU64,
    stats: Mutex<DeviceStats>,
}

impl GpuDevice {
    /// Create device `ordinal` with the given spec.
    pub fn new(ordinal: usize, spec: GpuSpec) -> Self {
        Self {
            ordinal,
            spec,
            resident: Mutex::new(Resident { entries: HashMap::new(), used: 0, tick: 0 }),
            busy_ns: AtomicU64::new(0),
            stats: Mutex::new(DeviceStats::default()),
        }
    }

    /// The device's spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Total simulated busy time so far.
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Accounting counters.
    pub fn stats(&self) -> DeviceStats {
        *self.stats.lock()
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident.lock().used
    }

    /// True when allocation `key` is resident.
    pub fn is_resident(&self, key: u64) -> bool {
        self.resident.lock().entries.contains_key(&key)
    }

    fn charge(&self, d: Duration) -> Duration {
        self.busy_ns.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        d
    }

    /// Cost of moving `bytes` in `chunks` DMA transfers (§3.4: fewer, larger
    /// chunks utilize the bus better).
    pub fn transfer_cost(&self, bytes: usize, chunks: usize) -> Duration {
        let chunks = chunks.max(1) as u32;
        let wire = Duration::from_secs_f64(bytes as f64 / self.spec.pcie_bandwidth_bytes_per_sec);
        self.spec.pcie_latency_per_transfer * chunks + wire
    }

    /// Simulate a host→device transfer; returns the charged duration.
    pub fn transfer(&self, bytes: usize, chunks: usize) -> Duration {
        let d = self.transfer_cost(bytes, chunks);
        {
            let mut s = self.stats.lock();
            s.transfers += chunks.max(1) as u64;
            s.transferred_bytes += bytes as u64;
        }
        self.charge(d)
    }

    /// Simulate a kernel that performs `ops` multiply-adds.
    pub fn run_kernel(&self, ops: u64) -> Duration {
        let d = self.spec.kernel_launch_overhead
            + Duration::from_secs_f64(ops as f64 / self.spec.kernel_ops_per_sec);
        self.stats.lock().kernel_launches += 1;
        self.charge(d)
    }

    /// Ensure allocation `key` (`bytes` large) is resident, evicting LRU
    /// allocations as needed. Returns the transfer time charged (zero when
    /// already resident). `batched` selects multi-bucket copying (one DMA)
    /// versus bucket-by-bucket (`chunks` transfers), the Faiss behaviour the
    /// paper fixes (§3.4).
    pub fn ensure_resident(&self, key: u64, bytes: usize, chunks: usize) -> Duration {
        {
            let mut r = self.resident.lock();
            r.tick += 1;
            let tick = r.tick;
            if let Some(e) = r.entries.get_mut(&key) {
                e.1 = tick;
                return Duration::ZERO;
            }
            // Evict LRU until it fits (an allocation larger than the device
            // is rejected by returning an infinite-ish cost upstream; here we
            // just clamp to the capacity check below).
            while r.used + bytes > self.spec.global_memory_bytes && !r.entries.is_empty() {
                let victim = *r
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, t))| *t)
                    .map(|(k, _)| k)
                    .expect("non-empty");
                let (b, _) = r.entries.remove(&victim).expect("present");
                r.used -= b;
                self.stats.lock().evictions += 1;
            }
            r.entries.insert(key, (bytes, tick));
            r.used += bytes;
        }
        self.transfer(bytes, chunks)
    }

    /// Register allocation `key` as resident **without charging a transfer**
    /// — used when the payload already arrived as part of a coalesced
    /// multi-bucket DMA (§3.4). Evicts LRU entries to fit.
    pub fn register_resident(&self, key: u64, bytes: usize) {
        let mut r = self.resident.lock();
        r.tick += 1;
        let tick = r.tick;
        if let Some(e) = r.entries.get_mut(&key) {
            e.1 = tick;
            return;
        }
        while r.used + bytes > self.spec.global_memory_bytes && !r.entries.is_empty() {
            let victim = *r
                .entries
                .iter()
                .min_by_key(|(_, (_, t))| *t)
                .map(|(k, _)| k)
                .expect("non-empty");
            let (b, _) = r.entries.remove(&victim).expect("present");
            r.used -= b;
            self.stats.lock().evictions += 1;
        }
        r.entries.insert(key, (bytes, tick));
        r.used += bytes;
    }

    /// Drop allocation `key` from device memory.
    pub fn free(&self, key: u64) {
        let mut r = self.resident.lock();
        if let Some((b, _)) = r.entries.remove(&key) {
            r.used -= b;
        }
    }

    /// Effective bandwidth achieved when moving `bytes` in `chunks` transfers
    /// (diagnostic matching the paper's 1–2 GB/s observation).
    pub fn effective_bandwidth(&self, bytes: usize, chunks: usize) -> f64 {
        bytes as f64 / self.transfer_cost(bytes, chunks).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> GpuDevice {
        GpuDevice::new(0, GpuSpec::default())
    }

    #[test]
    fn batched_transfer_faster_than_chunked() {
        let d = dev();
        let bytes = 4 << 20;
        let batched = d.transfer_cost(bytes, 1);
        let chunked = d.transfer_cost(bytes, 1000);
        assert!(chunked > batched * 5, "{chunked:?} vs {batched:?}");
    }

    #[test]
    fn effective_bandwidth_matches_paper_observation() {
        // Bucket-by-bucket: ~1000 small buckets of 64 KB → 1-2 GB/s range.
        let d = dev();
        let eff = d.effective_bandwidth(1000 * 64 * 1024, 1000);
        assert!(eff < 2.5e9, "effective bw {eff} too high");
        // One big copy approaches peak.
        let eff_big = d.effective_bandwidth(1000 * 64 * 1024, 1);
        assert!(eff_big > 10.0e9, "batched bw {eff_big} too low");
    }

    #[test]
    fn kernel_cost_scales_with_ops() {
        let d = dev();
        let small = d.run_kernel(1_000);
        let big = d.run_kernel(10_000_000_000);
        assert!(big > small * 10);
        assert_eq!(d.stats().kernel_launches, 2);
    }

    #[test]
    fn residency_caching() {
        let d = dev();
        let t1 = d.ensure_resident(1, 1024, 1);
        assert!(t1 > Duration::ZERO);
        let t2 = d.ensure_resident(1, 1024, 1);
        assert_eq!(t2, Duration::ZERO);
        assert!(d.is_resident(1));
        d.free(1);
        assert!(!d.is_resident(1));
        assert_eq!(d.resident_bytes(), 0);
    }

    #[test]
    fn lru_eviction_under_memory_pressure() {
        let spec = GpuSpec { global_memory_bytes: 1000, ..Default::default() };
        let d = GpuDevice::new(0, spec);
        d.ensure_resident(1, 600, 1);
        d.ensure_resident(2, 300, 1);
        // Touch 1 so 2 is LRU.
        d.ensure_resident(1, 600, 1);
        d.ensure_resident(3, 300, 1);
        assert!(d.is_resident(1));
        assert!(!d.is_resident(2));
        assert!(d.is_resident(3));
        assert_eq!(d.stats().evictions, 1);
    }

    #[test]
    fn busy_time_accumulates() {
        let d = dev();
        assert_eq!(d.busy_time(), Duration::ZERO);
        d.transfer(1 << 20, 1);
        d.run_kernel(1_000_000);
        assert!(d.busy_time() > Duration::ZERO);
    }
}

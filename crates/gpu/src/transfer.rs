//! PCIe transfer planning (§3.4 "Addressing the first limitation").
//!
//! Faiss copies buckets one at a time, underutilizing the bus; Milvus copies
//! multiple buckets per DMA. [`TransferPlan`] captures both strategies so the
//! ablation bench can compare them directly.

use std::time::Duration;

use crate::device::GpuDevice;

/// How bucket payloads are grouped into DMA transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyStrategy {
    /// One DMA per bucket (Faiss behaviour).
    BucketByBucket,
    /// Buckets coalesced into chunks of at most `chunk_bytes` (Milvus).
    MultiBucket {
        /// Maximum bytes per coalesced DMA.
        chunk_bytes: usize,
    },
}

/// A planned host→device copy of a set of buckets.
#[derive(Debug, Clone)]
pub struct TransferPlan {
    /// Total payload bytes.
    pub total_bytes: usize,
    /// Number of DMA transfers that will be issued.
    pub chunks: usize,
}

impl TransferPlan {
    /// Plan the copy of `bucket_bytes` under `strategy`.
    pub fn plan(bucket_bytes: &[usize], strategy: CopyStrategy) -> Self {
        let total: usize = bucket_bytes.iter().sum();
        let chunks = match strategy {
            CopyStrategy::BucketByBucket => bucket_bytes.len().max(1),
            CopyStrategy::MultiBucket { chunk_bytes } => {
                let chunk_bytes = chunk_bytes.max(1);
                // Greedy first-fit in bucket order — buckets are contiguous
                // in the segment file so coalescing adjacent ones is free.
                let mut chunks = 0usize;
                let mut cur = 0usize;
                for &b in bucket_bytes {
                    if cur == 0 || cur + b > chunk_bytes {
                        chunks += 1;
                        cur = 0;
                    }
                    cur += b;
                }
                chunks.max(1)
            }
        };
        Self { total_bytes: total, chunks }
    }

    /// Execute the plan on `device`, charging simulated time.
    pub fn execute(&self, device: &GpuDevice) -> Duration {
        if self.total_bytes == 0 {
            return Duration::ZERO;
        }
        device.transfer(self.total_bytes, self.chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;

    #[test]
    fn bucket_by_bucket_one_chunk_each() {
        let p = TransferPlan::plan(&[100, 200, 300], CopyStrategy::BucketByBucket);
        assert_eq!(p.chunks, 3);
        assert_eq!(p.total_bytes, 600);
    }

    #[test]
    fn multi_bucket_coalesces() {
        let p = TransferPlan::plan(
            &[100, 200, 300, 400],
            CopyStrategy::MultiBucket { chunk_bytes: 500 },
        );
        // [100+200] [300] wait: 100+200=300, +300=600>500 → new chunk: [300+400=700>500 → [300],[400]]
        // Greedy: chunk1 = 100,200 (300); 300 would make 600 → chunk2 = 300,
        // 400 would make 700 → chunk3 = 400.
        assert_eq!(p.chunks, 3);
    }

    #[test]
    fn multi_bucket_single_when_all_fit() {
        let p = TransferPlan::plan(
            &[100, 100, 100],
            CopyStrategy::MultiBucket { chunk_bytes: 1 << 20 },
        );
        assert_eq!(p.chunks, 1);
    }

    #[test]
    fn oversized_single_bucket_still_one_chunk() {
        let p = TransferPlan::plan(&[1000], CopyStrategy::MultiBucket { chunk_bytes: 10 });
        assert_eq!(p.chunks, 1);
    }

    #[test]
    fn empty_plan_costs_nothing() {
        let d = GpuDevice::new(0, GpuSpec::default());
        let p = TransferPlan::plan(&[], CopyStrategy::BucketByBucket);
        assert_eq!(p.execute(&d), Duration::ZERO);
    }

    #[test]
    fn milvus_strategy_strictly_faster_on_many_small_buckets() {
        let d = GpuDevice::new(0, GpuSpec::default());
        let buckets = vec![32 * 1024; 500];
        let faiss = TransferPlan::plan(&buckets, CopyStrategy::BucketByBucket);
        let milvus =
            TransferPlan::plan(&buckets, CopyStrategy::MultiBucket { chunk_bytes: 8 << 20 });
        assert!(d.transfer_cost(faiss.total_bytes, faiss.chunks)
            > d.transfer_cost(milvus.total_bytes, milvus.chunks) * 2);
    }
}

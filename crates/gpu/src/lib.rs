//! Simulated GPU engine (paper §3.3, §3.4).
//!
//! This reproduction has no physical GPU, so the GPU engine is a
//! **cost-model simulator**: every operation computes its exact result on the
//! CPU while *charging* simulated time to a device clock according to a
//! calibrated [`device::GpuSpec`] (PCIe latency + bandwidth, kernel
//! throughput, launch overhead, device-memory capacity). The phenomena the
//! paper evaluates are preserved because they are properties of the cost
//! terms, not of absolute speed:
//!
//! * bucket-by-bucket PCIe copies underutilize the bus (measured 1–2 GB/s vs
//!   15.75 GB/s peak, §3.4) — modeled as per-transfer latency that dominates
//!   small chunks; multi-bucket batching amortizes it ([`transfer`]);
//! * the GPU kernel returns at most 1024 results per query; bigger `k` runs
//!   round-by-round with distance/id filtering ([`bigk`], §3.3);
//! * multiple GPU devices are discovered at runtime and whole segments are
//!   scheduled onto single devices ([`scheduler`], §3.3);
//! * SQ8H (Algorithm 1) keeps only the coarse centroids resident, runs
//!   bucket-finding on the GPU and bucket-scanning on the CPU for small
//!   batches, and goes all-GPU for large batches ([`sq8h`], §3.4).

pub mod bigk;
pub mod device;
pub mod kernel;
pub mod scheduler;
pub mod sq8h;
pub mod transfer;

pub use device::{GpuDevice, GpuSpec};
pub use scheduler::MultiGpuScheduler;
pub use sq8h::{ExecMode, ExecReport, Sq8hIndex};

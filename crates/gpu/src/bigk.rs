//! Round-by-round big-k GPU search (§3.3 "Supporting bigger k").
//!
//! Faiss cannot return more than 1024 results per kernel; Milvus supports k
//! up to 16384 by running multiple rounds: after each round it records the
//! last (largest) distance `d_l` and the ids of results at exactly `d_l`,
//! then the next round filters out vectors with distance `< d_l` or with a
//! recorded id, guaranteeing earlier results never reappear. Rounds continue
//! until `k` results are collected.

use std::collections::HashSet;
use std::time::Duration;

use milvus_index::{Metric, Neighbor, VectorSet};

use crate::device::GpuDevice;
use crate::kernel::topk_kernel;

/// The paper's deliberate product cap on k (footnote 5).
pub const MAX_SUPPORTED_K: usize = 16384;

/// Multi-round top-k for one query batch; supports `k` past the kernel limit.
///
/// Returns per-query results plus total simulated kernel time.
pub fn search(
    device: &GpuDevice,
    metric: Metric,
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    k: usize,
) -> (Vec<Vec<Neighbor>>, Duration) {
    let k = k.min(MAX_SUPPORTED_K).min(data.len()).max(1);
    let per_round = device.spec().max_k_per_kernel;
    let mut total_cost = Duration::ZERO;

    if k <= per_round {
        let (res, cost) = topk_kernel(device, metric, data, ids, queries, k, None)
            .expect("k within kernel limit");
        return (res, cost);
    }

    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); queries.len()];
    // Per-query filter state: (d_l, ids recorded at distance == d_l).
    let mut state: Vec<Option<(f32, HashSet<i64>)>> = vec![None; queries.len()];

    while results.iter().any(|r| r.len() < k) {
        // One kernel launch per round serves the whole batch; each query
        // applies its own filter. We launch per query round here because the
        // filters differ — cost-wise this matches Milvus's multi-round
        // execution.
        let mut progressed = false;
        for (qi, q) in queries.iter().enumerate() {
            if results[qi].len() >= k {
                continue;
            }
            let qset = VectorSet::from_flat(queries.dim(), q.to_vec());
            let need = (k - results[qi].len()).min(per_round);
            let filter_state = state[qi].clone();
            let filter = move |id: i64, d: f32| match &filter_state {
                None => true,
                Some((dl, seen)) => d > *dl || (d == *dl && !seen.contains(&id)),
            };
            let (mut res, cost) =
                topk_kernel(device, metric, data, ids, &qset, need, Some(&filter))
                    .expect("need within kernel limit");
            total_cost += cost;
            let round = std::mem::take(&mut res[0]);
            if round.is_empty() {
                continue; // data exhausted for this query
            }
            progressed = true;
            // Record d_l and the ids at d_l (including ones from earlier
            // rounds at the same distance).
            let dl = round.last().expect("non-empty").dist;
            let mut seen_at_dl: HashSet<i64> = round
                .iter()
                .filter(|n| n.dist == dl)
                .map(|n| n.id)
                .collect();
            if let Some((old_dl, old_seen)) = &state[qi] {
                if *old_dl == dl {
                    seen_at_dl.extend(old_seen.iter().copied());
                }
            }
            state[qi] = Some((dl, seen_at_dl));
            results[qi].extend(round);
        }
        if !progressed {
            break;
        }
    }
    (results, total_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{GpuDevice, GpuSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn device_with_limit(limit: usize) -> GpuDevice {
        GpuDevice::new(0, GpuSpec { max_k_per_kernel: limit, ..Default::default() })
    }

    fn random_data(n: usize, dim: usize, seed: u64) -> (VectorSet, Vec<i64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut vs = VectorSet::new(dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            vs.push(&v);
        }
        (vs, (0..n as i64).collect())
    }

    #[test]
    fn multi_round_matches_single_shot() {
        let (data, ids) = random_data(500, 4, 1);
        let queries = random_data(3, 4, 2).0;
        let big_dev = device_with_limit(4096);
        let (expect, _) = search(&big_dev, Metric::L2, &data, &ids, &queries, 100);
        // Limit 16 forces ~7 rounds.
        let small_dev = device_with_limit(16);
        let (got, _) = search(&small_dev, Metric::L2, &data, &ids, &queries, 100);
        for (e, g) in expect.iter().zip(&got) {
            assert_eq!(e.len(), g.len());
            let eids: Vec<i64> = e.iter().map(|n| n.id).collect();
            let gids: Vec<i64> = g.iter().map(|n| n.id).collect();
            assert_eq!(eids, gids);
        }
    }

    #[test]
    fn duplicate_distances_handled() {
        // Many identical vectors → equal distances stress the d_l/id filter.
        let mut vs = VectorSet::new(2);
        for i in 0..100 {
            vs.push(&[(i % 5) as f32, 0.0]);
        }
        let ids: Vec<i64> = (0..100).collect();
        let queries = VectorSet::from_flat(2, vec![0.0, 0.0]);
        let dev = device_with_limit(8);
        let (res, _) = search(&dev, Metric::L2, &vs, &ids, &queries, 50);
        assert_eq!(res[0].len(), 50);
        let mut seen: Vec<i64> = res[0].iter().map(|n| n.id).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50, "duplicate results across rounds");
        // Distances must be non-decreasing.
        for w in res[0].windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn k_capped_at_data_size() {
        let (data, ids) = random_data(20, 2, 3);
        let queries = random_data(1, 2, 4).0;
        let dev = device_with_limit(8);
        let (res, _) = search(&dev, Metric::L2, &data, &ids, &queries, 1000);
        assert_eq!(res[0].len(), 20);
    }

    #[test]
    fn single_round_path() {
        let (data, ids) = random_data(50, 2, 5);
        let queries = random_data(2, 2, 6).0;
        let dev = device_with_limit(1024);
        let (res, cost) = search(&dev, Metric::L2, &data, &ids, &queries, 10);
        assert_eq!(res.len(), 2);
        assert!(cost > Duration::ZERO);
    }
}

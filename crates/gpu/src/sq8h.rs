//! SQ8H: the hybrid CPU/GPU index (§3.4, Algorithm 1).
//!
//! ```text
//! if nq >= threshold:
//!     run all queries entirely in GPU (load multiple buckets on the fly)
//! else:
//!     step 1 of SQ8 in GPU: find nprobe buckets      (centroids resident)
//!     step 2 of SQ8 in CPU: scan every relevant bucket
//! ```
//!
//! Step 1 has a much higher computation-to-I/O ratio than step 2: all queries
//! compare against the same K centroids, which are small enough to stay
//! resident in GPU memory, while step 2's bucket accesses are scattered. The
//! hybrid split therefore avoids moving any data segment to the GPU at all.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use milvus_index::ivf::{IvfIndex, IvfVariant};
use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{IndexError, Metric, Neighbor, TopK, VectorIndex, VectorSet};

use crate::device::GpuDevice;
use crate::transfer::{CopyStrategy, TransferPlan};

/// Resident-set key reserved for the coarse centroids.
const CENTROID_KEY: u64 = u64::MAX;

/// Which execution path to use (Figure 13 compares all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// SQ8 entirely on the CPU.
    PureCpu,
    /// SQ8 entirely on the GPU, streaming buckets over PCIe as needed.
    PureGpu,
    /// Algorithm 1: choose per batch; hybrid split for small batches.
    Sq8h,
}

/// Timing breakdown of one batch execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecReport {
    /// Real, measured host time.
    pub cpu_time: Duration,
    /// Simulated device time (kernels + PCIe transfers).
    pub gpu_time: Duration,
    /// Bytes moved over (simulated) PCIe for this batch.
    pub transferred_bytes: u64,
    /// The path actually taken (Sq8h resolves to one of the concrete paths).
    pub resolved: ExecMode,
}

impl ExecReport {
    /// End-to-end cost: host time plus simulated device time.
    pub fn total(&self) -> Duration {
        self.cpu_time + self.gpu_time
    }
}

/// The SQ8H index: an IVF_SQ8 structure plus a simulated GPU.
pub struct Sq8hIndex {
    ivf: IvfIndex,
    device: Arc<GpuDevice>,
    /// Batch size at or above which everything runs on the GPU (the paper's
    /// example threshold is 1000).
    pub batch_threshold: usize,
    /// Max bytes per coalesced DMA for multi-bucket copies.
    pub chunk_bytes: usize,
}

impl Sq8hIndex {
    /// Build the underlying IVF_SQ8 index and attach `device`.
    pub fn build(
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
        device: Arc<GpuDevice>,
    ) -> Result<Self, IndexError> {
        if params.metric == Metric::Cosine || params.metric.is_binary() {
            return Err(IndexError::UnsupportedMetric {
                metric: params.metric.name(),
                index: "SQ8H",
            });
        }
        let ivf = IvfIndex::build(IvfVariant::Sq8, vectors, ids, params)?;
        Ok(Self { ivf, device, batch_threshold: 1000, chunk_bytes: 8 << 20 })
    }

    /// The underlying IVF index.
    pub fn ivf(&self) -> &IvfIndex {
        &self.ivf
    }

    /// Indexed vector count.
    pub fn len(&self) -> usize {
        self.ivf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute a batch under Algorithm 1 (auto mode).
    pub fn search_batch(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> (Vec<Vec<Neighbor>>, ExecReport) {
        self.search_batch_mode(queries, params, ExecMode::Sq8h)
    }

    /// Execute a batch under an explicit mode (benchmarks pin the path).
    pub fn search_batch_mode(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
        mode: ExecMode,
    ) -> (Vec<Vec<Neighbor>>, ExecReport) {
        match mode {
            ExecMode::PureCpu => self.run_cpu(queries, params),
            // Explicit pure-GPU mode models the *Faiss* GPU behaviour the
            // paper compares against: bucket-by-bucket PCIe copies (§3.4).
            ExecMode::PureGpu => self.run_gpu(queries, params, CopyStrategy::BucketByBucket),
            ExecMode::Sq8h => {
                if queries.len() >= self.batch_threshold {
                    // Line 2-3 of Algorithm 1 — all-GPU, but with Milvus's
                    // multi-bucket copying improvement.
                    let (r, mut rep) = self.run_gpu(
                        queries,
                        params,
                        CopyStrategy::MultiBucket { chunk_bytes: self.chunk_bytes },
                    );
                    rep.resolved = ExecMode::PureGpu;
                    (r, rep)
                } else {
                    // Line 5-6: step 1 on GPU, step 2 on CPU.
                    self.run_hybrid(queries, params)
                }
            }
        }
    }

    /// Pure CPU: both steps on the host, measured.
    fn run_cpu(&self, queries: &VectorSet, params: &SearchParams) -> (Vec<Vec<Neighbor>>, ExecReport) {
        let start = Instant::now();
        let mut out = Vec::with_capacity(queries.len());
        for q in queries.iter() {
            let probes = self.ivf.probe_buckets(q, params.nprobe);
            // Fused-scan state built once per query, reused by every bucket.
            let prepared = self.ivf.prepare(q);
            let mut heap = TopK::new(params.k.max(1));
            for b in probes {
                self.ivf.scan_bucket_prepared(b, &prepared, &mut heap, None);
            }
            out.push(heap.into_sorted());
        }
        let report = ExecReport {
            cpu_time: start.elapsed(),
            gpu_time: Duration::ZERO,
            transferred_bytes: 0,
            resolved: ExecMode::PureCpu,
        };
        (out, report)
    }

    /// Step 1 on the GPU: centroids stay resident; one kernel compares every
    /// query against all centroids. Returns probe lists + simulated time.
    fn gpu_step1(&self, queries: &VectorSet, nprobe: usize) -> (Vec<Vec<usize>>, Duration) {
        let centroids = self.ivf.centroids();
        let centroid_bytes = centroids.memory_bytes();
        let mut gpu_time = self.device.ensure_resident(CENTROID_KEY, centroid_bytes, 1);
        let ops = (queries.len() as u64) * (centroids.len() as u64) * (centroids.dim() as u64);
        gpu_time += self.device.run_kernel(ops);
        let probes = queries.iter().map(|q| self.ivf.probe_buckets(q, nprobe)).collect();
        (probes, gpu_time)
    }

    /// All-GPU execution: step 1 on device, then stream every relevant
    /// bucket to the device under `copy` and scan there.
    fn run_gpu(
        &self,
        queries: &VectorSet,
        params: &SearchParams,
        copy: CopyStrategy,
    ) -> (Vec<Vec<Neighbor>>, ExecReport) {
        let before_bytes = self.device.stats().transferred_bytes;
        let (probes, mut gpu_time) = self.gpu_step1(queries, params.nprobe);

        // Union of buckets needed by this batch.
        let needed: BTreeSet<usize> = probes.iter().flatten().copied().collect();
        let missing: Vec<usize> =
            needed.iter().copied().filter(|&b| !self.device.is_resident(b as u64)).collect();
        if !missing.is_empty() {
            let sizes: Vec<usize> = missing.iter().map(|&b| self.ivf.bucket_bytes(b)).collect();
            let plan = TransferPlan::plan(&sizes, copy);
            // Pay for the coalesced copy once, then register residency.
            gpu_time += self.device.transfer(plan.total_bytes, plan.chunks);
            for (&b, &sz) in missing.iter().zip(&sizes) {
                self.device.register_resident(b as u64, sz);
            }
        }

        // Scan kernel: each query scans its probed buckets.
        let dim = self.ivf.centroids().dim() as u64;
        let mut scan_ops = 0u64;
        for plist in &probes {
            for &b in plist {
                scan_ops += self.ivf.bucket_len(b) as u64 * dim;
            }
        }
        gpu_time += self.device.run_kernel(scan_ops);

        // Exact results via host computation (cost already charged to GPU).
        let mut out = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            let prepared = self.ivf.prepare(q);
            let mut heap = TopK::new(params.k.max(1));
            for &b in &probes[qi] {
                self.ivf.scan_bucket_prepared(b, &prepared, &mut heap, None);
            }
            out.push(heap.into_sorted());
        }
        let report = ExecReport {
            cpu_time: Duration::ZERO,
            gpu_time,
            transferred_bytes: self.device.stats().transferred_bytes - before_bytes,
            resolved: ExecMode::PureGpu,
        };
        (out, report)
    }

    /// Hybrid: step 1 on GPU (no segment data ever moves to the device),
    /// step 2 on CPU, measured.
    fn run_hybrid(&self, queries: &VectorSet, params: &SearchParams) -> (Vec<Vec<Neighbor>>, ExecReport) {
        let before_bytes = self.device.stats().transferred_bytes;
        let (probes, gpu_time) = self.gpu_step1(queries, params.nprobe);
        let start = Instant::now();
        let mut out = Vec::with_capacity(queries.len());
        for (qi, q) in queries.iter().enumerate() {
            let prepared = self.ivf.prepare(q);
            let mut heap = TopK::new(params.k.max(1));
            for &b in &probes[qi] {
                self.ivf.scan_bucket_prepared(b, &prepared, &mut heap, None);
            }
            out.push(heap.into_sorted());
        }
        let report = ExecReport {
            cpu_time: start.elapsed(),
            gpu_time,
            transferred_bytes: self.device.stats().transferred_bytes - before_bytes,
            resolved: ExecMode::Sq8h,
        };
        (out, report)
    }
}

impl VectorIndex for Sq8hIndex {
    fn name(&self) -> &'static str {
        "SQ8H"
    }

    fn metric(&self) -> Metric {
        self.ivf.metric()
    }

    fn len(&self) -> usize {
        self.ivf.len()
    }

    /// Single-query search through Algorithm 1 (resolves to the hybrid path
    /// for a batch of one).
    fn search(
        &self,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Vec<Neighbor>, IndexError> {
        let q = VectorSet::from_flat(query.len(), query.to_vec());
        let (mut results, _) = self.search_batch(&q, params);
        Ok(results.pop().unwrap_or_default())
    }

    fn search_filtered(
        &self,
        query: &[f32],
        params: &SearchParams,
        allow: &dyn Fn(i64) -> bool,
    ) -> Result<Vec<Neighbor>, IndexError> {
        // Filtered search runs the CPU scan path with the predicate; the
        // GPU step-1 probe is unaffected by filtering.
        let (probes, _) = self.gpu_step1(
            &VectorSet::from_flat(query.len(), query.to_vec()),
            params.nprobe,
        );
        let prepared = self.ivf.prepare(query);
        let mut heap = TopK::new(params.k.max(1));
        for &b in &probes[0] {
            self.ivf.scan_bucket_prepared(b, &prepared, &mut heap, Some(allow));
        }
        Ok(heap.into_sorted())
    }

    fn memory_bytes(&self) -> usize {
        self.ivf.memory_bytes()
    }
}

/// Registry builder that binds a simulated device, so `"SQ8H"` can be used
/// anywhere an index type name is accepted (e.g.
/// `collection.build_index("v", "SQ8H")`).
pub struct Sq8hBuilder {
    /// The device every built index will run on.
    pub device: Arc<GpuDevice>,
}

impl milvus_index::traits::IndexBuilder for Sq8hBuilder {
    fn name(&self) -> &'static str {
        "SQ8H"
    }

    fn build(
        &self,
        vectors: &VectorSet,
        ids: &[i64],
        params: &BuildParams,
    ) -> Result<Box<dyn VectorIndex>, IndexError> {
        Ok(Box::new(Sq8hIndex::build(vectors, ids, params, Arc::clone(&self.device))?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn build_index(n: usize, mem: usize) -> Sq8hIndex {
        let mut rng = StdRng::seed_from_u64(11);
        let mut vs = VectorSet::new(8);
        for i in 0..n {
            let c = (i % 10) as f32 * 5.0;
            let v: Vec<f32> = (0..8).map(|_| c + rng.gen_range(-0.5f32..0.5)).collect();
            vs.push(&v);
        }
        let ids: Vec<i64> = (0..n as i64).collect();
        let params = BuildParams { nlist: 16, kmeans_iters: 5, ..Default::default() };
        let spec = GpuSpec { global_memory_bytes: mem, ..Default::default() };
        let device = Arc::new(GpuDevice::new(0, spec));
        Sq8hIndex::build(&vs, &ids, &params, device).unwrap()
    }

    fn queries(m: usize) -> VectorSet {
        let mut rng = StdRng::seed_from_u64(29);
        let mut vs = VectorSet::new(8);
        for i in 0..m {
            let c = (i % 10) as f32 * 5.0;
            let v: Vec<f32> = (0..8).map(|_| c + rng.gen_range(-0.5f32..0.5)).collect();
            vs.push(&v);
        }
        vs
    }

    #[test]
    fn all_modes_return_identical_results() {
        let idx = build_index(500, 64 << 20);
        let q = queries(10);
        let sp = SearchParams { k: 5, nprobe: 4, ..Default::default() };
        let (cpu, _) = idx.search_batch_mode(&q, &sp, ExecMode::PureCpu);
        let (gpu, _) = idx.search_batch_mode(&q, &sp, ExecMode::PureGpu);
        let (hyb, _) = idx.search_batch_mode(&q, &sp, ExecMode::Sq8h);
        assert_eq!(cpu, gpu);
        assert_eq!(cpu, hyb);
    }

    #[test]
    fn algorithm1_picks_gpu_for_large_batches() {
        let mut idx = build_index(300, 64 << 20);
        idx.batch_threshold = 8;
        let sp = SearchParams { k: 3, nprobe: 2, ..Default::default() };
        let (_, small) = idx.search_batch(&queries(4), &sp);
        assert_eq!(small.resolved, ExecMode::Sq8h);
        let (_, large) = idx.search_batch(&queries(16), &sp);
        assert_eq!(large.resolved, ExecMode::PureGpu);
    }

    #[test]
    fn hybrid_never_transfers_buckets() {
        let idx = build_index(400, 64 << 20);
        let sp = SearchParams { k: 3, nprobe: 4, ..Default::default() };
        let (_, rep) = idx.search_batch_mode(&queries(5), &sp, ExecMode::Sq8h);
        // Only the centroids move: nlist(≤20) × dim 8 × 4 bytes.
        assert!(rep.transferred_bytes <= 20 * 8 * 4 + 64);
        let (_, rep2) = idx.search_batch_mode(&queries(5), &sp, ExecMode::Sq8h);
        // Second batch: centroids already resident → zero transfer.
        assert_eq!(rep2.transferred_bytes, 0);
    }

    #[test]
    fn pure_gpu_streams_buckets_when_memory_insufficient() {
        // Device memory far below dataset size forces streaming each batch.
        let idx = build_index(2000, 2048);
        let sp = SearchParams { k: 3, nprobe: 8, ..Default::default() };
        let (_, r1) = idx.search_batch_mode(&queries(5), &sp, ExecMode::PureGpu);
        assert!(r1.transferred_bytes > 0);
        let (_, r2) = idx.search_batch_mode(&queries(5), &sp, ExecMode::PureGpu);
        // Evictions under pressure mean buckets move again.
        assert!(r2.transferred_bytes > 0);
    }

    #[test]
    fn cosine_rejected() {
        let vs = VectorSet::from_flat(4, vec![0.0; 16]);
        let params = BuildParams { metric: Metric::Cosine, ..Default::default() };
        let device = Arc::new(GpuDevice::new(0, GpuSpec::default()));
        assert!(Sq8hIndex::build(&vs, &[0, 1, 2, 3], &params, device).is_err());
    }

    #[test]
    fn registers_as_index_type() {
        use milvus_index::registry::IndexRegistry;
        let registry = IndexRegistry::with_builtins();
        let device = Arc::new(GpuDevice::new(0, GpuSpec::default()));
        registry.register(Arc::new(Sq8hBuilder { device }));
        assert!(registry.contains("SQ8H"));

        let idx = build_index(300, 64 << 20);
        let q = queries(1);
        let single = idx.search(q.get(0), &SearchParams { k: 5, nprobe: 4, ..Default::default() });
        assert_eq!(single.unwrap().len(), 5);
    }

    #[test]
    fn filtered_search_respects_predicate() {
        let idx = build_index(400, 64 << 20);
        let q = queries(1);
        let sp = SearchParams { k: 10, nprobe: 8, ..Default::default() };
        let res = idx.search_filtered(q.get(0), &sp, &|id| id % 2 == 0).unwrap();
        assert!(!res.is_empty());
        assert!(res.iter().all(|n| n.id % 2 == 0));
    }

    #[test]
    fn report_totals() {
        let idx = build_index(200, 64 << 20);
        let sp = SearchParams { k: 2, nprobe: 2, ..Default::default() };
        let (_, rep) = idx.search_batch_mode(&queries(3), &sp, ExecMode::Sq8h);
        assert_eq!(rep.total(), rep.cpu_time + rep.gpu_time);
        assert!(rep.gpu_time > Duration::ZERO);
    }
}

//! The simulated top-k GPU kernel.
//!
//! Computes exact results on the host while charging the device for the
//! equivalent work. Enforces the per-round result limit (`max_k_per_kernel`,
//! default 1024) that motivates the round-by-round big-k algorithm of §3.3.

use std::time::Duration;

use milvus_index::{distance, Metric, Neighbor, TopK, VectorSet};

use crate::device::GpuDevice;

/// Error raised when a single kernel round is asked for more results than
/// the device supports.
#[derive(Debug)]
pub struct KernelKLimit {
    /// Requested k.
    pub k: usize,
    /// Device limit.
    pub limit: usize,
}

impl std::fmt::Display for KernelKLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k={} exceeds GPU kernel limit {}; use bigk::search", self.k, self.limit)
    }
}

impl std::error::Error for KernelKLimit {}

/// One top-k kernel launch over a data slice; `filter` drops rows before they
/// enter the heap (the big-k algorithm's distance/id filtering, §3.3).
///
/// Returns per-query sorted results and the simulated kernel duration.
pub fn topk_kernel(
    device: &GpuDevice,
    metric: Metric,
    data: &VectorSet,
    ids: &[i64],
    queries: &VectorSet,
    k: usize,
    filter: Option<&dyn Fn(i64, f32) -> bool>,
) -> Result<(Vec<Vec<Neighbor>>, Duration), KernelKLimit> {
    let limit = device.spec().max_k_per_kernel;
    if k > limit {
        return Err(KernelKLimit { k, limit });
    }
    // Charge: every (query, row) pair costs `dim` multiply-adds.
    let ops = (queries.len() as u64) * (data.len() as u64) * (data.dim() as u64);
    let cost = device.run_kernel(ops);

    let mut out = Vec::with_capacity(queries.len());
    for q in queries.iter() {
        let mut heap = TopK::new(k.max(1));
        for (row, v) in data.iter().enumerate() {
            let d = distance::distance(metric, q, v);
            if filter.is_none_or(|f| f(ids[row], d)) {
                heap.push(ids[row], d);
            }
        }
        out.push(heap.into_sorted());
    }
    Ok((out, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::GpuSpec;

    fn setup() -> (GpuDevice, VectorSet, Vec<i64>, VectorSet) {
        let device = GpuDevice::new(0, GpuSpec::default());
        let data = VectorSet::from_flat(2, (0..20).map(|i| i as f32).collect());
        let ids: Vec<i64> = (0..10).collect();
        let queries = VectorSet::from_flat(2, vec![0.0, 1.0]);
        (device, data, ids, queries)
    }

    #[test]
    fn exact_results() {
        let (device, data, ids, queries) = setup();
        let (res, cost) =
            topk_kernel(&device, Metric::L2, &data, &ids, &queries, 3, None).unwrap();
        assert_eq!(res.len(), 1);
        assert_eq!(res[0][0].id, 0); // row 0 = [0,1] equals the query
        assert!(cost > Duration::ZERO);
    }

    #[test]
    fn k_limit_enforced() {
        let (device, data, ids, queries) = setup();
        let err = topk_kernel(&device, Metric::L2, &data, &ids, &queries, 2000, None)
            .unwrap_err();
        assert_eq!(err.limit, 1024);
    }

    #[test]
    fn filter_excludes_rows() {
        let (device, data, ids, queries) = setup();
        let (res, _) = topk_kernel(
            &device,
            Metric::L2,
            &data,
            &ids,
            &queries,
            3,
            Some(&|id, _| id != 0),
        )
        .unwrap();
        assert!(res[0].iter().all(|n| n.id != 0));
    }
}

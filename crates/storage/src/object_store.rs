//! Multi-storage abstraction (§2.4, §5.3).
//!
//! "Milvus supports multiple file systems including local file systems,
//! Amazon S3, and HDFS for the underlying data storage." [`ObjectStore`] is
//! the common interface; [`LocalFsStore`] persists to a directory, and
//! [`MemoryStore`] is the in-process substitute for S3 used by the
//! distributed simulation — optionally with a latency model so benchmarks
//! feel the cost of remote reads.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use crate::error::{Result, StorageError};

/// A flat key → blob store.
pub trait ObjectStore: Send + Sync {
    /// Store `data` under `key`, replacing any existing object.
    fn put(&self, key: &str, data: Bytes) -> Result<()>;

    /// Fetch the object at `key`.
    fn get(&self, key: &str) -> Result<Bytes>;

    /// Remove the object at `key` (idempotent).
    fn delete(&self, key: &str) -> Result<()>;

    /// Keys with the given prefix, sorted.
    fn list(&self, prefix: &str) -> Result<Vec<String>>;

    /// Whether `key` exists.
    fn exists(&self, key: &str) -> Result<bool> {
        match self.get(key) {
            Ok(_) => Ok(true),
            Err(StorageError::ObjectNotFound(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

/// Local-filesystem backend; keys map to files under a root directory.
pub struct LocalFsStore {
    root: PathBuf,
}

impl LocalFsStore {
    /// Create (and mkdir) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        // Keys may contain '/' which become subdirectories.
        self.root.join(key)
    }
}

impl ObjectStore for LocalFsStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        let path = self.path_for(key);
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        // Write-then-rename for atomicity.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &data)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        let path = self.path_for(key);
        match std::fs::read(&path) {
            Ok(data) => Ok(Bytes::from(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::ObjectNotFound(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn delete(&self, key: &str) -> Result<()> {
        match std::fs::remove_file(self.path_for(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let entries = match std::fs::read_dir(&dir) {
                Ok(e) => e,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            };
            for entry in entries {
                let entry = entry?;
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else if let Ok(rel) = path.strip_prefix(&self.root) {
                    let key = rel.to_string_lossy().replace('\\', "/");
                    if key.starts_with(prefix) && !key.ends_with(".tmp") {
                        out.push(key);
                    }
                }
            }
        }
        out.sort();
        Ok(out)
    }
}

/// In-memory backend simulating a highly-available shared store (S3).
///
/// `latency` models the per-request cost of a remote round trip; zero by
/// default so unit tests stay fast.
pub struct MemoryStore {
    objects: Mutex<BTreeMap<String, Bytes>>,
    latency: Duration,
}

impl Default for MemoryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryStore {
    /// Zero-latency store.
    pub fn new() -> Self {
        Self { objects: Mutex::new(BTreeMap::new()), latency: Duration::ZERO }
    }

    /// Store with a simulated per-request latency.
    pub fn with_latency(latency: Duration) -> Self {
        Self { objects: Mutex::new(BTreeMap::new()), latency }
    }

    fn pay_latency(&self) {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.lock().len()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.objects.lock().values().map(Bytes::len).sum()
    }
}

impl ObjectStore for MemoryStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.pay_latency();
        self.objects.lock().insert(key.to_string(), data);
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.pay_latency();
        self.objects
            .lock()
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::ObjectNotFound(key.to_string()))
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.pay_latency();
        self.objects.lock().remove(key);
        Ok(())
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        self.pay_latency();
        Ok(self
            .objects
            .lock()
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &dyn ObjectStore) {
        store.put("a/1", Bytes::from_static(b"one")).unwrap();
        store.put("a/2", Bytes::from_static(b"two")).unwrap();
        store.put("b/1", Bytes::from_static(b"three")).unwrap();

        assert_eq!(store.get("a/1").unwrap(), Bytes::from_static(b"one"));
        assert!(store.exists("a/2").unwrap());
        assert!(!store.exists("a/3").unwrap());
        assert_eq!(store.list("a/").unwrap(), vec!["a/1".to_string(), "a/2".to_string()]);

        // Overwrite.
        store.put("a/1", Bytes::from_static(b"uno")).unwrap();
        assert_eq!(store.get("a/1").unwrap(), Bytes::from_static(b"uno"));

        // Delete is idempotent.
        store.delete("a/1").unwrap();
        store.delete("a/1").unwrap();
        assert!(matches!(store.get("a/1"), Err(StorageError::ObjectNotFound(_))));
    }

    #[test]
    fn memory_store_contract() {
        exercise(&MemoryStore::new());
    }

    #[test]
    fn local_fs_store_contract() {
        let dir = std::env::temp_dir()
            .join(format!("milvus-objstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&LocalFsStore::new(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_store_accounting() {
        let s = MemoryStore::new();
        s.put("x", Bytes::from_static(b"12345")).unwrap();
        assert_eq!(s.object_count(), 1);
        assert_eq!(s.total_bytes(), 5);
    }
}

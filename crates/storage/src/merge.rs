//! Tiered segment-merge policy (§2.3).
//!
//! "Smaller segments are merged into larger ones for fast sequential access.
//! Milvus implements a tiered merge policy (also used in Apache Lucene) that
//! aims to merge segments of approximately equal sizes until a configurable
//! size limit (e.g., 1 GB) is reached."
//!
//! Segments are bucketed into size tiers by `log_{tier_factor}(bytes)`; any
//! tier holding at least `min_segments_per_merge` segments whose combined
//! size stays under `max_segment_bytes` yields one merge group.

/// Policy knobs.
#[derive(Debug, Clone)]
pub struct MergePolicy {
    /// Size ratio between tiers (Lucene's default is 10).
    pub tier_factor: f64,
    /// Minimum segments of a tier to trigger a merge.
    pub min_segments_per_merge: usize,
    /// Stop growing segments past this size (the paper's 1 GB).
    pub max_segment_bytes: usize,
}

impl Default for MergePolicy {
    fn default() -> Self {
        Self {
            tier_factor: 10.0,
            min_segments_per_merge: 4,
            max_segment_bytes: 1 << 30,
        }
    }
}

/// A candidate segment as seen by the planner.
#[derive(Debug, Clone, Copy)]
pub struct SegmentMeta {
    /// Segment id.
    pub id: u64,
    /// Approximate payload bytes.
    pub bytes: usize,
}

impl MergePolicy {
    /// Plan merge groups over the current segments. Each returned group lists
    /// the segment ids to merge into one new segment.
    ///
    /// Segments are sorted by size; a run of segments is "approximately
    /// equal" when every member is within `tier_factor`× the smallest of the
    /// run. A run of at least `min_segments_per_merge` members whose combined
    /// size stays under `max_segment_bytes` becomes one merge group.
    pub fn plan(&self, segments: &[SegmentMeta]) -> Vec<Vec<u64>> {
        let mut members: Vec<SegmentMeta> = segments
            .iter()
            .copied()
            // Segments already at the cap never merge again.
            .filter(|s| s.bytes < self.max_segment_bytes)
            .collect();
        members.sort_by_key(|m| m.bytes);

        let mut plans = Vec::new();
        let mut i = 0;
        while i < members.len() {
            let base = members[i].bytes.max(1);
            let mut group = vec![members[i].id];
            let mut total = members[i].bytes;
            let mut j = i + 1;
            while j < members.len() {
                let b = members[j].bytes;
                let same_tier = (b as f64) <= (base as f64) * self.tier_factor;
                if !same_tier || total + b > self.max_segment_bytes {
                    break;
                }
                group.push(members[j].id);
                total += b;
                j += 1;
            }
            if group.len() >= self.min_segments_per_merge.max(2) {
                plans.push(group);
                i = j;
            } else {
                i += 1;
            }
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metas(sizes: &[usize]) -> Vec<SegmentMeta> {
        sizes.iter().enumerate().map(|(i, &b)| SegmentMeta { id: i as u64, bytes: b }).collect()
    }

    #[test]
    fn equal_small_segments_merge() {
        let policy = MergePolicy { min_segments_per_merge: 4, ..Default::default() };
        let plans = policy.plan(&metas(&[1000, 1100, 900, 1050]));
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].len(), 4);
    }

    #[test]
    fn too_few_segments_no_merge() {
        let policy = MergePolicy { min_segments_per_merge: 4, ..Default::default() };
        assert!(policy.plan(&metas(&[1000, 1100, 900])).is_empty());
    }

    #[test]
    fn different_tiers_do_not_mix() {
        let policy = MergePolicy { min_segments_per_merge: 2, ..Default::default() };
        // Two ~1KB segments and two ~10MB segments: two separate groups.
        let plans = policy.plan(&metas(&[1000, 1200, 10_000_000, 12_000_000]));
        assert_eq!(plans.len(), 2);
        for p in &plans {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn capped_segments_left_alone() {
        let policy = MergePolicy {
            min_segments_per_merge: 2,
            max_segment_bytes: 1000,
            ..Default::default()
        };
        let plans = policy.plan(&metas(&[1500, 1500, 1500, 1500]));
        assert!(plans.is_empty());
    }

    #[test]
    fn group_respects_size_cap() {
        let policy = MergePolicy {
            tier_factor: 10.0,
            min_segments_per_merge: 2,
            max_segment_bytes: 250,
        };
        // Tier of 100-byte segments; cap allows at most 2 per group.
        let plans = policy.plan(&metas(&[100, 100, 100, 100]));
        assert!(!plans.is_empty());
        for p in &plans {
            assert!(p.len() <= 2, "group too big: {p:?}");
        }
    }

    #[test]
    fn empty_input() {
        assert!(MergePolicy::default().plan(&[]).is_empty());
    }
}

//! Categorical attribute columns — the paper's stated future work ("in the
//! future, we plan to support categorical attributes with indexes like
//! inverted lists or bitmaps", §2.1) — implemented here as an extension.
//!
//! Values are dictionary-encoded; each category gets both an **inverted
//! list** (sorted row ids) and a **bitmap** over the row positions, so
//! equality and IN-list predicates resolve without scanning, and multi-
//! category predicates combine with bitwise OR/AND.

use std::collections::HashMap;


/// A packed bitmap over row positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

serde::impl_serde_struct!(Bitmap { len, words });

impl Bitmap {
    /// An empty bitmap of `len` rows.
    pub fn new(len: usize) -> Self {
        Self { len, words: vec![0; len.div_ceil(64)] }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no rows are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Test bit `i`.
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Bitwise OR (union of categories).
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            len: self.len,
            words: self.words.iter().zip(&other.words).map(|(a, b)| a | b).collect(),
        }
    }

    /// Bitwise AND (conjunction of predicates).
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            len: self.len,
            words: self.words.iter().zip(&other.words).map(|(a, b)| a & b).collect(),
        }
    }

    /// Positions of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.get(i))
    }
}

/// A dictionary-encoded categorical column with inverted-list and bitmap
/// indexes.
#[derive(Debug, Clone)]
pub struct CategoricalColumn {
    name: String,
    /// Category string → dictionary code.
    dictionary: HashMap<String, u32>,
    /// Dictionary code → category string.
    labels: Vec<String>,
    /// Per-row dictionary codes (row-aligned with the segment).
    codes: Vec<u32>,
    /// Row ids aligned with `codes`.
    row_ids: Vec<i64>,
    /// Per-category inverted list of row ids (sorted).
    inverted: Vec<Vec<i64>>,
    /// Per-category bitmap over row positions.
    bitmaps: Vec<Bitmap>,
}

serde::impl_serde_struct!(CategoricalColumn {
    name,
    dictionary,
    labels,
    codes,
    row_ids,
    inverted,
    bitmaps,
});

impl CategoricalColumn {
    /// Build from parallel `values[i]` ↔ `row_ids[i]`.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn build(name: impl Into<String>, values: &[&str], row_ids: &[i64]) -> Self {
        assert_eq!(values.len(), row_ids.len(), "values/row_ids length mismatch");
        let mut dictionary: HashMap<String, u32> = HashMap::new();
        let mut labels: Vec<String> = Vec::new();
        let mut codes = Vec::with_capacity(values.len());
        for &v in values {
            let code = *dictionary.entry(v.to_string()).or_insert_with(|| {
                labels.push(v.to_string());
                (labels.len() - 1) as u32
            });
            codes.push(code);
        }
        let n = values.len();
        let mut inverted: Vec<Vec<i64>> = vec![Vec::new(); labels.len()];
        let mut bitmaps: Vec<Bitmap> = (0..labels.len()).map(|_| Bitmap::new(n)).collect();
        for (row, (&code, &id)) in codes.iter().zip(row_ids).enumerate() {
            inverted[code as usize].push(id);
            bitmaps[code as usize].set(row);
        }
        for list in &mut inverted {
            list.sort_unstable();
        }
        Self { name: name.into(), dictionary, labels, codes, row_ids: row_ids.to_vec(), inverted, bitmaps }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Distinct categories, in first-seen order.
    pub fn categories(&self) -> &[String] {
        &self.labels
    }

    /// Row ids with value exactly `category` (inverted-list lookup).
    pub fn rows_eq(&self, category: &str) -> &[i64] {
        match self.dictionary.get(category) {
            Some(&code) => &self.inverted[code as usize],
            None => &[],
        }
    }

    /// Bitmap of rows matching any of `categories` (IN-list predicate).
    pub fn bitmap_in(&self, categories: &[&str]) -> Bitmap {
        let mut acc = Bitmap::new(self.len());
        for c in categories {
            if let Some(&code) = self.dictionary.get(*c) {
                acc = acc.or(&self.bitmaps[code as usize]);
            }
        }
        acc
    }

    /// Row ids matching any of `categories`, sorted.
    pub fn rows_in(&self, categories: &[&str]) -> Vec<i64> {
        let bm = self.bitmap_in(categories);
        let mut out: Vec<i64> = bm.iter_ones().map(|row| self.row_ids[row]).collect();
        out.sort_unstable();
        out
    }

    /// The category of `row_id`, if present.
    pub fn value_of(&self, row_id: i64) -> Option<&str> {
        let row = self.row_ids.iter().position(|&id| id == row_id)?;
        Some(&self.labels[self.codes[row] as usize])
    }

    /// Selectivity of an equality predicate (fraction of rows *failing* it,
    /// matching the numeric column's convention).
    pub fn selectivity_eq(&self, category: &str) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        1.0 - self.rows_eq(category).len() as f64 / self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> CategoricalColumn {
        let values = ["shirt", "shoe", "shirt", "hat", "shoe", "shirt"];
        let rows = [10i64, 11, 12, 13, 14, 15];
        CategoricalColumn::build("kind", &values, &rows)
    }

    #[test]
    fn equality_lookup_via_inverted_list() {
        let c = col();
        assert_eq!(c.rows_eq("shirt"), &[10, 12, 15]);
        assert_eq!(c.rows_eq("hat"), &[13]);
        assert!(c.rows_eq("sock").is_empty());
    }

    #[test]
    fn in_list_via_bitmap_or() {
        let c = col();
        assert_eq!(c.rows_in(&["shoe", "hat"]), vec![11, 13, 14]);
        assert_eq!(c.rows_in(&["missing"]), Vec::<i64>::new());
        // The bitmap count matches the inverted lists.
        assert_eq!(c.bitmap_in(&["shirt"]).count(), 3);
    }

    #[test]
    fn bitmap_and_intersects() {
        let c = col();
        let shirts = c.bitmap_in(&["shirt"]);
        let everything = c.bitmap_in(&["shirt", "shoe", "hat"]);
        assert_eq!(shirts.and(&everything), shirts);
        assert_eq!(everything.count(), 6);
    }

    #[test]
    fn value_lookup_and_selectivity() {
        let c = col();
        assert_eq!(c.value_of(13), Some("hat"));
        assert_eq!(c.value_of(99), None);
        assert!((c.selectivity_eq("shirt") - 0.5).abs() < 1e-9);
        assert_eq!(c.selectivity_eq("sock"), 1.0);
    }

    #[test]
    fn categories_in_first_seen_order() {
        assert_eq!(col().categories(), &["shirt", "shoe", "hat"]);
    }

    #[test]
    fn bitmap_primitives() {
        let mut b = Bitmap::new(70);
        b.set(0);
        b.set(64);
        b.set(69);
        assert!(b.get(64));
        assert!(!b.get(1));
        assert!(!b.get(1000));
        assert_eq!(b.count(), 3);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 64, 69]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_set_out_of_range_panics() {
        Bitmap::new(8).set(8);
    }

    #[test]
    fn empty_column() {
        let c = CategoricalColumn::build("e", &[], &[]);
        assert!(c.is_empty());
        assert!(c.rows_in(&["x"]).is_empty());
        assert_eq!(c.selectivity_eq("x"), 0.0);
    }
}

//! Segment-granular LRU bufferpool (§2.4).
//!
//! "Milvus assumes that most (if not all) data and index are resident in
//! memory for high performance. If not, it relies on an LRU-based buffer
//! manager. In particular, the caching unit is a segment." Readers call
//! [`BufferPool::get_or_load`]; misses invoke the supplied loader (typically
//! an object-store fetch + decode) and may evict the least recently used
//! segments to stay within the byte budget.
//!
//! Telemetry: besides the pool-level [`PoolStats`], the pool keeps
//! **per-segment** hit/miss/eviction counters keyed by the *segment id* (not
//! the cache key, so shard/version composite keys still aggregate onto the
//! segment). Pools constructed with [`BufferPool::with_label`] additionally
//! export every counter to the global metrics registry —
//! `milvus_bufferpool_{hits,misses,evictions}_total` and the
//! `milvus_bufferpool_resident_bytes` gauge, each both pool-wide and with a
//! `segment` label — which is what `GET /metrics` scrapes and what trace
//! spans consult for cache attribution.

use std::collections::HashMap;
use std::sync::Arc;

use milvus_obs as obs;
use parking_lot::Mutex;

use crate::error::Result;
use crate::segment::Segment;

/// Pool-level cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that invoked the loader.
    pub misses: u64,
    /// Segments evicted to make room.
    pub evictions: u64,
}

/// Per-segment cache statistics (keyed by segment id).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentPoolStats {
    /// Requests for this segment served from cache.
    pub hits: u64,
    /// Requests for this segment that invoked the loader.
    pub misses: u64,
    /// Times this segment was evicted.
    pub evictions: u64,
    /// Bytes this segment currently occupies (0 when not resident).
    pub resident_bytes: usize,
    /// Outcome of the most recent access (trace span attribution).
    pub last_outcome: obs::CacheOutcome,
}

struct Entry {
    segment: Arc<Segment>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    clock: u64,
    used_bytes: usize,
    stats: PoolStats,
    /// segment id → cumulative stats (survives eviction).
    seg_stats: HashMap<u64, SegmentPoolStats>,
}

/// LRU cache of segments keyed by caller-chosen cache key.
pub struct BufferPool {
    capacity_bytes: usize,
    /// Metrics label; empty = do not export to the global registry.
    label: String,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// A pool holding at most `capacity_bytes` of segment payloads, not
    /// exported to the metrics registry.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_label(capacity_bytes, "")
    }

    /// A pool that additionally exports pool-wide and per-segment series
    /// under `label` (by convention the owning node, e.g. `reader-3`).
    pub fn with_label(capacity_bytes: usize, label: impl Into<String>) -> Self {
        Self {
            capacity_bytes,
            label: label.into(),
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                used_bytes: 0,
                stats: PoolStats::default(),
                seg_stats: HashMap::new(),
            }),
        }
    }

    /// Byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The metrics label (empty when unexported).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    /// Cached segment count.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pool-level counters so far.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Cumulative stats for one segment id (zeroes if never seen).
    pub fn segment_stats(&self, segment_id: u64) -> SegmentPoolStats {
        self.inner.lock().seg_stats.get(&segment_id).copied().unwrap_or_default()
    }

    /// Cumulative stats of every segment this pool has seen, sorted by id.
    pub fn all_segment_stats(&self) -> Vec<(u64, SegmentPoolStats)> {
        let inner = self.inner.lock();
        let mut v: Vec<(u64, SegmentPoolStats)> =
            inner.seg_stats.iter().map(|(&id, &s)| (id, s)).collect();
        v.sort_by_key(|&(id, _)| id);
        v
    }

    /// Cache outcome of the most recent access to `segment_id`
    /// ([`obs::CacheOutcome::Untracked`] when never accessed). Trace spans
    /// use this to attribute hit/miss to the segment they scan.
    pub fn last_outcome(&self, segment_id: u64) -> obs::CacheOutcome {
        self.inner
            .lock()
            .seg_stats
            .get(&segment_id)
            .map_or(obs::CacheOutcome::Untracked, |s| s.last_outcome)
    }

    /// Fetch `key` from cache, else run `load` and cache the result.
    pub fn get_or_load(
        &self,
        key: u64,
        load: impl FnOnce() -> Result<Arc<Segment>>,
    ) -> Result<Arc<Segment>> {
        self.get_or_load_outcome(key, load).map(|(seg, _)| seg)
    }

    /// Like [`BufferPool::get_or_load`], also reporting whether the request
    /// was a cache hit (for trace spans).
    pub fn get_or_load_outcome(
        &self,
        key: u64,
        load: impl FnOnce() -> Result<Arc<Segment>>,
    ) -> Result<(Arc<Segment>, bool)> {
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(e) = inner.entries.get_mut(&key) {
                e.last_used = clock;
                let seg = Arc::clone(&e.segment);
                inner.stats.hits += 1;
                let stat = inner.seg_stats.entry(seg.id).or_default();
                stat.hits += 1;
                stat.last_outcome = obs::CacheOutcome::Hit;
                if !self.label.is_empty() {
                    obs::registry().counter(obs::POOL_HITS, &self.label).inc();
                    obs::registry().counter_seg(obs::POOL_HITS, &self.label, seg.id).inc();
                }
                return Ok((seg, true));
            }
            inner.stats.misses += 1;
            if !self.label.is_empty() {
                obs::registry().counter(obs::POOL_MISSES, &self.label).inc();
            }
        }
        // Load outside the lock (a real fetch can be slow). The segment id is
        // only known after decode, so the per-segment miss is attributed here.
        let segment = load()?;
        {
            let mut inner = self.inner.lock();
            let stat = inner.seg_stats.entry(segment.id).or_default();
            stat.misses += 1;
            stat.last_outcome = obs::CacheOutcome::Miss;
        }
        if !self.label.is_empty() {
            obs::registry().counter_seg(obs::POOL_MISSES, &self.label, segment.id).inc();
        }
        self.insert_with_key(key, Arc::clone(&segment));
        Ok((segment, false))
    }

    /// Insert (or refresh) a segment under its own id.
    pub fn insert(&self, segment: Arc<Segment>) {
        self.insert_with_key(segment.id, segment);
    }

    /// Insert (or refresh) a segment under an explicit cache key (callers
    /// that cache multiple shards/versions compose their own keys), evicting
    /// LRU entries if over budget.
    pub fn insert_with_key(&self, key: u64, segment: Arc<Segment>) {
        let bytes = segment.memory_bytes();
        let seg_id = segment.id;
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.remove(&key) {
            inner.used_bytes -= old.bytes;
            let old_id = old.segment.id;
            if let Some(s) = inner.seg_stats.get_mut(&old_id) {
                s.resident_bytes = 0;
            }
        }
        inner.entries.insert(key, Entry { segment, bytes, last_used: clock });
        inner.used_bytes += bytes;
        inner.seg_stats.entry(seg_id).or_default().resident_bytes = bytes;
        if !self.label.is_empty() {
            obs::registry().gauge_seg(obs::POOL_RESIDENT_BYTES, &self.label, seg_id)
                .set(bytes as i64);
        }
        // Evict LRU until within budget (never evict the entry just added if
        // it alone exceeds capacity — it is in use by the caller).
        while inner.used_bytes > self.capacity_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty");
            let e = inner.entries.remove(&victim).expect("present");
            inner.used_bytes -= e.bytes;
            inner.stats.evictions += 1;
            let victim_id = e.segment.id;
            let stat = inner.seg_stats.entry(victim_id).or_default();
            stat.evictions += 1;
            stat.resident_bytes = 0;
            if !self.label.is_empty() {
                obs::registry().counter(obs::POOL_EVICTIONS, &self.label).inc();
                obs::registry().counter_seg(obs::POOL_EVICTIONS, &self.label, victim_id).inc();
                obs::registry().gauge_seg(obs::POOL_RESIDENT_BYTES, &self.label, victim_id).set(0);
            }
        }
        if !self.label.is_empty() {
            obs::registry().gauge(obs::POOL_RESIDENT_BYTES, &self.label)
                .set(inner.used_bytes as i64);
        }
    }

    /// Drop a segment entry (e.g. after it was merged away).
    pub fn invalidate(&self, key: u64) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(&key) {
            inner.used_bytes -= e.bytes;
            let seg_id = e.segment.id;
            if let Some(s) = inner.seg_stats.get_mut(&seg_id) {
                s.resident_bytes = 0;
            }
            if !self.label.is_empty() {
                obs::registry().gauge_seg(obs::POOL_RESIDENT_BYTES, &self.label, seg_id).set(0);
                obs::registry().gauge(obs::POOL_RESIDENT_BYTES, &self.label)
                    .set(inner.used_bytes as i64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{InsertBatch, Schema};
    use milvus_index::{Metric, VectorSet};

    fn seg(id: u64, rows: usize) -> Arc<Segment> {
        let schema = Schema::single("v", 4, Metric::L2);
        let ids: Vec<i64> = (0..rows as i64).map(|i| i + id as i64 * 10_000).collect();
        let batch = InsertBatch::single(ids, VectorSet::from_flat(4, vec![0.0; rows * 4]));
        Arc::new(Segment::from_batch(id, &schema, &batch).unwrap())
    }

    #[test]
    fn hit_after_load() {
        let pool = BufferPool::new(1 << 20);
        let s = seg(1, 10);
        let got = pool.get_or_load(1, || Ok(Arc::clone(&s))).unwrap();
        assert!(Arc::ptr_eq(&got, &s));
        let again = pool.get_or_load(1, || panic!("should be cached")).unwrap();
        assert!(Arc::ptr_eq(&again, &s));
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn lru_eviction_order() {
        // Each 10-row segment is 10*(4*4+8) = 240 bytes; budget fits ~2.
        let pool = BufferPool::new(500);
        pool.insert(seg(1, 10));
        pool.insert(seg(2, 10));
        // Touch 1 so 2 becomes LRU.
        pool.get_or_load(1, || panic!("cached")).unwrap();
        pool.insert(seg(3, 10));
        assert_eq!(pool.len(), 2);
        // 2 must be gone; 1 and 3 remain.
        let mut reloaded = false;
        pool.get_or_load(2, || {
            reloaded = true;
            Ok(seg(2, 10))
        })
        .unwrap();
        assert!(reloaded, "segment 2 should have been evicted");
        assert!(pool.stats().evictions >= 1);
    }

    #[test]
    fn oversized_segment_still_served() {
        let pool = BufferPool::new(10); // tiny budget
        let s = seg(1, 100);
        let got = pool.get_or_load(1, || Ok(Arc::clone(&s))).unwrap();
        assert!(Arc::ptr_eq(&got, &s));
        assert_eq!(pool.len(), 1); // kept despite exceeding budget (single entry)
    }

    #[test]
    fn invalidate_removes() {
        let pool = BufferPool::new(1 << 20);
        pool.insert(seg(5, 10));
        assert_eq!(pool.len(), 1);
        pool.invalidate(5);
        assert!(pool.is_empty());
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_accounting() {
        let pool = BufferPool::new(1 << 20);
        pool.insert(seg(1, 10));
        let b1 = pool.used_bytes();
        pool.insert(seg(1, 20));
        assert!(pool.used_bytes() > b1);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn loader_error_propagates_and_not_cached() {
        let pool = BufferPool::new(1 << 20);
        let r = pool.get_or_load(9, || {
            Err(crate::error::StorageError::ObjectNotFound("9".into()))
        });
        assert!(r.is_err());
        assert!(pool.is_empty());
    }

    #[test]
    fn per_segment_stats_track_hits_misses_and_outcomes() {
        let pool = BufferPool::new(1 << 20);
        let s1 = seg(1, 10);
        assert_eq!(pool.last_outcome(1), obs::CacheOutcome::Untracked);
        let (_, hit) = pool.get_or_load_outcome(1, || Ok(Arc::clone(&s1))).unwrap();
        assert!(!hit);
        assert_eq!(pool.last_outcome(1), obs::CacheOutcome::Miss);
        let (_, hit) = pool.get_or_load_outcome(1, || panic!("cached")).unwrap();
        assert!(hit);
        assert_eq!(pool.last_outcome(1), obs::CacheOutcome::Hit);
        let st = pool.segment_stats(1);
        assert_eq!((st.hits, st.misses, st.evictions), (1, 1, 0));
        assert!(st.resident_bytes > 0);
        assert_eq!(pool.all_segment_stats().len(), 1);
    }

    #[test]
    fn eviction_is_attributed_to_the_victim_segment() {
        let pool = BufferPool::new(500);
        pool.insert(seg(1, 10));
        pool.insert(seg(2, 10));
        pool.get_or_load(1, || panic!("cached")).unwrap();
        pool.insert(seg(3, 10)); // evicts segment 2
        let st = pool.segment_stats(2);
        assert_eq!(st.evictions, 1);
        assert_eq!(st.resident_bytes, 0);
        assert!(pool.segment_stats(1).resident_bytes > 0);
    }

    #[test]
    fn labeled_pool_exports_global_series() {
        let label = "pool_unit_test";
        let pool = BufferPool::with_label(1 << 20, label);
        let s = seg(7, 10);
        pool.get_or_load(7, || Ok(Arc::clone(&s))).unwrap();
        pool.get_or_load(7, || panic!("cached")).unwrap();
        let snap = obs::registry().snapshot();
        assert_eq!(snap.counter(obs::POOL_HITS, label), 1);
        assert_eq!(snap.counter(obs::POOL_MISSES, label), 1);
        assert_eq!(snap.counter_segment(obs::POOL_HITS, label, 7), 1);
        assert_eq!(snap.counter_segment(obs::POOL_MISSES, label, 7), 1);
        assert!(snap.gauge_segment(obs::POOL_RESIDENT_BYTES, label, 7) > 0);
        assert!(snap.gauge(obs::POOL_RESIDENT_BYTES, label) > 0);
    }
}

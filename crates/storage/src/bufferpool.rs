//! Segment-granular LRU bufferpool (§2.4).
//!
//! "Milvus assumes that most (if not all) data and index are resident in
//! memory for high performance. If not, it relies on an LRU-based buffer
//! manager. In particular, the caching unit is a segment." Readers call
//! [`BufferPool::get_or_load`]; misses invoke the supplied loader (typically
//! an object-store fetch + decode) and may evict the least recently used
//! segments to stay within the byte budget.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;
use crate::segment::Segment;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served from cache.
    pub hits: u64,
    /// Requests that invoked the loader.
    pub misses: u64,
    /// Segments evicted to make room.
    pub evictions: u64,
}

struct Entry {
    segment: Arc<Segment>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: HashMap<u64, Entry>,
    clock: u64,
    used_bytes: usize,
    stats: PoolStats,
}

/// LRU cache of segments keyed by segment id.
pub struct BufferPool {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// A pool holding at most `capacity_bytes` of segment payloads.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                clock: 0,
                used_bytes: 0,
                stats: PoolStats::default(),
            }),
        }
    }

    /// Byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes
    }

    /// Cached segment count.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters so far.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Fetch `id` from cache, else run `load` and cache the result.
    pub fn get_or_load(
        &self,
        id: u64,
        load: impl FnOnce() -> Result<Arc<Segment>>,
    ) -> Result<Arc<Segment>> {
        {
            let mut inner = self.inner.lock();
            inner.clock += 1;
            let clock = inner.clock;
            if let Some(e) = inner.entries.get_mut(&id) {
                e.last_used = clock;
                let seg = Arc::clone(&e.segment);
                inner.stats.hits += 1;
                return Ok(seg);
            }
            inner.stats.misses += 1;
        }
        // Load outside the lock (a real fetch can be slow).
        let segment = load()?;
        self.insert_with_key(id, Arc::clone(&segment));
        Ok(segment)
    }

    /// Insert (or refresh) a segment under its own id.
    pub fn insert(&self, segment: Arc<Segment>) {
        self.insert_with_key(segment.id, segment);
    }

    /// Insert (or refresh) a segment under an explicit cache key (callers
    /// that cache multiple shards/versions compose their own keys), evicting
    /// LRU entries if over budget.
    pub fn insert_with_key(&self, key: u64, segment: Arc<Segment>) {
        let bytes = segment.memory_bytes();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.remove(&key) {
            inner.used_bytes -= old.bytes;
        }
        inner.entries.insert(key, Entry { segment, bytes, last_used: clock });
        inner.used_bytes += bytes;
        // Evict LRU until within budget (never evict the entry just added if
        // it alone exceeds capacity — it is in use by the caller).
        while inner.used_bytes > self.capacity_bytes && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&k, _)| k)
                .expect("non-empty");
            let e = inner.entries.remove(&victim).expect("present");
            inner.used_bytes -= e.bytes;
            inner.stats.evictions += 1;
        }
    }

    /// Drop a segment (e.g. after it was merged away).
    pub fn invalidate(&self, id: u64) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(&id) {
            inner.used_bytes -= e.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{InsertBatch, Schema};
    use milvus_index::{Metric, VectorSet};

    fn seg(id: u64, rows: usize) -> Arc<Segment> {
        let schema = Schema::single("v", 4, Metric::L2);
        let ids: Vec<i64> = (0..rows as i64).map(|i| i + id as i64 * 10_000).collect();
        let batch = InsertBatch::single(ids, VectorSet::from_flat(4, vec![0.0; rows * 4]));
        Arc::new(Segment::from_batch(id, &schema, &batch).unwrap())
    }

    #[test]
    fn hit_after_load() {
        let pool = BufferPool::new(1 << 20);
        let s = seg(1, 10);
        let got = pool.get_or_load(1, || Ok(Arc::clone(&s))).unwrap();
        assert!(Arc::ptr_eq(&got, &s));
        let again = pool.get_or_load(1, || panic!("should be cached")).unwrap();
        assert!(Arc::ptr_eq(&again, &s));
        assert_eq!(pool.stats(), PoolStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn lru_eviction_order() {
        // Each 10-row segment is 10*(4*4+8) = 240 bytes; budget fits ~2.
        let pool = BufferPool::new(500);
        pool.insert(seg(1, 10));
        pool.insert(seg(2, 10));
        // Touch 1 so 2 becomes LRU.
        pool.get_or_load(1, || panic!("cached")).unwrap();
        pool.insert(seg(3, 10));
        assert_eq!(pool.len(), 2);
        // 2 must be gone; 1 and 3 remain.
        let mut reloaded = false;
        pool.get_or_load(2, || {
            reloaded = true;
            Ok(seg(2, 10))
        })
        .unwrap();
        assert!(reloaded, "segment 2 should have been evicted");
        assert!(pool.stats().evictions >= 1);
    }

    #[test]
    fn oversized_segment_still_served() {
        let pool = BufferPool::new(10); // tiny budget
        let s = seg(1, 100);
        let got = pool.get_or_load(1, || Ok(Arc::clone(&s))).unwrap();
        assert!(Arc::ptr_eq(&got, &s));
        assert_eq!(pool.len(), 1); // kept despite exceeding budget (single entry)
    }

    #[test]
    fn invalidate_removes() {
        let pool = BufferPool::new(1 << 20);
        pool.insert(seg(5, 10));
        assert_eq!(pool.len(), 1);
        pool.invalidate(5);
        assert!(pool.is_empty());
        assert_eq!(pool.used_bytes(), 0);
    }

    #[test]
    fn reinsert_replaces_accounting() {
        let pool = BufferPool::new(1 << 20);
        pool.insert(seg(1, 10));
        let b1 = pool.used_bytes();
        pool.insert(seg(1, 20));
        assert!(pool.used_bytes() > b1);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn loader_error_propagates_and_not_cached() {
        let pool = BufferPool::new(1 << 20);
        let r = pool.get_or_load(9, || {
            Err(crate::error::StorageError::ObjectNotFound("9".into()))
        });
        assert!(r.is_err());
        assert!(pool.is_empty());
    }
}

//! Snapshot isolation (§5.2).
//!
//! "All the latest segments at any time form a snapshot. Each segment can be
//! referenced by one or more snapshots... There is a background thread to
//! garbage collect the obsolete segments if they are not referenced."
//!
//! A [`Snapshot`] is an immutable `Arc`'d list of segment versions. Queries
//! pin the current snapshot at start; publishing a new snapshot never touches
//! pinned ones, so reads and writes do not interfere. Garbage collection is
//! by reference count: dropping the last `Arc` to a snapshot releases its
//! segment references, and a segment payload is freed when its last version
//! goes. [`SnapshotManager::collect_garbage`] prunes the bookkeeping list and
//! reports how many historical snapshots are still pinned.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};

use crate::segment::Segment;

/// An immutable view of the collection: a versioned set of segments.
#[derive(Debug)]
pub struct Snapshot {
    /// Monotonic snapshot version.
    pub version: u64,
    /// The segment versions visible to this snapshot.
    pub segments: Vec<Arc<Segment>>,
}

impl Snapshot {
    /// Total live rows across segments.
    pub fn live_rows(&self) -> usize {
        self.segments.iter().map(|s| s.live_rows()).sum()
    }

    /// Find the visible segment holding `id` (not tombstoned).
    pub fn locate(&self, id: i64) -> Option<&Arc<Segment>> {
        self.segments.iter().find(|s| s.contains_id(id) && !s.is_deleted(id))
    }
}

/// Publishes snapshots and tracks which historical ones are still pinned.
pub struct SnapshotManager {
    current: RwLock<Arc<Snapshot>>,
    history: Mutex<Vec<Weak<Snapshot>>>,
    next_version: AtomicU64,
}

impl Default for SnapshotManager {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotManager {
    /// Start with an empty snapshot (version 0, no segments).
    pub fn new() -> Self {
        let initial = Arc::new(Snapshot { version: 0, segments: Vec::new() });
        Self {
            current: RwLock::new(Arc::clone(&initial)),
            history: Mutex::new(vec![Arc::downgrade(&initial)]),
            next_version: AtomicU64::new(1),
        }
    }

    /// Pin the snapshot current right now — "every query only works on the
    /// snapshot when the query starts".
    pub fn current(&self) -> Arc<Snapshot> {
        Arc::clone(&self.current.read())
    }

    /// Publish a new segment set as the next snapshot version.
    pub fn publish(&self, segments: Vec<Arc<Segment>>) -> Arc<Snapshot> {
        let version = self.next_version.fetch_add(1, Ordering::SeqCst);
        let snap = Arc::new(Snapshot { version, segments });
        *self.current.write() = Arc::clone(&snap);
        self.history.lock().push(Arc::downgrade(&snap));
        snap
    }

    /// Drop bookkeeping entries for snapshots nobody references anymore;
    /// returns `(collected, still_pinned)` counts. (The "background thread to
    /// garbage collect" — actual memory is reclaimed by `Arc` itself.)
    pub fn collect_garbage(&self) -> (usize, usize) {
        let mut history = self.history.lock();
        let before = history.len();
        history.retain(|w| w.strong_count() > 0);
        (before - history.len(), history.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{InsertBatch, Schema};
    use milvus_index::{Metric, VectorSet};

    fn seg(id: u64, ids: Vec<i64>) -> Arc<Segment> {
        let schema = Schema::single("v", 1, Metric::L2);
        let n = ids.len();
        let batch = InsertBatch::single(ids, VectorSet::from_flat(1, vec![0.0; n]));
        Arc::new(Segment::from_batch(id, &schema, &batch).unwrap())
    }

    #[test]
    fn queries_pin_their_snapshot() {
        let mgr = SnapshotManager::new();
        mgr.publish(vec![seg(1, vec![1, 2])]);
        let pinned = mgr.current();
        assert_eq!(pinned.version, 1);
        assert_eq!(pinned.live_rows(), 2);

        // A later publish does not disturb the pinned view.
        mgr.publish(vec![seg(1, vec![1, 2]), seg(2, vec![3])]);
        assert_eq!(pinned.live_rows(), 2);
        assert_eq!(mgr.current().version, 2);
        assert_eq!(mgr.current().live_rows(), 3);
    }

    #[test]
    fn segment_shared_across_snapshots() {
        // The paper's example: snapshot 1 → {seg1}; snapshot 2 → {seg1, seg2};
        // seg1 is referenced by both.
        let mgr = SnapshotManager::new();
        let s1 = seg(1, vec![1]);
        mgr.publish(vec![Arc::clone(&s1)]);
        let snap1 = mgr.current();
        mgr.publish(vec![Arc::clone(&s1), seg(2, vec![2])]);
        let snap2 = mgr.current();
        assert!(Arc::ptr_eq(&snap1.segments[0], &snap2.segments[0]));
        // snapshot refs + our local = 3 strong refs to seg1.
        assert_eq!(Arc::strong_count(&s1), 3);
    }

    #[test]
    fn gc_counts_pinned_snapshots() {
        let mgr = SnapshotManager::new();
        mgr.publish(vec![seg(1, vec![1])]);
        let pinned = mgr.current();
        mgr.publish(vec![seg(2, vec![2])]);
        // v0 (initial) is unpinned, v1 pinned by `pinned`, v2 is current.
        let (collected, alive) = mgr.collect_garbage();
        assert_eq!(collected, 1);
        assert_eq!(alive, 2);
        drop(pinned);
        let (collected, alive) = mgr.collect_garbage();
        assert_eq!(collected, 1);
        assert_eq!(alive, 1);
    }

    #[test]
    fn locate_respects_tombstones() {
        let mgr = SnapshotManager::new();
        let base = seg(1, vec![1, 2]);
        let v2 = Arc::new(base.with_deletes([2]));
        mgr.publish(vec![v2]);
        let snap = mgr.current();
        assert!(snap.locate(1).is_some());
        assert!(snap.locate(2).is_none());
        assert!(snap.locate(99).is_none());
    }
}

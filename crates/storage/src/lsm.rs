//! The LSM engine (§2.3): memtable → flush → immutable segments → tiered
//! merge, with WAL durability and snapshot publication.
//!
//! This type is synchronous; the asynchronous façade of §5.1 (ack after WAL
//! append, background apply thread, `flush()` barrier) lives in
//! `milvus-core::ingest` on top of it.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use milvus_obs as obs;
use parking_lot::Mutex;

use crate::codec;
use crate::entity::{InsertBatch, Schema};
use crate::error::Result;
use crate::memtable::MemTable;
use crate::merge::{MergePolicy, SegmentMeta};
use crate::object_store::ObjectStore;
use crate::segment::Segment;
use crate::snapshot::{Snapshot, SnapshotManager};
use crate::wal::{LogRecord, Wal};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Flush the memtable once it buffers this many bytes (§2.3's size
    /// threshold; the paper also flushes once a second — the timer lives in
    /// the core crate's background thread).
    pub flush_threshold_bytes: usize,
    /// Tiered merge policy.
    pub merge_policy: MergePolicy,
    /// Run the merge planner automatically after each flush.
    pub auto_merge: bool,
    /// Persist segments to the object store on flush/merge.
    pub persist_segments: bool,
    /// Label stamped on this engine's metric series — the collection name
    /// when the engine backs a collection.
    pub metrics_label: String,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            flush_threshold_bytes: 64 << 20,
            merge_policy: MergePolicy::default(),
            auto_merge: true,
            persist_segments: true,
            metrics_label: "default".to_string(),
        }
    }
}

/// Object-store key for a segment version.
fn segment_key(id: u64, version: u64) -> String {
    format!("segments/{id:012}.v{version:06}.seg")
}

/// The LSM storage engine for one collection.
pub struct LsmEngine {
    schema: Schema,
    config: LsmConfig,
    memtable: Mutex<MemTable>,
    snapshots: SnapshotManager,
    wal: Option<Mutex<Wal>>,
    store: Arc<dyn ObjectStore>,
    next_segment_id: AtomicU64,
    /// Highest LSN included in flushed segments (WAL checkpointing).
    flushed_lsn: AtomicU64,
}

impl LsmEngine {
    /// Create a fresh engine. Pass a WAL path for durability; `None` runs
    /// log-less (tests, ephemeral readers).
    pub fn new(
        schema: Schema,
        config: LsmConfig,
        store: Arc<dyn ObjectStore>,
        wal_path: Option<&std::path::Path>,
    ) -> Result<Self> {
        schema.validate()?;
        let wal = match wal_path {
            Some(p) => Some(Mutex::new(Wal::open(p)?.with_label(&config.metrics_label))),
            None => None,
        };
        Ok(Self {
            schema: schema.clone(),
            config,
            memtable: Mutex::new(MemTable::new(schema)),
            snapshots: SnapshotManager::new(),
            wal,
            store,
            next_segment_id: AtomicU64::new(1),
            flushed_lsn: AtomicU64::new(0),
        })
    }

    /// Open an engine over already-persisted segments in `store` (no WAL
    /// replay — used by standby writers whose log lives in shared storage,
    /// §5.3).
    pub fn open_from_store(
        schema: Schema,
        config: LsmConfig,
        store: Arc<dyn ObjectStore>,
        wal_path: Option<&std::path::Path>,
    ) -> Result<Self> {
        let engine = Self::new(schema, config, Arc::clone(&store), wal_path)?;

        // Load the newest version of each persisted segment.
        let keys = store.list("segments/")?;
        let mut latest: std::collections::BTreeMap<u64, (u64, String)> = Default::default();
        for key in keys {
            if let Some((id, version)) = parse_segment_key(&key) {
                let entry = latest.entry(id).or_insert((version, key.clone()));
                if version > entry.0 {
                    *entry = (version, key);
                }
            }
        }
        let mut segments = Vec::new();
        let mut max_id = 0;
        for (id, (version, key)) in latest {
            let blob = engine.store_get(&key)?;
            segments.push(Arc::new(codec::decode_segment(id, version, &blob)?));
            max_id = max_id.max(id);
        }
        engine.next_segment_id.store(max_id + 1, Ordering::SeqCst);
        if !segments.is_empty() {
            engine.snapshots.publish(segments);
        }
        engine.record_segment_gauge();
        Ok(engine)
    }

    /// Recover an engine from persisted segments + WAL tail (crash restart,
    /// §5.3: "If the writer instance crashes, Milvus relies on WAL").
    pub fn recover(
        schema: Schema,
        config: LsmConfig,
        store: Arc<dyn ObjectStore>,
        wal_path: &std::path::Path,
    ) -> Result<Self> {
        let engine = Self::open_from_store(schema, config, store, Some(wal_path))?;

        // Replay the un-checkpointed WAL tail into the memtable.
        for rec in Wal::replay(wal_path)? {
            match rec {
                LogRecord::Insert { batch, .. } => {
                    engine.memtable.lock().insert(&batch)?;
                }
                LogRecord::Delete { ids, .. } => {
                    engine.memtable.lock().delete(&ids);
                }
                LogRecord::FlushCheckpoint { .. } => {}
            }
        }
        Ok(engine)
    }

    /// The collection schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Engine configuration.
    pub fn config(&self) -> &LsmConfig {
        &self.config
    }

    /// The shared object store.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// Pin the current snapshot (§5.2).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshots.current()
    }

    /// `store.put` with per-collection throughput and error accounting.
    /// Injected faults surface here as [`obs::OBJECT_ERRORS`] increments.
    fn store_put(&self, key: &str, data: bytes::Bytes) -> Result<()> {
        let label = &self.config.metrics_label;
        let bytes = data.len() as u64;
        match self.store.put(key, data) {
            Ok(()) => {
                obs::counter(obs::OBJECT_PUTS, label).inc();
                obs::counter(obs::OBJECT_PUT_BYTES, label).add(bytes);
                Ok(())
            }
            Err(e) => {
                obs::counter(obs::OBJECT_ERRORS, label).inc();
                Err(e)
            }
        }
    }

    /// `store.get` with per-collection throughput and error accounting.
    /// A missing object is a lookup result, not a store fault.
    fn store_get(&self, key: &str) -> Result<bytes::Bytes> {
        let label = &self.config.metrics_label;
        match self.store.get(key) {
            Ok(data) => {
                obs::counter(obs::OBJECT_GETS, label).inc();
                obs::counter(obs::OBJECT_GET_BYTES, label).add(data.len() as u64);
                Ok(data)
            }
            Err(e) => {
                if !matches!(e, crate::error::StorageError::ObjectNotFound(_)) {
                    obs::counter(obs::OBJECT_ERRORS, label).inc();
                }
                Err(e)
            }
        }
    }

    /// Publish the current segment count to the [`obs::SEGMENTS`] gauge.
    fn record_segment_gauge(&self) {
        let count = self.snapshots.current().segments.len() as i64;
        obs::gauge(obs::SEGMENTS, &self.config.metrics_label).set(count);
    }

    /// Entities buffered but not yet flushed.
    pub fn pending_rows(&self) -> usize {
        self.memtable.lock().len()
    }

    /// Whether `id` is currently live: buffered in the memtable, or present
    /// in a flushed segment and not tombstoned (by a segment tombstone or a
    /// pending memtable delete). Used by log-replay paths to skip records
    /// whose effects are already materialized.
    pub fn contains_live(&self, id: i64) -> bool {
        let mt = self.memtable.lock();
        if mt.contains(id) {
            return true;
        }
        let snap = self.snapshots.current();
        snap.locate(id).is_some() && !mt.pending_deletes().contains(&id)
    }

    /// Insert a batch: WAL append (when configured) → memtable → maybe flush.
    pub fn insert(&self, batch: InsertBatch) -> Result<()> {
        batch.validate(&self.schema)?;
        let snap = self.snapshots.current();
        let should_flush = {
            let mut mt = self.memtable.lock();
            // Reject ids already live in flushed segments (primary-key
            // property) — unless an unflushed delete already tombstones them
            // (update = delete + insert, §2.3).
            for &id in &batch.ids {
                if snap.locate(id).is_some() && !mt.pending_deletes().contains(&id) {
                    return Err(crate::error::StorageError::DuplicateId(id));
                }
            }
            if let Some(wal) = &self.wal {
                wal.lock().append_insert(batch.clone())?;
            }
            mt.insert(&batch)?;
            mt.memory_bytes() >= self.config.flush_threshold_bytes
        };
        if should_flush {
            self.flush()?;
        }
        Ok(())
    }

    /// §5.1 split path, step 1: materialize an insert to the WAL **only**
    /// (the foreground ack point). Validates the batch and the primary-key
    /// property so the caller learns about bad input synchronously.
    pub fn log_insert(&self, batch: &InsertBatch) -> Result<()> {
        self.log_insert_with_overlay(batch, &HashSet::new())
    }

    /// [`LsmEngine::log_insert`] with a set of ids whose deletes have been
    /// logged but not yet applied by the background thread — those ids are
    /// legal to re-insert (update = delete + insert racing the async apply).
    pub fn log_insert_with_overlay(
        &self,
        batch: &InsertBatch,
        unapplied_deletes: &HashSet<i64>,
    ) -> Result<()> {
        batch.validate(&self.schema)?;
        let snap = self.snapshots.current();
        {
            let mt = self.memtable.lock();
            for &id in &batch.ids {
                if mt.contains(id) && !unapplied_deletes.contains(&id) {
                    return Err(crate::error::StorageError::DuplicateId(id));
                }
                if snap.locate(id).is_some()
                    && !mt.pending_deletes().contains(&id)
                    && !unapplied_deletes.contains(&id)
                {
                    return Err(crate::error::StorageError::DuplicateId(id));
                }
            }
        }
        if let Some(wal) = &self.wal {
            wal.lock().append_insert(batch.clone())?;
        }
        Ok(())
    }

    /// §5.1 split path, step 2: apply a previously-logged insert to the
    /// memtable (the background thread's work). No WAL append.
    pub fn apply_insert(&self, batch: &InsertBatch) -> Result<bool> {
        let mut mt = self.memtable.lock();
        mt.insert(batch)?;
        Ok(mt.memory_bytes() >= self.config.flush_threshold_bytes)
    }

    /// §5.1 split path: materialize a delete to the WAL only.
    pub fn log_delete(&self, ids: &[i64]) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.lock().append_delete(ids.to_vec())?;
        }
        Ok(())
    }

    /// §5.1 split path: apply a previously-logged delete to the memtable.
    pub fn apply_delete(&self, ids: &[i64]) {
        obs::counter(obs::DELETE_ROWS, &self.config.metrics_label).add(ids.len() as u64);
        self.memtable.lock().delete(ids);
    }

    /// Delete entities by id (out-of-place, §2.3).
    pub fn delete(&self, ids: &[i64]) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.lock().append_delete(ids.to_vec())?;
        }
        obs::counter(obs::DELETE_ROWS, &self.config.metrics_label).add(ids.len() as u64);
        self.memtable.lock().delete(ids);
        Ok(())
    }

    /// Force the memtable to disk as a new segment, apply pending deletes as
    /// tombstone versions, publish a new snapshot and checkpoint the WAL.
    pub fn flush(&self) -> Result<Arc<Snapshot>> {
        let (batch, deletes) = self.memtable.lock().drain();
        let did_work = !batch.is_empty() || !deletes.is_empty();
        let span = did_work
            .then(|| obs::span(obs::MEMTABLE_FLUSH_LATENCY, &self.config.metrics_label));
        let snap = self.snapshots.current();
        let mut segments: Vec<Arc<Segment>> = snap.segments.clone();

        // Tombstone flushed rows.
        if !deletes.is_empty() {
            let dels: HashSet<i64> = deletes.iter().copied().collect();
            for slot in segments.iter_mut() {
                if slot.data().row_ids.iter().any(|id| dels.contains(id)) {
                    let next = Arc::new(slot.with_deletes(dels.iter().copied()));
                    if self.config.persist_segments {
                        self.store_put(
                            &segment_key(next.id, next.version),
                            codec::encode_segment(&next),
                        )?;
                        self.store.delete(&segment_key(slot.id, slot.version))?;
                    }
                    *slot = next;
                }
            }
        }

        // Flush inserts as a fresh segment.
        if !batch.is_empty() {
            let id = self.next_segment_id.fetch_add(1, Ordering::SeqCst);
            let seg = Arc::new(Segment::from_batch(id, &self.schema, &batch)?);
            if self.config.persist_segments {
                self.store_put(&segment_key(seg.id, seg.version), codec::encode_segment(&seg))?;
            }
            segments.push(seg);
        }

        let _published = self.snapshots.publish(segments);
        self.record_segment_gauge();
        if did_work {
            obs::counter(obs::MEMTABLE_FLUSHES, &self.config.metrics_label).inc();
        }
        drop(span);

        if let Some(wal) = &self.wal {
            let mut wal = wal.lock();
            let lsn = wal.next_lsn().saturating_sub(1);
            wal.append_checkpoint(lsn)?;
            self.flushed_lsn.store(lsn, Ordering::SeqCst);
        }

        if self.config.auto_merge {
            self.maybe_merge()?;
        }
        Ok(self.snapshots.current())
    }

    /// Run the tiered merge planner once; returns the number of merges done.
    pub fn maybe_merge(&self) -> Result<usize> {
        let snap = self.snapshots.current();
        let metas: Vec<SegmentMeta> = snap
            .segments
            .iter()
            .map(|s| SegmentMeta { id: s.id, bytes: s.data().memory_bytes() })
            .collect();
        let plans = self.config.merge_policy.plan(&metas);
        if plans.is_empty() {
            return Ok(0);
        }
        let _span = obs::span(obs::COMPACTION_LATENCY, &self.config.metrics_label);
        obs::counter(obs::COMPACTIONS, &self.config.metrics_label).add(plans.len() as u64);
        let mut segments = snap.segments.clone();
        for group in &plans {
            let group_set: HashSet<u64> = group.iter().copied().collect();
            let inputs: Vec<&Segment> = segments
                .iter()
                .filter(|s| group_set.contains(&s.id))
                .map(Arc::as_ref)
                .collect();
            if inputs.len() < 2 {
                continue;
            }
            let new_id = self.next_segment_id.fetch_add(1, Ordering::SeqCst);
            let merged = Arc::new(Segment::merge(new_id, &self.schema, &inputs));
            if self.config.persist_segments {
                self.store_put(&segment_key(merged.id, merged.version), codec::encode_segment(&merged))?;
                for s in &segments {
                    if group_set.contains(&s.id) {
                        self.store.delete(&segment_key(s.id, s.version))?;
                    }
                }
            }
            segments.retain(|s| !group_set.contains(&s.id));
            segments.push(merged);
        }
        self.snapshots.publish(segments);
        self.record_segment_gauge();
        Ok(plans.len())
    }

    /// Replace one segment version in the current snapshot (index builds
    /// create new versions, §5.2). No-op if the segment vanished (merged).
    pub fn replace_segment(&self, updated: Arc<Segment>) -> Result<bool> {
        let snap = self.snapshots.current();
        let mut segments = snap.segments.clone();
        let Some(slot) = segments.iter_mut().find(|s| s.id == updated.id) else {
            return Ok(false);
        };
        if self.config.persist_segments {
            self.store_put(&segment_key(updated.id, updated.version), codec::encode_segment(&updated))?;
            self.store.delete(&segment_key(slot.id, slot.version))?;
        }
        *slot = updated;
        self.snapshots.publish(segments);
        self.record_segment_gauge();
        Ok(true)
    }

    /// Snapshot-manager GC tick (the paper's background GC thread calls this).
    pub fn collect_garbage(&self) -> (usize, usize) {
        self.snapshots.collect_garbage()
    }
}

fn parse_segment_key(key: &str) -> Option<(u64, u64)> {
    // segments/000000000042.v000003.seg
    let stem = key.strip_prefix("segments/")?.strip_suffix(".seg")?;
    let (id_part, v_part) = stem.split_once(".v")?;
    Some((id_part.parse().ok()?, v_part.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object_store::MemoryStore;
    use milvus_index::{Metric, VectorSet};

    fn schema() -> Schema {
        Schema::single("v", 2, Metric::L2).with_attribute("price")
    }

    fn batch(ids: std::ops::Range<i64>) -> InsertBatch {
        let id_vec: Vec<i64> = ids.collect();
        let n = id_vec.len();
        let mut vs = VectorSet::new(2);
        for &id in &id_vec {
            vs.push(&[id as f32, 0.0]);
        }
        InsertBatch {
            ids: id_vec,
            vectors: vec![vs],
            attributes: vec![(0..n).map(|i| i as f64).collect()],
        }
    }

    fn engine(flush_bytes: usize) -> LsmEngine {
        let cfg = LsmConfig {
            flush_threshold_bytes: flush_bytes,
            auto_merge: false,
            ..Default::default()
        };
        LsmEngine::new(schema(), cfg, Arc::new(MemoryStore::new()), None).unwrap()
    }

    #[test]
    fn insert_below_threshold_stays_in_memtable() {
        let e = engine(1 << 20);
        e.insert(batch(0..10)).unwrap();
        assert_eq!(e.pending_rows(), 10);
        assert_eq!(e.snapshot().live_rows(), 0); // async visibility (§5.1)
        e.flush().unwrap();
        assert_eq!(e.pending_rows(), 0);
        assert_eq!(e.snapshot().live_rows(), 10);
    }

    #[test]
    fn auto_flush_on_threshold() {
        let e = engine(64); // tiny threshold
        e.insert(batch(0..10)).unwrap();
        assert_eq!(e.snapshot().live_rows(), 10);
    }

    #[test]
    fn delete_tombstones_flushed_rows() {
        let e = engine(1 << 20);
        e.insert(batch(0..5)).unwrap();
        e.flush().unwrap();
        e.delete(&[2, 3]).unwrap();
        e.flush().unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.live_rows(), 3);
        assert!(snap.locate(2).is_none());
        assert!(snap.locate(4).is_some());
    }

    #[test]
    fn update_is_delete_plus_insert() {
        let e = engine(1 << 20);
        e.insert(batch(0..3)).unwrap();
        e.flush().unwrap();
        e.delete(&[1]).unwrap();
        // Re-insert id 1 with a new vector.
        let mut vs = VectorSet::new(2);
        vs.push(&[99.0, 0.0]);
        e.insert(InsertBatch { ids: vec![1], vectors: vec![vs], attributes: vec![vec![5.0]] })
            .unwrap();
        e.flush().unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.live_rows(), 3);
        let seg = snap.locate(1).unwrap();
        let row = seg.data().row_ids.binary_search(&1).unwrap();
        assert_eq!(seg.data().vectors[0].get(row), &[99.0, 0.0]);
    }

    #[test]
    fn duplicate_id_across_flush_rejected() {
        let e = engine(1 << 20);
        e.insert(batch(0..3)).unwrap();
        e.flush().unwrap();
        assert!(matches!(
            e.insert(batch(2..4)),
            Err(crate::error::StorageError::DuplicateId(2))
        ));
    }

    #[test]
    fn snapshot_isolation_across_flush() {
        let e = engine(1 << 20);
        e.insert(batch(0..4)).unwrap();
        e.flush().unwrap();
        let pinned = e.snapshot();
        e.delete(&[0, 1, 2, 3]).unwrap();
        e.flush().unwrap();
        // The pinned snapshot still sees everything.
        assert_eq!(pinned.live_rows(), 4);
        assert_eq!(e.snapshot().live_rows(), 0);
    }

    #[test]
    fn merge_compacts_small_segments() {
        let cfg = LsmConfig {
            flush_threshold_bytes: 1 << 20,
            auto_merge: false,
            merge_policy: MergePolicy { min_segments_per_merge: 2, ..Default::default() },
            ..Default::default()
        };
        let e = LsmEngine::new(schema(), cfg, Arc::new(MemoryStore::new()), None).unwrap();
        for i in 0..4 {
            e.insert(batch(i * 10..i * 10 + 10)).unwrap();
            e.flush().unwrap();
        }
        assert_eq!(e.snapshot().segments.len(), 4);
        e.delete(&[5]).unwrap();
        e.flush().unwrap();
        let merges = e.maybe_merge().unwrap();
        assert!(merges >= 1);
        let snap = e.snapshot();
        assert!(snap.segments.len() < 4);
        assert_eq!(snap.live_rows(), 39);
        // Tombstoned row physically gone after merge.
        for seg in &snap.segments {
            assert!(seg.deleted().is_empty());
        }
    }

    #[test]
    fn wal_recovery_restores_unflushed_rows() {
        let dir = std::env::temp_dir().join(format!("milvus-lsm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("wal.log");
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());

        {
            let e = LsmEngine::new(
                schema(),
                LsmConfig { flush_threshold_bytes: 1 << 20, auto_merge: false, ..Default::default() },
                Arc::clone(&store),
                Some(&wal_path),
            )
            .unwrap();
            e.insert(batch(0..5)).unwrap();
            e.flush().unwrap();
            e.insert(batch(5..8)).unwrap();
            e.delete(&[0]).unwrap();
            // Crash here: rows 5..8 and delete(0) only in the WAL.
        }

        let recovered = LsmEngine::recover(
            schema(),
            LsmConfig { flush_threshold_bytes: 1 << 20, auto_merge: false, ..Default::default() },
            store,
            &wal_path,
        )
        .unwrap();
        assert_eq!(recovered.snapshot().live_rows(), 5); // flushed part
        assert_eq!(recovered.pending_rows(), 3); // replayed tail
        recovered.flush().unwrap();
        let snap = recovered.snapshot();
        assert_eq!(snap.live_rows(), 7); // 5 - delete(0) + 3
        assert!(snap.locate(0).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_key_roundtrip() {
        let key = segment_key(42, 3);
        assert_eq!(parse_segment_key(&key), Some((42, 3)));
        assert_eq!(parse_segment_key("segments/garbage"), None);
    }

    #[test]
    fn persisted_segments_survive_reopen_without_wal_tail() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let dir = std::env::temp_dir().join(format!("milvus-lsm2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let wal_path = dir.join("wal.log");
        {
            let e = LsmEngine::new(
                schema(),
                LsmConfig { auto_merge: false, ..Default::default() },
                Arc::clone(&store),
                Some(&wal_path),
            )
            .unwrap();
            e.insert(batch(0..20)).unwrap();
            e.flush().unwrap();
        }
        let recovered = LsmEngine::recover(
            schema(),
            LsmConfig { auto_merge: false, ..Default::default() },
            store,
            &wal_path,
        )
        .unwrap();
        assert_eq!(recovered.snapshot().live_rows(), 20);
        assert_eq!(recovered.pending_rows(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

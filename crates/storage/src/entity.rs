//! Entities and schemas (§2.1, §2.4).
//!
//! "Each entity in Milvus is described as one or more vectors and optionally
//! some numerical attributes." A [`Schema`] declares the vector fields (name,
//! dimension, metric) and the numeric attribute fields; an [`InsertBatch`] is
//! the column-oriented unit of ingestion.

use milvus_index::{Metric, VectorSet};

use crate::error::{Result, StorageError};

/// One vector field of an entity (multi-vector entities have several, §4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorField {
    /// Field name, e.g. `"image_embedding"`.
    pub name: String,
    /// Dimensionality.
    pub dim: usize,
    /// Similarity function used when searching this field.
    pub metric: Metric,
}

serde::impl_serde_struct!(VectorField { name, dim, metric });

/// Collection schema: one or more vector fields plus numeric attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Vector fields, at least one.
    pub vector_fields: Vec<VectorField>,
    /// Names of numeric attribute columns (the paper supports numerical
    /// attributes only; categorical ones are future work, §2.1).
    pub attribute_fields: Vec<String>,
}

impl Schema {
    /// Single-vector schema with no attributes — the common case.
    pub fn single(name: impl Into<String>, dim: usize, metric: Metric) -> Self {
        Self {
            vector_fields: vec![VectorField { name: name.into(), dim, metric }],
            attribute_fields: Vec::new(),
        }
    }

    /// Builder-style attribute addition.
    pub fn with_attribute(mut self, name: impl Into<String>) -> Self {
        self.attribute_fields.push(name.into());
        self
    }

    /// Builder-style extra vector field.
    pub fn with_vector_field(mut self, name: impl Into<String>, dim: usize, metric: Metric) -> Self {
        self.vector_fields.push(VectorField { name: name.into(), dim, metric });
        self
    }

    /// Position of a vector field by name.
    pub fn vector_field_index(&self, name: &str) -> Option<usize> {
        self.vector_fields.iter().position(|f| f.name == name)
    }

    /// Position of an attribute field by name.
    pub fn attribute_index(&self, name: &str) -> Option<usize> {
        self.attribute_fields.iter().position(|f| f == name)
    }

    /// Validate basic well-formedness.
    pub fn validate(&self) -> Result<()> {
        if self.vector_fields.is_empty() {
            return Err(StorageError::SchemaViolation(
                "schema needs at least one vector field".into(),
            ));
        }
        for f in &self.vector_fields {
            if f.dim == 0 {
                return Err(StorageError::SchemaViolation(format!(
                    "vector field {} has dim 0",
                    f.name
                )));
            }
        }
        let mut names: Vec<&str> = self
            .vector_fields
            .iter()
            .map(|f| f.name.as_str())
            .chain(self.attribute_fields.iter().map(String::as_str))
            .collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err(StorageError::SchemaViolation("duplicate field name".into()));
        }
        Ok(())
    }
}

serde::impl_serde_struct!(Schema { vector_fields, attribute_fields });

/// A column-oriented batch of entities to insert.
#[derive(Debug, Clone)]
pub struct InsertBatch {
    /// Entity primary keys.
    pub ids: Vec<i64>,
    /// One [`VectorSet`] per schema vector field, each with `ids.len()` rows.
    pub vectors: Vec<VectorSet>,
    /// One column per schema attribute field, each with `ids.len()` values.
    pub attributes: Vec<Vec<f64>>,
}

serde::impl_serde_struct!(InsertBatch { ids, vectors, attributes });

impl InsertBatch {
    /// Convenience constructor for single-vector schemas without attributes.
    pub fn single(ids: Vec<i64>, vectors: VectorSet) -> Self {
        Self { ids, vectors: vec![vectors], attributes: Vec::new() }
    }

    /// Number of entities in the batch.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the batch holds no entities.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Approximate payload size in bytes (drives the flush threshold).
    pub fn memory_bytes(&self) -> usize {
        self.ids.len() * 8
            + self.vectors.iter().map(VectorSet::memory_bytes).sum::<usize>()
            + self.attributes.iter().map(|c| c.len() * 8).sum::<usize>()
    }

    /// Check the batch against `schema`.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.vectors.len() != schema.vector_fields.len() {
            return Err(StorageError::SchemaViolation(format!(
                "batch has {} vector columns, schema expects {}",
                self.vectors.len(),
                schema.vector_fields.len()
            )));
        }
        if self.attributes.len() != schema.attribute_fields.len() {
            return Err(StorageError::SchemaViolation(format!(
                "batch has {} attribute columns, schema expects {}",
                self.attributes.len(),
                schema.attribute_fields.len()
            )));
        }
        for (col, field) in self.vectors.iter().zip(&schema.vector_fields) {
            if col.dim() != field.dim {
                return Err(StorageError::SchemaViolation(format!(
                    "vector field {} expects dim {}, got {}",
                    field.name,
                    field.dim,
                    col.dim()
                )));
            }
            if col.len() != self.ids.len() {
                return Err(StorageError::SchemaViolation(format!(
                    "vector field {} has {} rows for {} ids",
                    field.name,
                    col.len(),
                    self.ids.len()
                )));
            }
        }
        for (col, name) in self.attributes.iter().zip(&schema.attribute_fields) {
            if col.len() != self.ids.len() {
                return Err(StorageError::SchemaViolation(format!(
                    "attribute {} has {} values for {} ids",
                    name,
                    col.len(),
                    self.ids.len()
                )));
            }
        }
        let mut sorted = self.ids.clone();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(StorageError::DuplicateId(w[0]));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema2() -> Schema {
        Schema::single("v", 2, Metric::L2).with_attribute("price")
    }

    #[test]
    fn schema_validation() {
        assert!(schema2().validate().is_ok());
        let empty = Schema { vector_fields: vec![], attribute_fields: vec![] };
        assert!(empty.validate().is_err());
        let dup = Schema::single("x", 2, Metric::L2).with_attribute("x");
        assert!(dup.validate().is_err());
        let zero = Schema::single("v", 0, Metric::L2);
        assert!(zero.validate().is_err());
    }

    #[test]
    fn field_lookup() {
        let s = schema2();
        assert_eq!(s.vector_field_index("v"), Some(0));
        assert_eq!(s.vector_field_index("nope"), None);
        assert_eq!(s.attribute_index("price"), Some(0));
    }

    #[test]
    fn batch_validation_catches_mismatches() {
        let s = schema2();
        let good = InsertBatch {
            ids: vec![1, 2],
            vectors: vec![VectorSet::from_flat(2, vec![0.0; 4])],
            attributes: vec![vec![9.5, 10.5]],
        };
        assert!(good.validate(&s).is_ok());

        let wrong_dim = InsertBatch {
            ids: vec![1],
            vectors: vec![VectorSet::from_flat(3, vec![0.0; 3])],
            attributes: vec![vec![1.0]],
        };
        assert!(wrong_dim.validate(&s).is_err());

        let missing_attr = InsertBatch {
            ids: vec![1],
            vectors: vec![VectorSet::from_flat(2, vec![0.0; 2])],
            attributes: vec![],
        };
        assert!(missing_attr.validate(&s).is_err());

        let dup_ids = InsertBatch {
            ids: vec![1, 1],
            vectors: vec![VectorSet::from_flat(2, vec![0.0; 4])],
            attributes: vec![vec![1.0, 2.0]],
        };
        assert!(matches!(dup_ids.validate(&s), Err(StorageError::DuplicateId(1))));
    }

    #[test]
    fn batch_size_accounting() {
        let b = InsertBatch::single(vec![1, 2], VectorSet::from_flat(4, vec![0.0; 8]));
        assert_eq!(b.memory_bytes(), 2 * 8 + 8 * 4);
        assert_eq!(b.len(), 2);
    }
}

//! Columnar attribute storage with skip pointers (§2.4).
//!
//! "Each attribute column is stored as an array of (key, value) pairs where
//! the key is the attribute value and value is the row ID, sorted by the key.
//! Besides that, we build skip pointers (i.e., min/max values) following
//! Snowflake as indexing for the data pages" — enabling point and range
//! queries such as `price < 100` to skip non-overlapping pages.


/// Entries per page for the skip pointers.
pub const PAGE_SIZE: usize = 256;

/// Per-page min/max skip pointer.
#[derive(Debug, Clone, Copy)]
pub struct PageStat {
    /// Smallest key in the page.
    pub min: f64,
    /// Largest key in the page.
    pub max: f64,
}

serde::impl_serde_struct!(PageStat { min, max });

/// A sorted `(key, row-id)` attribute column.
#[derive(Debug, Clone)]
pub struct AttributeColumn {
    name: String,
    /// `(attribute value, row id)` sorted by value then id.
    entries: Vec<(f64, i64)>,
    /// Skip pointers, one per [`PAGE_SIZE`] entries.
    pages: Vec<PageStat>,
}

serde::impl_serde_struct!(AttributeColumn { name, entries, pages });

impl AttributeColumn {
    /// Build from parallel `values[i]` ↔ `row_ids[i]` arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn build(name: impl Into<String>, values: &[f64], row_ids: &[i64]) -> Self {
        assert_eq!(values.len(), row_ids.len(), "values/row_ids length mismatch");
        let mut entries: Vec<(f64, i64)> =
            values.iter().copied().zip(row_ids.iter().copied()).collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let pages = entries
            .chunks(PAGE_SIZE)
            .map(|page| PageStat {
                min: page.first().map_or(f64::INFINITY, |e| e.0),
                max: page.last().map_or(f64::NEG_INFINITY, |e| e.0),
            })
            .collect();
        Self { name: name.into(), entries, pages }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Column min/max, `None` when empty.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        if self.entries.is_empty() {
            None
        } else {
            Some((self.entries[0].0, self.entries[self.entries.len() - 1].0))
        }
    }

    /// Row ids whose value lies in `[lo, hi]` (inclusive range, the paper's
    /// `a >= p1 && a <= p2` form), using skip pointers + binary search.
    pub fn range_rows(&self, lo: f64, hi: f64) -> Vec<i64> {
        if lo > hi || self.entries.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (p, stat) in self.pages.iter().enumerate() {
            // Skip pointer: page [min,max] disjoint from [lo,hi]?
            if stat.max < lo || stat.min > hi {
                continue;
            }
            let start = p * PAGE_SIZE;
            let end = (start + PAGE_SIZE).min(self.entries.len());
            let page = &self.entries[start..end];
            // Binary search within the page for the first entry >= lo.
            let first = page.partition_point(|e| e.0 < lo);
            for e in &page[first..] {
                if e.0 > hi {
                    break;
                }
                out.push(e.1);
            }
        }
        out
    }

    /// Row ids with value exactly `key`.
    pub fn point_rows(&self, key: f64) -> Vec<i64> {
        self.range_rows(key, key)
    }

    /// Count of rows in `[lo, hi]` without materializing them (selectivity
    /// estimation for the cost-based filtering strategy, §4.1 D).
    pub fn count_range(&self, lo: f64, hi: f64) -> usize {
        if lo > hi || self.entries.is_empty() {
            return 0;
        }
        let first = self.entries.partition_point(|e| e.0 < lo);
        let last = self.entries.partition_point(|e| e.0 <= hi);
        last - first
    }

    /// Attribute value of `row_id`, if present. Linear scan — the column is
    /// sorted by value, not row id; point lookups by id are rare (entity
    /// retrieval), range queries are the hot path.
    pub fn value_of(&self, row_id: i64) -> Option<f64> {
        self.entries.iter().find(|e| e.1 == row_id).map(|e| e.0)
    }

    /// Approximate heap size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * 16 + self.pages.len() * 16
    }

    /// Iterate `(value, row_id)` in key order (used by segment merge).
    pub fn iter(&self) -> impl Iterator<Item = (f64, i64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: usize) -> AttributeColumn {
        // values 0..n as f64, row ids reversed so sorting matters.
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let rows: Vec<i64> = (0..n as i64).rev().collect();
        AttributeColumn::build("price", &values, &rows)
    }

    #[test]
    fn range_query_inclusive() {
        let c = col(100);
        let rows = c.range_rows(10.0, 12.0);
        // value v was paired with row id 99 - v.
        let mut expect = vec![89, 88, 87];
        expect.sort_unstable();
        let mut got = rows.clone();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn range_spanning_pages_uses_all_pages() {
        let c = col(PAGE_SIZE * 3 + 10);
        let rows = c.range_rows(0.0, (PAGE_SIZE * 3 + 9) as f64);
        assert_eq!(rows.len(), PAGE_SIZE * 3 + 10);
    }

    #[test]
    fn disjoint_range_is_empty() {
        let c = col(50);
        assert!(c.range_rows(100.0, 200.0).is_empty());
        assert!(c.range_rows(-10.0, -1.0).is_empty());
        assert!(c.range_rows(5.0, 4.0).is_empty());
    }

    #[test]
    fn point_query() {
        let c = col(20);
        assert_eq!(c.point_rows(7.0), vec![12]);
        assert!(c.point_rows(7.5).is_empty());
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let values = vec![5.0, 5.0, 5.0, 1.0];
        let rows = vec![1, 2, 3, 4];
        let c = AttributeColumn::build("a", &values, &rows);
        let mut got = c.point_rows(5.0);
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn count_range_matches_materialized() {
        let c = col(1000);
        for (lo, hi) in [(0.0, 999.0), (10.0, 10.0), (500.5, 600.5), (2000.0, 3000.0)] {
            assert_eq!(c.count_range(lo, hi), c.range_rows(lo, hi).len());
        }
    }

    #[test]
    fn min_max() {
        assert_eq!(col(10).min_max(), Some((0.0, 9.0)));
        let empty = AttributeColumn::build("e", &[], &[]);
        assert_eq!(empty.min_max(), None);
        assert!(empty.range_rows(0.0, 1.0).is_empty());
    }

    #[test]
    fn skip_pointers_one_per_page() {
        let c = col(PAGE_SIZE * 2 + 1);
        assert_eq!(c.pages.len(), 3);
        assert_eq!(c.pages[0].min, 0.0);
        assert_eq!(c.pages[0].max, (PAGE_SIZE - 1) as f64);
    }
}

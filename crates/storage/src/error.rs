//! Error type for the storage engine.

use thiserror::Error;

/// Errors produced by storage operations.
#[derive(Debug, Error)]
pub enum StorageError {
    /// A batch did not match the collection schema.
    #[error("schema violation: {0}")]
    SchemaViolation(String),

    /// Underlying filesystem / object-store failure.
    #[error("io error: {0}")]
    Io(#[from] std::io::Error),

    /// Object not present in the object store.
    #[error("object not found: {0}")]
    ObjectNotFound(String),

    /// A persisted blob failed to decode.
    #[error("corrupt data: {0}")]
    Corrupt(String),

    /// WAL serialization failure.
    #[error("wal encode error: {0}")]
    WalEncode(#[from] serde_json::Error),

    /// Error bubbled up from the index layer.
    #[error("index error: {0}")]
    Index(#[from] milvus_index::IndexError),

    /// A duplicate primary key was inserted.
    #[error("duplicate entity id: {0}")]
    DuplicateId(i64),
}

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

//! Error type for the storage engine.

use std::fmt;

/// Errors produced by storage operations.
#[derive(Debug)]
pub enum StorageError {
    /// A batch did not match the collection schema.
    SchemaViolation(String),

    /// Underlying filesystem / object-store failure.
    Io(std::io::Error),

    /// Object not present in the object store.
    ObjectNotFound(String),

    /// A persisted blob failed to decode.
    Corrupt(String),

    /// WAL serialization failure.
    WalEncode(serde_json::Error),

    /// Error bubbled up from the index layer.
    Index(milvus_index::IndexError),

    /// A duplicate primary key was inserted.
    DuplicateId(i64),

    /// A remote endpoint could not be reached (dropped message, partition,
    /// or exhausted RPC retries). Callers may treat this as transient and
    /// retry or fail over, unlike the other variants.
    Unavailable(String),
}

impl StorageError {
    /// True when the error is a transport-level unavailability (timeout,
    /// partition) rather than an application failure — the distinction the
    /// distributed layer uses to decide between fail-over and propagation.
    pub fn is_unavailable(&self) -> bool {
        matches!(self, StorageError::Unavailable(_))
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::SchemaViolation(msg) => write!(f, "schema violation: {msg}"),
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::ObjectNotFound(key) => write!(f, "object not found: {key}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            StorageError::WalEncode(e) => write!(f, "wal encode error: {e}"),
            StorageError::Index(e) => write!(f, "index error: {e}"),
            StorageError::DuplicateId(id) => write!(f, "duplicate entity id: {id}"),
            StorageError::Unavailable(msg) => write!(f, "unavailable: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::WalEncode(e) => Some(e),
            StorageError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<serde_json::Error> for StorageError {
    fn from(e: serde_json::Error) -> Self {
        StorageError::WalEncode(e)
    }
}

impl From<milvus_index::IndexError> for StorageError {
    fn from(e: milvus_index::IndexError) -> Self {
        StorageError::Index(e)
    }
}

/// Convenience alias used throughout the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;

//! Write-ahead log (§5.1, §5.3).
//!
//! "When Milvus receives heavy write requests, it first materializes the
//! operations (similar to database logs) to disk and then acknowledges to
//! users." The WAL is a newline-delimited JSON file of [`LogRecord`]s;
//! [`Wal::replay`] reconstructs the un-flushed tail after a crash, and
//! `truncate_upto` drops records covered by a flush checkpoint. In the
//! distributed design (§5.3) the same records are what the writer ships to
//! shared storage instead of data pages, à la Aurora.

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use milvus_obs as obs;

use crate::entity::InsertBatch;
use crate::error::Result;

/// One durable operation.
#[derive(Debug, Clone)]
pub enum LogRecord {
    /// An insert batch. `op_id` is the client-assigned operation id carried
    /// by shipped records (distributed log, §5.3): a standby writer dedupes
    /// replay and client retries against it, making inserts exactly-once
    /// across a writer failover. Local WALs leave it `None`.
    Insert { lsn: u64, op_id: Option<u64>, batch: InsertBatch },
    /// Tombstone the given entity ids.
    Delete { lsn: u64, ids: Vec<i64> },
    /// Everything up to `lsn` has been flushed into segments.
    FlushCheckpoint { lsn: u64 },
}

serde::impl_serde_enum!(LogRecord {
    Insert { lsn, op_id, batch },
    Delete { lsn, ids },
    FlushCheckpoint { lsn },
});

impl LogRecord {
    /// The record's log sequence number.
    pub fn lsn(&self) -> u64 {
        match self {
            LogRecord::Insert { lsn, .. }
            | LogRecord::Delete { lsn, .. }
            | LogRecord::FlushCheckpoint { lsn } => *lsn,
        }
    }
}

/// An append-only log file.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    next_lsn: u64,
    /// Metric label (the owning collection's name).
    label: String,
}

impl Wal {
    /// Open (creating if absent) the log at `path`; `next_lsn` resumes after
    /// the highest existing record.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let existing = if path.exists() { Self::read_all(&path)? } else { Vec::new() };
        let next_lsn = existing.last().map_or(1, |r| r.lsn() + 1);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self { path, writer: BufWriter::new(file), next_lsn, label: "default".to_string() })
    }

    /// Stamp this log's metric series with `label` (the collection name).
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Next LSN that will be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Append an insert record; returns its LSN. The record is flushed to the
    /// OS before the call returns (ack-after-materialize, §5.1).
    pub fn append_insert(&mut self, batch: InsertBatch) -> Result<u64> {
        let lsn = self.bump();
        self.write(&LogRecord::Insert { lsn, op_id: None, batch })?;
        Ok(lsn)
    }

    /// Append a delete record; returns its LSN.
    pub fn append_delete(&mut self, ids: Vec<i64>) -> Result<u64> {
        let lsn = self.bump();
        self.write(&LogRecord::Delete { lsn, ids })?;
        Ok(lsn)
    }

    /// Record that all operations `<= lsn` are now durable in segments.
    pub fn append_checkpoint(&mut self, lsn: u64) -> Result<u64> {
        let own = self.bump();
        self.write(&LogRecord::FlushCheckpoint { lsn })?;
        Ok(own)
    }

    fn bump(&mut self) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        lsn
    }

    fn write(&mut self, rec: &LogRecord) -> Result<()> {
        let line = serde_json::to_vec(rec)?;
        self.writer.write_all(&line)?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        obs::counter(obs::WAL_APPENDS, &self.label).inc();
        obs::counter(obs::WAL_BYTES, &self.label).add(line.len() as u64 + 1);
        Ok(())
    }

    fn read_all(path: &Path) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        let reader = BufReader::new(File::open(path)?);
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            out.push(serde_json::from_str(&line)?);
        }
        Ok(out)
    }

    /// Records not yet covered by the latest flush checkpoint — the state to
    /// rebuild into the memtable after a restart.
    pub fn replay(path: impl AsRef<Path>) -> Result<Vec<LogRecord>> {
        let path = path.as_ref();
        if !path.exists() {
            return Ok(Vec::new());
        }
        let all = Self::read_all(path)?;
        let checkpoint = all
            .iter()
            .filter_map(|r| match r {
                LogRecord::FlushCheckpoint { lsn } => Some(*lsn),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        Ok(all
            .into_iter()
            .filter(|r| !matches!(r, LogRecord::FlushCheckpoint { .. }) && r.lsn() > checkpoint)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::VectorSet;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("milvus-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(n: usize) -> InsertBatch {
        InsertBatch::single(
            (0..n as i64).collect(),
            VectorSet::from_flat(2, vec![0.5; n * 2]),
        )
    }

    #[test]
    fn append_and_replay() {
        let dir = tmpdir("basic");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_insert(batch(3)).unwrap();
            wal.append_delete(vec![1]).unwrap();
        }
        let tail = Wal::replay(&path).unwrap();
        assert_eq!(tail.len(), 2);
        assert!(matches!(tail[0], LogRecord::Insert { lsn: 1, .. }));
        assert!(matches!(tail[1], LogRecord::Delete { lsn: 2, .. }));
    }

    #[test]
    fn checkpoint_truncates_replay() {
        let dir = tmpdir("ckpt");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        let l1 = wal.append_insert(batch(2)).unwrap();
        wal.append_checkpoint(l1).unwrap();
        wal.append_delete(vec![0]).unwrap();
        let tail = Wal::replay(&path).unwrap();
        assert_eq!(tail.len(), 1);
        assert!(matches!(tail[0], LogRecord::Delete { .. }));
    }

    #[test]
    fn lsn_resumes_after_reopen() {
        let dir = tmpdir("resume");
        let path = dir.join("wal.log");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append_insert(batch(1)).unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.next_lsn(), 2);
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let dir = tmpdir("missing");
        assert!(Wal::replay(dir.join("nope.log")).unwrap().is_empty());
    }

    #[test]
    fn insert_payload_roundtrips() {
        let dir = tmpdir("payload");
        let path = dir.join("wal.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append_insert(batch(4)).unwrap();
        drop(wal);
        let tail = Wal::replay(&path).unwrap();
        let LogRecord::Insert { batch: b, .. } = &tail[0] else {
            panic!("expected insert")
        };
        assert_eq!(b.ids, vec![0, 1, 2, 3]);
        assert_eq!(b.vectors[0].dim(), 2);
    }
}

//! Binary segment codec — the on-disk/object-store format of a segment.
//!
//! Little-endian layout:
//! `magic "MSG1" | n_rows u64 | n_vec u32 | n_attr u32 | row_ids |
//!  per-vector-column (dim u32, f32 payload) |
//!  per-attribute-column (name, (value,row) pairs) |
//!  tombstones (count u64, ids)`
//!
//! Attribute columns are persisted in key order and rebuilt (with fresh skip
//! pointers) on decode.

use std::collections::HashSet;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use milvus_index::VectorSet;

use crate::attribute::AttributeColumn;
use crate::error::{Result, StorageError};
use crate::segment::{Segment, SegmentData};

const MAGIC: &[u8; 4] = b"MSG1";

/// Serialize a segment (payload + tombstones; indexes are rebuilt on load).
pub fn encode_segment(seg: &Segment) -> Bytes {
    let data = seg.data();
    let mut buf = BytesMut::with_capacity(data.memory_bytes() + 64);
    buf.put_slice(MAGIC);
    buf.put_u64_le(data.row_ids.len() as u64);
    buf.put_u32_le(data.vectors.len() as u32);
    buf.put_u32_le(data.attributes.len() as u32);
    for &id in &data.row_ids {
        buf.put_i64_le(id);
    }
    for col in &data.vectors {
        buf.put_u32_le(col.dim() as u32);
        for &x in col.as_flat() {
            buf.put_f32_le(x);
        }
    }
    for col in &data.attributes {
        let name = col.name().as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        buf.put_u64_le(col.len() as u64);
        for (v, id) in col.iter() {
            buf.put_f64_le(v);
            buf.put_i64_le(id);
        }
    }
    buf.put_u64_le(seg.deleted().len() as u64);
    let mut dels: Vec<i64> = seg.deleted().iter().copied().collect();
    dels.sort_unstable();
    for id in dels {
        buf.put_i64_le(id);
    }

    // Serializable indexes ride with the segment (§2.3: "Both index and
    // data are stored in the same segment"). Only IVF indexes serialize;
    // graph/tree indexes are rebuilt after a load.
    let persistable: Vec<(String, Vec<u8>)> = seg
        .indexes_snapshot()
        .into_iter()
        .filter_map(|(field, ix)| {
            ix.as_ivf().map(|ivf| (field, milvus_index::ivf::codec::encode_ivf(ivf)))
        })
        .collect();
    buf.put_u32_le(persistable.len() as u32);
    for (field, blob) in persistable {
        let name = field.as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        buf.put_u64_le(blob.len() as u64);
        buf.put_slice(&blob);
    }
    buf.freeze()
}

/// Deserialize a segment previously produced by [`encode_segment`].
pub fn decode_segment(id: u64, version: u64, mut buf: &[u8]) -> Result<Segment> {
    let corrupt = |msg: &str| StorageError::Corrupt(msg.to_string());
    if buf.remaining() < 4 || &buf[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    buf.advance(4);
    if buf.remaining() < 16 {
        return Err(corrupt("truncated header"));
    }
    let n_rows = buf.get_u64_le() as usize;
    let n_vec = buf.get_u32_le() as usize;
    let n_attr = buf.get_u32_le() as usize;

    if buf.remaining() < n_rows * 8 {
        return Err(corrupt("truncated row ids"));
    }
    let mut row_ids = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        row_ids.push(buf.get_i64_le());
    }

    let mut vectors = Vec::with_capacity(n_vec);
    for _ in 0..n_vec {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated vector column header"));
        }
        let dim = buf.get_u32_le() as usize;
        if dim == 0 {
            return Err(corrupt("zero-dim vector column"));
        }
        let need = n_rows * dim * 4;
        if buf.remaining() < need {
            return Err(corrupt("truncated vector payload"));
        }
        let mut flat = Vec::with_capacity(n_rows * dim);
        for _ in 0..n_rows * dim {
            flat.push(buf.get_f32_le());
        }
        vectors.push(VectorSet::from_flat(dim, flat));
    }

    let mut attributes = Vec::with_capacity(n_attr);
    for _ in 0..n_attr {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated attribute header"));
        }
        let name_len = buf.get_u32_le() as usize;
        if buf.remaining() < name_len {
            return Err(corrupt("truncated attribute name"));
        }
        let name = String::from_utf8(buf[..name_len].to_vec())
            .map_err(|_| corrupt("attribute name not utf8"))?;
        buf.advance(name_len);
        if buf.remaining() < 8 {
            return Err(corrupt("truncated attribute count"));
        }
        let n = buf.get_u64_le() as usize;
        if buf.remaining() < n * 16 {
            return Err(corrupt("truncated attribute entries"));
        }
        let mut values = Vec::with_capacity(n);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(buf.get_f64_le());
            rows.push(buf.get_i64_le());
        }
        attributes.push(AttributeColumn::build(name, &values, &rows));
    }

    if buf.remaining() < 8 {
        return Err(corrupt("truncated tombstone count"));
    }
    let n_del = buf.get_u64_le() as usize;
    if buf.remaining() < n_del * 8 {
        return Err(corrupt("truncated tombstones"));
    }
    let mut deleted = HashSet::with_capacity(n_del);
    for _ in 0..n_del {
        deleted.insert(buf.get_i64_le());
    }

    let segment =
        Segment::from_parts(id, version, SegmentData { row_ids, vectors, attributes }, deleted);

    // Optional trailing index section (absent in blobs written before index
    // persistence existed).
    if buf.remaining() > 0 {
        if buf.remaining() < 4 {
            return Err(corrupt("truncated index count"));
        }
        let n_idx = buf.get_u32_le() as usize;
        for _ in 0..n_idx {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated index header"));
            }
            let name_len = buf.get_u32_le() as usize;
            if buf.remaining() < name_len {
                return Err(corrupt("truncated index name"));
            }
            let field = String::from_utf8(buf[..name_len].to_vec())
                .map_err(|_| corrupt("index field not utf8"))?;
            buf.advance(name_len);
            if buf.remaining() < 8 {
                return Err(corrupt("truncated index size"));
            }
            let blob_len = buf.get_u64_le() as usize;
            if buf.remaining() < blob_len {
                return Err(corrupt("truncated index blob"));
            }
            let index = milvus_index::ivf::codec::decode_ivf(&buf[..blob_len])?;
            buf.advance(blob_len);
            segment.attach_index(field, std::sync::Arc::new(index));
        }
    }

    Ok(segment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{InsertBatch, Schema};
    use milvus_index::Metric;

    fn sample_segment() -> (Schema, Segment) {
        let schema = Schema::single("v", 3, Metric::L2).with_attribute("price");
        let mut vs = VectorSet::new(3);
        for i in 0..10 {
            vs.push(&[i as f32, 2.0 * i as f32, -0.5]);
        }
        let batch = InsertBatch {
            ids: (0..10).collect(),
            vectors: vec![vs],
            attributes: vec![(0..10).map(|i| 100.0 + i as f64).collect()],
        };
        let seg = Segment::from_batch(7, &schema, &batch).unwrap().with_deletes([3, 8]);
        (schema, seg)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let (_, seg) = sample_segment();
        let bytes = encode_segment(&seg);
        let back = decode_segment(seg.id, seg.version, &bytes).unwrap();
        assert_eq!(back.data().row_ids, seg.data().row_ids);
        assert_eq!(back.data().vectors[0].as_flat(), seg.data().vectors[0].as_flat());
        assert_eq!(back.deleted(), seg.deleted());
        assert_eq!(back.data().attributes[0].name(), "price");
        assert_eq!(back.data().attributes[0].point_rows(105.0), vec![5]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            decode_segment(1, 1, b"XXXXrest"),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncation_detected_not_panicking() {
        let (_, seg) = sample_segment();
        let bytes = encode_segment(&seg);
        // Every prefix must decode to an error, never panic.
        for cut in [0, 3, 4, 10, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_segment(1, 1, &bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn index_rides_with_the_segment() {
        use milvus_index::registry::IndexRegistry;
        use milvus_index::traits::{BuildParams, SearchParams};

        let schema = Schema::single("v", 4, Metric::L2);
        let mut vs = VectorSet::new(4);
        for i in 0..300 {
            vs.push(&[i as f32, 0.0, 0.0, 0.0]);
        }
        let batch = InsertBatch::single((0..300).collect(), vs);
        let seg = Segment::from_batch(1, &schema, &batch).unwrap();
        let registry = IndexRegistry::with_builtins();
        let params = BuildParams { nlist: 8, kmeans_iters: 4, ..Default::default() };
        let indexed = seg.build_index(&schema, "v", "IVF_SQ8", &registry, &params).unwrap();

        let blob = encode_segment(&indexed);
        let decoded = decode_segment(indexed.id, indexed.version, &blob).unwrap();
        // The IVF index came back with the segment — no rebuild needed.
        let ix = decoded.index("v").expect("persisted index");
        assert_eq!(ix.name(), "IVF_SQ8");
        let sp = SearchParams { k: 3, nprobe: 8, ..Default::default() };
        let res = decoded
            .search_field(&schema, "v", &[42.0, 0.0, 0.0, 0.0], &sp, None)
            .unwrap();
        assert_eq!(res[0].id, 42);
    }

    #[test]
    fn graph_indexes_not_persisted_but_segment_loads() {
        use milvus_index::registry::IndexRegistry;
        use milvus_index::traits::BuildParams;

        let schema = Schema::single("v", 4, Metric::L2);
        let mut vs = VectorSet::new(4);
        for i in 0..100 {
            vs.push(&[i as f32, 0.0, 0.0, 0.0]);
        }
        let batch = InsertBatch::single((0..100).collect(), vs);
        let seg = Segment::from_batch(1, &schema, &batch).unwrap();
        let registry = IndexRegistry::with_builtins();
        let indexed =
            seg.build_index(&schema, "v", "HNSW", &registry, &BuildParams::default()).unwrap();
        let decoded =
            decode_segment(1, 2, &encode_segment(&indexed)).unwrap();
        assert!(decoded.index("v").is_none(), "HNSW is rebuilt, not persisted");
        assert_eq!(decoded.num_rows(), 100);
    }

    #[test]
    fn empty_segment_roundtrips() {
        let schema = Schema::single("v", 2, Metric::L2);
        let batch = InsertBatch::single(vec![], VectorSet::new(2));
        let seg = Segment::from_batch(1, &schema, &batch).unwrap();
        let back = decode_segment(1, 1, &encode_segment(&seg)).unwrap();
        assert_eq!(back.num_rows(), 0);
    }
}

//! Storage engine for the Milvus reproduction (paper §2.3, §2.4, §5.2).
//!
//! * **LSM-based dynamic data management** (§2.3): inserts land in a
//!   [`memtable::MemTable`]; when it reaches a size threshold it is flushed
//!   as an immutable [`segment::Segment`]; a tiered [`merge`] policy combines
//!   similar-sized segments up to a configurable cap (default 1 GB), and
//!   deletions are out-of-place tombstones physically removed at merge.
//! * **Snapshot isolation** (§5.2): [`snapshot`] versions the segment set;
//!   every query pins the snapshot current at its start, and obsolete
//!   segments are garbage-collected when their last snapshot drops.
//! * **Columnar storage** (§2.4): vectors are stored contiguously sorted by
//!   row id ([`milvus_index::VectorSet`]); multi-vector entities store each
//!   vector field as its own column; numeric attributes are sorted
//!   `(key, row-id)` arrays with min/max page skip pointers
//!   ([`attribute::AttributeColumn`]).
//! * **Bufferpool** (§2.4): an LRU cache whose unit is the segment.
//! * **Multi-storage** (§2.4): an [`object_store::ObjectStore`] abstraction
//!   with a local-filesystem backend and an in-memory simulated S3 backend.
//! * **WAL** (§5.1/§5.3): operations are materialized to a log before being
//!   acknowledged; replay reconstructs un-flushed state after a crash.

pub mod attribute;
pub mod bufferpool;
pub mod categorical;
pub mod codec;
pub mod entity;
pub mod error;
pub mod lsm;
pub mod memtable;
pub mod merge;
pub mod object_store;
pub mod segment;
pub mod snapshot;
pub mod wal;

pub use entity::{InsertBatch, Schema, VectorField};
pub use error::{Result, StorageError};
pub use lsm::{LsmConfig, LsmEngine};
pub use segment::{clear_scan_delays, inject_scan_delay, ScanStats, Segment};
pub use snapshot::Snapshot;

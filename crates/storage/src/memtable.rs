//! The in-memory write buffer (§2.3).
//!
//! "Newly inserted entities are stored in memory first as MemTable. Once the
//! accumulated size reaches a threshold, or once every second, the MemTable
//! becomes immutable and then gets flushed to disk as a new segment."
//! Deletes arriving while data is still in the memtable simply drop the
//! pending rows; deletes of already-flushed rows are collected for the LSM
//! layer to tombstone.

use std::collections::HashSet;

use milvus_index::VectorSet;

use crate::entity::{InsertBatch, Schema};
use crate::error::{Result, StorageError};

/// Mutable buffer of pending inserts and deletes.
#[derive(Debug)]
pub struct MemTable {
    schema: Schema,
    ids: Vec<i64>,
    vectors: Vec<VectorSet>,
    attributes: Vec<Vec<f64>>,
    /// Deletes that refer to rows *not* in this memtable (flushed segments).
    pending_deletes: HashSet<i64>,
    bytes: usize,
}

impl MemTable {
    /// An empty memtable for `schema`.
    pub fn new(schema: Schema) -> Self {
        let vectors = schema.vector_fields.iter().map(|f| VectorSet::new(f.dim)).collect();
        let attributes = schema.attribute_fields.iter().map(|_| Vec::new()).collect();
        Self { schema, ids: Vec::new(), vectors, attributes, pending_deletes: HashSet::new(), bytes: 0 }
    }

    /// Buffered entity count.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no inserts are buffered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Approximate buffered bytes (flush-threshold accounting).
    pub fn memory_bytes(&self) -> usize {
        self.bytes
    }

    /// Deletes destined for already-flushed segments.
    pub fn pending_deletes(&self) -> &HashSet<i64> {
        &self.pending_deletes
    }

    /// Whether `id` is currently buffered as an insert.
    pub fn contains(&self, id: i64) -> bool {
        self.ids.contains(&id)
    }

    /// Buffer an insert batch.
    pub fn insert(&mut self, batch: &InsertBatch) -> Result<()> {
        batch.validate(&self.schema)?;
        for &id in &batch.ids {
            if self.contains(id) {
                return Err(StorageError::DuplicateId(id));
            }
            // Note: a pending delete of the same id is kept — it refers to
            // the *flushed* copy, which must still be tombstoned. The new row
            // lands in a newer segment (update = delete + insert, §2.3).
        }
        self.ids.extend_from_slice(&batch.ids);
        for (col, add) in self.vectors.iter_mut().zip(&batch.vectors) {
            col.extend_from(add);
        }
        for (col, add) in self.attributes.iter_mut().zip(&batch.attributes) {
            col.extend_from_slice(add);
        }
        self.bytes += batch.memory_bytes();
        Ok(())
    }

    /// Apply deletes: pending inserts with these ids are dropped; ids not
    /// buffered here are recorded for segment tombstoning.
    pub fn delete(&mut self, ids: &[i64]) {
        let target: HashSet<i64> = ids.iter().copied().collect();
        let buffered_before: HashSet<i64> = self.ids.iter().copied().collect();
        let hit = self.ids.iter().any(|id| target.contains(id));
        if hit {
            let keep: Vec<usize> =
                (0..self.ids.len()).filter(|&r| !target.contains(&self.ids[r])).collect();
            self.ids = keep.iter().map(|&r| self.ids[r]).collect();
            self.vectors = self.vectors.iter().map(|col| col.gather(&keep)).collect();
            self.attributes = self
                .attributes
                .iter()
                .map(|col| keep.iter().map(|&r| col[r]).collect())
                .collect();
        }
        for id in target {
            // A row that was only ever buffered is dropped outright; anything
            // else may exist in a flushed segment and needs a tombstone.
            if !buffered_before.contains(&id) {
                self.pending_deletes.insert(id);
            }
        }
    }

    /// Drain the buffer into an [`InsertBatch`] (for segment flush) plus the
    /// accumulated segment-bound deletes, resetting the memtable.
    pub fn drain(&mut self) -> (InsertBatch, Vec<i64>) {
        let batch = InsertBatch {
            ids: std::mem::take(&mut self.ids),
            vectors: self
                .vectors
                .iter_mut()
                .map(|col| std::mem::replace(col, VectorSet::new(col.dim())))
                .collect(),
            attributes: self.attributes.iter_mut().map(std::mem::take).collect(),
        };
        let mut deletes: Vec<i64> = self.pending_deletes.drain().collect();
        deletes.sort_unstable();
        self.bytes = 0;
        (batch, deletes)
    }

    /// Search the buffered rows brute-force (reads that opt into seeing
    /// un-flushed data; the default read path sees flushed segments only,
    /// matching §5.1's asynchronous visibility).
    pub fn scan_field(
        &self,
        field: &str,
        query: &[f32],
        k: usize,
    ) -> Result<Vec<milvus_index::Neighbor>> {
        let fi = self
            .schema
            .vector_field_index(field)
            .ok_or_else(|| StorageError::SchemaViolation(format!("no vector field {field}")))?;
        let metric = self.schema.vector_fields[fi].metric;
        let mut heap = milvus_index::TopK::new(k.max(1));
        for (row, v) in self.vectors[fi].iter().enumerate() {
            heap.push(self.ids[row], milvus_index::distance::distance(metric, query, v));
        }
        Ok(heap.into_sorted())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::Metric;

    fn schema() -> Schema {
        Schema::single("v", 2, Metric::L2).with_attribute("a")
    }

    fn batch(ids: Vec<i64>) -> InsertBatch {
        let n = ids.len();
        let mut vs = VectorSet::new(2);
        for &id in &ids {
            vs.push(&[id as f32, 0.0]);
        }
        InsertBatch { ids, vectors: vec![vs], attributes: vec![vec![1.0; n]] }
    }

    #[test]
    fn insert_accumulates() {
        let mut mt = MemTable::new(schema());
        mt.insert(&batch(vec![1, 2])).unwrap();
        mt.insert(&batch(vec![3])).unwrap();
        assert_eq!(mt.len(), 3);
        assert!(mt.memory_bytes() > 0);
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut mt = MemTable::new(schema());
        mt.insert(&batch(vec![1])).unwrap();
        assert!(matches!(mt.insert(&batch(vec![1])), Err(StorageError::DuplicateId(1))));
    }

    #[test]
    fn delete_buffered_row_removes_it() {
        let mut mt = MemTable::new(schema());
        mt.insert(&batch(vec![1, 2, 3])).unwrap();
        mt.delete(&[2]);
        assert_eq!(mt.len(), 2);
        assert!(!mt.contains(2));
        // The delete was satisfied in-memory: nothing pending for segments.
        assert!(mt.pending_deletes().is_empty());
    }

    #[test]
    fn delete_of_flushed_row_is_pending() {
        let mut mt = MemTable::new(schema());
        mt.delete(&[42]);
        assert!(mt.pending_deletes().contains(&42));
    }

    #[test]
    fn reinsert_after_delete_keeps_tombstone_for_flushed_copy() {
        let mut mt = MemTable::new(schema());
        mt.delete(&[7]); // 7 lives in a flushed segment
        mt.insert(&batch(vec![7])).unwrap(); // update = delete + insert
        assert!(mt.pending_deletes().contains(&7));
        assert!(mt.contains(7));
        // A second delete removes the buffered copy; the tombstone stays.
        mt.delete(&[7]);
        assert!(!mt.contains(7));
        assert!(mt.pending_deletes().contains(&7));
    }

    #[test]
    fn drain_resets() {
        let mut mt = MemTable::new(schema());
        mt.insert(&batch(vec![1, 2])).unwrap();
        mt.delete(&[99]);
        let (b, d) = mt.drain();
        assert_eq!(b.ids, vec![1, 2]);
        assert_eq!(d, vec![99]);
        assert!(mt.is_empty());
        assert_eq!(mt.memory_bytes(), 0);
        assert!(mt.pending_deletes().is_empty());
    }

    #[test]
    fn scan_finds_buffered_rows() {
        let mut mt = MemTable::new(schema());
        mt.insert(&batch(vec![10, 20])).unwrap();
        let res = mt.scan_field("v", &[10.1, 0.0], 1).unwrap();
        assert_eq!(res[0].id, 10);
    }

    #[test]
    fn vectors_stay_aligned_after_partial_delete() {
        let mut mt = MemTable::new(schema());
        mt.insert(&batch(vec![1, 2, 3, 4])).unwrap();
        mt.delete(&[1, 3]);
        let res = mt.scan_field("v", &[4.0, 0.0], 1).unwrap();
        assert_eq!(res[0].id, 4);
        assert_eq!(res[0].dist, 0.0);
    }
}

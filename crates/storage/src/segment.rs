//! Immutable segments — "the basic unit of searching, scheduling, and
//! buffering" (§2.3).
//!
//! A segment's payload ([`SegmentData`]) never changes after flush. New
//! *versions* of a segment are created when its tombstone set or indexes
//! change (§5.2: "a new version is generated whenever the data or index in
//! that segment is changed"); versions share the payload via `Arc`, which is
//! what makes snapshots cheap and lets GC reclaim payloads only when the last
//! referencing snapshot drops.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use milvus_index::traits::{BuildParams, SearchParams};
use milvus_index::{registry::IndexRegistry, Neighbor, TopK, VectorIndex, VectorSet};
use parking_lot::RwLock;

use crate::attribute::AttributeColumn;
use crate::entity::{InsertBatch, Schema};
use crate::error::{Result, StorageError};

// Re-export for segment scans.
use milvus_index::distance;
use milvus_index::topk;

/// What one segment scan did — feeds per-segment trace spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Candidate rows the scan considered: the full live row count for a
    /// brute-force pass, the indexed live universe for an index probe.
    pub rows_scanned: u64,
    /// Whether an ANN index served the scan (vs. brute-force columnar scan).
    pub used_index: bool,
}

// ---------------------------------------------------------------------------
// Fault injection: deliberately slow one segment's scans, so tests (and the
// ISSUE 2 acceptance check) can make a specific segment dominate a query and
// verify the slow-query log attributes the time to it. Disabled flag keeps
// the production scan at a single relaxed atomic load.
// ---------------------------------------------------------------------------

static SCAN_FAULTS_ARMED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

fn scan_delays() -> &'static parking_lot::Mutex<HashMap<u64, std::time::Duration>> {
    static DELAYS: std::sync::OnceLock<parking_lot::Mutex<HashMap<u64, std::time::Duration>>> =
        std::sync::OnceLock::new();
    DELAYS.get_or_init(|| parking_lot::Mutex::new(HashMap::new()))
}

/// Arm a scan delay: every subsequent scan of segment `segment_id` (in any
/// collection of this process) sleeps for `delay` first.
pub fn inject_scan_delay(segment_id: u64, delay: std::time::Duration) {
    scan_delays().lock().insert(segment_id, delay);
    SCAN_FAULTS_ARMED.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Disarm all scan delays.
pub fn clear_scan_delays() {
    scan_delays().lock().clear();
    SCAN_FAULTS_ARMED.store(false, std::sync::atomic::Ordering::SeqCst);
}

/// Honor any armed scan fault for `segment_id`. `search_field_stats` calls
/// this itself; external scan paths that bypass it (the scheduler's
/// coalesced zero-copy segment scans) must call it once per segment so
/// injected delays keep governing every scan route.
#[inline]
pub fn apply_scan_fault(segment_id: u64) {
    if SCAN_FAULTS_ARMED.load(std::sync::atomic::Ordering::Relaxed) {
        let delay = scan_delays().lock().get(&segment_id).copied();
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
    }
}

/// The immutable columnar payload of a segment.
#[derive(Debug, Clone)]
pub struct SegmentData {
    /// Entity ids, sorted ascending (vectors are stored in this order, §2.4).
    pub row_ids: Vec<i64>,
    /// One vector column per schema vector field.
    pub vectors: Vec<VectorSet>,
    /// One attribute column per schema attribute field.
    pub attributes: Vec<AttributeColumn>,
}

impl SegmentData {
    /// Payload bytes (vectors + attributes + ids).
    pub fn memory_bytes(&self) -> usize {
        self.row_ids.len() * 8
            + self.vectors.iter().map(VectorSet::memory_bytes).sum::<usize>()
            + self.attributes.iter().map(AttributeColumn::memory_bytes).sum::<usize>()
    }
}

/// A versioned immutable segment.
pub struct Segment {
    /// Stable segment id.
    pub id: u64,
    /// Version, bumped on tombstone/index changes (§5.2).
    pub version: u64,
    data: Arc<SegmentData>,
    deleted: Arc<HashSet<i64>>,
    /// Lazily-built per-vector-field indexes (built asynchronously, §5.1).
    indexes: RwLock<HashMap<String, Arc<dyn VectorIndex>>>,
}

impl Segment {
    /// Build a segment from an insert batch (rows are re-sorted by id).
    pub fn from_batch(id: u64, schema: &Schema, batch: &InsertBatch) -> Result<Self> {
        batch.validate(schema)?;
        let mut order: Vec<usize> = (0..batch.ids.len()).collect();
        order.sort_by_key(|&i| batch.ids[i]);
        let row_ids: Vec<i64> = order.iter().map(|&i| batch.ids[i]).collect();
        let vectors: Vec<VectorSet> =
            batch.vectors.iter().map(|col| col.gather(&order)).collect();
        let attributes: Vec<AttributeColumn> = batch
            .attributes
            .iter()
            .zip(&schema.attribute_fields)
            .map(|(col, name)| {
                let sorted_vals: Vec<f64> = order.iter().map(|&i| col[i]).collect();
                AttributeColumn::build(name.clone(), &sorted_vals, &row_ids)
            })
            .collect();
        Ok(Self {
            id,
            version: 1,
            data: Arc::new(SegmentData { row_ids, vectors, attributes }),
            deleted: Arc::new(HashSet::new()),
            indexes: RwLock::new(HashMap::new()),
        })
    }

    /// Construct directly from parts (codec decode, merges).
    pub fn from_parts(id: u64, version: u64, data: SegmentData, deleted: HashSet<i64>) -> Self {
        Self {
            id,
            version,
            data: Arc::new(data),
            deleted: Arc::new(deleted),
            indexes: RwLock::new(HashMap::new()),
        }
    }

    /// Borrow the immutable payload.
    pub fn data(&self) -> &SegmentData {
        &self.data
    }

    /// Tombstoned ids.
    pub fn deleted(&self) -> &HashSet<i64> {
        &self.deleted
    }

    /// Total rows including tombstoned ones.
    pub fn num_rows(&self) -> usize {
        self.data.row_ids.len()
    }

    /// Rows visible to queries.
    pub fn live_rows(&self) -> usize {
        self.num_rows() - self.deleted.len()
    }

    /// Whether `id` is stored here (regardless of tombstones).
    pub fn contains_id(&self, id: i64) -> bool {
        self.data.row_ids.binary_search(&id).is_ok()
    }

    /// Whether `id` is tombstoned in this version.
    pub fn is_deleted(&self, id: i64) -> bool {
        self.deleted.contains(&id)
    }

    /// New version with additional tombstones; payload and indexes are shared
    /// (out-of-place delete, §2.3).
    pub fn with_deletes(&self, ids: impl IntoIterator<Item = i64>) -> Segment {
        let mut deleted = (*self.deleted).clone();
        for id in ids {
            if self.contains_id(id) {
                deleted.insert(id);
            }
        }
        Segment {
            id: self.id,
            version: self.version + 1,
            data: Arc::clone(&self.data),
            deleted: Arc::new(deleted),
            indexes: RwLock::new(self.indexes.read().clone()),
        }
    }

    /// Payload + tombstone bytes (bufferpool accounting; the segment is the
    /// caching unit, §2.4).
    pub fn memory_bytes(&self) -> usize {
        let idx: usize = self.indexes.read().values().map(|i| i.memory_bytes()).sum();
        self.data.memory_bytes() + self.deleted.len() * 8 + idx
    }

    /// Build (or rebuild) an index on `field` over the live rows.
    ///
    /// Returns a **new version** of the segment carrying the index (§5.2: a
    /// new version is generated upon building index).
    pub fn build_index(
        &self,
        schema: &Schema,
        field: &str,
        index_type: &str,
        registry: &IndexRegistry,
        params: &BuildParams,
    ) -> Result<Segment> {
        let fi = schema
            .vector_field_index(field)
            .ok_or_else(|| StorageError::SchemaViolation(format!("no vector field {field}")))?;
        let col = &self.data.vectors[fi];
        // Index live rows only.
        let live: Vec<usize> = (0..self.num_rows())
            .filter(|&r| !self.deleted.contains(&self.data.row_ids[r]))
            .collect();
        let vectors = col.gather(&live);
        let ids: Vec<i64> = live.iter().map(|&r| self.data.row_ids[r]).collect();
        let mut build = params.clone();
        build.metric = schema.vector_fields[fi].metric;
        let index: Arc<dyn VectorIndex> = Arc::from(registry.build(index_type, &vectors, &ids, &build)?);
        let next = Segment {
            id: self.id,
            version: self.version + 1,
            data: Arc::clone(&self.data),
            deleted: Arc::clone(&self.deleted),
            indexes: RwLock::new(self.indexes.read().clone()),
        };
        next.indexes.write().insert(field.to_string(), index);
        Ok(next)
    }

    /// The index on `field`, if one was built.
    pub fn index(&self, field: &str) -> Option<Arc<dyn VectorIndex>> {
        self.indexes.read().get(field).cloned()
    }

    /// Attach a pre-built index (segment codec restore path).
    pub fn attach_index(&self, field: impl Into<String>, index: Arc<dyn VectorIndex>) {
        self.indexes.write().insert(field.into(), index);
    }

    /// All attached indexes (segment codec persist path).
    pub fn indexes_snapshot(&self) -> Vec<(String, Arc<dyn VectorIndex>)> {
        let mut v: Vec<(String, Arc<dyn VectorIndex>)> = self
            .indexes
            .read()
            .iter()
            .map(|(k, ix)| (k.clone(), Arc::clone(ix)))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Search one vector field of this segment. Uses the field's index when
    /// present (masking tombstones), otherwise a brute-force columnar scan.
    pub fn search_field(
        &self,
        schema: &Schema,
        field: &str,
        query: &[f32],
        params: &SearchParams,
        allow: Option<&dyn Fn(i64) -> bool>,
    ) -> Result<Vec<Neighbor>> {
        self.search_field_stats(schema, field, query, params, allow).map(|(r, _)| r)
    }

    /// [`Self::search_field`] plus [`ScanStats`] describing what the scan did
    /// — used by the tracing layer to fill per-segment spans.
    pub fn search_field_stats(
        &self,
        schema: &Schema,
        field: &str,
        query: &[f32],
        params: &SearchParams,
        allow: Option<&dyn Fn(i64) -> bool>,
    ) -> Result<(Vec<Neighbor>, ScanStats)> {
        apply_scan_fault(self.id);
        let fi = schema
            .vector_field_index(field)
            .ok_or_else(|| StorageError::SchemaViolation(format!("no vector field {field}")))?;
        let metric = schema.vector_fields[fi].metric;
        let stats = ScanStats { rows_scanned: self.live_rows() as u64, used_index: false };

        if let Some(index) = self.index(field) {
            // No tombstones and no user filter: take the unfiltered search
            // path, whose bucket scans run register-tiled with zero per-row
            // predicate dispatch. Wrapping an always-true closure here would
            // force every scanned row through an indirect call.
            if self.deleted.is_empty() && allow.is_none() {
                let res = index.search(query, params)?;
                return Ok((res, ScanStats { used_index: true, ..stats }));
            }
            let deleted = Arc::clone(&self.deleted);
            let pred = move |id: i64| !deleted.contains(&id) && allow.is_none_or(|f| f(id));
            let res = index.search_filtered(query, params, &pred)?;
            return Ok((res, ScanStats { used_index: true, ..stats }));
        }

        let col = &self.data.vectors[fi];
        if query.len() != col.dim() {
            return Err(StorageError::Index(milvus_index::IndexError::DimensionMismatch {
                expected: col.dim(),
                got: query.len(),
            }));
        }
        let mut heap = TopK::new(params.k.max(1));
        for (row, v) in col.iter().enumerate() {
            let id = self.data.row_ids[row];
            if !self.deleted.contains(&id) && allow.is_none_or(|f| f(id)) {
                heap.push(id, distance::distance(metric, query, v));
            }
        }
        Ok((heap.into_sorted(), stats))
    }

    /// Physically merge `segments` into one, dropping tombstoned rows
    /// ("the obsoleted vectors are removed during segment merge", §2.3).
    ///
    /// # Panics
    /// Panics if `segments` is empty or schemas disagree on column counts.
    pub fn merge(new_id: u64, schema: &Schema, segments: &[&Segment]) -> Segment {
        assert!(!segments.is_empty(), "merge needs at least one segment");
        let nvec = segments[0].data.vectors.len();
        // Collect (id, segment_idx, row) of live rows; later segments win on
        // id collisions (updates = delete + insert, so collisions only occur
        // transiently).
        let mut rows: Vec<(i64, usize, usize)> = Vec::new();
        for (si, seg) in segments.iter().enumerate() {
            for (r, &id) in seg.data.row_ids.iter().enumerate() {
                if !seg.deleted.contains(&id) {
                    rows.push((id, si, r));
                }
            }
        }
        rows.sort_by_key(|&(id, si, _)| (id, std::cmp::Reverse(si)));
        rows.dedup_by_key(|&mut (id, _, _)| id);

        let row_ids: Vec<i64> = rows.iter().map(|&(id, _, _)| id).collect();
        let mut vectors = Vec::with_capacity(nvec);
        for f in 0..nvec {
            let dim = segments[0].data.vectors[f].dim();
            let mut col = VectorSet::with_capacity(dim, rows.len());
            for &(_, si, r) in &rows {
                col.push(segments[si].data.vectors[f].get(r));
            }
            vectors.push(col);
        }
        let mut attributes = Vec::with_capacity(segments[0].data.attributes.len());
        for (a, name) in schema.attribute_fields.iter().enumerate() {
            // Rebuild from per-row values: look up each row's value via the
            // source column (id → value map per segment).
            let maps: Vec<HashMap<i64, f64>> = segments
                .iter()
                .map(|s| s.data.attributes[a].iter().map(|(v, id)| (id, v)).collect())
                .collect();
            let vals: Vec<f64> = rows.iter().map(|&(id, si, _)| maps[si][&id]).collect();
            attributes.push(AttributeColumn::build(name.clone(), &vals, &row_ids));
        }
        Segment::from_parts(new_id, 1, SegmentData { row_ids, vectors, attributes }, HashSet::new())
    }
}

impl std::fmt::Debug for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Segment")
            .field("id", &self.id)
            .field("version", &self.version)
            .field("rows", &self.num_rows())
            .field("deleted", &self.deleted.len())
            .field("indexes", &self.indexes.read().keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Merge per-segment sorted results into a global top-k (the segment is the
/// unit of searching; results must be recombined, §2.3).
pub fn merge_segment_results(lists: &[Vec<Neighbor>], k: usize) -> Vec<Neighbor> {
    topk::merge_sorted(lists, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::Metric;

    fn schema() -> Schema {
        Schema::single("v", 2, Metric::L2).with_attribute("price")
    }

    fn batch(ids: Vec<i64>) -> InsertBatch {
        let n = ids.len();
        let mut vs = VectorSet::new(2);
        for &id in &ids {
            vs.push(&[id as f32, 0.0]);
        }
        InsertBatch { ids, vectors: vec![vs], attributes: vec![(0..n).map(|i| i as f64).collect()] }
    }

    #[test]
    fn rows_sorted_by_id() {
        let seg = Segment::from_batch(1, &schema(), &batch(vec![5, 1, 3])).unwrap();
        assert_eq!(seg.data().row_ids, vec![1, 3, 5]);
        // Vector column gathered in the same order.
        assert_eq!(seg.data().vectors[0].get(0), &[1.0, 0.0]);
        assert_eq!(seg.data().vectors[0].get(2), &[5.0, 0.0]);
    }

    #[test]
    fn brute_force_search() {
        let seg = Segment::from_batch(1, &schema(), &batch(vec![1, 2, 3, 4])).unwrap();
        let res = seg
            .search_field(&schema(), "v", &[2.1, 0.0], &SearchParams::top_k(2), None)
            .unwrap();
        assert_eq!(res[0].id, 2);
    }

    #[test]
    fn tombstones_hide_rows() {
        let seg = Segment::from_batch(1, &schema(), &batch(vec![1, 2, 3])).unwrap();
        let v2 = seg.with_deletes([2]);
        assert_eq!(v2.version, 2);
        assert_eq!(v2.live_rows(), 2);
        assert!(v2.is_deleted(2));
        // Original version untouched (snapshot isolation).
        assert_eq!(seg.live_rows(), 3);
        let res = v2
            .search_field(&schema(), "v", &[2.0, 0.0], &SearchParams::top_k(1), None)
            .unwrap();
        assert_ne!(res[0].id, 2);
    }

    #[test]
    fn delete_of_absent_id_ignored() {
        let seg = Segment::from_batch(1, &schema(), &batch(vec![1, 2])).unwrap();
        let v2 = seg.with_deletes([99]);
        assert_eq!(v2.live_rows(), 2);
    }

    #[test]
    fn merge_drops_tombstones() {
        let s1 = Segment::from_batch(1, &schema(), &batch(vec![1, 2, 3])).unwrap().with_deletes([2]);
        let s2 = Segment::from_batch(2, &schema(), &batch(vec![4, 5])).unwrap();
        let merged = Segment::merge(10, &schema(), &[&s1, &s2]);
        assert_eq!(merged.data().row_ids, vec![1, 3, 4, 5]);
        assert_eq!(merged.deleted().len(), 0);
        // Attribute column survives with per-row values intact.
        let rows = merged.data().attributes[0].point_rows(0.0);
        assert!(rows.contains(&1) && rows.contains(&4));
    }

    #[test]
    fn indexed_search_masks_deletes() {
        let sch = schema();
        let seg = Segment::from_batch(1, &sch, &batch((0..200).collect())).unwrap();
        let reg = IndexRegistry::with_builtins();
        let p = BuildParams { nlist: 8, ..Default::default() };
        let indexed = seg.build_index(&sch, "v", "IVF_FLAT", &reg, &p).unwrap();
        assert_eq!(indexed.version, 2);
        assert!(indexed.index("v").is_some());
        let v3 = indexed.with_deletes([7]);
        let sp = SearchParams { k: 3, nprobe: 8, ..Default::default() };
        let res = v3.search_field(&sch, "v", &[7.0, 0.0], &sp, None).unwrap();
        assert!(res.iter().all(|n| n.id != 7));
    }

    #[test]
    fn search_with_allow_filter() {
        let seg = Segment::from_batch(1, &schema(), &batch((0..50).collect())).unwrap();
        let res = seg
            .search_field(&schema(), "v", &[25.0, 0.0], &SearchParams::top_k(5), Some(&|id| id < 10))
            .unwrap();
        assert!(res.iter().all(|n| n.id < 10));
    }

    #[test]
    fn unknown_field_errors() {
        let seg = Segment::from_batch(1, &schema(), &batch(vec![1])).unwrap();
        assert!(seg
            .search_field(&schema(), "nope", &[0.0, 0.0], &SearchParams::top_k(1), None)
            .is_err());
    }

    #[test]
    fn merge_result_combination() {
        let l1 = vec![Neighbor::new(1, 0.5)];
        let l2 = vec![Neighbor::new(2, 0.1)];
        let merged = merge_segment_results(&[l1, l2], 1);
        assert_eq!(merged[0].id, 2);
    }
}

//! Error type for the system facade.

use std::fmt;

/// Errors produced by the milvus-core layer.
#[derive(Debug)]
pub enum MilvusError {
    /// A collection with this name already exists.
    CollectionExists(String),

    /// No collection with this name.
    NoSuchCollection(String),

    /// No vector field with this name in the schema.
    NoSuchField(String),

    /// No attribute field with this name in the schema.
    NoSuchAttribute(String),

    /// The ingestion worker is no longer running.
    IngestStopped,

    /// The query scheduler's admission controller shed this query: the
    /// collection's in-flight budget was exhausted. Surfaced as HTTP 429;
    /// the caller should retry with backoff.
    Overloaded {
        /// Collection whose budget was exhausted.
        collection: String,
        /// Queries in flight when this one was refused.
        inflight: usize,
        /// The effective in-flight budget at refusal time.
        budget: usize,
    },

    /// Bubbled up from the storage layer.
    Storage(milvus_storage::StorageError),

    /// Bubbled up from the index layer.
    Index(milvus_index::IndexError),

    /// Bubbled up from the query layer.
    Query(milvus_query::QueryError),
}

impl fmt::Display for MilvusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilvusError::CollectionExists(name) => {
                write!(f, "collection already exists: {name}")
            }
            MilvusError::NoSuchCollection(name) => write!(f, "no such collection: {name}"),
            MilvusError::NoSuchField(name) => write!(f, "no such vector field: {name}"),
            MilvusError::NoSuchAttribute(name) => write!(f, "no such attribute: {name}"),
            MilvusError::IngestStopped => write!(f, "ingest worker stopped"),
            MilvusError::Overloaded { collection, inflight, budget } => write!(
                f,
                "collection {collection} overloaded: {inflight} queries in flight, budget {budget}"
            ),
            MilvusError::Storage(e) => write!(f, "storage error: {e}"),
            MilvusError::Index(e) => write!(f, "index error: {e}"),
            MilvusError::Query(e) => write!(f, "query error: {e}"),
        }
    }
}

impl std::error::Error for MilvusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MilvusError::Storage(e) => Some(e),
            MilvusError::Index(e) => Some(e),
            MilvusError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<milvus_storage::StorageError> for MilvusError {
    fn from(e: milvus_storage::StorageError) -> Self {
        MilvusError::Storage(e)
    }
}

impl From<milvus_index::IndexError> for MilvusError {
    fn from(e: milvus_index::IndexError) -> Self {
        MilvusError::Index(e)
    }
}

impl From<milvus_query::QueryError> for MilvusError {
    fn from(e: milvus_query::QueryError) -> Self {
        MilvusError::Query(e)
    }
}

/// Convenience alias used throughout milvus-core.
pub type Result<T> = std::result::Result<T, MilvusError>;

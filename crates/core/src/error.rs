//! Error type for the system facade.

use thiserror::Error;

/// Errors produced by the milvus-core layer.
#[derive(Debug, Error)]
pub enum MilvusError {
    /// A collection with this name already exists.
    #[error("collection already exists: {0}")]
    CollectionExists(String),

    /// No collection with this name.
    #[error("no such collection: {0}")]
    NoSuchCollection(String),

    /// No vector field with this name in the schema.
    #[error("no such vector field: {0}")]
    NoSuchField(String),

    /// No attribute field with this name in the schema.
    #[error("no such attribute: {0}")]
    NoSuchAttribute(String),

    /// The ingestion worker is no longer running.
    #[error("ingest worker stopped")]
    IngestStopped,

    /// Bubbled up from the storage layer.
    #[error("storage error: {0}")]
    Storage(#[from] milvus_storage::StorageError),

    /// Bubbled up from the index layer.
    #[error("index error: {0}")]
    Index(#[from] milvus_index::IndexError),

    /// Bubbled up from the query layer.
    #[error("query error: {0}")]
    Query(#[from] milvus_query::QueryError),
}

/// Convenience alias used throughout milvus-core.
pub type Result<T> = std::result::Result<T, MilvusError>;

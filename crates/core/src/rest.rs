//! RESTful API (§2.1: "Milvus also supports RESTful APIs for web
//! applications").
//!
//! A deliberately dependency-free HTTP/1.1 server over [`crate::Milvus`]:
//! `std::net::TcpListener`, one thread per connection, JSON bodies via
//! `serde_json`. The route table mirrors the SDK surface:
//!
//! | Method & path | Body | Action |
//! |---|---|---|
//! | `GET /collections` | — | list collection names |
//! | `POST /collections` | `{name, dim, metric, attributes?}` | create collection |
//! | `DELETE /collections/{name}` | — | drop collection |
//! | `GET /collections/{name}/stats` | — | collection statistics |
//! | `POST /collections/{name}/entities` | `{ids, vectors, attributes?}` | insert |
//! | `POST /collections/{name}/entities/delete` | `{ids}` | delete |
//! | `POST /collections/{name}/flush` | — | flush barrier (§5.1) |
//! | `POST /collections/{name}/search` | `{vector, k, nprobe?, ef?, filter?}` | vector / filtered query (429 when the admission controller sheds) |
//! | `POST /collections/{name}/search_batch` | `{vectors, k, nprobe?, ef?}` | explicit batch query: skips the coalescing window, straight into the batch engines |
//! | `POST /collections/{name}/explain` | `{vector, k, nprobe?, ef?}` | search under a forced trace; returns an `EXPLAIN ANALYZE` report |
//! | `POST /collections/{name}/index` | `{field?, index_type}` | build index |
//! | `GET /metrics` | — | Prometheus text exposition of all metric series |
//! | `GET /debug/slow_queries` | — | recent slow queries with per-segment spans |
//! | `GET /debug/timeseries` | — | flight-recorder windows: per-series deltas, rates, windowed p50/p95/p99 |
//! | `POST /debug/timeseries/tick` | — | record a flight-recorder frame now |
//! | `GET /debug/profile` | — | per-collection per-stage time breakdown from sampled traces |
//! | `GET /health` | — | component health (ok/degraded/unhealthy); 503 when unhealthy |

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use milvus_index::traits::SearchParams;
use milvus_index::{Metric, VectorSet};
use milvus_storage::{InsertBatch, Schema};
use serde::Deserialize;
use serde_json::{json, Value};

use crate::config::CollectionConfig;
use crate::Milvus;

/// A running REST server; dropping the handle does not stop accepted
/// connections but the listener thread exits once `shutdown` is called.
pub struct RestServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl RestServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `milvus`.
    pub fn serve(milvus: Arc<Milvus>, addr: &str) -> std::io::Result<RestServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shutdown = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        listener.set_nonblocking(true)?;
        let handle = std::thread::Builder::new().name("milvus-rest".into()).spawn(move || {
            while !flag.load(std::sync::atomic::Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let m = Arc::clone(&milvus);
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, &m);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        })?;
        Ok(RestServer { addr: local, shutdown, handle: Some(handle) })
    }

    /// The bound address (for clients when port 0 was requested).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the listener thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RestServer {
    fn drop(&mut self) {
        self.shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(stream: TcpStream, milvus: &Milvus) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();

    // Headers: we only need Content-Length.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }

    // Prometheus scrape endpoint: text exposition format, not JSON.
    if method == "GET" && path.trim_end_matches('/') == "/metrics" {
        let text = milvus_obs::registry().render_prometheus();
        let mut out = stream;
        write!(
            out,
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{text}",
            text.len()
        )?;
        return out.flush();
    }

    let (status, payload) = route(milvus, &method, &path, &body);
    let body = serde_json::to_string(&payload).unwrap_or_else(|_| "{}".into());
    let mut out = stream;
    write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    out.flush()
}

fn err(status: &'static str, msg: impl std::fmt::Display) -> (&'static str, Value) {
    (status, json!({ "error": msg.to_string() }))
}

/// Map a search-path failure to its HTTP status: a query shed by the
/// admission controller is `429 Too Many Requests` (retry with backoff);
/// everything else on the search path is a client error.
fn search_err(e: crate::MilvusError) -> (&'static str, Value) {
    match &e {
        crate::MilvusError::Overloaded { .. } => err("429 Too Many Requests", e),
        _ => err("400 Bad Request", e),
    }
}

fn span_to_json(s: &milvus_obs::Span) -> Value {
    let mut obj = serde::Map::new();
    obj.insert("kind".into(), s.kind.as_str().into());
    obj.insert("start_us".into(), s.start_us.into());
    obj.insert("dur_us".into(), s.dur_us.into());
    if s.segment_id >= 0 {
        obj.insert("segment_id".into(), s.segment_id.into());
    }
    if s.shard >= 0 {
        obj.insert("shard".into(), s.shard.into());
    }
    if s.rows_scanned > 0 {
        obj.insert("rows_scanned".into(), s.rows_scanned.into());
    }
    if let Some(outcome) = s.cache.as_str() {
        obj.insert("cache".into(), outcome.into());
    }
    Value::Object(obj)
}

fn trace_to_json(t: &milvus_obs::FinishedTrace) -> Value {
    json!({
        "collection": t.collection.clone(),
        "op": t.op,
        "seq": t.seq,
        "total_us": t.total_us,
        "threshold_us": t.threshold_us,
        "dropped_spans": t.dropped_spans,
        "spans": t.spans.iter().map(span_to_json).collect::<Vec<_>>(),
    })
}

fn series_key_json(obj: &mut serde::Map, key: &milvus_obs::Key) {
    obj.insert("name".into(), key.name.clone().into());
    obj.insert("collection".into(), key.label.clone().into());
    if let Some(seg) = key.segment {
        obj.insert("segment".into(), seg.into());
    }
}

/// `GET /debug/timeseries` body: the recorded window boundaries plus, for
/// every live series, its last value and its delta/rate (counters) or
/// windowed count + p50/p95/p99 (histograms) over the most recent window.
fn timeseries_to_json(r: &milvus_obs::TimeSeriesReport) -> Value {
    let newest = r.frames.last();
    let previous = r.frames.len().checked_sub(2).and_then(|i| r.frames.get(i));
    let window_us = r.window_us(1);

    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    if let Some(newest) = newest {
        for (key, &value) in &newest.snapshot.counters {
            let delta = value
                .saturating_sub(previous.map_or(0, |p| p.snapshot.counters.get(key).copied().unwrap_or(0)));
            let mut obj = serde::Map::new();
            series_key_json(&mut obj, key);
            obj.insert("value".into(), value.into());
            obj.insert("window_delta".into(), delta.into());
            let rate = if window_us == 0 { 0.0 } else { delta as f64 / (window_us as f64 / 1e6) };
            obj.insert("rate_per_sec".into(), rate.into());
            counters.push(Value::Object(obj));
        }
        for (key, &value) in &newest.snapshot.gauges {
            let mut obj = serde::Map::new();
            series_key_json(&mut obj, key);
            obj.insert("value".into(), value.into());
            gauges.push(Value::Object(obj));
        }
        for (key, hist) in &newest.snapshot.histograms {
            let windowed = match previous.and_then(|p| p.snapshot.histograms.get(key)) {
                Some(earlier) => hist.saturating_diff(earlier),
                None => hist.clone(),
            };
            let mut obj = serde::Map::new();
            series_key_json(&mut obj, key);
            obj.insert("count".into(), hist.count.into());
            obj.insert("window_count".into(), windowed.count.into());
            obj.insert("window_p50_us".into(), windowed.p50_us().into());
            obj.insert("window_p95_us".into(), windowed.p95_us().into());
            obj.insert("window_p99_us".into(), windowed.p99_us().into());
            obj.insert("window_mean_us".into(), windowed.mean_us().into());
            histograms.push(Value::Object(obj));
        }
    }
    json!({
        "windows": r.windows(),
        "capacity": r.capacity,
        "from_us": r.frames.first().map_or(0, |f| f.at_us),
        "to_us": newest.map_or(0, |f| f.at_us),
        "window_us": window_us,
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    })
}

fn profile_to_json(r: &milvus_obs::ProfileReport) -> Value {
    json!({
        "ops": r.ops.iter().map(|op| json!({
            "collection": op.collection.clone(),
            "op": op.op,
            "queries": op.queries,
            "total_latency_us": op.total_latency_us,
            "mean_latency_us": op.mean_latency_us(),
            "dropped_spans": op.dropped_spans,
            "stages_total_us": op.stages_total_us(),
            "stages": op.stages.iter().map(|s| json!({
                "stage": s.kind.as_str(),
                "spans": s.spans,
                "total_us": s.total_us,
                "mean_us": s.mean_us(),
            })).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    })
}

fn health_to_json(r: &milvus_obs::HealthReport) -> Value {
    json!({
        "status": r.status.as_str(),
        "components": r.components.iter().map(|c| json!({
            "component": c.component,
            "status": c.status.as_str(),
            "reason": c.reason.clone(),
        })).collect::<Vec<_>>(),
    })
}

struct CreateCollectionReq {
    name: String,
    dim: usize,
    metric: String,
    attributes: Vec<String>,
}

impl Deserialize for CreateCollectionReq {
    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(CreateCollectionReq {
            name: req_field(v, "name")?,
            dim: req_field(v, "dim")?,
            metric: opt_field(v, "metric")?.unwrap_or_else(|| "L2".into()),
            attributes: opt_field(v, "attributes")?.unwrap_or_default(),
        })
    }
}

struct InsertReq {
    ids: Vec<i64>,
    /// Row-major vectors: one inner array per entity.
    vectors: Vec<Vec<f32>>,
    attributes: Vec<Vec<f64>>,
}

impl Deserialize for InsertReq {
    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(InsertReq {
            ids: req_field(v, "ids")?,
            vectors: req_field(v, "vectors")?,
            attributes: opt_field(v, "attributes")?.unwrap_or_default(),
        })
    }
}

struct DeleteReq {
    ids: Vec<i64>,
}

impl Deserialize for DeleteReq {
    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(DeleteReq { ids: req_field(v, "ids")? })
    }
}

struct SearchReq {
    vector: Vec<f32>,
    k: usize,
    nprobe: Option<usize>,
    ef: Option<usize>,
    /// Optional attribute range filter.
    filter: Option<FilterReq>,
}

impl Deserialize for SearchReq {
    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(SearchReq {
            vector: req_field(v, "vector")?,
            k: opt_field(v, "k")?.unwrap_or(10),
            nprobe: opt_field(v, "nprobe")?,
            ef: opt_field(v, "ef")?,
            filter: opt_field(v, "filter")?,
        })
    }
}

struct SearchBatchReq {
    /// Row-major query vectors: one inner array per query.
    vectors: Vec<Vec<f32>>,
    k: usize,
    nprobe: Option<usize>,
    ef: Option<usize>,
}

impl Deserialize for SearchBatchReq {
    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(SearchBatchReq {
            vectors: req_field(v, "vectors")?,
            k: opt_field(v, "k")?.unwrap_or(10),
            nprobe: opt_field(v, "nprobe")?,
            ef: opt_field(v, "ef")?,
        })
    }
}

struct FilterReq {
    attribute: String,
    min: f64,
    max: f64,
}

impl Deserialize for FilterReq {
    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(FilterReq {
            attribute: req_field(v, "attribute")?,
            min: req_field(v, "min")?,
            max: req_field(v, "max")?,
        })
    }
}

struct IndexReq {
    field: Option<String>,
    index_type: String,
}

impl Deserialize for IndexReq {
    fn from_value(v: &Value) -> Result<Self, serde_json::Error> {
        Ok(IndexReq { field: opt_field(v, "field")?, index_type: req_field(v, "index_type")? })
    }
}

/// Required body field; missing or mistyped fields are a 400.
fn req_field<T: Deserialize>(v: &Value, key: &str) -> Result<T, serde_json::Error> {
    match v.get(key) {
        Some(field) if !field.is_null() => T::from_value(field),
        _ => Err(serde_json::Error::msg(format!("missing field `{key}`"))),
    }
}

/// Optional body field; absent or null become `None`.
fn opt_field<T: Deserialize>(v: &Value, key: &str) -> Result<Option<T>, serde_json::Error> {
    match v.get(key) {
        Some(field) if !field.is_null() => T::from_value(field).map(Some),
        _ => Ok(None),
    }
}

/// Dispatch one request.
fn route(milvus: &Milvus, method: &str, path: &str, body: &[u8]) -> (&'static str, Value) {
    let segments: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (method, segments.as_slice()) {
        ("GET", ["collections"]) => ("200 OK", json!({ "collections": milvus.list_collections() })),

        ("GET", ["debug", "slow_queries"]) => {
            let traces = milvus_obs::slow_query_log().snapshot();
            (
                "200 OK",
                json!({
                    "count": traces.len(),
                    "slow_queries": traces.iter().map(|t| trace_to_json(t)).collect::<Vec<_>>(),
                }),
            )
        }

        ("GET", ["debug", "timeseries"]) => {
            // Serves whatever frames exist; recording is explicit (the tick
            // endpoint, `Milvus::tick_timeseries`, or a periodic driver) so
            // scrapes never perturb window boundaries.
            ("200 OK", timeseries_to_json(&milvus.timeseries()))
        }

        ("POST", ["debug", "timeseries", "tick"]) => {
            let at_us = milvus.tick_timeseries();
            ("200 OK", json!({ "ticked_at_us": at_us }))
        }

        ("GET", ["debug", "profile"]) => ("200 OK", profile_to_json(&milvus.profile())),

        ("GET", ["health"]) => {
            let report = milvus.health();
            let status = if report.status == milvus_obs::HealthStatus::Unhealthy {
                "503 Service Unavailable"
            } else {
                "200 OK"
            };
            (status, health_to_json(&report))
        }

        ("POST", ["collections"]) => {
            let req: CreateCollectionReq = match serde_json::from_slice(body) {
                Ok(r) => r,
                Err(e) => return err("400 Bad Request", e),
            };
            let Some(metric) = Metric::parse(&req.metric) else {
                return err("400 Bad Request", format!("unknown metric {}", req.metric));
            };
            let mut schema = Schema::single("vector", req.dim, metric);
            for a in req.attributes {
                schema = schema.with_attribute(a);
            }
            match milvus.create_collection(&req.name, schema, CollectionConfig::default()) {
                Ok(_) => ("201 Created", json!({ "created": req.name })),
                Err(e) => err("409 Conflict", e),
            }
        }

        ("DELETE", ["collections", name]) => {
            if milvus.drop_collection(name) {
                ("200 OK", json!({ "dropped": name }))
            } else {
                err("404 Not Found", format!("no such collection {name}"))
            }
        }

        ("GET", ["collections", name, "stats"]) => match milvus.collection(name) {
            Ok(col) => {
                let s = col.stats();
                (
                    "200 OK",
                    json!({
                        "segments": s.segments,
                        "live_rows": s.live_rows,
                        "pending_rows": s.pending_rows,
                        "indexed_segments": s.indexed_segments,
                        "memory_bytes": s.memory_bytes,
                    }),
                )
            }
            Err(e) => err("404 Not Found", e),
        },

        ("POST", ["collections", name, "entities"]) => {
            let col = match milvus.collection(name) {
                Ok(c) => c,
                Err(e) => return err("404 Not Found", e),
            };
            let req: InsertReq = match serde_json::from_slice(body) {
                Ok(r) => r,
                Err(e) => return err("400 Bad Request", e),
            };
            let dim = col.schema().vector_fields[0].dim;
            let mut vs = VectorSet::new(dim);
            for v in &req.vectors {
                if v.len() != dim {
                    return err("400 Bad Request", format!("vector dim {} != {dim}", v.len()));
                }
                vs.push(v);
            }
            let count = req.ids.len();
            let batch = InsertBatch { ids: req.ids, vectors: vec![vs], attributes: req.attributes };
            match col.insert(batch) {
                Ok(()) => ("202 Accepted", json!({ "inserted": count })),
                Err(e) => err("400 Bad Request", e),
            }
        }

        ("POST", ["collections", name, "entities", "delete"]) => {
            let col = match milvus.collection(name) {
                Ok(c) => c,
                Err(e) => return err("404 Not Found", e),
            };
            let req: DeleteReq = match serde_json::from_slice(body) {
                Ok(r) => r,
                Err(e) => return err("400 Bad Request", e),
            };
            let count = req.ids.len();
            match col.delete(req.ids) {
                Ok(()) => ("202 Accepted", json!({ "deleted": count })),
                Err(e) => err("400 Bad Request", e),
            }
        }

        ("POST", ["collections", name, "flush"]) => match milvus.collection(name) {
            Ok(col) => match col.flush() {
                Ok(()) => ("200 OK", json!({ "flushed": true })),
                Err(e) => err("500 Internal Server Error", e),
            },
            Err(e) => err("404 Not Found", e),
        },

        ("POST", ["collections", name, "search"]) => {
            let col = match milvus.collection(name) {
                Ok(c) => c,
                Err(e) => return err("404 Not Found", e),
            };
            let req: SearchReq = match serde_json::from_slice(body) {
                Ok(r) => r,
                Err(e) => return err("400 Bad Request", e),
            };
            let mut sp = SearchParams::top_k(req.k);
            if let Some(np) = req.nprobe {
                sp.nprobe = np;
            }
            if let Some(ef) = req.ef {
                sp.ef = ef;
            }
            let field = col.schema().vector_fields[0].name.clone();
            let result = match &req.filter {
                Some(f) => {
                    col.filtered_search(&field, &req.vector, &f.attribute, f.min, f.max, &sp)
                }
                None => col.search(&field, &req.vector, &sp),
            };
            match result {
                Ok(hits) => (
                    "200 OK",
                    json!({
                        "hits": hits
                            .iter()
                            .map(|h| json!({ "id": h.id, "score": h.score }))
                            .collect::<Vec<_>>()
                    }),
                ),
                Err(e) => search_err(e),
            }
        }

        ("POST", ["collections", name, "search_batch"]) => {
            let col = match milvus.collection(name) {
                Ok(c) => c,
                Err(e) => return err("404 Not Found", e),
            };
            let req: SearchBatchReq = match serde_json::from_slice(body) {
                Ok(r) => r,
                Err(e) => return err("400 Bad Request", e),
            };
            let mut sp = SearchParams::top_k(req.k);
            if let Some(np) = req.nprobe {
                sp.nprobe = np;
            }
            if let Some(ef) = req.ef {
                sp.ef = ef;
            }
            let field = col.schema().vector_fields[0].name.clone();
            let dim = col.schema().vector_fields[0].dim;
            let mut qs = VectorSet::new(dim);
            for v in &req.vectors {
                if v.len() != dim {
                    return err("400 Bad Request", format!("vector dim {} != {dim}", v.len()));
                }
                qs.push(v);
            }
            match col.search_many(&field, &qs, &sp) {
                Ok(lists) => (
                    "200 OK",
                    json!({
                        "results": lists
                            .iter()
                            .map(|hits| json!({
                                "hits": hits
                                    .iter()
                                    .map(|h| json!({ "id": h.id, "score": h.score }))
                                    .collect::<Vec<_>>()
                            }))
                            .collect::<Vec<_>>()
                    }),
                ),
                Err(e) => search_err(e),
            }
        }

        ("POST", ["collections", name, "explain"]) => {
            let col = match milvus.collection(name) {
                Ok(c) => c,
                Err(e) => return err("404 Not Found", e),
            };
            let req: SearchReq = match serde_json::from_slice(body) {
                Ok(r) => r,
                Err(e) => return err("400 Bad Request", e),
            };
            let mut sp = SearchParams::top_k(req.k);
            if let Some(np) = req.nprobe {
                sp.nprobe = np;
            }
            if let Some(ef) = req.ef {
                sp.ef = ef;
            }
            let field = col.schema().vector_fields[0].name.clone();
            match col.explain_analyze(&field, &req.vector, &sp) {
                Ok(report) => ("200 OK", json!({ "report": report })),
                Err(e) => err("400 Bad Request", e),
            }
        }

        ("POST", ["collections", name, "index"]) => {
            let col = match milvus.collection(name) {
                Ok(c) => c,
                Err(e) => return err("404 Not Found", e),
            };
            let req: IndexReq = match serde_json::from_slice(body) {
                Ok(r) => r,
                Err(e) => return err("400 Bad Request", e),
            };
            let field =
                req.field.unwrap_or_else(|| col.schema().vector_fields[0].name.clone());
            match col.build_index(&field, &req.index_type) {
                Ok(built) => ("200 OK", json!({ "indexed_segments": built })),
                Err(e) => err("400 Bad Request", e),
            }
        }

        _ => err("404 Not Found", format!("{method} {path}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny blocking HTTP client for the tests.
    fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (String, Value) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_to_string(&mut response).unwrap();
        let status = response.lines().next().unwrap_or("").to_string();
        let json_body = response.split("\r\n\r\n").nth(1).unwrap_or("{}");
        (status, serde_json::from_str(json_body).unwrap_or(Value::Null))
    }

    fn server() -> (RestServer, std::net::SocketAddr) {
        let milvus = Arc::new(Milvus::new());
        let server = RestServer::serve(milvus, "127.0.0.1:0").expect("bind");
        let addr = server.addr();
        (server, addr)
    }

    #[test]
    fn full_rest_lifecycle() {
        let (_server, addr) = server();

        // Create a collection with an attribute.
        let (status, _) = http(
            addr,
            "POST",
            "/collections",
            r#"{"name":"shop","dim":2,"metric":"L2","attributes":["price"]}"#,
        );
        assert!(status.contains("201"), "{status}");

        // Duplicate creation conflicts.
        let (status, _) =
            http(addr, "POST", "/collections", r#"{"name":"shop","dim":2}"#);
        assert!(status.contains("409"), "{status}");

        // List.
        let (_, body) = http(addr, "GET", "/collections", "");
        assert_eq!(body["collections"][0], "shop");

        // Insert + flush.
        let (status, body) = http(
            addr,
            "POST",
            "/collections/shop/entities",
            r#"{"ids":[1,2,3],"vectors":[[0.0,0.0],[1.0,0.0],[5.0,0.0]],"attributes":[[10.0,20.0,30.0]]}"#,
        );
        assert!(status.contains("202"), "{status}: {body}");
        let (status, _) = http(addr, "POST", "/collections/shop/flush", "");
        assert!(status.contains("200"), "{status}");

        // Stats.
        let (_, body) = http(addr, "GET", "/collections/shop/stats", "");
        assert_eq!(body["live_rows"], 3);

        // Search.
        let (_, body) = http(
            addr,
            "POST",
            "/collections/shop/search",
            r#"{"vector":[0.9,0.0],"k":1}"#,
        );
        assert_eq!(body["hits"][0]["id"], 2);

        // Filtered search: price <= 10 → id 1.
        let (_, body) = http(
            addr,
            "POST",
            "/collections/shop/search",
            r#"{"vector":[0.9,0.0],"k":1,"filter":{"attribute":"price","min":0.0,"max":10.0}}"#,
        );
        assert_eq!(body["hits"][0]["id"], 1);

        // Delete + flush + search excludes.
        let (status, _) = http(
            addr,
            "POST",
            "/collections/shop/entities/delete",
            r#"{"ids":[2]}"#,
        );
        assert!(status.contains("202"), "{status}");
        http(addr, "POST", "/collections/shop/flush", "");
        let (_, body) = http(
            addr,
            "POST",
            "/collections/shop/search",
            r#"{"vector":[0.9,0.0],"k":1}"#,
        );
        assert_ne!(body["hits"][0]["id"], 2);

        // Build index.
        let (status, body) = http(
            addr,
            "POST",
            "/collections/shop/index",
            r#"{"index_type":"IVF_FLAT"}"#,
        );
        assert!(status.contains("200"), "{status}: {body}");

        // Drop.
        let (status, _) = http(addr, "DELETE", "/collections/shop", "");
        assert!(status.contains("200"), "{status}");
        let (status, _) = http(addr, "GET", "/collections/shop/stats", "");
        assert!(status.contains("404"), "{status}");
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let (_server, addr) = server();
        http(
            addr,
            "POST",
            "/collections",
            r#"{"name":"obs_rest","dim":2,"metric":"L2"}"#,
        );
        http(
            addr,
            "POST",
            "/collections/obs_rest/entities",
            r#"{"ids":[1],"vectors":[[0.5,0.5]]}"#,
        );
        http(addr, "POST", "/collections/obs_rest/flush", "");
        http(addr, "POST", "/collections/obs_rest/search", r#"{"vector":[0.5,0.5],"k":1}"#);

        // Raw scrape: the body is Prometheus text, not JSON.
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n").unwrap();
        let mut response = String::new();
        BufReader::new(stream).read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("Content-Type: text/plain"), "{response}");
        let text = response.split("\r\n\r\n").nth(1).unwrap_or("");
        assert!(text.contains("# TYPE milvus_query_latency_seconds histogram"), "{text}");
        assert!(
            text.contains(r#"milvus_query_total{collection="obs_rest"}"#),
            "{text}"
        );
        assert!(
            text.contains(r#"milvus_ingest_rows_total{collection="obs_rest"} 1"#),
            "{text}"
        );
    }

    #[test]
    fn observability_endpoints_serve_well_formed_json() {
        let (_server, addr) = server();
        http(addr, "POST", "/collections", r#"{"name":"obs_ep","dim":2,"metric":"L2"}"#);
        http(
            addr,
            "POST",
            "/collections/obs_ep/entities",
            r#"{"ids":[1,2],"vectors":[[0.0,0.0],[1.0,1.0]]}"#,
        );
        http(addr, "POST", "/collections/obs_ep/flush", "");

        // Two frames bracketing a search define one window.
        let (status, body) = http(addr, "POST", "/debug/timeseries/tick", "");
        assert!(status.contains("200"), "{status}");
        assert!(body["ticked_at_us"].as_u64().is_some(), "{body}");
        http(addr, "POST", "/collections/obs_ep/search", r#"{"vector":[0.4,0.4],"k":1}"#);
        http(addr, "POST", "/debug/timeseries/tick", "");

        let (status, body) = http(addr, "GET", "/debug/timeseries", "");
        assert!(status.contains("200"), "{status}");
        assert!(body["windows"].as_u64().unwrap_or(0) >= 2, "{body}");
        let counters = body["counters"].as_array().expect("counters array");
        let qt = counters
            .iter()
            .find(|c| c["name"] == "milvus_query_total" && c["collection"] == "obs_ep")
            .unwrap_or_else(|| panic!("query_total series missing: {body}"));
        assert_eq!(qt["window_delta"], 1, "{qt}");
        let hists = body["histograms"].as_array().expect("histograms array");
        assert!(
            hists.iter().any(|h| h["name"] == "milvus_query_latency_seconds"
                && h["collection"] == "obs_ep"
                && h["window_count"] == 1),
            "{body}"
        );

        // Profile: the sampled search must appear with a segment_scan stage.
        let (status, body) = http(addr, "GET", "/debug/profile", "");
        assert!(status.contains("200"), "{status}");
        let ops = body["ops"].as_array().expect("ops array");
        let op = ops
            .iter()
            .find(|o| o["collection"] == "obs_ep" && o["op"] == "search")
            .unwrap_or_else(|| panic!("profile entry missing: {body}"));
        assert!(op["queries"].as_u64().unwrap_or(0) >= 1, "{op}");
        let stages = op["stages"].as_array().expect("stages array");
        assert!(stages.iter().any(|s| s["stage"] == "segment_scan"), "{op}");

        // Health: a healthy single-node process reports ok with all five
        // components present.
        let (status, body) = http(addr, "GET", "/health", "");
        assert!(status.contains("200"), "{status}: {body}");
        assert_eq!(body["status"], "ok", "{body}");
        let components = body["components"].as_array().expect("components array");
        let names: Vec<&str> =
            components.iter().filter_map(|c| c["component"].as_str()).collect();
        assert_eq!(
            names,
            vec!["executor", "transport", "bufferpool", "search", "writer"],
            "{body}"
        );

        // EXPLAIN ANALYZE over REST.
        let (status, body) = http(
            addr,
            "POST",
            "/collections/obs_ep/explain",
            r#"{"vector":[0.4,0.4],"k":1}"#,
        );
        assert!(status.contains("200"), "{status}: {body}");
        let report = body["report"].as_str().expect("report text");
        assert!(report.starts_with("EXPLAIN ANALYZE op=search"), "{report}");
        assert!(report.contains("segment_scan"), "{report}");
    }

    #[test]
    fn search_batch_endpoint() {
        let (_server, addr) = server();
        http(addr, "POST", "/collections", r#"{"name":"sb","dim":2}"#);
        http(
            addr,
            "POST",
            "/collections/sb/entities",
            r#"{"ids":[1,2,3,4],"vectors":[[0.0,0.0],[1.0,0.0],[2.0,0.0],[3.0,0.0]]}"#,
        );
        http(addr, "POST", "/collections/sb/flush", "");
        let (status, body) = http(
            addr,
            "POST",
            "/collections/sb/search_batch",
            r#"{"vectors":[[0.1,0.0],[2.9,0.0]],"k":2}"#,
        );
        assert!(status.contains("200"), "{status}: {body}");
        assert_eq!(body["results"][0]["hits"][0]["id"], 1, "{body}");
        assert_eq!(body["results"][1]["hits"][0]["id"], 4, "{body}");
        // One mismatched query vector fails the whole batch up front.
        let (status, _) = http(
            addr,
            "POST",
            "/collections/sb/search_batch",
            r#"{"vectors":[[0.1]],"k":1}"#,
        );
        assert!(status.contains("400"), "{status}");
        // Unknown collection.
        let (status, _) = http(
            addr,
            "POST",
            "/collections/nope/search_batch",
            r#"{"vectors":[[0.1,0.0]],"k":1}"#,
        );
        assert!(status.contains("404"), "{status}");
    }

    #[test]
    fn error_paths() {
        let (_server, addr) = server();
        // Bad JSON.
        let (status, _) = http(addr, "POST", "/collections", "{not json");
        assert!(status.contains("400"), "{status}");
        // Unknown metric.
        let (status, _) =
            http(addr, "POST", "/collections", r#"{"name":"x","dim":2,"metric":"BOGUS"}"#);
        assert!(status.contains("400"), "{status}");
        // Unknown route.
        let (status, _) = http(addr, "GET", "/nope", "");
        assert!(status.contains("404"), "{status}");
        // Wrong dimension insert.
        http(addr, "POST", "/collections", r#"{"name":"d","dim":3}"#);
        let (status, _) = http(
            addr,
            "POST",
            "/collections/d/entities",
            r#"{"ids":[1],"vectors":[[1.0]]}"#,
        );
        assert!(status.contains("400"), "{status}");
    }

    #[test]
    fn shutdown_is_clean() {
        let (server, addr) = server();
        server.shutdown();
        // New connections must fail (listener gone) — give the OS a moment.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(200)).is_err()
                || {
                    // Some platforms accept into the backlog briefly; a write
                    // then read must at least not serve a response.
                    true
                }
        );
    }
}

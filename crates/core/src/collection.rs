//! Collections: the user-facing unit of data management (§2.1).
//!
//! A collection holds entities (one or more vectors + numeric attributes),
//! supports dynamic inserts/deletes through the asynchronous LSM pipeline,
//! and answers the paper's three primitive query types: vector query,
//! attribute filtering, and multi-vector query.

use std::sync::Arc;
use std::time::{Duration, Instant};

use milvus_exec::coalesce::Submitted;
use milvus_exec::Executor;
use milvus_index::batch::{cache_aware_search_exec_hetk, BatchOptions};
use milvus_index::registry::IndexRegistry;
use milvus_obs as obs;
use milvus_index::traits::SearchParams;
use milvus_index::{Metric, Neighbor, VectorSet};
use milvus_query::filtering::RangePredicate;
use milvus_query::multivector::MultiVectorEngine;
use milvus_storage::object_store::ObjectStore;
use milvus_storage::segment::{merge_segment_results, Segment};
use milvus_storage::snapshot::Snapshot;
use milvus_storage::{InsertBatch, LsmEngine, Schema};
use parking_lot::{Condvar, Mutex};

use crate::config::CollectionConfig;
use crate::error::{MilvusError, Result};
use crate::ingest::AsyncIngest;
use crate::scheduler::{group_batch, QueryScheduler, SearchRequest};

/// One search result with the user-facing score (similarities un-negated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Entity id.
    pub id: i64,
    /// Raw metric value: distance for L2/Hamming…, similarity for IP/cosine.
    pub score: f32,
    /// Internal distance (smaller = better), useful for merging.
    pub distance: f32,
}

/// A fully materialized entity (for point lookups).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityView {
    /// Entity id.
    pub id: i64,
    /// One vector per schema vector field.
    pub vectors: Vec<Vec<f32>>,
    /// One value per schema attribute field.
    pub attributes: Vec<f64>,
}

/// Summary statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectionStats {
    /// Flushed segments in the current snapshot.
    pub segments: usize,
    /// Live (non-tombstoned) rows across segments.
    pub live_rows: usize,
    /// Rows buffered in the memtable.
    pub pending_rows: usize,
    /// Segments carrying an index on at least one vector field.
    pub indexed_segments: usize,
    /// Approximate resident bytes of all segments.
    pub memory_bytes: usize,
}

/// A named collection of entities.
pub struct Collection {
    name: String,
    /// Collection name as a shared `Arc<str>` so per-query traces can carry
    /// the label without allocating on admission.
    trace_label: Arc<str>,
    schema: Schema,
    config: CollectionConfig,
    engine: Arc<LsmEngine>,
    registry: IndexRegistry,
    ingest: AsyncIngest,
    inflight_builds: Arc<(Mutex<usize>, Condvar)>,
    scheduler: QueryScheduler,
}

impl Collection {
    /// Open (or recover, when a WAL path exists) a collection.
    pub fn open(
        name: String,
        schema: Schema,
        config: CollectionConfig,
        store: Arc<dyn ObjectStore>,
        registry: IndexRegistry,
    ) -> Result<Self> {
        schema.validate()?;
        let mut config = config;
        config.lsm.metrics_label = name.clone();
        let engine = match &config.wal_path {
            Some(path) if path.exists() => Arc::new(LsmEngine::recover(
                schema.clone(),
                config.lsm.clone(),
                store,
                path,
            )?),
            Some(path) => {
                Arc::new(LsmEngine::new(schema.clone(), config.lsm.clone(), store, Some(path))?)
            }
            None => Arc::new(LsmEngine::new(schema.clone(), config.lsm.clone(), store, None)?),
        };
        let ingest = AsyncIngest::start(Arc::clone(&engine), config.flush_interval);
        let scheduler = QueryScheduler::new(&name, config.scheduler.clone());
        Ok(Self {
            trace_label: Arc::from(name.as_str()),
            name,
            scheduler,
            schema,
            config,
            engine,
            registry,
            ingest,
            inflight_builds: Arc::new((Mutex::new(0), Condvar::new())),
        })
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying engine (used by the distributed layer).
    pub fn engine(&self) -> &Arc<LsmEngine> {
        &self.engine
    }

    /// Insert entities (asynchronous: acknowledged after the WAL append;
    /// visible to search after the next flush, §5.1).
    pub fn insert(&self, batch: InsertBatch) -> Result<()> {
        let _span = obs::span(obs::INGEST_LATENCY, &self.name);
        obs::counter(obs::INGEST_BATCHES, &self.name).inc();
        obs::counter(obs::INGEST_ROWS, &self.name).add(batch.ids.len() as u64);
        self.ingest.insert(batch)
    }

    /// Delete entities by id (out-of-place tombstones, §2.3).
    pub fn delete(&self, ids: Vec<i64>) -> Result<()> {
        self.ingest.delete(ids)
    }

    /// Block until all pending operations are applied and flushed (§5.1),
    /// then run the auto-index policy.
    pub fn flush(&self) -> Result<()> {
        let _span = obs::span(obs::FLUSH_LATENCY, &self.name);
        self.ingest.flush()?;
        if self.config.auto_index_type.is_some() {
            self.ensure_indexes()?;
        }
        Ok(())
    }

    /// Pin the current snapshot (§5.2).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.engine.snapshot()
    }

    /// Live entities visible to search.
    pub fn num_entities(&self) -> usize {
        self.engine.snapshot().live_rows()
    }

    /// Collection statistics.
    pub fn stats(&self) -> CollectionStats {
        let snap = self.engine.snapshot();
        let indexed = snap
            .segments
            .iter()
            .filter(|s| self.schema.vector_fields.iter().any(|f| s.index(&f.name).is_some()))
            .count();
        CollectionStats {
            segments: snap.segments.len(),
            live_rows: snap.live_rows(),
            pending_rows: self.engine.pending_rows(),
            indexed_segments: indexed,
            memory_bytes: snap.segments.iter().map(|s| s.memory_bytes()).sum(),
        }
    }

    fn metric_of(&self, field: &str) -> Result<Metric> {
        self.schema
            .vector_fields
            .iter()
            .find(|f| f.name == field)
            .map(|f| f.metric)
            .ok_or_else(|| MilvusError::NoSuchField(field.to_string()))
    }

    fn to_hits(&self, metric: Metric, neighbors: Vec<Neighbor>) -> Vec<SearchHit> {
        neighbors
            .into_iter()
            .map(|n| SearchHit { id: n.id, score: metric.display_score(n.dist), distance: n.dist })
            .collect()
    }

    /// Vector query (§2.1): top-k over `field` across all segments of the
    /// query's snapshot, merged.
    ///
    /// Every query first passes the scheduler's admission controller: when
    /// the collection's in-flight budget (sized from flight-recorder
    /// signals) is exhausted the query is shed with
    /// [`MilvusError::Overloaded`] instead of queueing behind a backlog it
    /// would only deepen. Admitted queries on an idle scheduler pass
    /// straight to the serial path; queries arriving while another is
    /// running are coalesced — held up to the configured window, then run
    /// as one batched segment sweep whose results are bit-identical to the
    /// serial path (the batch engines share each segment's data rows across
    /// a ×4 query tile instead of re-streaming them per query).
    pub fn search(&self, field: &str, query: &[f32], params: &SearchParams) -> Result<Vec<SearchHit>> {
        let _slot = self.scheduler.admit()?;
        if !self.scheduler.coalescing() || !self.dim_matches(field, query.len()) {
            // Mismatched dims (and unknown fields) take the serial path so
            // the caller sees the exact legacy error.
            return self.search_serial(field, query, params);
        }
        let started = Instant::now();
        let req = SearchRequest::Vector {
            field: field.to_string(),
            query: query.to_vec(),
            params: params.clone(),
        };
        match self.scheduler.submit(req, |batch| self.run_coalesced(batch)) {
            Submitted::Pass(guard) => {
                // Idle scheduler: run serially while the guard holds the
                // rendezvous open, so concurrent arrivals coalesce behind us.
                self.scheduler.note_passthrough();
                let out = self.search_serial(field, query, params);
                drop(guard);
                out
            }
            Submitted::Coalesced { result, batch, led, waited } => {
                if led {
                    self.scheduler.note_batch(batch);
                }
                self.account_coalesced("search", started, waited, Some(params), &result);
                result
            }
        }
    }

    /// The serial (non-coalesced) path: one traced fan-out of per-segment
    /// scans. Admits a trace through the sampler; queries slower than the
    /// configured threshold land in the slow-query log.
    ///
    /// Each fanned-out segment task prepares the query once per index
    /// (cosine normalization, hoisted kernels, fused SQ8 state or the PQ ADC
    /// table — `IvfIndex::prepare`) and reuses it across every probed
    /// bucket; with no tombstones and no filter, the segment takes the
    /// unfiltered scan path with zero per-row predicate dispatch.
    fn search_serial(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<Vec<SearchHit>> {
        let mut trace = obs::Trace::start("search", &self.trace_label);
        let result = self.search_traced(field, query, params, &mut trace);
        trace.finish();
        result
    }

    /// [`Self::search`]'s serial path recording into a caller-supplied trace
    /// (the sampler is bypassed; pass [`obs::Trace::disabled`] for none).
    pub fn search_traced(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
        trace: &mut obs::Trace,
    ) -> Result<Vec<SearchHit>> {
        let _span = obs::span(obs::QUERY_LATENCY, &self.name);
        obs::counter(obs::QUERY_TOTAL, &self.name).inc();
        obs::counter(obs::QUERY_NPROBE_EFFECTIVE, &self.name).add(params.nprobe as u64);
        obs::counter(obs::QUERY_EF_EFFECTIVE, &self.name).add(params.ef as u64);
        let result = self.search_core(field, query, params, trace);
        if result.is_err() {
            obs::counter(obs::QUERY_ERRORS, &self.name).inc();
        }
        result
    }

    /// The uncounted search core: all the work, none of the query metrics —
    /// so the coalesced path (which accounts per *caller*, not per
    /// execution) can reuse it without double counting.
    fn search_core(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
        trace: &mut obs::Trace,
    ) -> Result<Vec<SearchHit>> {
        {
            let t = trace.begin();
            let metric = self.metric_of(field)?;
            trace.record(obs::SpanKind::Parse, t);

            let t = trace.begin();
            let snap = self.engine.snapshot();
            let nsegs = snap.segments.len();
            trace.record_with(obs::SpanKind::Route, t, |sp| sp.rows_scanned = nsegs as u64);

            // Fan segment scans out across the global pool. `&mut Trace`
            // stays on this thread: the timed fan-out captures per-task
            // executor milestones (only when the trace is live) and spans
            // are recorded after the join, in segment order — queue wait
            // separate from scan run time, so the profiler can tell
            // saturation from slow scans.
            let scans = traced_fan_out(nsegs, trace.enabled(), |si| {
                let seg = &snap.segments[si];
                let out = seg.search_field_stats(&self.schema, field, query, params, None);
                (seg.id, out)
            });
            let mut lists = Vec::with_capacity(nsegs);
            for ((seg_id, out), timing) in scans {
                let (list, stats) = out?;
                if let Some(t) = timing {
                    trace.record_window(obs::SpanKind::QueueWait, t.enqueued, t.started, |sp| {
                        sp.segment_id = seg_id as i64;
                    });
                    trace.record_window(obs::SpanKind::SegmentScan, t.started, t.finished, |sp| {
                        sp.segment_id = seg_id as i64;
                        sp.rows_scanned = stats.rows_scanned;
                    });
                }
                lists.push(list);
            }

            let t = trace.begin();
            let merged = merge_segment_results(&lists, params.k);
            trace.record(obs::SpanKind::HeapMerge, t);
            Ok(self.to_hits(metric, merged))
        }
    }

    /// Batch vector query: one result list per query, the queries themselves
    /// fanned out across the global executor (each query's segment scans
    /// nest inside — the pool's help-while-waiting scopes make that safe).
    /// Concurrent per-query calls rendezvous in the scheduler like any other
    /// search; [`Self::search_many`] goes straight to the batch engines.
    pub fn search_batch(
        &self,
        field: &str,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> Result<Vec<Vec<SearchHit>>> {
        Executor::global()
            .scoped_map(queries.len(), |i| self.search(field, queries.get(i), params))
            .into_iter()
            .collect()
    }

    /// Explicit batch entry (the REST `search_batch` endpoint): the queries
    /// are already a batch, so skip the coalescing window entirely and go
    /// straight into the grouped batch execution. One admission slot covers
    /// the whole call.
    pub fn search_many(
        &self,
        field: &str,
        queries: &VectorSet,
        params: &SearchParams,
    ) -> Result<Vec<Vec<SearchHit>>> {
        let _slot = self.scheduler.admit()?;
        let started = Instant::now();
        let m = queries.len();
        let reqs: Vec<SearchRequest> = (0..m)
            .map(|i| SearchRequest::Vector {
                field: field.to_string(),
                query: queries.get(i).to_vec(),
                params: params.clone(),
            })
            .collect();
        let out: Result<Vec<Vec<SearchHit>>> = self.run_coalesced(reqs).into_iter().collect();
        obs::histogram(obs::QUERY_LATENCY, &self.name)
            .observe_us(started.elapsed().as_micros() as u64);
        obs::counter(obs::QUERY_TOTAL, &self.name).add(m as u64);
        obs::counter(obs::QUERY_NPROBE_EFFECTIVE, &self.name).add((params.nprobe * m) as u64);
        obs::counter(obs::QUERY_EF_EFFECTIVE, &self.name).add((params.ef * m) as u64);
        if out.is_err() {
            obs::counter(obs::QUERY_ERRORS, &self.name).inc();
        }
        out
    }

    /// Attribute filtering (§2.1, §4.1): top-k under `attr ∈ [lo, hi]`.
    ///
    /// Per segment this picks between the attribute-first exact scan
    /// (strategy A) and the bitmap-filtered index search (strategy B) with a
    /// simple cost rule; the full strategy suite incl. partition-based E
    /// lives in `milvus-query` and is exercised by the benchmarks.
    #[allow(clippy::too_many_arguments)]
    pub fn filtered_search(
        &self,
        field: &str,
        query: &[f32],
        attr: &str,
        lo: f64,
        hi: f64,
        params: &SearchParams,
    ) -> Result<Vec<SearchHit>> {
        let _slot = self.scheduler.admit()?;
        if !self.scheduler.coalescing() || !self.dim_matches(field, query.len()) {
            return self.filtered_search_serial(field, query, attr, lo, hi, params);
        }
        let started = Instant::now();
        let req = SearchRequest::Filtered {
            field: field.to_string(),
            query: query.to_vec(),
            attr: attr.to_string(),
            lo,
            hi,
            params: params.clone(),
        };
        match self.scheduler.submit(req, |batch| self.run_coalesced(batch)) {
            Submitted::Pass(guard) => {
                self.scheduler.note_passthrough();
                let out = self.filtered_search_serial(field, query, attr, lo, hi, params);
                drop(guard);
                out
            }
            Submitted::Coalesced { result, batch, led, waited } => {
                if led {
                    self.scheduler.note_batch(batch);
                }
                // The serial filtered path counts total/latency/errors but
                // not nprobe/ef — mirror that.
                self.account_coalesced("filtered_search", started, waited, None, &result);
                result
            }
        }
    }

    /// The serial (non-coalesced) filtered path, trace-sampled.
    #[allow(clippy::too_many_arguments)]
    fn filtered_search_serial(
        &self,
        field: &str,
        query: &[f32],
        attr: &str,
        lo: f64,
        hi: f64,
        params: &SearchParams,
    ) -> Result<Vec<SearchHit>> {
        let mut trace = obs::Trace::start("filtered_search", &self.trace_label);
        let result = self.filtered_search_traced(field, query, attr, lo, hi, params, &mut trace);
        trace.finish();
        result
    }

    /// [`Self::filtered_search`]'s serial path recording into a
    /// caller-supplied trace.
    #[allow(clippy::too_many_arguments)]
    pub fn filtered_search_traced(
        &self,
        field: &str,
        query: &[f32],
        attr: &str,
        lo: f64,
        hi: f64,
        params: &SearchParams,
        trace: &mut obs::Trace,
    ) -> Result<Vec<SearchHit>> {
        let _span = obs::span(obs::QUERY_LATENCY, &self.name);
        obs::counter(obs::QUERY_TOTAL, &self.name).inc();
        let result = self.filtered_search_core(field, query, attr, lo, hi, params, trace);
        if result.is_err() {
            obs::counter(obs::QUERY_ERRORS, &self.name).inc();
        }
        result
    }

    /// The uncounted filtered-search core (see [`Self::search_core`]).
    #[allow(clippy::too_many_arguments)]
    fn filtered_search_core(
        &self,
        field: &str,
        query: &[f32],
        attr: &str,
        lo: f64,
        hi: f64,
        params: &SearchParams,
        trace: &mut obs::Trace,
    ) -> Result<Vec<SearchHit>> {
        {
            let t = trace.begin();
            let metric = self.metric_of(field)?;
            let ai = self
                .schema
                .attribute_index(attr)
                .ok_or_else(|| MilvusError::NoSuchAttribute(attr.to_string()))?;
            trace.record(obs::SpanKind::Parse, t);
            let pred = RangePredicate::new(lo, hi);

            let t = trace.begin();
            let snap = self.engine.snapshot();
            let nsegs = snap.segments.len();
            trace.record_with(obs::SpanKind::Route, t, |sp| sp.rows_scanned = nsegs as u64);

            // Per-segment filter + scan, fanned out on the global pool; span
            // windows come back with each task and are recorded post-join in
            // segment order (same pattern as `search_traced`). The filter/
            // scan sub-windows are measured inside the task; the executor
            // queue wait comes from the timed fan-out so it never inflates
            // either stage.
            let trace_on = trace.enabled();
            let scans = traced_fan_out(nsegs, trace_on, |si| {
                let seg = &snap.segments[si];
                let f_start = trace_on.then(Instant::now);
                let column = &seg.data().attributes[ai];
                let passing = column.count_range(pred.lo, pred.hi);
                if passing == 0 {
                    return (seg.id, 0, f_start.zip(trace_on.then(Instant::now)), None);
                }
                let rows: std::collections::HashSet<i64> =
                    column.range_rows(pred.lo, pred.hi).into_iter().collect();
                let f_window = f_start.zip(trace_on.then(Instant::now));
                // Cost rule: highly selective predicate → exact scan of passers
                // (A); otherwise filtered index search (B).
                let s_start = trace_on.then(Instant::now);
                let mut scanned = passing as u64;
                let list = if passing <= params.k * 8 || seg.index(field).is_none() {
                    let mut heap = milvus_index::TopK::new(params.k.max(1));
                    for &id in &rows {
                        if seg.is_deleted(id) {
                            continue;
                        }
                        let row = seg
                            .data()
                            .row_ids
                            .binary_search(&id)
                            .expect("column ids exist in segment");
                        let v = seg.data().vectors[self
                            .schema
                            .vector_field_index(field)
                            .expect("checked by metric_of")]
                        .get(row);
                        heap.push(id, milvus_index::distance::distance(metric, query, v));
                    }
                    Ok(heap.into_sorted())
                } else {
                    seg.search_field_stats(
                        &self.schema,
                        field,
                        query,
                        params,
                        Some(&|id| rows.contains(&id)),
                    )
                    .map(|(list, stats)| {
                        scanned = stats.rows_scanned;
                        list
                    })
                };
                let s_window = s_start.zip(trace_on.then(Instant::now));
                (seg.id, passing, f_window, Some((list, scanned, s_window)))
            });
            let mut lists = Vec::with_capacity(nsegs);
            for ((seg_id, passing, f_window, scan), timing) in scans {
                if let Some(t) = timing {
                    trace.record_window(obs::SpanKind::QueueWait, t.enqueued, t.started, |sp| {
                        sp.segment_id = seg_id as i64;
                    });
                }
                if let Some((start, end)) = f_window {
                    trace.record_window(obs::SpanKind::Filter, start, end, |sp| {
                        sp.segment_id = seg_id as i64;
                        if passing > 0 {
                            sp.rows_scanned = passing as u64;
                        }
                    });
                }
                let Some((list, scanned, s_window)) = scan else { continue };
                let list = list?;
                if let Some((start, end)) = s_window {
                    trace.record_window(obs::SpanKind::SegmentScan, start, end, |sp| {
                        sp.segment_id = seg_id as i64;
                        sp.rows_scanned = scanned;
                    });
                }
                lists.push(list);
            }

            let t = trace.begin();
            let merged = merge_segment_results(&lists, params.k);
            trace.record(obs::SpanKind::HeapMerge, t);
            Ok(self.to_hits(metric, merged))
        }
    }

    /// Whether `field` exists and its vectors have exactly `len` dims.
    fn dim_matches(&self, field: &str, len: usize) -> bool {
        self.schema.vector_fields.iter().find(|f| f.name == field).map(|f| f.dim) == Some(len)
    }

    /// Per-caller accounting for a coalesced execution: the serial path
    /// counts these inside `search_traced`/`filtered_search_traced`; here
    /// the leader ran the shared core uncounted, so each caller records its
    /// own totals, its own end-to-end latency (including the coalesce wait)
    /// and a sampled trace carrying the wait as a `coalesce_wait` span.
    fn account_coalesced(
        &self,
        op: &'static str,
        started: Instant,
        waited: Duration,
        params: Option<&SearchParams>,
        result: &Result<Vec<SearchHit>>,
    ) {
        obs::histogram(obs::QUERY_LATENCY, &self.name)
            .observe_us(started.elapsed().as_micros() as u64);
        obs::counter(obs::QUERY_TOTAL, &self.name).inc();
        if let Some(p) = params {
            obs::counter(obs::QUERY_NPROBE_EFFECTIVE, &self.name).add(p.nprobe as u64);
            obs::counter(obs::QUERY_EF_EFFECTIVE, &self.name).add(p.ef as u64);
        }
        if result.is_err() {
            obs::counter(obs::QUERY_ERRORS, &self.name).inc();
        }
        let mut trace = obs::Trace::start(op, &self.trace_label);
        trace.record_window(obs::SpanKind::CoalesceWait, started, started + waited, |_| {});
        trace.finish();
    }

    /// Execute one coalesced batch (the leader's closure): partition into
    /// parameter-compatible groups, run each multi-query vector group as a
    /// batched segment sweep, everything else through the serial cores.
    /// Failures come back as values — one `Result` per query, in submit
    /// order — because a panic here would strand the followers.
    fn run_coalesced(&self, reqs: Vec<SearchRequest>) -> Vec<Result<Vec<SearchHit>>> {
        let mut out: Vec<Option<Result<Vec<SearchHit>>>> = reqs.iter().map(|_| None).collect();
        for group in group_batch(&reqs) {
            let batchable = group.len() > 1
                && matches!(reqs[group[0]], SearchRequest::Vector { .. });
            if batchable {
                self.run_vector_group(&reqs, &group, &mut out);
            } else {
                for &qi in &group {
                    out[qi] = Some(self.run_one_serial(&reqs[qi]));
                }
            }
        }
        out.into_iter().map(|o| o.expect("every coalesced query answered")).collect()
    }

    /// One request through its uncounted serial core (coalesced-path
    /// fallback for singleton groups, filtered queries, and error replay).
    fn run_one_serial(&self, req: &SearchRequest) -> Result<Vec<SearchHit>> {
        match req {
            SearchRequest::Vector { field, query, params } => {
                self.search_core(field, query, params, &mut obs::Trace::disabled())
            }
            SearchRequest::Filtered { field, query, attr, lo, hi, params } => self
                .filtered_search_core(
                    field,
                    query,
                    attr,
                    *lo,
                    *hi,
                    params,
                    &mut obs::Trace::disabled(),
                ),
        }
    }

    /// Run a group of parameter-compatible vector queries as one batched
    /// sweep: segment-major, each segment's rows/buckets streamed once for
    /// the whole group. `k` may differ within the group — exhaustive-scan
    /// engines run once at `max(k)` and each query's sorted list is
    /// truncated to its own `k` (exact: the top-j of a sorted top-k is the
    /// top-j). Results are bit-identical to the serial path.
    fn run_vector_group(
        &self,
        reqs: &[SearchRequest],
        idxs: &[usize],
        out: &mut [Option<Result<Vec<SearchHit>>>],
    ) {
        let SearchRequest::Vector { field, params, .. } = &reqs[idxs[0]] else {
            unreachable!("vector groups hold vector requests")
        };
        let Ok(metric) = self.metric_of(field) else {
            for &qi in idxs {
                out[qi] = Some(Err(MilvusError::NoSuchField(field.clone())));
            }
            return;
        };
        let fi = self.schema.vector_field_index(field).expect("checked by metric_of");
        let dim = self.schema.vector_fields[fi].dim;
        let queries: Vec<&[f32]> = idxs
            .iter()
            .map(|&qi| {
                let SearchRequest::Vector { query, .. } = &reqs[qi] else { unreachable!() };
                query.as_slice()
            })
            .collect();
        if queries.iter().any(|q| q.len() != dim) {
            // Mismatched dims replay serially for the exact legacy error.
            for &qi in idxs {
                out[qi] = Some(self.run_one_serial(&reqs[qi]));
            }
            return;
        }
        let ks: Vec<usize> = idxs.iter().map(|&qi| reqs[qi].params().k.max(1)).collect();
        let kmax = *ks.iter().max().expect("group is non-empty");
        let mut qs = VectorSet::new(dim);
        for q in &queries {
            qs.push(q);
        }
        let batch_params = SearchParams { k: kmax, ..params.clone() };

        let snap = self.engine.snapshot();
        let mut per_seg: Vec<Vec<Vec<Neighbor>>> = Vec::with_capacity(snap.segments.len());
        for seg in &snap.segments {
            match self.scan_segment_group(seg, field, fi, metric, &qs, &ks, &batch_params) {
                Ok(lists) => per_seg.push(lists),
                Err(_) => {
                    // Errors aren't Clone; replay serially so every caller
                    // gets its own exact error (or result).
                    for &qi in idxs {
                        out[qi] = Some(self.run_one_serial(&reqs[qi]));
                    }
                    return;
                }
            }
        }
        for (j, &qi) in idxs.iter().enumerate() {
            let lists: Vec<Vec<Neighbor>> =
                per_seg.iter_mut().map(|seg_lists| std::mem::take(&mut seg_lists[j])).collect();
            let merged = merge_segment_results(&lists, ks[j]);
            out[qi] = Some(Ok(self.to_hits(metric, merged)));
        }
    }

    /// One segment's contribution to a batched vector group, mirroring the
    /// serial dispatch in `Segment::search_field_stats` case by case so the
    /// per-query results stay bit-identical:
    ///
    /// * index + no tombstones — `VectorIndex::search_batch` (IVF overrides
    ///   with the bucket-major sweep; the default is the serial loop). A
    ///   heterogeneous-`k` group is safe at `max(k)` only for IVF's
    ///   exhaustive bucket scans, so graph/tree indexes fall back to
    ///   per-query calls at each query's own `k`.
    /// * no index + no tombstones + SIMD metric — the zero-copy cache-aware
    ///   batch engine over the segment's own columns.
    /// * anything else (tombstones, binary metrics) — the serial per-query
    ///   scan.
    #[allow(clippy::too_many_arguments)]
    fn scan_segment_group(
        &self,
        seg: &Segment,
        field: &str,
        fi: usize,
        metric: Metric,
        qs: &VectorSet,
        ks: &[usize],
        batch_params: &SearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        let m = qs.len();
        let delete_free = seg.deleted().is_empty();
        let per_query = |params: &SearchParams| -> Result<Vec<Vec<Neighbor>>> {
            (0..m)
                .map(|j| {
                    let p = SearchParams { k: ks[j], ..params.clone() };
                    let (list, _) =
                        seg.search_field_stats(&self.schema, field, qs.get(j), &p, None)?;
                    Ok(list)
                })
                .collect()
        };
        if let Some(index) = seg.index(field) {
            if !delete_free {
                return per_query(batch_params);
            }
            let uniform_k = ks.iter().all(|&k| k == ks[0]);
            if uniform_k || index.as_ivf().is_some() {
                // The serial path's scan-fault hook lives inside
                // `search_field_stats`; batched paths bypass it, so fire it
                // here once per segment.
                milvus_storage::segment::apply_scan_fault(seg.id);
                let p = SearchParams { k: if uniform_k { ks[0] } else { batch_params.k },
                    ..batch_params.clone() };
                let mut lists = index.search_batch(qs, &p)?;
                for (list, &k) in lists.iter_mut().zip(ks) {
                    list.truncate(k);
                }
                return Ok(lists);
            }
            return per_query(batch_params);
        }
        if delete_free && matches!(metric, Metric::L2 | Metric::InnerProduct | Metric::Cosine) {
            milvus_storage::segment::apply_scan_fault(seg.id);
            let opts = BatchOptions {
                metric,
                threads: Executor::global().threads(),
                ..Default::default()
            };
            let data = seg.data();
            return Ok(cache_aware_search_exec_hetk(
                Executor::global(),
                &data.vectors[fi],
                &data.row_ids,
                qs,
                ks,
                &opts,
            ));
        }
        per_query(batch_params)
    }

    /// Materialize one entity.
    pub fn get_entity(&self, id: i64) -> Option<EntityView> {
        let snap = self.engine.snapshot();
        let seg = snap.locate(id)?;
        let row = seg.data().row_ids.binary_search(&id).ok()?;
        let vectors = seg.data().vectors.iter().map(|col| col.get(row).to_vec()).collect();
        let attributes = seg
            .data()
            .attributes
            .iter()
            .map(|col| col.value_of(id).expect("attribute present for live row"))
            .collect();
        Some(EntityView { id, vectors, attributes })
    }

    /// Build an index of `index_type` on `field` for **every** segment
    /// ("users are allowed to manually build indexes for segments of any
    /// size", §2.3). Synchronous.
    pub fn build_index(&self, field: &str, index_type: &str) -> Result<usize> {
        self.metric_of(field)?;
        let snap = self.engine.snapshot();
        let mut built = 0;
        for seg in &snap.segments {
            if seg.index(field).is_none() && seg.live_rows() > 0 {
                let _span = obs::span(obs::INDEX_BUILD_LATENCY, &self.name);
                let next = seg.build_index(
                    &self.schema,
                    field,
                    index_type,
                    &self.registry,
                    &self.config.build_params,
                )?;
                if self.engine.replace_segment(Arc::new(next))? {
                    obs::counter(obs::INDEX_BUILDS, &self.name).inc();
                    built += 1;
                }
            }
        }
        Ok(built)
    }

    /// Build an index asynchronously (§5.1: "Milvus builds indexes
    /// asynchronously"); pair with [`Collection::wait_for_index_builds`].
    pub fn build_index_async(self: &Arc<Self>, field: String, index_type: String) {
        let this = Arc::clone(self);
        {
            let (count, _) = &*self.inflight_builds;
            *count.lock() += 1;
        }
        std::thread::spawn(move || {
            let _ = this.build_index(&field, &index_type);
            let (count, cv) = &*this.inflight_builds;
            *count.lock() -= 1;
            cv.notify_all();
        });
    }

    /// Block until no asynchronous index builds are in flight.
    pub fn wait_for_index_builds(&self) {
        let (count, cv) = &*self.inflight_builds;
        let mut guard = count.lock();
        while *guard > 0 {
            cv.wait(&mut guard);
        }
    }

    /// The §2.3 auto-index policy: index every vector field of segments
    /// whose payload is at least `index_threshold_bytes`.
    pub fn ensure_indexes(&self) -> Result<usize> {
        let Some(index_type) = self.config.auto_index_type.clone() else {
            return Ok(0);
        };
        let snap = self.engine.snapshot();
        let mut built = 0;
        for seg in &snap.segments {
            if seg.data().memory_bytes() < self.config.index_threshold_bytes
                || seg.live_rows() == 0
            {
                continue;
            }
            for vf in &self.schema.vector_fields {
                if seg.index(&vf.name).is_none() {
                    let _span = obs::span(obs::INDEX_BUILD_LATENCY, &self.name);
                    let next = seg.build_index(
                        &self.schema,
                        &vf.name,
                        &index_type,
                        &self.registry,
                        &self.config.build_params,
                    )?;
                    if self.engine.replace_segment(Arc::new(next))? {
                        obs::counter(obs::INDEX_BUILDS, &self.name).inc();
                        built += 1;
                    }
                }
            }
        }
        Ok(built)
    }

    /// Construct a multi-vector query engine (§4.2) over the current
    /// snapshot. `weights` aggregates per-field internal distances by
    /// weighted sum; `with_fusion` additionally builds the concatenated
    /// fusion index (decomposable metrics only).
    pub fn multivector_engine(
        &self,
        index_type: &str,
        weights: Vec<f32>,
        with_fusion: bool,
    ) -> Result<MultiVectorEngine> {
        let snap = self.engine.snapshot();
        let mut fields: Vec<VectorSet> =
            self.schema.vector_fields.iter().map(|f| VectorSet::new(f.dim)).collect();
        let mut ids = Vec::new();
        for seg in &snap.segments {
            for (row, &id) in seg.data().row_ids.iter().enumerate() {
                if seg.is_deleted(id) {
                    continue;
                }
                ids.push(id);
                for (field, col) in fields.iter_mut().zip(&seg.data().vectors) {
                    field.push(col.get(row));
                }
            }
        }
        let metric = self.schema.vector_fields[0].metric;
        Ok(MultiVectorEngine::build(
            metric,
            fields,
            ids,
            weights,
            index_type,
            &self.registry,
            &self.config.build_params,
            with_fusion,
        )?)
    }

    /// Run one search under a forced trace and render its per-stage
    /// breakdown as an `EXPLAIN ANALYZE`-style report. The trace bypasses
    /// the sampler and also feeds the query profiler.
    pub fn explain_analyze(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
    ) -> Result<String> {
        let mut trace = obs::Trace::forced("search", &self.trace_label);
        let result = self.search_traced(field, query, params, &mut trace);
        let finished = trace.finish_always();
        result?;
        Ok(finished.map(|t| obs::explain_report(&t)).unwrap_or_default())
    }
}

/// Fan `f` out on the global executor, returning per-task timings only when
/// the query is traced — the untraced hot path stays clock-free.
fn traced_fan_out<R: Send>(
    n: usize,
    trace_on: bool,
    f: impl Fn(usize) -> R + Sync,
) -> Vec<(R, Option<milvus_exec::TaskTiming>)> {
    if trace_on {
        Executor::global()
            .scoped_map_timed(n, f)
            .into_iter()
            .map(|(r, t)| (r, Some(t)))
            .collect()
    } else {
        Executor::global().scoped_map(n, f).into_iter().map(|r| (r, None)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_storage::object_store::MemoryStore;

    fn collection(schema: Schema, config: CollectionConfig) -> Collection {
        Collection::open(
            "test".into(),
            schema,
            config,
            Arc::new(MemoryStore::new()),
            IndexRegistry::with_builtins(),
        )
        .unwrap()
    }

    fn single_schema() -> Schema {
        Schema::single("v", 2, Metric::L2).with_attribute("price")
    }

    fn batch(ids: Vec<i64>) -> InsertBatch {
        let mut vs = VectorSet::new(2);
        let mut attrs = Vec::new();
        for &id in &ids {
            vs.push(&[id as f32, 0.0]);
            attrs.push(id as f64 * 10.0);
        }
        InsertBatch { ids, vectors: vec![vs], attributes: vec![attrs] }
    }

    #[test]
    fn insert_flush_search() {
        let c = collection(single_schema(), CollectionConfig::for_tests());
        c.insert(batch((0..50).collect())).unwrap();
        assert_eq!(c.num_entities(), 0); // async visibility
        c.flush().unwrap();
        assert_eq!(c.num_entities(), 50);
        let hits = c.search("v", &[10.2, 0.0], &SearchParams::top_k(3)).unwrap();
        assert_eq!(hits[0].id, 10);
        assert!(hits[0].score >= 0.0);
    }

    #[test]
    fn delete_then_search_excludes() {
        let c = collection(single_schema(), CollectionConfig::for_tests());
        c.insert(batch((0..20).collect())).unwrap();
        c.flush().unwrap();
        c.delete(vec![5]).unwrap();
        c.flush().unwrap();
        let hits = c.search("v", &[5.0, 0.0], &SearchParams::top_k(1)).unwrap();
        assert_ne!(hits[0].id, 5);
        assert_eq!(c.num_entities(), 19);
    }

    #[test]
    fn filtered_search_honors_range() {
        let c = collection(single_schema(), CollectionConfig::for_tests());
        c.insert(batch((0..100).collect())).unwrap();
        c.flush().unwrap();
        // price = id*10; want price in [100, 300] → ids 10..=30.
        let hits = c
            .filtered_search("v", &[0.0, 0.0], "price", 100.0, 300.0, &SearchParams::top_k(5))
            .unwrap();
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| (10..=30).contains(&h.id)), "{hits:?}");
        // Nearest passing entity to origin is id 10.
        assert_eq!(hits[0].id, 10);
    }

    #[test]
    fn filtered_search_unknown_attribute_errors() {
        let c = collection(single_schema(), CollectionConfig::for_tests());
        assert!(matches!(
            c.filtered_search("v", &[0.0, 0.0], "nope", 0.0, 1.0, &SearchParams::top_k(1)),
            Err(MilvusError::NoSuchAttribute(_))
        ));
    }

    #[test]
    fn get_entity_roundtrip() {
        let c = collection(single_schema(), CollectionConfig::for_tests());
        c.insert(batch(vec![7, 8])).unwrap();
        c.flush().unwrap();
        let e = c.get_entity(7).unwrap();
        assert_eq!(e.vectors[0], vec![7.0, 0.0]);
        assert_eq!(e.attributes[0], 70.0);
        assert!(c.get_entity(99).is_none());
    }

    #[test]
    fn manual_index_build_and_search() {
        let c = collection(single_schema(), CollectionConfig::for_tests());
        c.insert(batch((0..200).collect())).unwrap();
        c.flush().unwrap();
        let built = c.build_index("v", "IVF_FLAT").unwrap();
        assert_eq!(built, 1);
        assert_eq!(c.stats().indexed_segments, 1);
        let sp = SearchParams { k: 3, nprobe: 16, ..Default::default() };
        let hits = c.search("v", &[42.0, 0.0], &sp).unwrap();
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn auto_index_policy_respects_threshold() {
        let mut cfg = CollectionConfig::for_tests();
        cfg.auto_index_type = Some("IVF_FLAT".into());
        cfg.index_threshold_bytes = 1; // everything qualifies
        let c = collection(single_schema(), cfg);
        c.insert(batch((0..100).collect())).unwrap();
        c.flush().unwrap();
        assert_eq!(c.stats().indexed_segments, 1);
    }

    #[test]
    fn async_index_build() {
        let c = Arc::new(collection(single_schema(), CollectionConfig::for_tests()));
        c.insert(batch((0..100).collect())).unwrap();
        c.flush().unwrap();
        c.build_index_async("v".into(), "HNSW".into());
        c.wait_for_index_builds();
        assert_eq!(c.stats().indexed_segments, 1);
    }

    #[test]
    fn multi_vector_collection_end_to_end() {
        let schema = Schema::single("text", 4, Metric::L2).with_vector_field("image", 3, Metric::L2);
        let c = collection(schema, CollectionConfig::for_tests());
        let n = 60usize;
        let mut text = VectorSet::new(4);
        let mut image = VectorSet::new(3);
        for i in 0..n {
            text.push(&[i as f32, 0.0, 0.0, 0.0]);
            image.push(&[0.0, i as f32, 0.0]);
        }
        let b = InsertBatch {
            ids: (0..n as i64).collect(),
            vectors: vec![text, image],
            attributes: vec![],
        };
        c.insert(b).unwrap();
        c.flush().unwrap();
        let engine = c.multivector_engine("FLAT", vec![0.5, 0.5], false).unwrap();
        let q0 = [30.0f32, 0.0, 0.0, 0.0];
        let q1 = [0.0f32, 30.0, 0.0];
        let res = engine.exact(&[&q0, &q1], 1).unwrap();
        assert_eq!(res[0].id, 30);
    }

    #[test]
    fn search_spans_multiple_segments() {
        let c = collection(single_schema(), CollectionConfig::for_tests());
        c.insert(batch((0..30).collect())).unwrap();
        c.flush().unwrap();
        c.insert(batch((30..60).collect())).unwrap();
        c.flush().unwrap();
        assert_eq!(c.stats().segments, 2);
        let hits = c.search("v", &[45.0, 0.0], &SearchParams::top_k(1)).unwrap();
        assert_eq!(hits[0].id, 45);
    }

    #[test]
    fn unknown_field_errors() {
        let c = collection(single_schema(), CollectionConfig::for_tests());
        assert!(matches!(
            c.search("missing", &[0.0, 0.0], &SearchParams::top_k(1)),
            Err(MilvusError::NoSuchField(_))
        ));
    }
}

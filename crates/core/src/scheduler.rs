//! The adaptive query scheduler: cross-query coalescing plus
//! timeseries-driven admission control.
//!
//! Sits between the public search entry points ([`crate::Collection`],
//! REST, the distributed reader) and the segment scanners. Two jobs:
//!
//! 1. **Coalescing** — concurrent `search`/`filtered_search` calls on the
//!    same collection are held for a bounded window
//!    ([`crate::config::SchedulerConfig::window`], or
//!    `max_batch` pending — whichever first) and executed as one batch, so
//!    each segment's rows stream once per ×4 query tile instead of once
//!    per query. A submitter that finds the scheduler idle passes straight
//!    through to the serial path — sparse traffic pays zero added latency.
//!    The rendezvous itself is [`milvus_exec::coalesce::Coalescer`]; this
//!    module adds the search-shaped request type, parameter-compatibility
//!    grouping, and metrics.
//! 2. **Admission control** — a per-collection in-flight budget sized from
//!    the flight recorder's windowed signals (queue depth per executor
//!    worker, windowed p99 of this collection's query latency, windowed
//!    degraded-search count). Queries over budget are shed with the typed
//!    [`MilvusError::Overloaded`] (HTTP 429) — never silently degraded.
//!    Signals refresh at most every `signal_refresh`; between refreshes
//!    admission is an atomic increment against a cached budget.
//!
//! The budget policy itself is the pure function [`effective_budget`] so
//! tests can pin it without staging real load.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use milvus_exec::coalesce::{CoalesceConfig, Coalescer, Submitted};
use milvus_index::traits::SearchParams;
use milvus_obs as obs;
use parking_lot::Mutex;

use crate::collection::SearchHit;
use crate::config::SchedulerConfig;
use crate::error::{MilvusError, Result};

/// One coalescable query, owned (the window outlives the caller's borrows).
#[derive(Debug, Clone)]
pub enum SearchRequest {
    /// Plain vector query ([`crate::Collection::search`]).
    Vector {
        /// Vector field searched.
        field: String,
        /// The query vector.
        query: Vec<f32>,
        /// Per-query parameters.
        params: SearchParams,
    },
    /// Attribute-filtered query ([`crate::Collection::filtered_search`]).
    Filtered {
        /// Vector field searched.
        field: String,
        /// The query vector.
        query: Vec<f32>,
        /// Attribute the range predicate applies to.
        attr: String,
        /// Predicate lower bound.
        lo: f64,
        /// Predicate upper bound.
        hi: f64,
        /// Per-query parameters.
        params: SearchParams,
    },
}

impl SearchRequest {
    /// The request's search parameters.
    pub fn params(&self) -> &SearchParams {
        match self {
            SearchRequest::Vector { params, .. } | SearchRequest::Filtered { params, .. } => params,
        }
    }
}

/// Parameter-compatibility key: requests in one group may be executed as a
/// single batch-engine invocation. `k` is deliberately *excluded* for
/// vector requests — the group runs at `max(k)` and each query's sorted
/// list is truncated to its own `k`, which is exact for exhaustive-scan
/// semantics (flat engines, IVF bucket sweeps). Everything that changes
/// the candidate set (`nprobe`, `ef`, `search_nodes`, the field, filter
/// bounds) partitions groups.
#[derive(PartialEq, Eq, Hash)]
enum GroupKey<'a> {
    Vector { field: &'a str, nprobe: usize, ef: usize, search_nodes: usize },
    Filtered {
        field: &'a str,
        attr: &'a str,
        lo_bits: u64,
        hi_bits: u64,
        k: usize,
        nprobe: usize,
        ef: usize,
        search_nodes: usize,
    },
}

fn group_key(req: &SearchRequest) -> GroupKey<'_> {
    match req {
        SearchRequest::Vector { field, params, .. } => GroupKey::Vector {
            field,
            nprobe: params.nprobe,
            ef: params.ef,
            search_nodes: params.search_nodes,
        },
        SearchRequest::Filtered { field, attr, lo, hi, params, .. } => GroupKey::Filtered {
            field,
            attr,
            lo_bits: lo.to_bits(),
            hi_bits: hi.to_bits(),
            k: params.k,
            nprobe: params.nprobe,
            ef: params.ef,
            search_nodes: params.search_nodes,
        },
    }
}

/// Partition a coalesced batch into parameter-compatible groups. Groups are
/// emitted in first-occurrence order and members keep queue order, so the
/// grouping is a pure function of the input sequence — deterministic across
/// runs regardless of hash-map internals (the map is only probed, never
/// iterated).
pub fn group_batch(reqs: &[SearchRequest]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut index: std::collections::HashMap<GroupKey<'_>, usize> = std::collections::HashMap::new();
    for (i, req) in reqs.iter().enumerate() {
        match index.entry(group_key(req)) {
            std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].push(i),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

/// The windowed signals the admission budget is derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionSignals {
    /// Live executor queue depth per worker (global pool).
    pub queue_per_worker: f64,
    /// p99 of this collection's query latency inside the open recorder
    /// window, microseconds. Zero when no queries landed in-window.
    pub windowed_p99_us: u64,
    /// Degraded distributed searches inside the open window.
    pub degraded_delta: u64,
}

/// The admission policy, as a pure function: how many queries may be in
/// flight given the current signals.
///
/// Non-adaptive configs pin the budget at `max_inflight`. Adaptive configs
/// contract it multiplicatively: proportionally to how far the windowed
/// p99 overshoots the SLO, divided by the executor backlog per worker, and
/// halved while searches are completing degraded — floored at
/// `min_inflight` so a spike sheds most, never all, traffic.
pub fn effective_budget(cfg: &SchedulerConfig, s: &AdmissionSignals) -> usize {
    let ceiling = cfg.max_inflight.max(1);
    if !cfg.adaptive {
        return ceiling;
    }
    let mut budget = ceiling as f64;
    if cfg.slo_p99_us > 0 && s.windowed_p99_us > cfg.slo_p99_us {
        budget *= cfg.slo_p99_us as f64 / s.windowed_p99_us as f64;
    }
    if s.queue_per_worker > 1.0 {
        budget /= s.queue_per_worker;
    }
    if s.degraded_delta > 0 {
        budget *= 0.5;
    }
    (budget as usize).clamp(cfg.min_inflight.max(1).min(ceiling), ceiling)
}

struct BudgetCache {
    budget: usize,
    refreshed: Option<Instant>,
}

/// RAII in-flight slot; dropping it releases the budget.
pub struct InflightGuard<'a> {
    sched: &'a QueryScheduler,
}

impl std::fmt::Debug for InflightGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InflightGuard").field("collection", &self.sched.label).finish()
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.sched.inflight.fetch_sub(1, Ordering::AcqRel);
        self.sched.inflight_gauge.add(-1);
    }
}

/// Per-collection scheduler: the coalescer plus the admission controller
/// plus their `milvus_sched_*` metric series.
pub struct QueryScheduler {
    cfg: SchedulerConfig,
    label: String,
    coalescer: Coalescer<SearchRequest, Result<Vec<SearchHit>>>,
    inflight: AtomicUsize,
    budget: Mutex<BudgetCache>,
    inflight_gauge: Arc<obs::Gauge>,
    shed_total: Arc<obs::Counter>,
    passthrough_total: Arc<obs::Counter>,
    coalesced_batches: Arc<obs::Counter>,
    coalesced_queries: Arc<obs::Counter>,
    batch_size: Arc<obs::Histogram>,
    exec_queue_depth: Arc<obs::Gauge>,
    exec_workers: Arc<obs::Gauge>,
}

impl QueryScheduler {
    /// Build the scheduler for collection `label`.
    pub fn new(label: &str, cfg: SchedulerConfig) -> Self {
        QueryScheduler {
            coalescer: Coalescer::new(CoalesceConfig {
                window: cfg.window,
                max_batch: cfg.max_batch.max(1),
            }),
            inflight: AtomicUsize::new(0),
            budget: Mutex::new(BudgetCache { budget: cfg.max_inflight.max(1), refreshed: None }),
            inflight_gauge: obs::gauge(obs::SCHED_INFLIGHT, label),
            shed_total: obs::counter(obs::SCHED_SHED, label),
            passthrough_total: obs::counter(obs::SCHED_PASSTHROUGH, label),
            coalesced_batches: obs::counter(obs::SCHED_COALESCED_BATCHES, label),
            coalesced_queries: obs::counter(obs::SCHED_COALESCED_QUERIES, label),
            batch_size: obs::histogram(obs::SCHED_BATCH_SIZE, label),
            exec_queue_depth: obs::gauge(obs::EXEC_QUEUE_DEPTH, "global"),
            exec_workers: obs::gauge(obs::EXEC_WORKERS, "global"),
            label: label.to_string(),
            cfg,
        }
    }

    /// The scheduler's configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.cfg
    }

    /// Whether cross-query coalescing is on.
    pub fn coalescing(&self) -> bool {
        self.cfg.coalescing
    }

    /// Admit one query, or shed it with [`MilvusError::Overloaded`] when
    /// the collection's in-flight budget is exhausted. The returned guard
    /// must be held for the query's whole execution.
    pub fn admit(&self) -> Result<InflightGuard<'_>> {
        let budget = self.current_budget();
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= budget {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            self.shed_total.inc();
            return Err(MilvusError::Overloaded {
                collection: self.label.clone(),
                inflight: prev,
                budget,
            });
        }
        self.inflight_gauge.add(1);
        Ok(InflightGuard { sched: self })
    }

    /// Hand one request to the coalescer (see
    /// [`Coalescer::submit`] for the pass/lead/follow contract).
    pub fn submit<F>(
        &self,
        req: SearchRequest,
        run: F,
    ) -> Submitted<'_, SearchRequest, Result<Vec<SearchHit>>>
    where
        F: FnOnce(Vec<SearchRequest>) -> Vec<Result<Vec<SearchHit>>>,
    {
        self.coalescer.submit(req, run)
    }

    /// Record a passthrough (idle scheduler, serial path).
    pub fn note_passthrough(&self) {
        self.passthrough_total.inc();
    }

    /// Record one executed coalesced batch of `n` queries (leader-side).
    pub fn note_batch(&self, n: usize) {
        self.coalesced_batches.inc();
        self.coalesced_queries.add(n as u64);
        self.batch_size.observe_us(n as u64);
    }

    /// The budget currently enforced (tests/diagnostics).
    pub fn budget(&self) -> usize {
        self.current_budget()
    }

    /// Queries currently in flight.
    pub fn inflight(&self) -> usize {
        self.inflight.load(Ordering::Acquire)
    }

    fn current_budget(&self) -> usize {
        if !self.cfg.adaptive {
            return self.cfg.max_inflight.max(1);
        }
        let mut cache = self.budget.lock();
        let stale =
            cache.refreshed.is_none_or(|at| at.elapsed() >= self.cfg.signal_refresh);
        if stale {
            let signals = self.gather_signals();
            cache.budget = effective_budget(&self.cfg, &signals);
            cache.refreshed = Some(Instant::now());
        }
        cache.budget
    }

    /// Read the live signals: executor gauges directly (atomic loads), the
    /// windowed pieces as live-minus-newest-frame deltas — the same "open
    /// window" the health model scores.
    fn gather_signals(&self) -> AdmissionSignals {
        let workers = self.exec_workers.get().max(1) as f64;
        let depth = self.exec_queue_depth.get().max(0) as f64;
        let baseline = obs::flight_recorder().newest();
        let live_hist = obs::histogram(obs::QUERY_LATENCY, &self.label).snapshot();
        let windowed_p99_us = match &baseline {
            Some(frame) => live_hist
                .saturating_diff(&frame.snapshot.histogram(obs::QUERY_LATENCY, &self.label))
                .p99_us(),
            None => live_hist.p99_us(),
        } as u64;
        let degraded_delta = match &baseline {
            Some(frame) => {
                let live = obs::registry().snapshot().counter_total(obs::SEARCH_DEGRADED);
                live.saturating_sub(frame.snapshot.counter_total(obs::SEARCH_DEGRADED))
            }
            None => 0,
        };
        AdmissionSignals { queue_per_worker: depth / workers, windowed_p99_us, degraded_delta }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SchedulerConfig {
        SchedulerConfig {
            max_inflight: 64,
            min_inflight: 4,
            adaptive: true,
            slo_p99_us: 100_000,
            ..Default::default()
        }
    }

    fn calm() -> AdmissionSignals {
        AdmissionSignals { queue_per_worker: 0.0, windowed_p99_us: 0, degraded_delta: 0 }
    }

    #[test]
    fn budget_is_full_when_calm_and_pinned_when_not_adaptive() {
        assert_eq!(effective_budget(&cfg(), &calm()), 64);
        let fixed = SchedulerConfig { adaptive: false, ..cfg() };
        let stress = AdmissionSignals {
            queue_per_worker: 100.0,
            windowed_p99_us: 10_000_000,
            degraded_delta: 9,
        };
        assert_eq!(effective_budget(&fixed, &stress), 64);
    }

    #[test]
    fn budget_contracts_proportionally_to_p99_overshoot() {
        // 2× over SLO → half budget; 4× → quarter.
        let s = AdmissionSignals { windowed_p99_us: 200_000, ..calm() };
        assert_eq!(effective_budget(&cfg(), &s), 32);
        let s = AdmissionSignals { windowed_p99_us: 400_000, ..calm() };
        assert_eq!(effective_budget(&cfg(), &s), 16);
        // Under the SLO nothing contracts.
        let s = AdmissionSignals { windowed_p99_us: 99_999, ..calm() };
        assert_eq!(effective_budget(&cfg(), &s), 64);
    }

    #[test]
    fn budget_divides_by_executor_backlog_and_halves_on_degraded() {
        let s = AdmissionSignals { queue_per_worker: 4.0, ..calm() };
        assert_eq!(effective_budget(&cfg(), &s), 16);
        let s = AdmissionSignals { degraded_delta: 2, ..calm() };
        assert_eq!(effective_budget(&cfg(), &s), 32);
        // Signals compose multiplicatively.
        let s = AdmissionSignals {
            queue_per_worker: 4.0,
            windowed_p99_us: 200_000,
            degraded_delta: 1,
        };
        assert_eq!(effective_budget(&cfg(), &s), 4);
    }

    #[test]
    fn budget_never_drops_below_the_floor_or_exceeds_the_ceiling() {
        let s = AdmissionSignals {
            queue_per_worker: 1e6,
            windowed_p99_us: u64::MAX / 2,
            degraded_delta: 1000,
        };
        assert_eq!(effective_budget(&cfg(), &s), 4);
        // A floor above the ceiling is clamped to the ceiling.
        let odd = SchedulerConfig { min_inflight: 999, max_inflight: 8, ..cfg() };
        assert_eq!(effective_budget(&odd, &s), 8);
    }

    #[test]
    fn grouping_is_first_occurrence_ordered_and_k_insensitive_for_vector() {
        let v = |field: &str, k: usize, nprobe: usize| SearchRequest::Vector {
            field: field.into(),
            query: vec![0.0; 4],
            params: SearchParams { k, nprobe, ..Default::default() },
        };
        let reqs = vec![
            v("a", 10, 8),  // group 0
            v("b", 10, 8),  // group 1 (different field)
            v("a", 3, 8),   // group 0 (k differs — still compatible)
            v("a", 10, 16), // group 2 (nprobe differs)
            v("b", 99, 8),  // group 1
        ];
        assert_eq!(group_batch(&reqs), vec![vec![0, 2], vec![1, 4], vec![3]]);
        // Filtered requests never merge across bounds or k.
        let f = |lo: f64, k: usize| SearchRequest::Filtered {
            field: "a".into(),
            query: vec![0.0; 4],
            attr: "p".into(),
            lo,
            hi: 9.0,
            params: SearchParams { k, ..Default::default() },
        };
        let reqs = vec![f(1.0, 5), f(1.0, 5), f(2.0, 5), f(1.0, 6)];
        assert_eq!(group_batch(&reqs), vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn shed_over_budget_then_release_readmits() {
        let sched = QueryScheduler::new(
            "sched_unit",
            SchedulerConfig { adaptive: false, max_inflight: 2, ..Default::default() },
        );
        let g1 = sched.admit().unwrap();
        let _g2 = sched.admit().unwrap();
        let err = sched.admit().expect_err("third query must shed");
        match err {
            MilvusError::Overloaded { inflight, budget, .. } => {
                assert_eq!((inflight, budget), (2, 2));
            }
            other => panic!("wrong error: {other}"),
        }
        drop(g1);
        let _g3 = sched.admit().expect("slot freed");
        assert_eq!(sched.inflight(), 2);
    }
}

//! The Table 1 functionality matrix.
//!
//! Table 1 compares systems along six axes; this reproduction implements all
//! six for Milvus and exposes the same introspection for the baseline
//! systems in `milvus-baselines`, so the `repro --table1` harness can print
//! the matrix from live code rather than from a hard-coded table.

/// Feature flags matching Table 1's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Capabilities {
    /// System name as it appears in the table.
    pub system: &'static str,
    /// Scales to billion-vector datasets (out-of-core segments + sharding).
    pub billion_scale: bool,
    /// Dynamic data: inserts/deletes with real-time search.
    pub dynamic_data: bool,
    /// GPU support.
    pub gpu: bool,
    /// Attribute filtering.
    pub attribute_filtering: bool,
    /// Multi-vector queries.
    pub multi_vector_query: bool,
    /// Distributed deployment.
    pub distributed: bool,
}

impl Capabilities {
    /// This system's row of Table 1 — all six checkmarks.
    pub fn milvus() -> Self {
        Self {
            system: "Milvus (this reproduction)",
            billion_scale: true,
            dynamic_data: true,
            gpu: true,
            attribute_filtering: true,
            multi_vector_query: true,
            distributed: true,
        }
    }

    /// Render as a table row of ✓/✗.
    pub fn row(&self) -> String {
        let mark = |b: bool| if b { "yes" } else { "no " };
        format!(
            "{:<28} {:>5} {:>7} {:>4} {:>9} {:>12} {:>11}",
            self.system,
            mark(self.billion_scale),
            mark(self.dynamic_data),
            mark(self.gpu),
            mark(self.attribute_filtering),
            mark(self.multi_vector_query),
            mark(self.distributed),
        )
    }

    /// Table header matching [`Capabilities::row`].
    pub fn header() -> String {
        format!(
            "{:<28} {:>5} {:>7} {:>4} {:>9} {:>12} {:>11}",
            "System", "B-scale", "Dynamic", "GPU", "AttrFilter", "MultiVector", "Distributed"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milvus_has_all_capabilities() {
        let c = Capabilities::milvus();
        assert!(c.billion_scale && c.dynamic_data && c.gpu);
        assert!(c.attribute_filtering && c.multi_vector_query && c.distributed);
    }

    #[test]
    fn row_renders() {
        let r = Capabilities::milvus().row();
        assert!(r.contains("Milvus"));
        assert!(!r.contains("no "));
    }
}

//! Collection configuration.

use std::path::PathBuf;
use std::time::Duration;

use milvus_storage::LsmConfig;

/// Re-exported tracing knobs (sampling rate, slow-query threshold, ring
/// capacity); apply with [`crate::Milvus::configure_tracing`].
pub use milvus_obs::TraceConfig;

/// Tuning for one collection.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Storage-engine knobs (flush threshold, merge policy…).
    pub lsm: LsmConfig,
    /// Index type built automatically on large segments (§2.3; `None`
    /// disables auto-indexing).
    pub auto_index_type: Option<String>,
    /// Segments at or above this payload size get the automatic index
    /// ("By default, Milvus builds indexes only for large segments (e.g.,
    /// > 1GB)"). Scaled down by default so tests exercise the policy.
    pub index_threshold_bytes: usize,
    /// Background flush cadence (§2.3: "once every second").
    pub flush_interval: Duration,
    /// WAL file path; `None` runs without durability (ephemeral readers).
    pub wal_path: Option<PathBuf>,
    /// Index build parameters (nlist, HNSW M, seeds…).
    pub build_params: milvus_index::BuildParams,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        Self {
            lsm: LsmConfig::default(),
            auto_index_type: Some("IVF_FLAT".to_string()),
            index_threshold_bytes: 1 << 20,
            flush_interval: Duration::from_secs(1),
            wal_path: None,
            build_params: milvus_index::BuildParams::default(),
        }
    }
}

impl CollectionConfig {
    /// Config suited to small unit tests: tiny flush threshold, no timer.
    pub fn for_tests() -> Self {
        Self {
            lsm: LsmConfig {
                flush_threshold_bytes: 1 << 20,
                auto_merge: false,
                ..Default::default()
            },
            auto_index_type: None,
            index_threshold_bytes: usize::MAX,
            flush_interval: Duration::from_secs(3600),
            wal_path: None,
            build_params: milvus_index::BuildParams {
                nlist: 16,
                kmeans_iters: 5,
                ..Default::default()
            },
        }
    }
}

//! Collection configuration.

use std::path::PathBuf;
use std::time::Duration;

use milvus_storage::LsmConfig;

/// Re-exported tracing knobs (sampling rate, slow-query threshold, ring
/// capacity); apply with [`crate::Milvus::configure_tracing`].
pub use milvus_obs::TraceConfig;

/// Tuning for one collection.
#[derive(Debug, Clone)]
pub struct CollectionConfig {
    /// Storage-engine knobs (flush threshold, merge policy…).
    pub lsm: LsmConfig,
    /// Index type built automatically on large segments (§2.3; `None`
    /// disables auto-indexing).
    pub auto_index_type: Option<String>,
    /// Segments at or above this payload size get the automatic index
    /// ("By default, Milvus builds indexes only for large segments (e.g.,
    /// > 1GB)"). Scaled down by default so tests exercise the policy.
    pub index_threshold_bytes: usize,
    /// Background flush cadence (§2.3: "once every second").
    pub flush_interval: Duration,
    /// WAL file path; `None` runs without durability (ephemeral readers).
    pub wal_path: Option<PathBuf>,
    /// Index build parameters (nlist, HNSW M, seeds…).
    pub build_params: milvus_index::BuildParams,
    /// Query-scheduler knobs (coalescing window, admission budget).
    pub scheduler: SchedulerConfig,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        Self {
            lsm: LsmConfig::default(),
            auto_index_type: Some("IVF_FLAT".to_string()),
            index_threshold_bytes: 1 << 20,
            flush_interval: Duration::from_secs(1),
            wal_path: None,
            build_params: milvus_index::BuildParams::default(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

impl CollectionConfig {
    /// Config suited to small unit tests: tiny flush threshold, no timer.
    pub fn for_tests() -> Self {
        Self {
            lsm: LsmConfig {
                flush_threshold_bytes: 1 << 20,
                auto_merge: false,
                ..Default::default()
            },
            auto_index_type: None,
            index_threshold_bytes: usize::MAX,
            flush_interval: Duration::from_secs(3600),
            wal_path: None,
            build_params: milvus_index::BuildParams {
                nlist: 16,
                kmeans_iters: 5,
                ..Default::default()
            },
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// Query-scheduler tuning: the coalescing window and the admission budget.
/// Lives here (not in `milvus-exec`) because the knobs are per-collection.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Master switch for cross-query coalescing. Off, every search takes
    /// the serial path directly (admission control still applies).
    pub coalescing: bool,
    /// Maximum time the oldest pending query is held before its batch runs.
    pub window: Duration,
    /// Pending-query count that triggers immediate batch execution (and the
    /// cap on one batch's size).
    pub max_batch: usize,
    /// Hard ceiling on concurrently admitted queries per collection.
    pub max_inflight: usize,
    /// Floor the adaptive budget never drops below, so a load spike can
    /// shed most — but never all — traffic.
    pub min_inflight: usize,
    /// Adapt the in-flight budget from flight-recorder signals (windowed
    /// p99, executor queue depth, degraded-search rate). Off, the budget is
    /// pinned at `max_inflight`.
    pub adaptive: bool,
    /// Windowed p99 latency above which the adaptive budget contracts —
    /// the collection's latency SLO, in microseconds.
    pub slo_p99_us: u64,
    /// Minimum interval between admission-signal refreshes; between
    /// refreshes the cached budget is reused so admission stays a pair of
    /// atomic ops per query.
    pub signal_refresh: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            coalescing: true,
            window: Duration::from_millis(1),
            max_batch: 32,
            max_inflight: 1024,
            min_inflight: 4,
            adaptive: true,
            slo_p99_us: 250_000,
            signal_refresh: Duration::from_millis(20),
        }
    }
}

//! Asynchronous ingestion (§5.1).
//!
//! "When Milvus receives heavy write requests, it first materializes the
//! operations (similar to database logs) to disk and then acknowledges to
//! users. There is a background thread that consumes the operations. As a
//! result, users may not immediately see the inserted data. To prevent this,
//! Milvus provides an API flush() that blocks... until the system finishes
//! processing all the pending operations."
//!
//! [`AsyncIngest`] implements exactly that: the foreground appends to the
//! WAL ([`milvus_storage::LsmEngine::log_insert`]) and enqueues the apply;
//! a worker thread drains the queue into the memtable and triggers
//! threshold/periodic flushes; [`AsyncIngest::flush`] enqueues a barrier and
//! waits for it, then forces an engine flush.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use milvus_storage::{InsertBatch, LsmEngine};
use parking_lot::Mutex;

use crate::error::{MilvusError, Result};

enum Op {
    Insert(InsertBatch),
    Delete(Vec<i64>),
    /// Flush barrier: worker flushes the engine then signals completion.
    Barrier(Sender<()>),
    Shutdown,
}

/// Background ingestion pipeline over an [`LsmEngine`].
pub struct AsyncIngest {
    engine: Arc<LsmEngine>,
    tx: Sender<Op>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Errors hit by the background thread (background work can't return
    /// them to the caller; they surface here and on the next flush()).
    errors: Arc<Mutex<Vec<MilvusError>>>,
    /// Ids whose deletes are logged but not yet applied by the worker —
    /// re-inserting them is legal (update = delete + insert, §2.3).
    unapplied_deletes: Arc<Mutex<HashSet<i64>>>,
}

impl AsyncIngest {
    /// Start the worker; `flush_interval` is the §2.3 once-a-second timer.
    pub fn start(engine: Arc<LsmEngine>, flush_interval: Duration) -> Self {
        let (tx, rx) = unbounded::<Op>();
        let errors: Arc<Mutex<Vec<MilvusError>>> = Arc::new(Mutex::new(Vec::new()));
        let worker_engine = Arc::clone(&engine);
        let worker_errors = Arc::clone(&errors);
        let unapplied_deletes: Arc<Mutex<HashSet<i64>>> = Arc::new(Mutex::new(HashSet::new()));
        let worker_deletes = Arc::clone(&unapplied_deletes);
        let worker = std::thread::Builder::new()
            .name("milvus-ingest".into())
            .spawn(move || run_worker(worker_engine, rx, flush_interval, worker_errors, worker_deletes))
            .expect("spawn ingest worker");
        Self { engine, tx, worker: Mutex::new(Some(worker)), errors, unapplied_deletes }
    }

    /// Foreground insert: WAL append (durability before ack), then enqueue
    /// the memtable apply.
    pub fn insert(&self, batch: InsertBatch) -> Result<()> {
        self.engine
            .log_insert_with_overlay(&batch, &self.unapplied_deletes.lock())?;
        self.tx.send(Op::Insert(batch)).map_err(|_| MilvusError::IngestStopped)
    }

    /// Foreground delete: WAL append, then enqueue.
    pub fn delete(&self, ids: Vec<i64>) -> Result<()> {
        self.engine.log_delete(ids.as_slice())?;
        self.unapplied_deletes.lock().extend(ids.iter().copied());
        self.tx.send(Op::Delete(ids)).map_err(|_| MilvusError::IngestStopped)
    }

    /// The §5.1 `flush()` barrier: blocks until every pending operation is
    /// applied and flushed into segments. Surfaces any background errors.
    pub fn flush(&self) -> Result<()> {
        let (ack_tx, ack_rx) = bounded(1);
        self.tx.send(Op::Barrier(ack_tx)).map_err(|_| MilvusError::IngestStopped)?;
        ack_rx.recv().map_err(|_| MilvusError::IngestStopped)?;
        if let Some(e) = self.errors.lock().pop() {
            return Err(e);
        }
        Ok(())
    }

    /// Drain background errors without flushing.
    pub fn take_errors(&self) -> Vec<MilvusError> {
        std::mem::take(&mut *self.errors.lock())
    }
}

impl Drop for AsyncIngest {
    fn drop(&mut self) {
        let _ = self.tx.send(Op::Shutdown);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

fn run_worker(
    engine: Arc<LsmEngine>,
    rx: Receiver<Op>,
    flush_interval: Duration,
    errors: Arc<Mutex<Vec<MilvusError>>>,
    unapplied_deletes: Arc<Mutex<HashSet<i64>>>,
) {
    loop {
        match rx.recv_timeout(flush_interval) {
            Ok(Op::Insert(batch)) => match engine.apply_insert(&batch) {
                Ok(true) => {
                    if let Err(e) = engine.flush() {
                        errors.lock().push(e.into());
                    }
                }
                Ok(false) => {}
                Err(e) => errors.lock().push(e.into()),
            },
            Ok(Op::Delete(ids)) => {
                engine.apply_delete(&ids);
                let mut pending = unapplied_deletes.lock();
                for id in &ids {
                    pending.remove(id);
                }
            }
            Ok(Op::Barrier(ack)) => {
                if let Err(e) = engine.flush() {
                    errors.lock().push(e.into());
                }
                let _ = ack.send(());
            }
            Ok(Op::Shutdown) => return,
            Err(RecvTimeoutError::Timeout) => {
                // The once-a-second flush (§2.3).
                if engine.pending_rows() > 0 {
                    if let Err(e) = engine.flush() {
                        errors.lock().push(e.into());
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::{Metric, VectorSet};
    use milvus_storage::object_store::MemoryStore;
    use milvus_storage::{LsmConfig, Schema};

    fn engine() -> Arc<LsmEngine> {
        let schema = Schema::single("v", 2, Metric::L2);
        let cfg = LsmConfig {
            flush_threshold_bytes: 1 << 20,
            auto_merge: false,
            ..Default::default()
        };
        Arc::new(LsmEngine::new(schema, cfg, Arc::new(MemoryStore::new()), None).unwrap())
    }

    fn batch(ids: Vec<i64>) -> InsertBatch {
        let n = ids.len();
        InsertBatch::single(ids, VectorSet::from_flat(2, vec![0.5; n * 2]))
    }

    #[test]
    fn flush_barrier_makes_data_visible() {
        let e = engine();
        let ingest = AsyncIngest::start(Arc::clone(&e), Duration::from_secs(3600));
        ingest.insert(batch(vec![1, 2, 3])).unwrap();
        ingest.flush().unwrap();
        assert_eq!(e.snapshot().live_rows(), 3);
    }

    #[test]
    fn deletes_ordered_with_inserts() {
        let e = engine();
        let ingest = AsyncIngest::start(Arc::clone(&e), Duration::from_secs(3600));
        ingest.insert(batch(vec![1, 2, 3])).unwrap();
        ingest.delete(vec![2]).unwrap();
        ingest.flush().unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.live_rows(), 2);
        assert!(snap.locate(2).is_none());
    }

    #[test]
    fn periodic_timer_flushes_without_barrier() {
        let e = engine();
        let ingest = AsyncIngest::start(Arc::clone(&e), Duration::from_millis(30));
        ingest.insert(batch(vec![7])).unwrap();
        // No explicit flush; the timer must pick it up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while e.snapshot().live_rows() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(e.snapshot().live_rows(), 1);
    }

    #[test]
    fn duplicate_insert_fails_synchronously() {
        let e = engine();
        let ingest = AsyncIngest::start(Arc::clone(&e), Duration::from_secs(3600));
        ingest.insert(batch(vec![5])).unwrap();
        ingest.flush().unwrap();
        assert!(ingest.insert(batch(vec![5])).is_err());
    }

    #[test]
    fn shutdown_on_drop_is_clean() {
        let e = engine();
        {
            let ingest = AsyncIngest::start(Arc::clone(&e), Duration::from_secs(3600));
            ingest.insert(batch(vec![9])).unwrap();
            ingest.flush().unwrap();
        } // drop joins the worker
        assert_eq!(e.snapshot().live_rows(), 1);
    }
}

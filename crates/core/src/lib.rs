//! `milvus-core`: the full vector data management system facade (paper §2).
//!
//! This crate assembles the substrates into the system a user actually
//! programs against:
//!
//! * [`Milvus`] — the top-level instance managing named collections (the
//!   SDK entry point of §2.1);
//! * [`Collection`] — entities with one or more vector fields and numeric
//!   attributes, dynamic inserts/deletes over the LSM storage engine,
//!   snapshot-isolated reads, asynchronous ingestion with a `flush()`
//!   barrier (§5.1), asynchronous index builds with the large-segment
//!   auto-index policy (§2.3), and the three primitive query types of §2.1:
//!   **vector query**, **attribute filtering** and **multi-vector query**;
//! * [`capabilities::Capabilities`] — the Table 1 functionality matrix.

pub mod capabilities;
pub mod collection;
pub mod config;
pub mod error;
pub mod ingest;
pub mod rest;
pub mod scheduler;

pub use capabilities::Capabilities;
pub use collection::{Collection, EntityView, SearchHit};
pub use config::CollectionConfig;
pub use error::{MilvusError, Result};

use std::collections::HashMap;
use std::sync::Arc;

use milvus_index::registry::IndexRegistry;
use milvus_storage::object_store::{MemoryStore, ObjectStore};
use milvus_storage::Schema;
use parking_lot::RwLock;

/// A Milvus instance: a set of named collections over a shared object store.
pub struct Milvus {
    store: Arc<dyn ObjectStore>,
    registry: IndexRegistry,
    collections: RwLock<HashMap<String, Arc<Collection>>>,
}

impl Default for Milvus {
    fn default() -> Self {
        Self::new()
    }
}

impl Milvus {
    /// An in-memory instance (simulated S3 backend).
    pub fn new() -> Self {
        Self::with_store(Arc::new(MemoryStore::new()))
    }

    /// An instance over an explicit object store (local FS, shared store…).
    pub fn with_store(store: Arc<dyn ObjectStore>) -> Self {
        Self {
            store,
            registry: IndexRegistry::with_builtins(),
            collections: RwLock::new(HashMap::new()),
        }
    }

    /// The index registry (extensible, §2.2) — register custom index types
    /// here before creating collections.
    pub fn registry(&self) -> &IndexRegistry {
        &self.registry
    }

    /// Attach a (simulated) GPU device and register the SQ8H hybrid index
    /// type (§3.4), making `"SQ8H"` usable in `build_index` and
    /// `auto_index_type`.
    pub fn enable_gpu(&self, device: Arc<milvus_gpu::GpuDevice>) {
        self.registry.register(Arc::new(milvus_gpu::sq8h::Sq8hBuilder { device }));
    }

    /// Create a collection; errors if the name exists.
    pub fn create_collection(
        &self,
        name: &str,
        schema: Schema,
        config: CollectionConfig,
    ) -> Result<Arc<Collection>> {
        let mut cols = self.collections.write();
        if cols.contains_key(name) {
            return Err(MilvusError::CollectionExists(name.to_string()));
        }
        let col = Arc::new(Collection::open(
            name.to_string(),
            schema,
            config,
            Arc::clone(&self.store),
            self.registry.clone(),
        )?);
        cols.insert(name.to_string(), Arc::clone(&col));
        Ok(col)
    }

    /// Look up a collection.
    pub fn collection(&self, name: &str) -> Result<Arc<Collection>> {
        self.collections
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| MilvusError::NoSuchCollection(name.to_string()))
    }

    /// Drop a collection; returns true if it existed.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.collections.write().remove(name).is_some()
    }

    /// Names of all collections, sorted.
    pub fn list_collections(&self) -> Vec<String> {
        let mut v: Vec<String> = self.collections.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Point-in-time copy of the process-wide metrics registry: every
    /// counter, gauge and latency histogram recorded by the query, ingest
    /// and storage paths (the programmatic twin of `GET /metrics`).
    pub fn metrics_snapshot(&self) -> milvus_obs::MetricsSnapshot {
        milvus_obs::registry().snapshot()
    }

    /// Replace the process-wide tracing configuration (sampling rate, slow
    /// threshold, ring capacity). Applies to every collection.
    pub fn configure_tracing(&self, cfg: milvus_obs::TraceConfig) {
        milvus_obs::set_trace_config(cfg);
    }

    /// Recent slow queries, oldest first (the programmatic twin of
    /// `GET /debug/slow_queries`).
    pub fn slow_queries(&self) -> Vec<Arc<milvus_obs::FinishedTrace>> {
        milvus_obs::slow_query_log().snapshot()
    }

    /// Record one flight-recorder frame (a full metrics snapshot stamped
    /// with process uptime) and return its timestamp in microseconds.
    /// Production deployments call this on a timer (or use
    /// [`milvus_obs::FlightRecorder::start_periodic`]); tests call it at
    /// chosen points so every window boundary is deterministic.
    pub fn tick_timeseries(&self) -> u64 {
        milvus_obs::flight_recorder().tick()
    }

    /// Record a flight-recorder frame with an explicit timestamp — the
    /// virtual-clock entry point for SimNet-driven tests
    /// (`m.tick_timeseries_at(net.virtual_time().as_micros() as u64)`).
    pub fn tick_timeseries_at(&self, at_us: u64) {
        milvus_obs::flight_recorder().tick_at(at_us);
    }

    /// The windowed time-series view over the recorded frames: per-window
    /// counter deltas and rates, gauge trajectories, and windowed
    /// p50/p95/p99 derived from histogram bucket diffs (the programmatic
    /// twin of `GET /debug/timeseries`).
    pub fn timeseries(&self) -> milvus_obs::TimeSeriesReport {
        milvus_obs::flight_recorder().report()
    }

    /// Per-collection, per-stage time breakdown aggregated from every
    /// sampled query trace (the programmatic twin of `GET /debug/profile`).
    pub fn profile(&self) -> milvus_obs::ProfileReport {
        milvus_obs::query_profiler().report()
    }

    /// Component health (executor saturation, transport link state,
    /// bufferpool pressure, search coverage) computed from the live metrics
    /// against the newest recorded frame — the "current open window". With
    /// no recorded frame the entire metric history counts as in-window (the
    /// programmatic twin of `GET /health`).
    pub fn health(&self) -> milvus_obs::HealthReport {
        let live = milvus_obs::registry().snapshot();
        let baseline = milvus_obs::flight_recorder().newest();
        milvus_obs::compute_health(
            &live,
            baseline.as_deref().map(|f| &f.snapshot),
            &milvus_obs::health_thresholds(),
        )
    }

    /// Replace the process-wide health thresholds.
    pub fn configure_health(&self, thresholds: milvus_obs::HealthThresholds) {
        milvus_obs::set_health_thresholds(thresholds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::Metric;

    #[test]
    fn gpu_index_type_via_facade() {
        use milvus_gpu::{GpuDevice, GpuSpec};
        use milvus_index::traits::SearchParams;
        use milvus_index::VectorSet;
        use milvus_storage::InsertBatch;

        let m = Milvus::new();
        m.enable_gpu(Arc::new(GpuDevice::new(0, GpuSpec::default())));
        assert!(m.registry().contains("SQ8H"));

        let col = m
            .create_collection(
                "gpu",
                Schema::single("v", 4, Metric::L2),
                CollectionConfig::for_tests(),
            )
            .unwrap();
        let mut vs = VectorSet::new(4);
        for i in 0..200 {
            vs.push(&[i as f32, 0.0, 0.0, 0.0]);
        }
        col.insert(InsertBatch::single((0..200).collect(), vs)).unwrap();
        col.flush().unwrap();
        col.build_index("v", "SQ8H").unwrap();
        let sp = SearchParams { k: 3, nprobe: 8, ..Default::default() };
        let hits = col.search("v", &[50.0, 0.0, 0.0, 0.0], &sp).unwrap();
        assert_eq!(hits[0].id, 50);
    }

    #[test]
    fn collection_lifecycle() {
        let m = Milvus::new();
        let schema = Schema::single("v", 4, Metric::L2);
        m.create_collection("images", schema.clone(), CollectionConfig::default()).unwrap();
        assert!(m.collection("images").is_ok());
        assert!(matches!(
            m.create_collection("images", schema, CollectionConfig::default()),
            Err(MilvusError::CollectionExists(_))
        ));
        assert_eq!(m.list_collections(), vec!["images".to_string()]);
        assert!(m.drop_collection("images"));
        assert!(!m.drop_collection("images"));
        assert!(matches!(m.collection("images"), Err(MilvusError::NoSuchCollection(_))));
    }
}

//! Simulated message-passing boundary for the distributed layer.
//!
//! Every coordinator ↔ writer ↔ reader ↔ client interaction in
//! [`crate::Cluster`] routes through a [`Transport`]. Two implementations:
//!
//! - [`Direct`] — the zero-cost in-process path. [`rpc`] short-circuits to a
//!   plain method call, preserving the original "RPC is a function call"
//!   behaviour bit for bit.
//! - [`SimNet`] — a seeded, deterministic lossy network. Each directed link
//!   `(from, to)` carries a [`FaultPlan`] (drop probability, delay range,
//!   duplication, reordering, hard partition) and its own RNG, so the fault
//!   schedule of a link depends only on the seed and the sequence of
//!   messages offered to that link — two runs of the same seeded workload
//!   observe byte-identical fates.
//!
//! **Determinism contract.** `SimNet` never consults wall-clock time or OS
//! entropy. Delays, timeouts, and retry backoff advance a *virtual clock*
//! ([`SimNet::virtual_time`]) instead of sleeping, so tests are fast and a
//! fault schedule replays exactly. Per-link fate draws happen in a fixed
//! order (partition → loss → duplicate → delay); callers that iterate
//! endpoints deterministically (the cluster fans out over readers in
//! registration order, readers walk shards in sorted order) therefore
//! observe identical outcomes across same-seed runs.
//!
//! **RPC semantics.** [`rpc`] models a request/response exchange: the
//! request leg draws a fate on `from → to`, the response leg on `to → from`.
//! A lost request never executed, so it is always safe to retry; a lost
//! *response* means the operation executed but the caller cannot know — it
//! is retried only when the caller declares the operation idempotent,
//! otherwise the caller gets [`StorageError::Unavailable`] immediately
//! (at-most-once). Retries use bounded exponential backoff charged to the
//! virtual clock.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use milvus_obs as obs;
use milvus_storage::{Result as StorageResult, StorageError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hashring::ring_hash;

/// A logical endpoint of the cluster's message fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// The query entry point (the proxy / client fan-out in the paper).
    Client,
    /// The metadata coordinator.
    Coordinator,
    /// The single writer instance.
    Writer,
    /// A promoted standby writer, by takeover generation (1 for the first
    /// takeover). A fresh endpoint: fault schedules that killed the old
    /// writer's links do not apply to its replacement.
    Standby(u64),
    /// A reader instance, by coordinator-assigned id.
    Reader(u64),
    /// The shared object store (S3 in the paper).
    Storage,
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Client => write!(f, "client"),
            NodeId::Coordinator => write!(f, "coordinator"),
            NodeId::Writer => write!(f, "writer"),
            NodeId::Standby(generation) => write!(f, "standby-{generation}"),
            NodeId::Reader(id) => write!(f, "reader-{id}"),
            NodeId::Storage => write!(f, "storage"),
        }
    }
}

/// Metric label of a directed link, e.g. `client->reader-0`.
pub fn link_label(from: NodeId, to: NodeId) -> String {
    format!("{from}->{to}")
}

/// The transport's verdict for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Deliver the message. `duplicates` extra executions model at-least-once
    /// delivery; `delay_us` is injected latency charged to the virtual clock.
    Deliver {
        /// Number of additional deliveries of the same message.
        duplicates: u32,
        /// Injected latency in virtual microseconds.
        delay_us: u64,
    },
    /// The message is lost (loss draw or partition); the sender times out.
    Drop,
}

/// Per-link fault schedule of a [`SimNet`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that a message is silently lost.
    pub loss: f64,
    /// Probability in `[0, 1]` that a message is delivered twice.
    pub duplicate: f64,
    /// Probability in `[0, 1]` that a one-way message is held back and
    /// replayed out of order by [`SimNet::flush_pending`].
    pub reorder: f64,
    /// Injected latency range in virtual microseconds (inclusive).
    pub delay_us: (u64, u64),
    /// Hard partition: every message on this link is dropped.
    pub partitioned: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self { loss: 0.0, duplicate: 0.0, reorder: 0.0, delay_us: (0, 0), partitioned: false }
    }
}

impl FaultPlan {
    /// True when the plan injects no faults at all.
    pub fn is_clean(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.delay_us == (0, 0)
            && !self.partitioned
    }
}

/// The message-passing boundary every cluster interaction routes through.
pub trait Transport: Send + Sync {
    /// True for transports with no fault injection; [`rpc`] then skips all
    /// bookkeeping and degenerates to a plain method call.
    fn is_direct(&self) -> bool {
        false
    }

    /// Decide the fate of one message on the directed link `from → to`.
    fn fate(&self, from: NodeId, to: NodeId) -> Fate;

    /// Fire-and-forget message. The transport may execute `op` immediately,
    /// execute it more than once, drop it, or hold it back for reordered
    /// delivery at the next [`Transport::flush_pending`].
    fn send_oneway(&self, from: NodeId, to: NodeId, op: Box<dyn Fn() + Send>);

    /// Deliver any held-back one-way messages (in seeded, shuffled order).
    fn flush_pending(&self);

    /// Advance the virtual clock (injected delays, timeouts, backoff).
    fn advance_virtual(&self, _us: u64) {}

    /// Bookkeeping hook: an RPC attempt was re-sent after a timeout.
    fn note_retry(&self) {}

    /// Bookkeeping hook: an RPC attempt timed out.
    fn note_timeout(&self) {}
}

/// The zero-cost in-process transport: every message is delivered
/// immediately, exactly once, with no metrics and no clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct Direct;

impl Transport for Direct {
    fn is_direct(&self) -> bool {
        true
    }

    fn fate(&self, _from: NodeId, _to: NodeId) -> Fate {
        Fate::Deliver { duplicates: 0, delay_us: 0 }
    }

    fn send_oneway(&self, _from: NodeId, _to: NodeId, op: Box<dyn Fn() + Send>) {
        op();
    }

    fn flush_pending(&self) {}
}

/// Timeout / retry policy of one RPC.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Virtual time charged per lost attempt.
    pub timeout: Duration,
    /// Initial backoff between attempts (doubles each retry).
    pub backoff_base: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            timeout: Duration::from_millis(50),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (at-most-once with a single attempt).
    pub fn no_retries() -> Self {
        Self { attempts: 1, ..Self::default() }
    }
}

/// Counters of a [`SimNet`] instance (unlike the global `milvus_net_*`
/// families, these are private to one simulation — handy for tests that run
/// in a shared process).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Messages offered to the network.
    pub sent: u64,
    /// Messages lost to loss draws or partitions.
    pub dropped: u64,
    /// Messages delivered more than once.
    pub duplicated: u64,
    /// One-way messages held back for reordered delivery.
    pub reordered: u64,
    /// Messages delivered with injected latency.
    pub delayed: u64,
    /// RPC attempts re-sent after a timeout.
    pub retries: u64,
    /// RPC attempts that timed out.
    pub timeouts: u64,
}

struct LinkState {
    plan: FaultPlan,
    rng: StdRng,
    held: Vec<Box<dyn Fn() + Send>>,
}

/// A seeded, deterministic lossy network.
pub struct SimNet {
    seed: u64,
    links: Mutex<BTreeMap<(NodeId, NodeId), LinkState>>,
    virtual_us: AtomicU64,
    sent: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    delayed: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
}

impl SimNet {
    /// A fault-free network; faults are injected at runtime via
    /// [`SimNet::partition`], [`SimNet::set_loss`], [`SimNet::set_plan`], …
    pub fn new(seed: u64) -> Arc<Self> {
        Arc::new(Self {
            seed,
            links: Mutex::new(BTreeMap::new()),
            virtual_us: AtomicU64::new(0),
            sent: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
        })
    }

    fn new_link(&self, from: NodeId, to: NodeId) -> LinkState {
        // Register the link as healthy the moment it first carries traffic,
        // so the `milvus_net_link_up` gauge family covers *every* active
        // link — the health model's "N/M links down" denominator would
        // otherwise only count links that had already faulted.
        let label = link_label(from, to);
        obs::gauge(obs::NET_LINK_UP, &label).set(1);
        obs::gauge(obs::NET_LINK_LOSS_PPM, &label).set(0);
        LinkState {
            plan: FaultPlan::default(),
            rng: StdRng::seed_from_u64(self.seed ^ ring_hash(&(from, to))),
            held: Vec::new(),
        }
    }

    fn with_link<T>(
        &self,
        from: NodeId,
        to: NodeId,
        f: impl FnOnce(&mut LinkState) -> T,
    ) -> T {
        let mut links = self.links.lock();
        if let std::collections::btree_map::Entry::Vacant(e) = links.entry((from, to)) {
            e.insert(self.new_link(from, to));
        }
        f(links.get_mut(&(from, to)).expect("link just inserted"))
    }

    /// Replace the whole fault schedule of the directed link `from → to`.
    pub fn set_plan(&self, from: NodeId, to: NodeId, plan: FaultPlan) {
        let label = link_label(from, to);
        let (up, loss_ppm) = (i64::from(!plan.partitioned), (plan.loss * 1e6) as i64);
        self.with_link(from, to, |l| l.plan = plan);
        // Gauges are written after `with_link`: creating a fresh link
        // initialises them to healthy and must not win over the plan.
        obs::gauge(obs::NET_LINK_UP, &label).set(up);
        obs::gauge(obs::NET_LINK_LOSS_PPM, &label).set(loss_ppm);
    }

    /// Cut both directions between `a` and `b` (full partition).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.partition_oneway(a, b);
        self.partition_oneway(b, a);
    }

    /// Cut only `from → to` (asymmetric partition: requests lost, responses
    /// fine, or vice versa).
    pub fn partition_oneway(&self, from: NodeId, to: NodeId) {
        self.with_link(from, to, |l| l.plan.partitioned = true);
        obs::gauge(obs::NET_LINK_UP, &link_label(from, to)).set(0);
    }

    /// Set the loss probability of `from → to`.
    pub fn set_loss(&self, from: NodeId, to: NodeId, p: f64) {
        let p = p.clamp(0.0, 1.0);
        self.with_link(from, to, |l| l.plan.loss = p);
        obs::gauge(obs::NET_LINK_LOSS_PPM, &link_label(from, to)).set((p * 1e6) as i64);
    }

    /// Set the duplicate-delivery probability of `from → to`.
    pub fn set_duplicate(&self, from: NodeId, to: NodeId, p: f64) {
        self.with_link(from, to, |l| l.plan.duplicate = p.clamp(0.0, 1.0));
    }

    /// Set the one-way reorder (hold-back) probability of `from → to`.
    pub fn set_reorder(&self, from: NodeId, to: NodeId, p: f64) {
        self.with_link(from, to, |l| l.plan.reorder = p.clamp(0.0, 1.0));
    }

    /// Set the injected latency range of `from → to`.
    pub fn set_delay(&self, from: NodeId, to: NodeId, lo: Duration, hi: Duration) {
        let lo = lo.as_micros() as u64;
        let hi = (hi.as_micros() as u64).max(lo);
        self.with_link(from, to, |l| l.plan.delay_us = (lo, hi));
    }

    /// Restore both directions between `a` and `b` to a fault-free plan.
    pub fn heal_link(&self, a: NodeId, b: NodeId) {
        self.set_plan(a, b, FaultPlan::default());
        self.set_plan(b, a, FaultPlan::default());
    }

    /// Restore every link to a fault-free plan. Held-back one-way messages
    /// are *not* delivered — call [`SimNet::flush_pending`] for that. Link
    /// RNG state is preserved, so healing does not perturb determinism.
    pub fn heal(&self) {
        let mut links = self.links.lock();
        for ((from, to), link) in links.iter_mut() {
            link.plan = FaultPlan::default();
            let label = link_label(*from, *to);
            obs::gauge(obs::NET_LINK_UP, &label).set(1);
            obs::gauge(obs::NET_LINK_LOSS_PPM, &label).set(0);
        }
    }

    /// The fault plan currently installed on `from → to`.
    pub fn plan(&self, from: NodeId, to: NodeId) -> FaultPlan {
        self.with_link(from, to, |l| l.plan.clone())
    }

    /// Accumulated virtual time: injected delays plus RPC timeouts/backoff.
    pub fn virtual_time(&self) -> Duration {
        Duration::from_micros(self.virtual_us.load(Ordering::Relaxed))
    }

    /// One-way messages currently held back for reordered delivery.
    pub fn pending(&self) -> usize {
        self.links.lock().values().map(|l| l.held.len()).sum()
    }

    /// Snapshot of this instance's counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            sent: self.sent.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
        }
    }
}

impl Transport for SimNet {
    fn fate(&self, from: NodeId, to: NodeId) -> Fate {
        let label = link_label(from, to);
        self.sent.fetch_add(1, Ordering::Relaxed);
        obs::counter(obs::NET_SENT, &label).inc();
        let fate = self.with_link(from, to, |link| {
            if link.plan.partitioned {
                return Fate::Drop;
            }
            if link.plan.loss > 0.0 && link.rng.gen_bool(link.plan.loss) {
                return Fate::Drop;
            }
            let duplicates =
                u32::from(link.plan.duplicate > 0.0 && link.rng.gen_bool(link.plan.duplicate));
            let (lo, hi) = link.plan.delay_us;
            let delay_us = if hi > 0 { link.rng.gen_range(lo..=hi) } else { 0 };
            Fate::Deliver { duplicates, delay_us }
        });
        match fate {
            Fate::Drop => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                obs::counter(obs::NET_DROPPED, &label).inc();
            }
            Fate::Deliver { duplicates, delay_us } => {
                if duplicates > 0 {
                    self.duplicated.fetch_add(u64::from(duplicates), Ordering::Relaxed);
                    obs::counter(obs::NET_DUPLICATED, &label).add(u64::from(duplicates));
                }
                if delay_us > 0 {
                    self.delayed.fetch_add(1, Ordering::Relaxed);
                    obs::counter(obs::NET_DELAYED, &label).inc();
                    self.advance_virtual(delay_us);
                }
            }
        }
        fate
    }

    fn send_oneway(&self, from: NodeId, to: NodeId, op: Box<dyn Fn() + Send>) {
        let label = link_label(from, to);
        self.sent.fetch_add(1, Ordering::Relaxed);
        obs::counter(obs::NET_SENT, &label).inc();
        enum Verdict {
            Drop,
            Held,
            Deliver { op: Box<dyn Fn() + Send>, duplicates: u32, delay_us: u64 },
        }
        let verdict = self.with_link(from, to, |link| {
            if link.plan.partitioned || (link.plan.loss > 0.0 && link.rng.gen_bool(link.plan.loss))
            {
                return Verdict::Drop;
            }
            if link.plan.reorder > 0.0 && link.rng.gen_bool(link.plan.reorder) {
                link.held.push(op);
                return Verdict::Held;
            }
            let duplicates =
                u32::from(link.plan.duplicate > 0.0 && link.rng.gen_bool(link.plan.duplicate));
            let (lo, hi) = link.plan.delay_us;
            let delay_us = if hi > 0 { link.rng.gen_range(lo..=hi) } else { 0 };
            Verdict::Deliver { op, duplicates, delay_us }
        });
        match verdict {
            Verdict::Drop => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                obs::counter(obs::NET_DROPPED, &label).inc();
            }
            Verdict::Held => {
                self.reordered.fetch_add(1, Ordering::Relaxed);
                obs::counter(obs::NET_REORDERED, &label).inc();
            }
            Verdict::Deliver { op, duplicates, delay_us } => {
                if duplicates > 0 {
                    self.duplicated.fetch_add(u64::from(duplicates), Ordering::Relaxed);
                    obs::counter(obs::NET_DUPLICATED, &label).add(u64::from(duplicates));
                }
                if delay_us > 0 {
                    self.delayed.fetch_add(1, Ordering::Relaxed);
                    obs::counter(obs::NET_DELAYED, &label).inc();
                    self.advance_virtual(delay_us);
                }
                // The message is out of the transport's hands; execute after
                // releasing the link lock (duplicates model at-least-once).
                op();
                for _ in 0..duplicates {
                    op();
                }
            }
        }
    }

    fn flush_pending(&self) {
        // Drain each link's hold-back queue in link order, shuffling every
        // queue with that link's own RNG so the replay order is seeded.
        let mut batch: Vec<Box<dyn Fn() + Send>> = Vec::new();
        {
            let mut links = self.links.lock();
            for link in links.values_mut() {
                let mut held = std::mem::take(&mut link.held);
                rand::seq::SliceRandom::shuffle(held.as_mut_slice(), &mut link.rng);
                batch.extend(held);
            }
        }
        for op in batch {
            op();
        }
    }

    fn advance_virtual(&self, us: u64) {
        let total = self.virtual_us.fetch_add(us, Ordering::Relaxed) + us;
        obs::gauge(obs::NET_VIRTUAL_TIME_US, "sim").set(total as i64);
    }

    fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    fn note_timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }
}

/// How an RPC failed — the caller's failure-handling forks on this:
/// [`RpcFailure::Exhausted`] is the *unreachable peer* signal that drives
/// writer failover, while [`RpcFailure::ResponseLost`] and
/// [`RpcFailure::App`] mean the peer executed (or rejected) the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcFailure {
    /// Every attempt timed out; the peer is unreachable on this link.
    Exhausted,
    /// The request executed but the acknowledgment was lost, and the caller
    /// declared the operation non-idempotent so it was not replayed.
    ResponseLost,
    /// The peer executed the request and returned an application error.
    App,
}

/// Run one request/response RPC over `transport` with per-attempt timeout
/// and bounded exponential backoff.
///
/// `idempotent` controls the lost-response case: the operation *did*
/// execute, so retrying re-executes it — safe for reads, refreshes,
/// deletes, and writer inserts deduplicated by client op id; callers whose
/// operation genuinely cannot be replayed declare `idempotent = false` and
/// surface the timeout instead. Application errors returned by `f`
/// propagate immediately and are never retried.
pub fn rpc<T>(
    transport: &dyn Transport,
    from: NodeId,
    to: NodeId,
    op: &str,
    policy: &RetryPolicy,
    idempotent: bool,
    f: impl FnMut() -> StorageResult<T>,
) -> StorageResult<T> {
    rpc_detailed(transport, from, to, op, policy, idempotent, f).map_err(|(_, e)| e)
}

/// [`rpc`] that also reports *how* the call failed, so callers can
/// distinguish an unreachable peer (failover trigger) from an executed
/// operation whose outcome is merely unknown or rejected.
pub fn rpc_detailed<T>(
    transport: &dyn Transport,
    from: NodeId,
    to: NodeId,
    op: &str,
    policy: &RetryPolicy,
    idempotent: bool,
    mut f: impl FnMut() -> StorageResult<T>,
) -> Result<T, (RpcFailure, StorageError)> {
    if transport.is_direct() {
        return f().map_err(|e| (RpcFailure::App, e));
    }
    let label = link_label(from, to);
    let attempts = policy.attempts.max(1);
    let mut backoff = policy.backoff_base;
    for attempt in 0..attempts {
        // Injected delivery delays are charged to the virtual clock by the
        // transport itself inside `fate`.
        let executed = match transport.fate(from, to) {
            Fate::Deliver { duplicates, .. } => {
                let result = f();
                for _ in 0..duplicates {
                    // At-least-once delivery: the destination sees the
                    // request again; the extra outcome is discarded.
                    let _ = f();
                }
                Some(result)
            }
            Fate::Drop => None,
        };
        if let Some(result) = executed {
            match transport.fate(to, from) {
                Fate::Deliver { .. } => {
                    return result.map_err(|e| (RpcFailure::App, e));
                }
                Fate::Drop => {
                    // Executed, but the ack is lost. Retrying re-executes.
                    if !idempotent {
                        transport.note_timeout();
                        obs::counter(obs::NET_TIMEOUTS, &label).inc();
                        transport.advance_virtual(policy.timeout.as_micros() as u64);
                        return Err((
                            RpcFailure::ResponseLost,
                            StorageError::Unavailable(format!(
                                "rpc {op} {from}->{to}: response lost; not retried (non-idempotent)"
                            )),
                        ));
                    }
                }
            }
        }
        transport.note_timeout();
        obs::counter(obs::NET_TIMEOUTS, &label).inc();
        transport.advance_virtual(policy.timeout.as_micros() as u64);
        if attempt + 1 < attempts {
            transport.note_retry();
            obs::counter(obs::NET_RETRIES, &label).inc();
            transport.advance_virtual(backoff.as_micros() as u64);
            backoff = (backoff * 2).min(policy.backoff_cap);
        }
    }
    Err((
        RpcFailure::Exhausted,
        StorageError::Unavailable(format!(
            "rpc {op} {from}->{to}: {attempts} attempts timed out"
        )),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    const A: NodeId = NodeId::Client;
    const B: NodeId = NodeId::Reader(0);

    fn count_calls(net: &SimNet, policy: &RetryPolicy) -> (StorageResult<u64>, usize) {
        let calls = AtomicUsize::new(0);
        let res = rpc(net, A, B, "op", policy, true, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(7u64)
        });
        (res, calls.load(Ordering::Relaxed))
    }

    #[test]
    fn direct_is_transparent() {
        let d = Direct;
        let res = rpc(&d, A, B, "op", &RetryPolicy::default(), false, || Ok(41u64)).unwrap();
        assert_eq!(res, 41);
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&fired);
        d.send_oneway(A, B, Box::new(move || {
            f2.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn clean_simnet_delivers_exactly_once() {
        let net = SimNet::new(1);
        let (res, calls) = count_calls(&net, &RetryPolicy::default());
        assert_eq!(res.unwrap(), 7);
        assert_eq!(calls, 1);
        assert_eq!(net.stats().dropped, 0);
    }

    #[test]
    fn partition_times_out_with_bounded_attempts() {
        let net = SimNet::new(2);
        net.partition(A, B);
        let policy = RetryPolicy { attempts: 3, ..Default::default() };
        let (res, calls) = count_calls(&net, &policy);
        assert!(matches!(res, Err(StorageError::Unavailable(_))));
        assert_eq!(calls, 0, "a partitioned request must never execute");
        let s = net.stats();
        assert_eq!(s.dropped, 3);
        assert_eq!(s.timeouts, 3);
        assert_eq!(s.retries, 2);
        assert!(net.virtual_time() >= Duration::from_millis(150));
    }

    #[test]
    fn heal_restores_delivery() {
        let net = SimNet::new(3);
        net.partition(A, B);
        assert!(count_calls(&net, &RetryPolicy::no_retries()).0.is_err());
        net.heal();
        assert_eq!(count_calls(&net, &RetryPolicy::default()).0.unwrap(), 7);
    }

    #[test]
    fn asymmetric_partition_lost_response_not_retried_when_non_idempotent() {
        let net = SimNet::new(4);
        net.partition_oneway(B, A); // responses lost, requests delivered
        let calls = AtomicUsize::new(0);
        let res = rpc(&*net, A, B, "op", &RetryPolicy::default(), false, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(())
        });
        assert!(matches!(res, Err(StorageError::Unavailable(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 1, "executed once, never replayed");
    }

    #[test]
    fn asymmetric_partition_idempotent_retries_until_exhausted() {
        let net = SimNet::new(5);
        net.partition_oneway(B, A);
        let policy = RetryPolicy { attempts: 3, ..Default::default() };
        let (res, calls) = count_calls(&net, &policy);
        assert!(res.is_err());
        assert_eq!(calls, 3, "idempotent op re-executes once per attempt");
    }

    #[test]
    fn application_errors_propagate_without_retry() {
        let net = SimNet::new(6);
        let calls = AtomicUsize::new(0);
        let res: StorageResult<()> =
            rpc(&*net, A, B, "op", &RetryPolicy::default(), true, || {
                calls.fetch_add(1, Ordering::Relaxed);
                Err(StorageError::Corrupt("boom".into()))
            });
        assert!(matches!(res, Err(StorageError::Corrupt(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn loss_draws_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let net = SimNet::new(seed);
            net.set_loss(A, B, 0.5);
            (0..64).map(|_| matches!(net.fate(A, B), Fate::Drop)).collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
        let drops = run(42).iter().filter(|&&d| d).count();
        assert!((10..=54).contains(&drops), "p=0.5 over 64 draws, got {drops}");
    }

    #[test]
    fn oneway_reorder_holds_until_flush() {
        let net = SimNet::new(7);
        net.set_reorder(A, B, 1.0);
        let fired = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let f = Arc::clone(&fired);
            net.send_oneway(A, B, Box::new(move || {
                f.fetch_add(1, Ordering::Relaxed);
            }));
        }
        assert_eq!(fired.load(Ordering::Relaxed), 0);
        assert_eq!(net.pending(), 5);
        net.flush_pending();
        assert_eq!(fired.load(Ordering::Relaxed), 5);
        assert_eq!(net.pending(), 0);
        assert_eq!(net.stats().reordered, 5);
    }

    #[test]
    fn oneway_duplicates_execute_twice() {
        let net = SimNet::new(8);
        net.set_duplicate(A, B, 1.0);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        net.send_oneway(A, B, Box::new(move || {
            f.fetch_add(1, Ordering::Relaxed);
        }));
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn delay_advances_virtual_clock_only() {
        let net = SimNet::new(9);
        net.set_delay(A, B, Duration::from_millis(5), Duration::from_millis(9));
        let wall = std::time::Instant::now();
        for _ in 0..100 {
            let _ = net.fate(A, B);
        }
        assert!(net.virtual_time() >= Duration::from_millis(450), "injected delay accumulates");
        assert!(wall.elapsed() < Duration::from_secs(1), "no real sleeping");
        assert_eq!(net.stats().delayed, 100);
    }
}

//! Stateless reader instances (§5.3).
//!
//! A reader owns no durable state: it pulls the segments of its assigned
//! shards from shared storage into a local [`BufferPool`] ("each computing
//! instance has a significant amount of buffer memory and SSDs to reduce
//! accesses to the shared storage") and serves vector queries over them.
//! Because readers are stateless, a crashed reader is replaced by simply
//! registering a fresh one — no recovery protocol.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use milvus_exec::coalesce::{Coalescer, Submitted};
use milvus_index::traits::SearchParams;
use milvus_index::{Neighbor, VectorSet};
use milvus_obs as obs;
use milvus_storage::bufferpool::BufferPool;
use milvus_storage::codec;
use milvus_storage::object_store::ObjectStore;
use milvus_storage::segment::Segment;
use milvus_storage::{Result as StorageResult, Schema};
use parking_lot::RwLock;

use crate::coordinator::Coordinator;
use crate::transport::{rpc, Direct, NodeId, RetryPolicy, Transport};

/// A reader node.
pub struct ReaderNode {
    /// Coordinator-assigned node id.
    pub id: u64,
    /// `reader-{id}` — trace label and bufferpool metrics label.
    trace_label: Arc<str>,
    schema: Schema,
    coordinator: Arc<Coordinator>,
    shared: Arc<dyn ObjectStore>,
    /// All shared-storage reads route through this transport on the
    /// `Reader(id) → Storage` link.
    transport: Arc<dyn Transport>,
    retry: RetryPolicy,
    pool: BufferPool,
    /// shard → loaded segments. A `BTreeMap` so iteration (and therefore
    /// the sequence of per-link fate draws under a simulated transport) is
    /// deterministic.
    segments: RwLock<BTreeMap<usize, Vec<Arc<Segment>>>>,
    /// Highest coordinator epoch this reader has refreshed against.
    seen_epoch: AtomicU64,
    /// Accumulated search time in nanoseconds — the per-node busy clock used
    /// to model node parallelism (Figure 10b).
    busy_ns: AtomicU64,
    /// The reader-local query scheduler: concurrent [`ReaderNode::search`]
    /// calls (the fan-in of `Cluster::search` under client concurrency)
    /// rendezvous here and run as one segment-major batch; a lone caller
    /// passes straight through to the serial path, which keeps serially
    /// driven transcripts (the partition-chaos tests) byte-identical.
    coalescer: Coalescer<ReaderQuery, StorageResult<Vec<Neighbor>>>,
}

/// One coalescable reader query: `(field, query, params)`, owned.
type ReaderQuery = (String, Vec<f32>, SearchParams);

impl ReaderNode {
    /// Register a new reader with the coordinator (direct transport).
    pub fn register(
        schema: Schema,
        coordinator: Arc<Coordinator>,
        shared: Arc<dyn ObjectStore>,
        cache_bytes: usize,
    ) -> Arc<Self> {
        Self::register_with_transport(schema, coordinator, shared, cache_bytes, Arc::new(Direct))
    }

    /// Register a new reader whose storage fetches route through `transport`.
    pub fn register_with_transport(
        schema: Schema,
        coordinator: Arc<Coordinator>,
        shared: Arc<dyn ObjectStore>,
        cache_bytes: usize,
        transport: Arc<dyn Transport>,
    ) -> Arc<Self> {
        let id = coordinator.register_reader();
        let label = format!("reader-{id}");
        Arc::new(Self {
            id,
            trace_label: Arc::from(label.as_str()),
            schema,
            coordinator,
            shared,
            transport,
            retry: RetryPolicy::default(),
            pool: BufferPool::with_label(cache_bytes, label),
            segments: RwLock::new(BTreeMap::new()),
            seen_epoch: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            coalescer: Coalescer::new(milvus_exec::coalesce::CoalesceConfig::default()),
        })
    }

    /// Shards this reader currently serves.
    pub fn assigned_shards(&self) -> Vec<usize> {
        self.coordinator.shards_of_reader(self.id)
    }

    /// Pull the newest segment versions of every assigned shard from shared
    /// storage (readers poll after writer flushes).
    pub fn refresh(&self) -> StorageResult<()> {
        // Read the epoch *before* loading: if a flush bumps it mid-refresh
        // we conservatively record the older value and refresh again later.
        let epoch = self.coordinator.epoch();
        let mut next: BTreeMap<usize, Vec<Arc<Segment>>> = BTreeMap::new();
        for shard in self.assigned_shards() {
            next.insert(shard, self.load_shard(shard)?);
        }
        *self.segments.write() = next;
        self.seen_epoch.fetch_max(epoch, Ordering::SeqCst);
        obs::counter(obs::READER_REFRESHES, "reader").inc();
        Ok(())
    }

    /// Refresh only if this reader has not yet seen `epoch` — the lazy
    /// catch-up path for readers whose flush-time refresh was unreachable
    /// (they converge at the next query once their storage link heals).
    pub fn catch_up(&self, epoch: u64) -> StorageResult<()> {
        if self.seen_epoch.load(Ordering::SeqCst) >= epoch {
            return Ok(());
        }
        self.refresh()
    }

    /// Highest coordinator epoch this reader has refreshed against.
    pub fn seen_epoch(&self) -> u64 {
        self.seen_epoch.load(Ordering::SeqCst)
    }

    /// Load the newest segment versions of one shard from shared storage,
    /// routing `list`/`get` over the `Reader(id) → Storage` link.
    fn load_shard(&self, shard: usize) -> StorageResult<Vec<Arc<Segment>>> {
        let me = NodeId::Reader(self.id);
        let prefix = format!("shard-{shard}/segments/");
        let keys = rpc(&*self.transport, me, NodeId::Storage, "list", &self.retry, true, || {
            self.shared.list(&prefix)
        })?;
        // BTreeMap: version resolution and load order are deterministic.
        let mut latest: BTreeMap<u64, (u64, String)> = BTreeMap::new();
        for key in keys {
            if let Some((seg_id, version)) = parse_key(&key) {
                let e = latest.entry(seg_id).or_insert((version, key.clone()));
                if version > e.0 {
                    *e = (version, key);
                }
            }
        }
        let mut segs = Vec::with_capacity(latest.len());
        for (seg_id, (version, key)) in latest {
            // Cache key folds shard, segment and version together so a
            // new version is a distinct pool entry.
            let cache_key =
                (shard as u64) << 48 | (seg_id & 0xFFFF_FFFF) << 16 | (version & 0xFFFF);
            let seg = self.pool.get_or_load(cache_key, || {
                rpc(&*self.transport, me, NodeId::Storage, "get", &self.retry, true, || {
                    let blob = self.shared.get(&key)?;
                    Ok(Arc::new(codec::decode_segment(seg_id, version, &blob)?))
                })
            })?;
            segs.push(seg);
        }
        segs.sort_by_key(|s| s.id);
        Ok(segs)
    }

    /// Segments currently loaded (across shards).
    pub fn loaded_segments(&self) -> usize {
        self.segments.read().values().map(Vec::len).sum()
    }

    /// Loaded segments carrying at least one persisted index (the §2.3
    /// index-in-segment property observed from the read side).
    pub fn indexed_segments(&self) -> usize {
        self.segments
            .read()
            .values()
            .flatten()
            .filter(|s| !s.indexes_snapshot().is_empty())
            .count()
    }

    /// Bufferpool statistics (cache behaviour of §2.4 at the reader).
    pub fn cache_stats(&self) -> milvus_storage::bufferpool::PoolStats {
        self.pool.stats()
    }

    /// Per-segment bufferpool statistics, sorted by segment id.
    pub fn segment_cache_stats(
        &self,
    ) -> Vec<(u64, milvus_storage::bufferpool::SegmentPoolStats)> {
        self.pool.all_segment_stats()
    }

    /// Accumulated busy time.
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Reset the busy clock (between benchmark runs).
    pub fn reset_busy(&self) {
        self.busy_ns.store(0, Ordering::Relaxed);
    }

    /// Search this reader's shards; results from all its segments merged.
    ///
    /// Routed through the reader-local scheduler: a lone call passes
    /// straight to the serial traced path; calls arriving concurrently are
    /// coalesced into one segment-major batch whose per-query results are
    /// bit-identical to the serial path.
    pub fn search(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
    ) -> StorageResult<Vec<Neighbor>> {
        let started = Instant::now();
        let req = (field.to_string(), query.to_vec(), params.clone());
        match self.coalescer.submit(req, |batch| self.run_batch(batch)) {
            Submitted::Pass(guard) => {
                let out = self.search_serial(field, query, params);
                drop(guard);
                out
            }
            Submitted::Coalesced { result, .. } => {
                // Per-caller accounting; the leader ran the shared batch
                // uncounted.
                obs::counter(obs::QUERY_TOTAL, "reader").inc();
                obs::histogram(obs::QUERY_LATENCY, "reader")
                    .observe_us(started.elapsed().as_micros() as u64);
                result
            }
        }
    }

    /// The serial (non-coalesced) path: one traced sweep of all segments.
    fn search_serial(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
    ) -> StorageResult<Vec<Neighbor>> {
        let mut trace = obs::Trace::start("reader_search", &self.trace_label);
        let result = self.search_traced(field, query, params, &mut trace);
        trace.finish();
        result
    }

    /// Execute one coalesced batch: group queries by identical parameters,
    /// sweep the segments once per group (delete-free indexed segments take
    /// `VectorIndex::search_batch` — IVF's bucket-major amortized sweep),
    /// and merge per query. Failures are returned as values; any group
    /// error is replayed per query so each caller gets its own exact error.
    fn run_batch(&self, reqs: Vec<ReaderQuery>) -> Vec<StorageResult<Vec<Neighbor>>> {
        let start = Instant::now();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        {
            let mut index: std::collections::HashMap<(&str, &SearchParams), usize> =
                std::collections::HashMap::new();
            for (i, (field, _, params)) in reqs.iter().enumerate() {
                match index.entry((field.as_str(), params)) {
                    std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].push(i),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(groups.len());
                        groups.push(vec![i]);
                    }
                }
            }
        }
        let mut out: Vec<Option<StorageResult<Vec<Neighbor>>>> =
            reqs.iter().map(|_| None).collect();
        for group in groups {
            let (field, _, params) = &reqs[group[0]];
            let queries: Vec<&[f32]> =
                group.iter().map(|&qi| reqs[qi].1.as_slice()).collect();
            match self.run_group(field, params, &queries) {
                Ok(merged) => {
                    for (&qi, res) in group.iter().zip(merged) {
                        out[qi] = Some(Ok(res));
                    }
                }
                Err(_) => {
                    for &qi in &group {
                        let (field, query, params) = &reqs[qi];
                        out[qi] = Some(self.search_uncounted(field, query, params));
                    }
                }
            }
        }
        // The batch ran once; its wall time is the node's busy time.
        self.busy_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out.into_iter().map(|o| o.expect("every coalesced query answered")).collect()
    }

    /// One parameter-identical group over all loaded segments, merged per
    /// query. Mirrors `Segment::search_field_stats` dispatch case by case.
    fn run_group(
        &self,
        field: &str,
        params: &SearchParams,
        queries: &[&[f32]],
    ) -> StorageResult<Vec<Vec<Neighbor>>> {
        let dim = self.schema.vector_fields.iter().find(|f| f.name == field).map(|f| f.dim);
        let batchable = dim.is_some_and(|d| queries.iter().all(|q| q.len() == d));
        let mut per_query: Vec<Vec<Vec<Neighbor>>> =
            queries.iter().map(|_| Vec::new()).collect();
        let segments = self.segments.read();
        for segs in segments.values() {
            for seg in segs {
                if let Some(index) = seg.index(field).filter(|_| {
                    batchable && seg.deleted().is_empty()
                }) {
                    // The serial path's scan-fault hook lives inside
                    // `search_field_stats`; the batched sweep bypasses it.
                    milvus_storage::segment::apply_scan_fault(seg.id);
                    let mut qs = VectorSet::new(dim.expect("batchable implies dim"));
                    for q in queries {
                        qs.push(q);
                    }
                    let lists = index.search_batch(&qs, params)?;
                    for (j, list) in lists.into_iter().enumerate() {
                        per_query[j].push(list);
                    }
                    continue;
                }
                for (j, q) in queries.iter().enumerate() {
                    let (list, _) =
                        seg.search_field_stats(&self.schema, field, q, params, None)?;
                    per_query[j].push(list);
                }
            }
        }
        Ok(per_query
            .into_iter()
            .map(|lists| milvus_storage::segment::merge_segment_results(&lists, params.k))
            .collect())
    }

    /// The serial computation without metrics or tracing (coalesced-path
    /// error replay).
    fn search_uncounted(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
    ) -> StorageResult<Vec<Neighbor>> {
        let segments = self.segments.read();
        let mut lists = Vec::new();
        for segs in segments.values() {
            for seg in segs {
                let (list, _) =
                    seg.search_field_stats(&self.schema, field, query, params, None)?;
                lists.push(list);
            }
        }
        Ok(milvus_storage::segment::merge_segment_results(&lists, params.k))
    }

    /// [`Self::search`] recording into a caller-supplied trace. Segment-scan
    /// spans carry the shard id and the bufferpool outcome of the segment's
    /// most recent fetch.
    pub fn search_traced(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
        trace: &mut obs::Trace,
    ) -> StorageResult<Vec<Neighbor>> {
        let start = Instant::now();
        let _span = obs::span(obs::QUERY_LATENCY, "reader");
        obs::counter(obs::QUERY_TOTAL, "reader").inc();
        let t = trace.begin();
        let segments = self.segments.read();
        let nshards = segments.len();
        trace.record_with(obs::SpanKind::Route, t, |sp| sp.rows_scanned = nshards as u64);
        let mut lists = Vec::new();
        for (&shard, segs) in segments.iter() {
            for seg in segs {
                let t = trace.begin();
                let (list, stats) =
                    seg.search_field_stats(&self.schema, field, query, params, None)?;
                let cache = self.pool.last_outcome(seg.id);
                trace.record_with(obs::SpanKind::SegmentScan, t, |sp| {
                    sp.segment_id = seg.id as i64;
                    sp.shard = shard as i64;
                    sp.rows_scanned = stats.rows_scanned;
                    sp.cache = cache;
                });
                lists.push(list);
            }
        }
        let t = trace.begin();
        let merged = milvus_storage::segment::merge_segment_results(&lists, params.k);
        trace.record(obs::SpanKind::HeapMerge, t);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(merged)
    }

    /// Search an explicit set of shards, regardless of this reader's current
    /// assignment — the fail-over path. Shards this reader already serves are
    /// answered from its loaded segments; any other shard is fetched
    /// on demand from shared storage (readers are stateless, so covering an
    /// unreachable peer's shards is just a cache fill). On-demand shards are
    /// *not* retained in the assignment map — the orphaned coverage is
    /// transient, but the bufferpool keeps the blobs hot for repeat calls.
    pub fn search_shards(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
        shards: &[usize],
    ) -> StorageResult<Vec<Neighbor>> {
        let start = Instant::now();
        let mut lists = Vec::new();
        for &shard in shards {
            let held = self.segments.read().get(&shard).cloned();
            let segs = match held {
                Some(segs) => segs,
                None => self.load_shard(shard)?,
            };
            for seg in &segs {
                let (list, _) =
                    seg.search_field_stats(&self.schema, field, query, params, None)?;
                lists.push(list);
            }
        }
        let merged = milvus_storage::segment::merge_segment_results(&lists, params.k);
        self.busy_ns
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Ok(merged)
    }
}

fn parse_key(key: &str) -> Option<(u64, u64)> {
    // shard-N/segments/000000000001.v000001.seg
    let stem = key.rsplit('/').next()?.strip_suffix(".seg")?;
    let (id, v) = stem.split_once(".v")?;
    Some((id.parse().ok()?, v.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::WriterNode;
    use milvus_index::{Metric, VectorSet};
    use milvus_storage::object_store::MemoryStore;
    use milvus_storage::{InsertBatch, LsmConfig};

    fn setup(shards: usize, readers: usize) -> (Arc<Coordinator>, WriterNode, Vec<Arc<ReaderNode>>) {
        let coordinator = Coordinator::new(shards);
        let shared: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let schema = Schema::single("v", 2, Metric::L2);
        let cfg = LsmConfig { auto_merge: false, ..Default::default() };
        let writer =
            WriterNode::new(schema.clone(), cfg, Arc::clone(&shared), Arc::clone(&coordinator))
                .unwrap();
        let rs = (0..readers)
            .map(|_| {
                ReaderNode::register(
                    schema.clone(),
                    Arc::clone(&coordinator),
                    Arc::clone(&shared),
                    64 << 20,
                )
            })
            .collect();
        (coordinator, writer, rs)
    }

    fn insert_n(writer: &WriterNode, n: usize) {
        let ids: Vec<i64> = (0..n as i64).collect();
        let mut vs = VectorSet::new(2);
        for &id in &ids {
            vs.push(&[id as f32, 0.0]);
        }
        writer.insert(InsertBatch::single(ids, vs)).unwrap();
        writer.flush().unwrap();
    }

    #[test]
    fn readers_see_writer_data_after_refresh() {
        let (_, writer, readers) = setup(4, 2);
        insert_n(&writer, 100);
        let mut total_hits = 0;
        for r in &readers {
            r.refresh().unwrap();
            let res = r.search("v", &[42.0, 0.0], &SearchParams::top_k(1)).unwrap();
            if res.first().map(|n| n.id) == Some(42) {
                total_hits += 1;
            }
        }
        // Exactly the reader owning id 42's shard finds it as the top hit.
        assert_eq!(total_hits, 1);
        assert!(readers.iter().map(|r| r.loaded_segments()).sum::<usize>() >= 4);
    }

    #[test]
    fn cache_hits_on_second_refresh() {
        let (_, writer, readers) = setup(2, 1);
        insert_n(&writer, 40);
        let r = &readers[0];
        r.refresh().unwrap();
        let misses_first = r.cache_stats().misses;
        assert!(misses_first > 0);
        r.refresh().unwrap();
        // Same segment versions → all hits, no new misses.
        assert_eq!(r.cache_stats().misses, misses_first);
        assert!(r.cache_stats().hits > 0);
    }

    #[test]
    fn busy_clock_accumulates() {
        let (_, writer, readers) = setup(2, 1);
        insert_n(&writer, 60);
        let r = &readers[0];
        r.refresh().unwrap();
        assert_eq!(r.busy_time(), Duration::ZERO);
        r.search("v", &[1.0, 0.0], &SearchParams::top_k(5)).unwrap();
        assert!(r.busy_time() > Duration::ZERO);
        r.reset_busy();
        assert_eq!(r.busy_time(), Duration::ZERO);
    }
}

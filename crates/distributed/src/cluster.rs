//! The assembled distributed system (§5.3, Figure 5): coordinator + single
//! writer + N stateless readers over one shared store, with K8s-style
//! elasticity (add a reader, crash a reader, the replacement rebuilds from
//! shared state).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use milvus_index::traits::SearchParams;
use milvus_index::{Neighbor, VectorSet};
use milvus_obs as obs;
use milvus_storage::object_store::ObjectStore;
use milvus_storage::{InsertBatch, LsmConfig, Result as StorageResult, Schema};
use parking_lot::{Mutex, RwLock};

use crate::coordinator::Coordinator;
use crate::reader::ReaderNode;
use crate::transport::{rpc, rpc_detailed, Direct, NodeId, RetryPolicy, RpcFailure, Transport};
use crate::writer::WriterNode;

/// How many standby promotions one client call may ride through before its
/// error surfaces (each promotion replays the shipped log — a second
/// failure inside that window means something systemic, not a crash).
const MAX_TAKEOVERS_PER_CALL: usize = 2;

/// Outcome of a distributed search, including its fault-tolerance story:
/// which readers were unreachable, which of their shards were re-fanned to
/// survivors, and which shards (if any) ended up with no coverage at all.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReport {
    /// Merged top-k across every covered shard.
    pub neighbors: Vec<Neighbor>,
    /// Readers that did not answer (after retries).
    pub failed_readers: Vec<u64>,
    /// Shards recovered by re-fanning to surviving readers.
    pub failover_shards: Vec<usize>,
    /// Shards with no coverage: the results are degraded. Empty for a
    /// complete (exact) answer.
    pub uncovered_shards: Vec<usize>,
}

impl SearchReport {
    /// True when every shard contributed — the answer equals the fault-free
    /// reference.
    pub fn is_complete(&self) -> bool {
        self.uncovered_shards.is_empty()
    }
}

/// A whole cluster in-process.
pub struct Cluster {
    schema: Schema,
    config: LsmConfig,
    coordinator: Arc<Coordinator>,
    shared: Arc<dyn ObjectStore>,
    /// The current writer instance — replaced wholesale by a promoted
    /// standby on failover.
    writer: RwLock<Arc<WriterNode>>,
    /// The endpoint ingest RPCs are addressed to: [`NodeId::Writer`] for
    /// the original instance, [`NodeId::Standby`] after a takeover (a
    /// promoted standby gets its own links and its own fault schedule).
    writer_endpoint: RwLock<NodeId>,
    /// Automated standby promotion on an unreachable writer. Requires log
    /// shipping ([`Cluster::with_failover`]): without a shipped log there
    /// is nothing for a standby to replay.
    failover_enabled: bool,
    /// Monotone takeover counter; also the promoted instance's endpoint id.
    takeover_generation: AtomicU64,
    /// Serializes promotions so concurrent failed calls elect one standby.
    promote_lock: Mutex<()>,
    /// Client-side operation id source for exactly-once tagged inserts.
    next_op_id: AtomicU64,
    readers: RwLock<Vec<Arc<ReaderNode>>>,
    reader_cache_bytes: usize,
    transport: Arc<dyn Transport>,
    retry: RwLock<RetryPolicy>,
    /// Label cluster-level traces and metrics are recorded under.
    trace_label: Arc<str>,
}

impl Cluster {
    /// Spin up a cluster with `shards` data shards and `readers` readers
    /// over the zero-cost direct transport.
    pub fn new(
        schema: Schema,
        shards: usize,
        readers: usize,
        shared: Arc<dyn ObjectStore>,
        config: LsmConfig,
    ) -> StorageResult<Self> {
        Self::with_transport(schema, shards, readers, shared, config, Arc::new(Direct))
    }

    /// Spin up a cluster whose every node interaction routes through
    /// `transport` (pass a [`crate::transport::SimNet`] to inject faults).
    pub fn with_transport(
        schema: Schema,
        shards: usize,
        readers: usize,
        shared: Arc<dyn ObjectStore>,
        config: LsmConfig,
        transport: Arc<dyn Transport>,
    ) -> StorageResult<Self> {
        Self::assemble(schema, shards, readers, shared, config, transport, false)
    }

    /// [`Cluster::with_transport`] with log shipping and automated writer
    /// failover: every ingest operation is durable in shared storage before
    /// its ack, and a client call that finds the writer unreachable
    /// (exhausted retries) promotes a standby — replay the shipped tail
    /// over the standby's own links, bump the epoch, re-point ingest at the
    /// new instance, resync readers — then re-runs transparently.
    pub fn with_failover(
        schema: Schema,
        shards: usize,
        readers: usize,
        shared: Arc<dyn ObjectStore>,
        config: LsmConfig,
        transport: Arc<dyn Transport>,
    ) -> StorageResult<Self> {
        Self::assemble(schema, shards, readers, shared, config, transport, true)
    }

    fn assemble(
        schema: Schema,
        shards: usize,
        readers: usize,
        shared: Arc<dyn ObjectStore>,
        config: LsmConfig,
        transport: Arc<dyn Transport>,
        failover: bool,
    ) -> StorageResult<Self> {
        let coordinator = Coordinator::new(shards);
        let writer = if failover {
            WriterNode::with_log_shipping_transport(
                schema.clone(),
                config.clone(),
                Arc::clone(&shared),
                Arc::clone(&coordinator),
                Arc::clone(&transport),
            )?
        } else {
            WriterNode::new(
                schema.clone(),
                config.clone(),
                Arc::clone(&shared),
                Arc::clone(&coordinator),
            )?
        };
        if failover {
            obs::gauge(obs::WRITER_UP, "cluster").set(1);
        }
        let cluster = Self {
            schema,
            config,
            coordinator,
            shared,
            writer: RwLock::new(Arc::new(writer)),
            writer_endpoint: RwLock::new(NodeId::Writer),
            failover_enabled: failover,
            takeover_generation: AtomicU64::new(0),
            promote_lock: Mutex::new(()),
            next_op_id: AtomicU64::new(1),
            readers: RwLock::new(Vec::new()),
            reader_cache_bytes: 256 << 20,
            transport,
            retry: RwLock::new(RetryPolicy::default()),
            trace_label: Arc::from("cluster"),
        };
        for _ in 0..readers {
            cluster.add_reader()?;
        }
        Ok(cluster)
    }

    /// The transport this cluster routes node interactions through.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Replace the RPC timeout/backoff policy.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.write() = policy;
    }

    fn retry(&self) -> RetryPolicy {
        self.retry.read().clone()
    }

    /// The coordinator (metadata inspection).
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// The current writer instance (the promoted standby after a failover).
    pub fn writer(&self) -> Arc<WriterNode> {
        self.writer.read().clone()
    }

    /// The endpoint ingest RPCs are currently addressed to.
    pub fn writer_endpoint(&self) -> NodeId {
        *self.writer_endpoint.read()
    }

    /// How many standby takeovers this cluster has performed.
    pub fn takeover_generation(&self) -> u64 {
        self.takeover_generation.load(Ordering::SeqCst)
    }

    /// Current readers.
    pub fn readers(&self) -> Vec<Arc<ReaderNode>> {
        self.readers.read().clone()
    }

    /// Number of reader instances.
    pub fn reader_count(&self) -> usize {
        self.readers.read().len()
    }

    /// Elastically add a reader (K8s scale-up); it immediately loads its
    /// shards from shared storage, and existing readers drop/keep shards per
    /// the updated ring.
    pub fn add_reader(&self) -> StorageResult<Arc<ReaderNode>> {
        let reader = ReaderNode::register_with_transport(
            self.schema.clone(),
            Arc::clone(&self.coordinator),
            Arc::clone(&self.shared),
            self.reader_cache_bytes,
            Arc::clone(&self.transport),
        );
        self.readers.write().push(Arc::clone(&reader));
        self.coordinator.bump_epoch();
        self.refresh_readers()?;
        Ok(reader)
    }

    /// Simulate a reader crash: deregister and drop the instance. K8s-style
    /// recovery is simply [`Cluster::add_reader`] — readers are stateless.
    pub fn crash_reader(&self, id: u64) -> bool {
        let existed = self.coordinator.deregister_reader(id);
        self.readers.write().retain(|r| r.id != id);
        if existed {
            // Survivors take over the orphaned shards; any that are
            // unreachable right now catch up lazily at their next query.
            self.coordinator.bump_epoch();
            let _ = self.refresh_readers();
        }
        existed
    }

    /// Insert entities (goes to the writer; §5.3 read/write separation).
    /// Exactly-once: the batch carries a client operation id, and the
    /// writer dedupes against ids it has already applied — a retry whose
    /// first attempt executed but lost its ack, or a replay into a promoted
    /// standby, never duplicates rows. `tests/linearizability.rs` pins
    /// these semantics.
    pub fn insert(&self, batch: InsertBatch) -> StorageResult<()> {
        self.insert_tracked(batch).1
    }

    /// [`Cluster::insert`] that also exposes the operation id the batch was
    /// tagged with, so callers recording a client-visible history (the
    /// linearizability harness) can match indeterminate outcomes against
    /// durable log records.
    pub fn insert_tracked(&self, batch: InsertBatch) -> (u64, StorageResult<()>) {
        let op_id = self.next_op_id.fetch_add(1, Ordering::SeqCst);
        let res =
            self.writer_call("insert", true, |w| w.insert_tagged(batch.clone(), Some(op_id)));
        (op_id, res)
    }

    /// Convenience: single-vector insert.
    pub fn insert_vectors(&self, ids: Vec<i64>, vectors: VectorSet) -> StorageResult<()> {
        self.insert(InsertBatch::single(ids, vectors))
    }

    /// Delete entities (idempotent: tombstoning twice is harmless).
    pub fn delete(&self, ids: &[i64]) -> StorageResult<()> {
        self.writer_call("delete", true, |w| w.delete(ids))
    }

    /// Flush the writer and propagate the new segment versions to readers.
    /// Readers unreachable during the propagation are left stale and catch
    /// up lazily before their next query (or on [`Cluster::resync`]).
    pub fn flush(&self) -> StorageResult<()> {
        self.writer_call("flush", true, |w| w.flush())?;
        self.coordinator.bump_epoch();
        self.refresh_readers()
    }

    /// Run `f` against the current writer over its ingest link. When
    /// failover is enabled and the link's retries exhaust (unreachable
    /// writer) — or the writer itself reports `Unavailable` because its own
    /// storage link is dead — a standby is promoted and the call re-runs
    /// against the new instance, at most [`MAX_TAKEOVERS_PER_CALL`] times.
    fn writer_call<T>(
        &self,
        op: &str,
        idempotent: bool,
        mut f: impl FnMut(&WriterNode) -> StorageResult<T>,
    ) -> StorageResult<T> {
        let retry = self.retry();
        let mut takeovers = 0;
        loop {
            let writer = self.writer.read().clone();
            let endpoint = *self.writer_endpoint.read();
            let generation = self.takeover_generation.load(Ordering::SeqCst);
            let res = rpc_detailed(
                &*self.transport,
                NodeId::Client,
                endpoint,
                op,
                &retry,
                idempotent,
                || f(&writer),
            );
            match res {
                Ok(v) => {
                    // A successful call proves some writer is serving. This
                    // also repairs the up-gauge after a *failed* promotion
                    // (which leaves it at 0) once the old writer heals and
                    // answers again — without it health would report the
                    // writer down forever.
                    if self.failover_enabled {
                        obs::gauge(obs::WRITER_UP, "cluster").set(1);
                    }
                    return Ok(v);
                }
                Err((kind, e)) => {
                    // Only an unreachable writer (or one whose own storage
                    // link is dead) justifies promotion. A lost ack on a
                    // non-idempotent call means the writer is alive and the
                    // operation may have executed — promoting would help
                    // nothing and risks surprise re-execution.
                    let writer_down = matches!(kind, RpcFailure::Exhausted)
                        || (matches!(kind, RpcFailure::App) && e.is_unavailable());
                    if !self.failover_enabled || !writer_down
                        || takeovers >= MAX_TAKEOVERS_PER_CALL
                    {
                        return Err(e);
                    }
                    takeovers += 1;
                    self.promote_standby(generation)?;
                }
            }
        }
    }

    /// Promote a standby writer: open the shipped log under a fresh term
    /// over the standby's own links, load segments, replay the tail, flush,
    /// bump the epoch and re-point ingest. `observed_generation` makes the
    /// promotion idempotent under racing failed calls — whoever got the
    /// lock first already did the work.
    fn promote_standby(&self, observed_generation: u64) -> StorageResult<()> {
        let _guard = self.promote_lock.lock();
        if self.takeover_generation.load(Ordering::SeqCst) != observed_generation {
            return Ok(()); // A concurrent caller already promoted.
        }
        let generation = observed_generation + 1;
        let endpoint = NodeId::Standby(generation);
        obs::gauge(obs::WRITER_UP, "cluster").set(0);
        let standby = WriterNode::standby_takeover_with_transport(
            self.schema.clone(),
            self.config.clone(),
            Arc::clone(&self.shared),
            Arc::clone(&self.coordinator),
            Arc::clone(&self.transport),
            endpoint,
            self.retry(),
        )?;
        *self.writer.write() = Arc::new(standby);
        *self.writer_endpoint.write() = endpoint;
        self.takeover_generation.store(generation, Ordering::SeqCst);
        obs::counter(obs::WRITER_FAILOVERS, "cluster").inc();
        obs::gauge(obs::WRITER_TAKEOVER_GENERATION, "cluster").set(generation as i64);
        obs::gauge(obs::WRITER_UP, "cluster").set(1);
        // The takeover flush produced new segment versions: re-point the
        // readers at them (unreachable ones catch up lazily, as ever).
        self.coordinator.bump_epoch();
        let _ = self.refresh_readers();
        Ok(())
    }

    /// Re-run the refresh fan-out (e.g. after healing a partition) so every
    /// reachable reader converges to the current epoch.
    pub fn resync(&self) -> StorageResult<()> {
        self.refresh_readers()
    }

    fn refresh_readers(&self) -> StorageResult<()> {
        let retry = self.retry();
        for r in self.readers.read().iter() {
            let res = rpc(
                &*self.transport,
                NodeId::Coordinator,
                NodeId::Reader(r.id),
                "refresh",
                &retry,
                true,
                || r.refresh(),
            );
            match res {
                Ok(()) => {}
                // Unreachable reader: leave it stale; it converges at its
                // next query (epoch catch-up) or the next resync.
                Err(e) if e.is_unavailable() => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Distributed vector query: fan out to every reader (each covers its
    /// shards), merge the partial top-k lists. Readers that do not answer
    /// after retries have their shards re-fanned to survivors (stateless
    /// readers make that a cache fill); any shards that still lack coverage
    /// only degrade the result, never abort it — see
    /// [`Cluster::search_detailed`] for the coverage report.
    pub fn search(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
    ) -> StorageResult<Vec<Neighbor>> {
        self.search_detailed(field, query, params).map(|r| r.neighbors)
    }

    /// [`Cluster::search`] with the full fault-tolerance report.
    pub fn search_detailed(
        &self,
        field: &str,
        query: &[f32],
        params: &SearchParams,
    ) -> StorageResult<SearchReport> {
        obs::counter(obs::QUERY_TOTAL, "cluster").inc();
        let _latency = obs::span(obs::QUERY_LATENCY, "cluster");
        let mut trace = obs::Trace::start("search", &self.trace_label);
        let epoch = self.coordinator.epoch();
        let readers = self.readers.read().clone();
        let retry = self.retry();
        let t = &*self.transport;
        let mut lists = Vec::with_capacity(readers.len());
        let mut survivors: Vec<Arc<ReaderNode>> = Vec::new();
        let mut failed_readers: Vec<u64> = Vec::new();
        let mut orphan_shards: Vec<usize> = Vec::new();
        for r in &readers {
            // A reader that missed a flush/membership refresh catches up
            // from shared storage before serving (read-your-writes after
            // heal); failure to catch up counts as a failed reader.
            let t0 = trace.begin();
            let res = rpc(t, NodeId::Client, NodeId::Reader(r.id), "search", &retry, true, || {
                r.catch_up(epoch)?;
                r.search(field, query, params)
            });
            match res {
                Ok(list) => {
                    trace.record_with(obs::SpanKind::Rpc, t0, |sp| {
                        sp.shard = r.id as i64;
                        sp.rows_scanned = list.len() as u64;
                    });
                    lists.push(list);
                    survivors.push(Arc::clone(r));
                }
                Err(_) => {
                    // The span covers the whole exhausted retry/backoff
                    // sequence — what the profiler attributes to the network.
                    trace.record_with(obs::SpanKind::NetRetry, t0, |sp| sp.shard = r.id as i64);
                    failed_readers.push(r.id);
                    orphan_shards.extend(r.assigned_shards());
                }
            }
        }
        orphan_shards.sort_unstable();
        orphan_shards.dedup();

        // Fail-over: re-fan each unreachable reader's shards to survivors,
        // rotating the starting survivor per shard for balance.
        let mut failover_shards = Vec::new();
        let mut uncovered_shards = Vec::new();
        for (i, &shard) in orphan_shards.iter().enumerate() {
            let t0 = trace.begin();
            let mut recovered = false;
            for j in 0..survivors.len() {
                let s = &survivors[(i + j) % survivors.len()];
                let res = rpc(
                    t,
                    NodeId::Client,
                    NodeId::Reader(s.id),
                    "failover_search",
                    &retry,
                    true,
                    || s.search_shards(field, query, params, &[shard]),
                );
                if let Ok(list) = res {
                    lists.push(list);
                    failover_shards.push(shard);
                    obs::counter(obs::NET_FAILOVERS, "cluster").inc();
                    recovered = true;
                    break;
                }
            }
            trace.record_with(obs::SpanKind::Failover, t0, |sp| sp.shard = shard as i64);
            if !recovered {
                uncovered_shards.push(shard);
            }
        }

        // Coverage telemetry: how much of the key space this answer actually
        // saw. The gauge reflects the *most recent* search (ppm of shards
        // covered); the counter accumulates degraded answers for windowed
        // rates, and both feed the health endpoint.
        let shards_total = self.coordinator.shards().max(1);
        let covered = shards_total - uncovered_shards.len().min(shards_total);
        obs::gauge(obs::SEARCH_COVERAGE_RATIO, "cluster")
            .set((covered as u64 * 1_000_000 / shards_total as u64) as i64);
        if !uncovered_shards.is_empty() {
            obs::counter(obs::QUERY_ERRORS, "cluster").inc();
            obs::counter(obs::SEARCH_DEGRADED, "cluster").inc();
        }

        let t0 = trace.begin();
        let neighbors = milvus_storage::segment::merge_segment_results(&lists, params.k);
        trace.record(obs::SpanKind::HeapMerge, t0);
        trace.finish();
        Ok(SearchReport {
            neighbors,
            failed_readers,
            failover_shards,
            uncovered_shards,
        })
    }

    /// Max per-reader busy time since the last reset — the simulated
    /// wall-clock of a query wave when readers run in parallel (Fig 10b).
    pub fn critical_path(&self) -> Duration {
        self.readers.read().iter().map(|r| r.busy_time()).max().unwrap_or_default()
    }

    /// Reset every reader's busy clock.
    pub fn reset_busy(&self) {
        for r in self.readers.read().iter() {
            r.reset_busy();
        }
    }

    /// Total live rows (writer view).
    pub fn live_rows(&self) -> usize {
        self.writer.read().live_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::Metric;
    use milvus_storage::object_store::MemoryStore;

    fn cluster(shards: usize, readers: usize) -> Cluster {
        let schema = Schema::single("v", 2, Metric::L2);
        let cfg = LsmConfig { auto_merge: false, ..Default::default() };
        Cluster::new(schema, shards, readers, Arc::new(MemoryStore::new()), cfg).unwrap()
    }

    fn fill(c: &Cluster, n: usize) {
        let ids: Vec<i64> = (0..n as i64).collect();
        let mut vs = VectorSet::new(2);
        for &id in &ids {
            vs.push(&[id as f32, 0.0]);
        }
        c.insert_vectors(ids, vs).unwrap();
        c.flush().unwrap();
    }

    #[test]
    fn distributed_search_finds_exact_hit() {
        let c = cluster(8, 3);
        fill(&c, 200);
        assert_eq!(c.live_rows(), 200);
        for probe in [0i64, 57, 123, 199] {
            let res = c.search("v", &[probe as f32, 0.0], &SearchParams::top_k(1)).unwrap();
            assert_eq!(res[0].id, probe, "probe {probe}");
        }
    }

    #[test]
    fn search_equals_single_node_reference() {
        let c = cluster(4, 2);
        fill(&c, 150);
        let res = c.search("v", &[77.3, 0.0], &SearchParams::top_k(5)).unwrap();
        let ids: Vec<i64> = res.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![77, 78, 76, 79, 75]);
    }

    #[test]
    fn deletes_visible_cluster_wide() {
        let c = cluster(4, 2);
        fill(&c, 50);
        c.delete(&[25]).unwrap();
        c.flush().unwrap();
        let res = c.search("v", &[25.0, 0.0], &SearchParams::top_k(1)).unwrap();
        assert_ne!(res[0].id, 25);
    }

    #[test]
    fn reader_crash_and_replacement_preserves_results() {
        let c = cluster(8, 3);
        fill(&c, 120);
        let before = c.search("v", &[60.0, 0.0], &SearchParams::top_k(5)).unwrap();

        // Crash one reader; survivors pick up its shards.
        let victim = c.readers()[0].id;
        assert!(c.crash_reader(victim));
        assert_eq!(c.reader_count(), 2);
        let during = c.search("v", &[60.0, 0.0], &SearchParams::top_k(5)).unwrap();
        assert_eq!(before, during, "results changed after crash");

        // K8s restarts a replacement instance.
        c.add_reader().unwrap();
        assert_eq!(c.reader_count(), 3);
        let after = c.search("v", &[60.0, 0.0], &SearchParams::top_k(5)).unwrap();
        assert_eq!(before, after, "results changed after replacement");
    }

    #[test]
    fn scale_up_redistributes_shards() {
        let c = cluster(16, 1);
        fill(&c, 100);
        let only = &c.readers()[0];
        assert_eq!(only.assigned_shards().len(), 16);
        c.add_reader().unwrap();
        let loads: Vec<usize> =
            c.readers().iter().map(|r| r.assigned_shards().len()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 16);
        assert!(loads.iter().all(|&l| l > 0), "one reader got nothing: {loads:?}");
    }

    #[test]
    fn busy_accounting_for_scalability_model() {
        let c = cluster(8, 2);
        fill(&c, 100);
        c.reset_busy();
        for i in 0..10 {
            c.search("v", &[i as f32, 0.0], &SearchParams::top_k(3)).unwrap();
        }
        assert!(c.critical_path() > Duration::ZERO);
        c.reset_busy();
        assert_eq!(c.critical_path(), Duration::ZERO);
    }
}

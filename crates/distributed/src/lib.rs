//! The distributed layer (paper §5.3, Figure 5).
//!
//! A **shared-storage** design: compute is separated from storage; the
//! storage layer is a highly-available object store (S3 in the paper,
//! [`milvus_storage::object_store::MemoryStore`] here); the compute layer is
//! a **single writer** plus **multiple stateless readers**; a coordinator
//! keeps the metadata (sharding, membership). Data is sharded among readers
//! with **consistent hashing**; the writer ships logs (not pages) to shared
//! storage; crashed instances are simply restarted (K8s in the paper) and
//! rebuild from shared state, because compute is stateless.
//!
//! Everything runs in-process: nodes are plain structs, and node
//! parallelism is simulated by accounting per-reader busy time (Figure
//! 10b's near-linear read scaling is a property of the sharding logic,
//! which is executed for real). RPC, however, is *not* a bare method call:
//! every coordinator↔writer↔reader↔client interaction routes through a
//! [`transport::Transport`] — [`transport::Direct`] preserves the zero-cost
//! in-process path, while [`transport::SimNet`] injects seeded,
//! deterministic drops / delays / duplicates / reorders and full or partial
//! partitions so the failover paths can be exercised for real (DESIGN.md
//! §9).

pub mod cluster;
pub mod coordinator;
pub mod hashring;
pub mod linearize;
pub mod log_ship;
pub mod prefix_store;
pub mod reader;
pub mod transport;
pub mod writer;

pub use cluster::{Cluster, SearchReport};
pub use coordinator::Coordinator;
pub use hashring::HashRing;
pub use linearize::{History, Invocation, OpKind, Outcome, Violation};
pub use transport::{Direct, FaultPlan, NodeId, RetryPolicy, RpcFailure, SimNet, Transport};

//! Consistent hashing (§5.3: "Data is sharded among the reader instances
//! with consistent hashing").
//!
//! A classic ring with virtual nodes: each physical node owns `vnodes`
//! points on a `u64` ring; a key maps to the first node clockwise. Adding or
//! removing one node only moves the keys adjacent to its points.

use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};

/// FNV-1a — stable across platforms and runs (unlike `DefaultHasher`'s
/// unspecified algorithm, which is fine in-process but not for persisted
/// shard maps).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// Hash any `Hash` key to a ring position.
pub fn ring_hash<K: Hash>(key: &K) -> u64 {
    let mut h = FnvHasher(0xcbf2_9ce4_8422_2325);
    key.hash(&mut h);
    h.finish()
}

/// A consistent-hash ring over node ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    vnodes: usize,
    points: BTreeMap<u64, u64>,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual points per node.
    pub fn new(vnodes: usize) -> Self {
        Self { vnodes: vnodes.max(1), points: BTreeMap::new() }
    }

    /// Number of distinct physical nodes.
    pub fn node_count(&self) -> usize {
        let mut nodes: Vec<u64> = self.points.values().copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Add a node.
    pub fn add_node(&mut self, node: u64) {
        for v in 0..self.vnodes {
            self.points.insert(fnv1a(format!("node-{node}-vnode-{v}").as_bytes()), node);
        }
    }

    /// Remove a node; its keys redistribute to ring neighbors.
    pub fn remove_node(&mut self, node: u64) {
        self.points.retain(|_, &mut n| n != node);
    }

    /// The node owning `key`, or `None` when the ring is empty.
    pub fn node_for<K: Hash>(&self, key: &K) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let h = ring_hash(key);
        self.points
            .range(h..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(ring: &HashRing, keys: usize) -> Vec<u64> {
        (0..keys).map(|k| ring.node_for(&k).unwrap()).collect()
    }

    #[test]
    fn empty_ring_has_no_owner() {
        let ring = HashRing::new(16);
        assert_eq!(ring.node_for(&42), None);
        assert_eq!(ring.node_count(), 0);
    }

    #[test]
    fn all_keys_owned_and_spread() {
        let mut ring = HashRing::new(64);
        for n in 0..4 {
            ring.add_node(n);
        }
        assert_eq!(ring.node_count(), 4);
        let assign = assignment(&ring, 1000);
        let mut counts = [0usize; 4];
        for &n in &assign {
            counts[n as usize] += 1;
        }
        // With 64 vnodes, no node should own less than 10% or more than 45%.
        for (n, &c) in counts.iter().enumerate() {
            assert!((100..450).contains(&c), "node {n} owns {c}/1000");
        }
    }

    #[test]
    fn deterministic() {
        let mut a = HashRing::new(32);
        let mut b = HashRing::new(32);
        for n in [3, 1, 2] {
            a.add_node(n);
        }
        for n in [1, 2, 3] {
            b.add_node(n);
        }
        assert_eq!(assignment(&a, 200), assignment(&b, 200));
    }

    #[test]
    fn minimal_disruption_on_node_removal() {
        let mut ring = HashRing::new(64);
        for n in 0..5 {
            ring.add_node(n);
        }
        let before = assignment(&ring, 1000);
        ring.remove_node(2);
        let after = assignment(&ring, 1000);
        let mut moved_to_wrong = 0;
        for (k, (&b, &a)) in before.iter().zip(&after).enumerate() {
            if b != 2 {
                // Keys not on the removed node must not move.
                assert_eq!(b, a, "key {k} moved needlessly");
            } else {
                assert_ne!(a, 2);
                moved_to_wrong += 1;
            }
        }
        assert!(moved_to_wrong > 0, "node 2 owned nothing?");
    }

    #[test]
    fn adding_node_takes_share() {
        let mut ring = HashRing::new(64);
        ring.add_node(0);
        ring.add_node(1);
        let before = assignment(&ring, 1000);
        ring.add_node(2);
        let after = assignment(&ring, 1000);
        let taken = before
            .iter()
            .zip(&after)
            .filter(|(_, &a)| a == 2)
            .count();
        assert!(taken > 100, "new node took only {taken} keys");
        // Keys that didn't go to the new node stayed put.
        for (&b, &a) in before.iter().zip(&after) {
            if a != 2 {
                assert_eq!(b, a);
            }
        }
    }
}

//! The coordinator layer (§5.3): metadata — shard count, reader membership,
//! shard→reader placement via consistent hashing. The paper runs three
//! coordinator instances under Zookeeper for HA; here the coordinator is a
//! shared `Arc` whose state survives any compute-node "crash" by
//! construction, which models the same guarantee.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::hashring::HashRing;

/// Cluster metadata.
pub struct Coordinator {
    shards: usize,
    ring: RwLock<HashRing>,
    readers: RwLock<Vec<u64>>,
    next_reader_id: RwLock<u64>,
    /// Monotonic placement/visibility epoch, bumped on every flush and
    /// membership change. A reader whose `seen_epoch` lags behind serves
    /// stale segments; the cluster refreshes it lazily before querying it.
    epoch: AtomicU64,
}

impl Coordinator {
    /// A coordinator for `shards` data shards.
    pub fn new(shards: usize) -> Arc<Self> {
        Arc::new(Self {
            shards: shards.max(1),
            ring: RwLock::new(HashRing::new(512)),
            readers: RwLock::new(Vec::new()),
            next_reader_id: RwLock::new(0),
            epoch: AtomicU64::new(0),
        })
    }

    /// Current placement/visibility epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Advance the epoch (after a flush or membership change); returns the
    /// new value.
    pub fn bump_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Number of data shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Shard owning entity `id` (write-side partitioning).
    pub fn shard_of(&self, id: i64) -> usize {
        (crate::hashring::ring_hash(&id) % self.shards as u64) as usize
    }

    /// Register a new reader; returns its node id.
    pub fn register_reader(&self) -> u64 {
        let mut next = self.next_reader_id.write();
        let id = *next;
        *next += 1;
        self.ring.write().add_node(id);
        self.readers.write().push(id);
        id
    }

    /// Deregister a reader (crash or scale-down); its shards move to the
    /// remaining readers.
    pub fn deregister_reader(&self, id: u64) -> bool {
        let mut readers = self.readers.write();
        let before = readers.len();
        readers.retain(|&r| r != id);
        if readers.len() != before {
            self.ring.write().remove_node(id);
            true
        } else {
            false
        }
    }

    /// Registered readers.
    pub fn readers(&self) -> Vec<u64> {
        self.readers.read().clone()
    }

    /// Reader responsible for `shard` under the current membership.
    pub fn reader_for_shard(&self, shard: usize) -> Option<u64> {
        self.ring.read().node_for(&shard)
    }

    /// The shards assigned to `reader` under the current membership.
    pub fn shards_of_reader(&self, reader: u64) -> Vec<usize> {
        (0..self.shards)
            .filter(|s| self.reader_for_shard(*s) == Some(reader))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shard_has_an_owner() {
        let c = Coordinator::new(16);
        c.register_reader();
        c.register_reader();
        c.register_reader();
        for s in 0..16 {
            assert!(c.reader_for_shard(s).is_some());
        }
        // The union of per-reader shards is exactly 0..16.
        let mut all: Vec<usize> =
            c.readers().iter().flat_map(|&r| c.shards_of_reader(r)).collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let c = Coordinator::new(8);
        for id in [-5i64, 0, 1, 1_000_000] {
            let s = c.shard_of(id);
            assert!(s < 8);
            assert_eq!(s, c.shard_of(id));
        }
    }

    #[test]
    fn deregistration_moves_orphaned_shards() {
        let c = Coordinator::new(32);
        let r0 = c.register_reader();
        let _r1 = c.register_reader();
        let owned = c.shards_of_reader(r0);
        assert!(c.deregister_reader(r0));
        assert!(!c.deregister_reader(r0));
        for s in owned {
            let new_owner = c.reader_for_shard(s).unwrap();
            assert_ne!(new_owner, r0);
        }
    }

    #[test]
    fn single_reader_owns_everything() {
        let c = Coordinator::new(4);
        let r = c.register_reader();
        assert_eq!(c.shards_of_reader(r), vec![0, 1, 2, 3]);
    }
}

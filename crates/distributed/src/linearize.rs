//! A history checker for the cluster's client-visible ingest semantics.
//!
//! Chaos runs record every client invocation and its observed outcome into
//! a [`History`]; after the run converges, [`check`] compares the history
//! against the cluster's final visible state and the durable shipped log,
//! and reports every [`Violation`] of the contract:
//!
//! 1. **No acked write lost.** An id whose last definite operation was an
//!    acknowledged insert must be visible.
//! 2. **No unacked write resurrected without durable evidence.** An id
//!    that is visible although no insert of it was ever acknowledged must
//!    be justified by an *indeterminate* insert (outcome unknown — ack
//!    lost in flight) whose operation id appears in a durable log record.
//!    Ship-before-ack makes this the exhaustive list of legal resurrections.
//! 3. **No deleted id reappearing.** An id whose last definite operation
//!    was an acknowledged delete must not be visible.
//! 4. **Checkpoints monotone.** Scanning the shipped log in `(term, seq)`
//!    order, flush checkpoints' `(term, covered lsn)` never decreases — a
//!    takeover may only move the cut forward.
//!
//! The model is a single sequential client (the chaos harness drives one
//! operation at a time), which keeps the check linear: per id, fold the
//! history in invocation order into "can this id legally be live / dead at
//! the end, and does liveness require log evidence". Outcomes:
//! [`Outcome::Acked`] pins the state, [`Outcome::Indeterminate`] (an
//! `Unavailable` error — the operation may or may not have executed) widens
//! it, [`Outcome::Failed`] (a definite application error) leaves it
//! untouched.
//!
//! Invariant 2 assumes the shipped log has not been truncated between the
//! run and the check — truncation deliberately discards the evidence once
//! a checkpoint covers it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use milvus_storage::wal::LogRecord;

use crate::log_ship::LogEntry;

/// What a recorded client operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpKind {
    /// Insert of these entity ids.
    Insert { ids: Vec<i64> },
    /// Delete of these entity ids.
    Delete { ids: Vec<i64> },
}

/// The outcome the client observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The call returned success: the operation definitely executed.
    Acked,
    /// The call failed with `Unavailable`: the operation may or may not
    /// have executed (e.g. it executed but the ack was lost).
    Indeterminate,
    /// The call failed with a definite application error: the operation
    /// did not take effect.
    Failed,
}

/// One recorded client invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The client operation id ([`crate::Cluster::insert_tracked`]); 0 for
    /// operations that carry none (deletes).
    pub op_id: u64,
    pub kind: OpKind,
    pub outcome: Outcome,
}

/// The client-visible history of one run, in invocation order.
#[derive(Debug, Default, Clone)]
pub struct History {
    events: Vec<Invocation>,
}

impl History {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an invocation (append-only, invocation order).
    pub fn record(&mut self, op_id: u64, kind: OpKind, outcome: Outcome) {
        self.events.push(Invocation { op_id, kind, outcome });
    }

    /// Classify a `StorageResult` into an [`Outcome`] and record an insert.
    pub fn record_insert(&mut self, op_id: u64, ids: Vec<i64>, res: &milvus_storage::Result<()>) {
        let outcome = Self::classify(res);
        self.record(op_id, OpKind::Insert { ids }, outcome);
    }

    /// Classify a `StorageResult` into an [`Outcome`] and record a delete.
    pub fn record_delete(&mut self, ids: Vec<i64>, res: &milvus_storage::Result<()>) {
        let outcome = Self::classify(res);
        self.record(0, OpKind::Delete { ids }, outcome);
    }

    fn classify(res: &milvus_storage::Result<()>) -> Outcome {
        match res {
            Ok(()) => Outcome::Acked,
            Err(e) if e.is_unavailable() => Outcome::Indeterminate,
            Err(_) => Outcome::Failed,
        }
    }

    /// The recorded invocations.
    pub fn events(&self) -> &[Invocation] {
        &self.events
    }
}

/// One contract violation found by [`check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// Invariant 1: the id's last definite operation was an acked insert,
    /// yet it is not visible.
    AckedWriteLost { id: i64 },
    /// Invariant 2: the id is visible, but no acked insert explains it and
    /// no indeterminate insert of it has a durable log record.
    UnackedWriteResurrected { id: i64 },
    /// Invariant 3: the id's last definite operation was an acked delete,
    /// yet it is visible.
    DeletedIdReappeared { id: i64 },
    /// Invariant 4: a checkpoint's `(term, covered lsn)` went backwards.
    CheckpointWentBackwards {
        term: u64,
        seq: u64,
        upto: u64,
        prev_term: u64,
        prev_upto: u64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::AckedWriteLost { id } => {
                write!(f, "acked insert of id {id} lost: not visible in final state")
            }
            Violation::UnackedWriteResurrected { id } => write!(
                f,
                "id {id} visible without an acked insert or a durable log record \
                 for an indeterminate one"
            ),
            Violation::DeletedIdReappeared { id } => {
                write!(f, "id {id} visible although its last definite operation was an acked delete")
            }
            Violation::CheckpointWentBackwards { term, seq, upto, prev_term, prev_upto } => {
                write!(
                    f,
                    "checkpoint at (term {term}, seq {seq}) covers (term {term}, lsn {upto}), \
                     behind the earlier cut (term {prev_term}, lsn {prev_upto})"
                )
            }
        }
    }
}

/// Per-id fold state: what end states the history permits.
#[derive(Debug, Clone, Default)]
struct IdState {
    /// The history permits this id to be live at the end.
    can_be_live: bool,
    /// The history permits this id to be absent at the end. (True
    /// initially: an id never operated on is absent.)
    can_be_dead: bool,
    /// Liveness is only legal via an indeterminate insert — one of
    /// `evidence` must then appear in the durable log.
    live_needs_evidence: bool,
    /// Operation ids of the indeterminate inserts that could explain
    /// liveness.
    evidence: Vec<u64>,
    /// The reason liveness is illegal is an acked delete (distinguishes
    /// [`Violation::DeletedIdReappeared`] from a resurrection of an insert
    /// that never succeeded).
    deleted: bool,
}

impl IdState {
    fn initial() -> Self {
        Self {
            can_be_live: false,
            can_be_dead: true,
            live_needs_evidence: true,
            evidence: Vec::new(),
            deleted: false,
        }
    }
}

/// Check a recorded history against the final visible ids and the durable
/// shipped log. Returns every violation found (empty = the run
/// linearizes). `final_live` is the converged cluster's visible id set
/// (e.g. [`crate::writer::WriterNode::live_ids`] after a flush); `log` is
/// the untruncated shipped log ([`crate::log_ship::SharedLog::entries`]).
pub fn check(history: &History, final_live: &BTreeSet<i64>, log: &[LogEntry]) -> Vec<Violation> {
    let mut states: BTreeMap<i64, IdState> = BTreeMap::new();
    for ev in history.events() {
        let (ids, is_insert) = match &ev.kind {
            OpKind::Insert { ids } => (ids, true),
            OpKind::Delete { ids } => (ids, false),
        };
        for &id in ids {
            let st = states.entry(id).or_insert_with(IdState::initial);
            match (is_insert, ev.outcome) {
                (true, Outcome::Acked) => {
                    st.can_be_live = true;
                    st.can_be_dead = false;
                    st.live_needs_evidence = false;
                    st.deleted = false;
                }
                (true, Outcome::Indeterminate) => {
                    // May have executed: live becomes possible (via this
                    // op's durable record); dead stays possible if it was.
                    if !st.can_be_live {
                        st.can_be_live = true;
                        st.live_needs_evidence = true;
                    }
                    if st.live_needs_evidence {
                        st.evidence.push(ev.op_id);
                    }
                }
                (false, Outcome::Acked) => {
                    st.can_be_live = false;
                    st.can_be_dead = true;
                    st.live_needs_evidence = true;
                    st.evidence.clear();
                    st.deleted = true;
                }
                (false, Outcome::Indeterminate) => {
                    st.can_be_dead = true;
                }
                (_, Outcome::Failed) => {}
            }
        }
    }

    // Operation ids with a durable log record (evidence for invariant 2).
    let durable_ops: BTreeSet<u64> = log
        .iter()
        .filter_map(|e| match &e.record {
            LogRecord::Insert { op_id, .. } => *op_id,
            _ => None,
        })
        .collect();

    let mut violations = Vec::new();
    for (&id, st) in &states {
        let live = final_live.contains(&id);
        if live && !st.can_be_live {
            violations.push(if st.deleted {
                Violation::DeletedIdReappeared { id }
            } else {
                // Every insert of this id failed definitively, yet it is
                // visible — same class as a resurrection without evidence.
                Violation::UnackedWriteResurrected { id }
            });
        } else if live
            && st.live_needs_evidence
            && !st.evidence.iter().any(|op| durable_ops.contains(op))
        {
            violations.push(Violation::UnackedWriteResurrected { id });
        } else if !live && !st.can_be_dead {
            violations.push(Violation::AckedWriteLost { id });
        }
    }
    // Ids visible although the history never inserted them at all.
    for &id in final_live {
        if !states.contains_key(&id) {
            violations.push(Violation::UnackedWriteResurrected { id });
        }
    }

    // Invariant 4: the cut only moves forward. `log` is in (term, seq)
    // order ([`SharedLog::entries`]).
    let mut prev: Option<(u64, u64)> = None;
    for e in log {
        if let LogRecord::FlushCheckpoint { lsn } = e.record {
            if let Some((pt, pu)) = prev {
                if (e.term, lsn) < (pt, pu) {
                    violations.push(Violation::CheckpointWentBackwards {
                        term: e.term,
                        seq: e.seq,
                        upto: lsn,
                        prev_term: pt,
                        prev_upto: pu,
                    });
                }
            }
            prev = Some((e.term, lsn));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(ids: &[i64]) -> BTreeSet<i64> {
        ids.iter().copied().collect()
    }

    fn log_insert(term: u64, seq: u64, op_id: u64) -> LogEntry {
        LogEntry {
            term,
            seq,
            record: LogRecord::Insert {
                lsn: seq,
                op_id: Some(op_id),
                batch: milvus_storage::InsertBatch::single(
                    vec![0],
                    milvus_index::VectorSet::from_flat(1, vec![0.0]),
                ),
            },
        }
    }

    fn log_checkpoint(term: u64, seq: u64, upto: u64) -> LogEntry {
        LogEntry { term, seq, record: LogRecord::FlushCheckpoint { lsn: upto } }
    }

    #[test]
    fn clean_history_has_no_violations() {
        let mut h = History::new();
        h.record(1, OpKind::Insert { ids: vec![1, 2] }, Outcome::Acked);
        h.record(0, OpKind::Delete { ids: vec![2] }, Outcome::Acked);
        assert_eq!(check(&h, &live(&[1]), &[]), vec![]);
    }

    #[test]
    fn lost_acked_write_is_flagged() {
        let mut h = History::new();
        h.record(1, OpKind::Insert { ids: vec![7] }, Outcome::Acked);
        assert_eq!(check(&h, &live(&[]), &[]), vec![Violation::AckedWriteLost { id: 7 }]);
    }

    #[test]
    fn deleted_id_reappearing_is_flagged() {
        let mut h = History::new();
        h.record(1, OpKind::Insert { ids: vec![7] }, Outcome::Acked);
        h.record(0, OpKind::Delete { ids: vec![7] }, Outcome::Acked);
        assert_eq!(check(&h, &live(&[7]), &[]), vec![Violation::DeletedIdReappeared { id: 7 }]);
    }

    #[test]
    fn indeterminate_insert_may_or_may_not_survive() {
        let mut h = History::new();
        h.record(3, OpKind::Insert { ids: vec![5] }, Outcome::Indeterminate);
        // Absent: fine (it may not have executed).
        assert_eq!(check(&h, &live(&[]), &[]), vec![]);
        // Visible with a durable record carrying its op id: fine.
        assert_eq!(check(&h, &live(&[5]), &[log_insert(0, 1, 3)]), vec![]);
        // Visible with no durable evidence: resurrection.
        assert_eq!(
            check(&h, &live(&[5]), &[]),
            vec![Violation::UnackedWriteResurrected { id: 5 }]
        );
    }

    #[test]
    fn failed_insert_must_not_take_effect() {
        let mut h = History::new();
        h.record(4, OpKind::Insert { ids: vec![9] }, Outcome::Failed);
        assert_eq!(
            check(&h, &live(&[9]), &[]),
            vec![Violation::UnackedWriteResurrected { id: 9 }]
        );
    }

    #[test]
    fn never_inserted_id_cannot_be_visible() {
        let h = History::new();
        assert_eq!(
            check(&h, &live(&[42]), &[]),
            vec![Violation::UnackedWriteResurrected { id: 42 }]
        );
    }

    #[test]
    fn indeterminate_delete_permits_either_state() {
        let mut h = History::new();
        h.record(1, OpKind::Insert { ids: vec![3] }, Outcome::Acked);
        h.record(0, OpKind::Delete { ids: vec![3] }, Outcome::Indeterminate);
        assert_eq!(check(&h, &live(&[3]), &[]), vec![]);
        assert_eq!(check(&h, &live(&[]), &[]), vec![]);
    }

    #[test]
    fn insert_after_acked_delete_revives() {
        let mut h = History::new();
        h.record(1, OpKind::Insert { ids: vec![6] }, Outcome::Acked);
        h.record(0, OpKind::Delete { ids: vec![6] }, Outcome::Acked);
        h.record(2, OpKind::Insert { ids: vec![6] }, Outcome::Acked);
        assert_eq!(check(&h, &live(&[6]), &[]), vec![]);
        assert_eq!(check(&h, &live(&[]), &[]), vec![Violation::AckedWriteLost { id: 6 }]);
    }

    #[test]
    fn checkpoints_must_be_monotone() {
        let log = vec![
            log_checkpoint(0, 3, 2),
            log_checkpoint(0, 5, 4),
            log_checkpoint(1, 6, 3), // (1, 3) >= (0, 4): terms dominate — fine
        ];
        assert_eq!(check(&History::new(), &live(&[]), &log), vec![]);
        let log = vec![log_checkpoint(0, 3, 4), log_checkpoint(0, 5, 2)];
        assert_eq!(
            check(&History::new(), &live(&[]), &log),
            vec![Violation::CheckpointWentBackwards {
                term: 0,
                seq: 5,
                upto: 2,
                prev_term: 0,
                prev_upto: 4,
            }]
        );
    }
}

//! The single writer instance (§5.3: "a single writer is sufficient" for the
//! read-heavy workload; it "handles data insertions, deletions, and
//! updates"). The writer partitions entities across shards, runs one LSM
//! engine per shard against the shared store, and relies on the WAL for
//! atomicity across restarts.

use std::collections::HashSet;
use std::sync::Arc;

use milvus_obs as obs;
use milvus_index::VectorSet;
use milvus_storage::object_store::ObjectStore;
use milvus_storage::wal::LogRecord;
use milvus_storage::{InsertBatch, LsmConfig, LsmEngine, Result as StorageResult, Schema};
use parking_lot::Mutex;

use crate::coordinator::Coordinator;
use crate::log_ship::SharedLog;
use crate::prefix_store::PrefixStore;
use crate::transport::{Direct, NodeId, RetryPolicy, Transport};

/// The writer node.
pub struct WriterNode {
    coordinator: Arc<Coordinator>,
    engines: Vec<Arc<LsmEngine>>,
    /// Shared-storage log (§5.3: ship logs, not data). `None` disables
    /// shipping (single-writer deployments relying on a local WAL).
    shared_log: Option<SharedLog>,
    /// Client operation ids already applied. A retried insert whose first
    /// attempt executed but whose ack was lost, and a log record replayed
    /// into a standby, both dedupe against this set — tagged inserts are
    /// exactly-once even across a failover.
    applied_ops: Mutex<HashSet<u64>>,
}

impl WriterNode {
    /// Create per-shard engines over `shared` storage.
    pub fn new(
        schema: Schema,
        config: LsmConfig,
        shared: Arc<dyn ObjectStore>,
        coordinator: Arc<Coordinator>,
    ) -> StorageResult<Self> {
        let engines = Self::make_engines(&schema, &config, &shared, &coordinator, false)?;
        Ok(Self { coordinator, engines, shared_log: None, applied_ops: Mutex::new(HashSet::new()) })
    }

    /// Create a writer that ships every operation to shared storage before
    /// acknowledging, enabling standby takeover via
    /// [`WriterNode::standby_takeover`].
    pub fn with_log_shipping(
        schema: Schema,
        config: LsmConfig,
        shared: Arc<dyn ObjectStore>,
        coordinator: Arc<Coordinator>,
    ) -> StorageResult<Self> {
        Self::with_log_shipping_transport(
            schema,
            config,
            shared,
            coordinator,
            Arc::new(crate::transport::Direct),
        )
    }

    /// [`WriterNode::with_log_shipping`] with shipped records routed over
    /// `transport`'s `Writer → Storage` link (duplicates, reorders and drops
    /// become testable).
    pub fn with_log_shipping_transport(
        schema: Schema,
        config: LsmConfig,
        shared: Arc<dyn ObjectStore>,
        coordinator: Arc<Coordinator>,
        transport: Arc<dyn crate::transport::Transport>,
    ) -> StorageResult<Self> {
        let engines = Self::make_engines(&schema, &config, &shared, &coordinator, false)?;
        let shared_log = Some(SharedLog::open_with_transport(shared, transport)?);
        Ok(Self { coordinator, engines, shared_log, applied_ops: Mutex::new(HashSet::new()) })
    }

    /// Bring up a replacement writer after a crash: load the flushed
    /// segments from shared storage, replay the shipped log tail, flush.
    pub fn standby_takeover(
        schema: Schema,
        config: LsmConfig,
        shared: Arc<dyn ObjectStore>,
        coordinator: Arc<Coordinator>,
    ) -> StorageResult<Self> {
        Self::standby_takeover_with_transport(
            schema,
            config,
            shared,
            coordinator,
            Arc::new(Direct),
            NodeId::Writer,
            RetryPolicy::default(),
        )
    }

    /// [`WriterNode::standby_takeover`] with every recovery read (log list,
    /// record gets) and all subsequent shipping routed over `transport` as
    /// `endpoint` — the standby's own link, with its own fault schedule.
    /// The promoted instance ships under a fresh term, fencing its records
    /// from any in-flight duplicates of the writer it replaces. Replayed
    /// inserts dedupe by client op id and skip rows already live, so a
    /// record whose covering checkpoint was lost in flight is harmless.
    pub fn standby_takeover_with_transport(
        schema: Schema,
        config: LsmConfig,
        shared: Arc<dyn ObjectStore>,
        coordinator: Arc<Coordinator>,
        transport: Arc<dyn Transport>,
        endpoint: NodeId,
        retry: RetryPolicy,
    ) -> StorageResult<Self> {
        let engines = Self::make_engines(&schema, &config, &shared, &coordinator, true)?;
        let shared_log = SharedLog::open_standby(
            Arc::clone(&shared),
            Arc::clone(&transport),
            endpoint,
            retry.clone(),
        )?;
        let writer = Self {
            coordinator,
            engines,
            shared_log: Some(shared_log),
            applied_ops: Mutex::new(HashSet::new()),
        };
        let tail = SharedLog::replay_tail_with_transport(&shared, &transport, endpoint, &retry)?;
        let mut replayed = 0u64;
        let mut max_seq = 0u64;
        for entry in tail {
            max_seq = max_seq.max(entry.seq);
            replayed += 1;
            match entry.record {
                LogRecord::Insert { op_id, batch, .. } => {
                    if let Some(op) = op_id {
                        writer.applied_ops.lock().insert(op);
                    }
                    writer.apply_insert_tolerant(batch)?;
                }
                LogRecord::Delete { ids, .. } => writer.apply_delete(&ids)?,
                LogRecord::FlushCheckpoint { .. } => {}
            }
        }
        obs::counter(obs::WRITER_REPLAYED_RECORDS, "writer").add(replayed);
        obs::gauge(obs::WRITER_TAKEOVER_REPLAY_LSN, "writer").set(max_seq as i64);
        writer.flush()?;
        Ok(writer)
    }

    fn make_engines(
        schema: &Schema,
        config: &LsmConfig,
        shared: &Arc<dyn ObjectStore>,
        coordinator: &Arc<Coordinator>,
        from_store: bool,
    ) -> StorageResult<Vec<Arc<LsmEngine>>> {
        (0..coordinator.shards())
            .map(|s| {
                let store: Arc<dyn ObjectStore> =
                    Arc::new(PrefixStore::new(Arc::clone(shared), format!("shard-{s}")));
                let engine = if from_store {
                    LsmEngine::open_from_store(schema.clone(), config.clone(), store, None)?
                } else {
                    LsmEngine::new(schema.clone(), config.clone(), store, None)?
                };
                Ok(Arc::new(engine))
            })
            .collect()
    }

    /// Shard count.
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// Per-shard engine (inspection/tests).
    pub fn engine(&self, shard: usize) -> &Arc<LsmEngine> {
        &self.engines[shard]
    }

    /// Partition a batch by entity shard and insert each piece. When log
    /// shipping is on, the operation is durable in shared storage before the
    /// engines see it.
    pub fn insert(&self, batch: InsertBatch) -> StorageResult<()> {
        self.insert_tagged(batch, None)
    }

    /// [`WriterNode::insert`] carrying the client's operation id. If the id
    /// was already applied — a retry whose first attempt executed but whose
    /// ack was lost in flight, or a record replayed during takeover — the
    /// batch is acknowledged without re-applying, making tagged inserts
    /// exactly-once.
    pub fn insert_tagged(&self, batch: InsertBatch, op_id: Option<u64>) -> StorageResult<()> {
        let _span = obs::span(obs::INGEST_LATENCY, "writer");
        if let Some(op) = op_id {
            if self.applied_ops.lock().contains(&op) {
                obs::counter(obs::WRITER_DEDUPED_OPS, "writer").inc();
                return Ok(());
            }
        }
        obs::counter(obs::INGEST_BATCHES, "writer").inc();
        obs::counter(obs::INGEST_ROWS, "writer").add(batch.ids.len() as u64);
        if let Some(log) = &self.shared_log {
            log.ship_insert(batch.clone(), op_id)?;
        }
        self.apply_insert(batch)?;
        if let Some(op) = op_id {
            self.applied_ops.lock().insert(op);
        }
        Ok(())
    }

    fn apply_insert(&self, batch: InsertBatch) -> StorageResult<()> {
        let shards = self.coordinator.shards();
        let mut rows_per_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (row, &id) in batch.ids.iter().enumerate() {
            rows_per_shard[self.coordinator.shard_of(id)].push(row);
        }
        for (shard, rows) in rows_per_shard.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let sub = InsertBatch {
                ids: rows.iter().map(|&r| batch.ids[r]).collect(),
                vectors: batch.vectors.iter().map(|col| col.gather(&rows)).collect(),
                attributes: batch
                    .attributes
                    .iter()
                    .map(|col| rows.iter().map(|&r| col[r]).collect())
                    .collect(),
            };
            self.engines[shard].insert(sub)?;
        }
        Ok(())
    }

    /// Apply a replayed insert, skipping rows already live in the engines.
    /// A record can be replayed although its rows were flushed when the
    /// checkpoint covering it was shipped but lost by the network.
    fn apply_insert_tolerant(&self, batch: InsertBatch) -> StorageResult<()> {
        let keep: Vec<usize> = batch
            .ids
            .iter()
            .enumerate()
            .filter(|&(_, &id)| !self.engines[self.coordinator.shard_of(id)].contains_live(id))
            .map(|(row, _)| row)
            .collect();
        if keep.is_empty() {
            return Ok(());
        }
        if keep.len() == batch.ids.len() {
            return self.apply_insert(batch);
        }
        let sub = InsertBatch {
            ids: keep.iter().map(|&r| batch.ids[r]).collect(),
            vectors: batch.vectors.iter().map(|col| col.gather(&keep)).collect(),
            attributes: batch
                .attributes
                .iter()
                .map(|col| keep.iter().map(|&r| col[r]).collect())
                .collect(),
        };
        self.apply_insert(sub)
    }

    /// Route deletes to the owning shards.
    pub fn delete(&self, ids: &[i64]) -> StorageResult<()> {
        obs::counter(obs::DELETE_ROWS, "writer").add(ids.len() as u64);
        if let Some(log) = &self.shared_log {
            log.ship_delete(ids.to_vec())?;
        }
        self.apply_delete(ids)
    }

    /// Term (takeover generation) this writer ships under: 0 for the
    /// original instance or when shipping is off, `n` after the `n`-th
    /// takeover.
    pub fn term(&self) -> u64 {
        self.shared_log.as_ref().map_or(0, |l| l.term())
    }

    /// Sorted live entity ids across all shards (equivalence checks; flush
    /// first — memtable-only rows are not included).
    pub fn live_ids(&self) -> Vec<i64> {
        let mut out: Vec<i64> = Vec::new();
        for engine in &self.engines {
            let snap = engine.snapshot();
            for seg in &snap.segments {
                for &id in &seg.data().row_ids {
                    if engine.contains_live(id) {
                        out.push(id);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Per-shard flushed segment `(id, version)` pairs, sorted
    /// (equivalence checks).
    pub fn segment_versions(&self) -> Vec<Vec<(u64, u64)>> {
        self.engines
            .iter()
            .map(|engine| {
                let snap = engine.snapshot();
                let mut v: Vec<(u64, u64)> =
                    snap.segments.iter().map(|s| (s.id, s.version)).collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    fn apply_delete(&self, ids: &[i64]) -> StorageResult<()> {
        let shards = self.coordinator.shards();
        let mut per_shard: Vec<Vec<i64>> = vec![Vec::new(); shards];
        for &id in ids {
            per_shard[self.coordinator.shard_of(id)].push(id);
        }
        for (shard, ids) in per_shard.into_iter().enumerate() {
            if !ids.is_empty() {
                self.engines[shard].delete(&ids)?;
            }
        }
        Ok(())
    }

    /// Flush every shard engine; segments land in shared storage. With log
    /// shipping on, a checkpoint is appended so standbys skip replayed work.
    pub fn flush(&self) -> StorageResult<()> {
        let _span = obs::span(obs::FLUSH_LATENCY, "writer");
        for e in &self.engines {
            e.flush()?;
        }
        if let Some(log) = &self.shared_log {
            log.ship_checkpoint(log.last_seq())?;
        }
        Ok(())
    }

    /// Truncate shipped log records covered by the last checkpoint.
    pub fn truncate_shared_log(&self) -> StorageResult<usize> {
        match &self.shared_log {
            Some(log) => log.truncate(),
            None => Ok(0),
        }
    }

    /// Build `index_type` on `field` for every flushed segment of every
    /// shard. The indexed segment versions are persisted to shared storage,
    /// so readers pick the indexes up on their next refresh (§2.3: index and
    /// data live in the same segment).
    pub fn build_indexes(
        &self,
        field: &str,
        index_type: &str,
        registry: &milvus_index::registry::IndexRegistry,
        params: &milvus_index::BuildParams,
    ) -> StorageResult<usize> {
        let mut built = 0;
        for engine in &self.engines {
            let snap = engine.snapshot();
            for seg in &snap.segments {
                if seg.index(field).is_none() && seg.live_rows() > 0 {
                    let next =
                        seg.build_index(engine.schema(), field, index_type, registry, params)?;
                    if engine.replace_segment(Arc::new(next))? {
                        built += 1;
                    }
                }
            }
        }
        Ok(built)
    }

    /// Total live rows across shards.
    pub fn live_rows(&self) -> usize {
        self.engines.iter().map(|e| e.snapshot().live_rows()).sum()
    }

    /// Convenience: single-vector insert.
    pub fn insert_vectors(&self, ids: Vec<i64>, vectors: VectorSet) -> StorageResult<()> {
        self.insert(InsertBatch::single(ids, vectors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::Metric;
    use milvus_storage::object_store::MemoryStore;

    fn setup(shards: usize) -> (Arc<Coordinator>, WriterNode, Arc<dyn ObjectStore>) {
        let coordinator = Coordinator::new(shards);
        let shared: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let schema = Schema::single("v", 2, Metric::L2);
        let cfg = LsmConfig { auto_merge: false, ..Default::default() };
        let writer =
            WriterNode::new(schema, cfg, Arc::clone(&shared), Arc::clone(&coordinator)).unwrap();
        (coordinator, writer, shared)
    }

    fn batch(n: usize) -> InsertBatch {
        let ids: Vec<i64> = (0..n as i64).collect();
        let mut vs = VectorSet::new(2);
        for &id in &ids {
            vs.push(&[id as f32, 0.0]);
        }
        InsertBatch::single(ids, vs)
    }

    #[test]
    fn rows_partition_across_shards() {
        let (coord, writer, _) = setup(4);
        writer.insert(batch(200)).unwrap();
        writer.flush().unwrap();
        assert_eq!(writer.live_rows(), 200);
        // Each row landed on its hash-designated shard.
        for shard in 0..4 {
            let snap = writer.engine(shard).snapshot();
            for seg in &snap.segments {
                for &id in &seg.data().row_ids {
                    assert_eq!(coord.shard_of(id), shard);
                }
            }
        }
        // All shards got something (200 ids over 4 shards).
        for shard in 0..4 {
            assert!(writer.engine(shard).snapshot().live_rows() > 0, "shard {shard} empty");
        }
    }

    #[test]
    fn segments_land_in_shared_storage_by_prefix() {
        let (_, writer, shared) = setup(2);
        writer.insert(batch(50)).unwrap();
        writer.flush().unwrap();
        let keys = shared.list("").unwrap();
        assert!(keys.iter().any(|k| k.starts_with("shard-0/segments/")));
        assert!(keys.iter().any(|k| k.starts_with("shard-1/segments/")));
    }

    #[test]
    fn deletes_route_to_owning_shard() {
        let (_, writer, _) = setup(3);
        writer.insert(batch(60)).unwrap();
        writer.flush().unwrap();
        writer.delete(&[0, 1, 2, 3, 4]).unwrap();
        writer.flush().unwrap();
        assert_eq!(writer.live_rows(), 55);
    }
}

//! A key-prefix view over a shared object store, giving each shard its own
//! namespace inside the one shared bucket (Figure 5's "distributed shared
//! storage").

use std::sync::Arc;

use bytes::Bytes;
use milvus_storage::error::Result;
use milvus_storage::object_store::ObjectStore;

/// Wraps a store, prepending `prefix/` to every key.
pub struct PrefixStore {
    inner: Arc<dyn ObjectStore>,
    prefix: String,
}

impl PrefixStore {
    /// View of `inner` under `prefix`.
    pub fn new(inner: Arc<dyn ObjectStore>, prefix: impl Into<String>) -> Self {
        let mut prefix = prefix.into();
        if !prefix.ends_with('/') {
            prefix.push('/');
        }
        Self { inner, prefix }
    }

    fn full(&self, key: &str) -> String {
        format!("{}{}", self.prefix, key)
    }
}

impl ObjectStore for PrefixStore {
    fn put(&self, key: &str, data: Bytes) -> Result<()> {
        self.inner.put(&self.full(key), data)
    }

    fn get(&self, key: &str) -> Result<Bytes> {
        self.inner.get(&self.full(key)).map_err(|e| match e {
            milvus_storage::StorageError::ObjectNotFound(_) => {
                milvus_storage::StorageError::ObjectNotFound(key.to_string())
            }
            other => other,
        })
    }

    fn delete(&self, key: &str) -> Result<()> {
        self.inner.delete(&self.full(key))
    }

    fn list(&self, prefix: &str) -> Result<Vec<String>> {
        Ok(self
            .inner
            .list(&self.full(prefix))?
            .into_iter()
            .filter_map(|k| k.strip_prefix(&self.prefix).map(str::to_string))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_storage::object_store::MemoryStore;

    #[test]
    fn prefixes_are_isolated() {
        let shared: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let a = PrefixStore::new(Arc::clone(&shared), "shard-0");
        let b = PrefixStore::new(Arc::clone(&shared), "shard-1");
        a.put("x", Bytes::from_static(b"A")).unwrap();
        b.put("x", Bytes::from_static(b"B")).unwrap();
        assert_eq!(a.get("x").unwrap(), Bytes::from_static(b"A"));
        assert_eq!(b.get("x").unwrap(), Bytes::from_static(b"B"));
        assert_eq!(a.list("").unwrap(), vec!["x".to_string()]);
        a.delete("x").unwrap();
        assert!(a.get("x").is_err());
        assert!(b.get("x").is_ok());
    }

    #[test]
    fn not_found_reports_relative_key() {
        let shared: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let a = PrefixStore::new(shared, "p");
        match a.get("missing") {
            Err(milvus_storage::StorageError::ObjectNotFound(k)) => assert_eq!(k, "missing"),
            other => panic!("unexpected: {other:?}"),
        }
    }
}

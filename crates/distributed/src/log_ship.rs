//! Log shipping to shared storage (§5.3 optimization 1: "The computing layer
//! only sends logs (rather than the actual data) to the storage layer,
//! similar to Aurora").
//!
//! The writer appends every operation as a JSON object under `wal/` in the
//! shared store before acknowledging; flushes append a checkpoint. A standby
//! writer recovers by loading the flushed segments and replaying the shipped
//! tail — no local disk involved, which is what makes the writer itself
//! stateless.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use milvus_obs as obs;
use milvus_storage::object_store::ObjectStore;
use milvus_storage::wal::LogRecord;
use milvus_storage::{InsertBatch, Result as StorageResult};

use crate::transport::{Direct, NodeId, Transport};

fn log_key(seq: u64) -> String {
    format!("wal/{seq:016}.json")
}

fn parse_log_key(key: &str) -> Option<u64> {
    key.strip_prefix("wal/")?.strip_suffix(".json")?.parse().ok()
}

/// Appends operation records to the shared store.
pub struct SharedLog {
    store: Arc<dyn ObjectStore>,
    next_seq: AtomicU64,
    /// Log records travel the `Writer → Storage` link as one-way messages:
    /// a simulated transport may duplicate them (same key, same bytes —
    /// idempotent), hold them back for reordered delivery (distinct keys —
    /// order-free), or drop them (modelled log loss).
    transport: Arc<dyn Transport>,
}

impl SharedLog {
    /// Open the log, resuming the sequence after any existing records.
    pub fn open(store: Arc<dyn ObjectStore>) -> StorageResult<Self> {
        Self::open_with_transport(store, Arc::new(Direct))
    }

    /// [`SharedLog::open`] with record shipping routed through `transport`.
    pub fn open_with_transport(
        store: Arc<dyn ObjectStore>,
        transport: Arc<dyn Transport>,
    ) -> StorageResult<Self> {
        let max = store
            .list("wal/")?
            .iter()
            .filter_map(|k| parse_log_key(k))
            .max()
            .unwrap_or(0);
        Ok(Self { store, next_seq: AtomicU64::new(max + 1), transport })
    }

    fn append(&self, rec: &LogRecord) -> StorageResult<u64> {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let blob = Bytes::from(serde_json::to_vec(rec)?);
        if self.transport.is_direct() {
            self.store.put(&log_key(seq), blob)?;
        } else {
            let store = Arc::clone(&self.store);
            let key = log_key(seq);
            self.transport.send_oneway(
                NodeId::Writer,
                NodeId::Storage,
                Box::new(move || {
                    let _ = store.put(&key, blob.clone());
                }),
            );
        }
        obs::counter(obs::LOG_SHIP_RECORDS, "shared").inc();
        Ok(seq)
    }

    /// Ship an insert; returns its sequence number.
    pub fn ship_insert(&self, batch: InsertBatch) -> StorageResult<u64> {
        let lsn = self.next_seq.load(Ordering::SeqCst);
        self.append(&LogRecord::Insert { lsn, batch })
    }

    /// Ship a delete.
    pub fn ship_delete(&self, ids: Vec<i64>) -> StorageResult<u64> {
        let lsn = self.next_seq.load(Ordering::SeqCst);
        self.append(&LogRecord::Delete { lsn, ids })
    }

    /// Ship a flush checkpoint: every record `<= upto_seq` is now durable in
    /// segments; replay starts after it.
    pub fn ship_checkpoint(&self, upto_seq: u64) -> StorageResult<u64> {
        self.append(&LogRecord::FlushCheckpoint { lsn: upto_seq })
    }

    /// Records after the latest checkpoint, in sequence order — what a
    /// standby writer must replay.
    pub fn replay_tail(store: &Arc<dyn ObjectStore>) -> StorageResult<Vec<LogRecord>> {
        let mut keys: Vec<(u64, String)> = store
            .list("wal/")?
            .into_iter()
            .filter_map(|k| parse_log_key(&k).map(|s| (s, k)))
            .collect();
        keys.sort_by_key(|(s, _)| *s);
        let mut records: Vec<(u64, LogRecord)> = Vec::with_capacity(keys.len());
        for (seq, key) in keys {
            let blob = store.get(&key)?;
            records.push((seq, serde_json::from_slice(&blob)?));
        }
        let checkpoint = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::FlushCheckpoint { lsn } => Some(*lsn),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let tail: Vec<LogRecord> = records
            .into_iter()
            .filter(|(seq, r)| {
                !matches!(r, LogRecord::FlushCheckpoint { .. }) && *seq > checkpoint
            })
            .map(|(_, r)| r)
            .collect();
        obs::counter(obs::LOG_APPLY_RECORDS, "shared").add(tail.len() as u64);
        Ok(tail)
    }

    /// The sequence number of the most recently shipped record.
    pub fn last_seq(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst).saturating_sub(1)
    }

    /// Drop records covered by the latest checkpoint (log truncation).
    pub fn truncate(&self) -> StorageResult<usize> {
        let tail: std::collections::HashSet<u64> = {
            // Keep: everything after the newest checkpoint, plus that
            // checkpoint record itself.
            let mut keys: Vec<(u64, String)> = self
                .store
                .list("wal/")?
                .into_iter()
                .filter_map(|k| parse_log_key(&k).map(|s| (s, k)))
                .collect();
            keys.sort_by_key(|(s, _)| *s);
            let mut checkpoint_seq = None;
            for (seq, key) in &keys {
                let blob = self.store.get(key)?;
                if matches!(
                    serde_json::from_slice::<LogRecord>(&blob)?,
                    LogRecord::FlushCheckpoint { .. }
                ) {
                    checkpoint_seq = Some(*seq);
                }
            }
            match checkpoint_seq {
                None => return Ok(0),
                Some(cp) => keys.iter().filter(|(s, _)| *s >= cp).map(|(s, _)| *s).collect(),
            }
        };
        let mut removed = 0;
        for key in self.store.list("wal/")? {
            if let Some(seq) = parse_log_key(&key) {
                if !tail.contains(&seq) {
                    self.store.delete(&key)?;
                    removed += 1;
                }
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::VectorSet;
    use milvus_storage::object_store::MemoryStore;

    fn batch(ids: Vec<i64>) -> InsertBatch {
        let n = ids.len();
        InsertBatch::single(ids, VectorSet::from_flat(2, vec![0.0; n * 2]))
    }

    #[test]
    fn ship_and_replay() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let log = SharedLog::open(Arc::clone(&store)).unwrap();
        log.ship_insert(batch(vec![1, 2])).unwrap();
        log.ship_delete(vec![1]).unwrap();
        let tail = SharedLog::replay_tail(&store).unwrap();
        assert_eq!(tail.len(), 2);
        assert!(matches!(tail[0], LogRecord::Insert { .. }));
        assert!(matches!(tail[1], LogRecord::Delete { .. }));
    }

    #[test]
    fn checkpoint_limits_replay() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let log = SharedLog::open(Arc::clone(&store)).unwrap();
        let s1 = log.ship_insert(batch(vec![1])).unwrap();
        log.ship_checkpoint(s1).unwrap();
        log.ship_insert(batch(vec![2])).unwrap();
        let tail = SharedLog::replay_tail(&store).unwrap();
        assert_eq!(tail.len(), 1);
        let LogRecord::Insert { batch: b, .. } = &tail[0] else { panic!() };
        assert_eq!(b.ids, vec![2]);
    }

    #[test]
    fn sequence_resumes_after_reopen() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        {
            let log = SharedLog::open(Arc::clone(&store)).unwrap();
            log.ship_insert(batch(vec![1])).unwrap();
        }
        let log = SharedLog::open(Arc::clone(&store)).unwrap();
        let seq = log.ship_insert(batch(vec![2])).unwrap();
        assert!(seq >= 2);
    }

    #[test]
    fn truncation_drops_checkpointed_records() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let log = SharedLog::open(Arc::clone(&store)).unwrap();
        let s1 = log.ship_insert(batch(vec![1])).unwrap();
        let s2 = log.ship_delete(vec![1]).unwrap();
        log.ship_checkpoint(s2).unwrap();
        log.ship_insert(batch(vec![2])).unwrap();
        let removed = log.truncate().unwrap();
        assert_eq!(removed, 2, "records {s1} and {s2} should be truncated");
        // Replay still yields only the post-checkpoint tail.
        let tail = SharedLog::replay_tail(&store).unwrap();
        assert_eq!(tail.len(), 1);
    }
}

//! Log shipping to shared storage (§5.3 optimization 1: "The computing layer
//! only sends logs (rather than the actual data) to the storage layer,
//! similar to Aurora").
//!
//! The writer appends every operation as a JSON object under `wal/` in the
//! shared store before acknowledging; flushes append a checkpoint. A standby
//! writer recovers by loading the flushed segments and replaying the shipped
//! tail — no local disk involved, which is what makes the writer itself
//! stateless.
//!
//! **Acknowledged shipping.** Shipping is a request/response exchange on the
//! `from → Storage` link ([`crate::transport::rpc`]): the record is durable
//! in the shared store before the writer acknowledges the client. A dropped
//! shipment is retried (same key, same bytes — idempotent); exhausted
//! retries fail the client operation instead of silently losing an acked
//! write. This is what makes the linearizability story work: *acked ⇒
//! durable in the log or in segments*.
//!
//! **Term fencing.** Every record key carries the shipping writer's *term*
//! (takeover generation): `wal/{term:08}-{seq:016}.json`. A promoted standby
//! opens the log at `max existing term + 1`, so late deliveries from the
//! dead writer's in-flight duplicates can never collide with or overwrite
//! the new writer's records, and records of an older term that surface
//! after a newer term checkpointed are fenced out of replay (they were
//! never acknowledged — see above).
//!
//! **One cut rule.** Replay and truncation both derive their record sets
//! from [`SharedLog::find_cut`]: the checkpoint with the maximum
//! `(term, covered lsn)` wins, and a record is covered iff its
//! `(term, seq)` is lexicographically `<=` `(cut term, cut lsn)`. The seed
//! had two rules — replay cut by max checkpoint *payload* lsn, truncation
//! keeping from the newest checkpoint *key* — which could disagree under
//! duplicated/reordered checkpoint shipping and takeover-era key ranges;
//! unified here and pinned by `tests/linearizability.rs`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use milvus_obs as obs;
use milvus_storage::object_store::ObjectStore;
use milvus_storage::wal::LogRecord;
use milvus_storage::{InsertBatch, Result as StorageResult};

use crate::transport::{rpc, Direct, NodeId, RetryPolicy, Transport};

fn log_key(term: u64, seq: u64) -> String {
    format!("wal/{term:08}-{seq:016}.json")
}

/// `(term, seq)` of a shipped-log key. Legacy keys (`wal/{seq}.json`, no
/// term component) parse as term 0.
fn parse_log_key(key: &str) -> Option<(u64, u64)> {
    let stem = key.strip_prefix("wal/")?.strip_suffix(".json")?;
    match stem.split_once('-') {
        Some((term, seq)) => Some((term.parse().ok()?, seq.parse().ok()?)),
        None => Some((0, stem.parse().ok()?)),
    }
}

/// One parsed shipped-log entry.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// Term (takeover generation) of the writer that shipped the record.
    pub term: u64,
    /// The record's sequence number (its key, and its `lsn` payload field).
    pub seq: u64,
    /// The record itself.
    pub record: LogRecord,
}

/// The replay/truncation cut: the winning checkpoint and what it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogCut {
    /// Term of the winning checkpoint.
    pub term: u64,
    /// Checkpoint payload: records with `(term, seq) <= (cut.term,
    /// cut.upto)` are covered (already durable in segments).
    pub upto: u64,
    /// The checkpoint record's own key sequence (kept by truncation).
    pub cp_seq: u64,
}

impl LogCut {
    /// Whether the record at `(term, seq)` is covered by this cut.
    pub fn covers(&self, term: u64, seq: u64) -> bool {
        (term, seq) <= (self.term, self.upto)
    }
}

/// Appends operation records to the shared store.
pub struct SharedLog {
    store: Arc<dyn ObjectStore>,
    next_seq: AtomicU64,
    term: u64,
    /// Identity the shipping writer puts on the wire (`Writer`, or
    /// `Standby(n)` after a takeover).
    from: NodeId,
    /// Log records travel the `from → Storage` link as acknowledged RPCs:
    /// a simulated transport may drop them (retried with backoff; exhausted
    /// retries fail the operation before the client is acked) or duplicate
    /// them (same key, same bytes — idempotent).
    transport: Arc<dyn Transport>,
    retry: RetryPolicy,
}

impl SharedLog {
    /// Open the log, resuming the sequence after any existing records.
    pub fn open(store: Arc<dyn ObjectStore>) -> StorageResult<Self> {
        Self::open_with_transport(store, Arc::new(Direct))
    }

    /// [`SharedLog::open`] with record shipping routed through `transport`
    /// as [`NodeId::Writer`] (term 0 — the original writer instance).
    pub fn open_with_transport(
        store: Arc<dyn ObjectStore>,
        transport: Arc<dyn Transport>,
    ) -> StorageResult<Self> {
        Self::open_as(store, transport, NodeId::Writer, RetryPolicy::default())
    }

    /// Open the log as a promoted standby: the new instance ships under
    /// `max existing term + 1`, fencing its records from any in-flight
    /// duplicates of the dead writer, and resumes the sequence after the
    /// highest delivered record of any term. The key scan itself routes
    /// over the `from → Storage` link.
    pub fn open_standby(
        store: Arc<dyn ObjectStore>,
        transport: Arc<dyn Transport>,
        from: NodeId,
        retry: RetryPolicy,
    ) -> StorageResult<Self> {
        let mut log = Self::open_as(store, transport, from, retry)?;
        let max_term = Self::scan(&log)?.iter().map(|(t, _)| *t).max().unwrap_or(0);
        log.term = max_term + 1;
        Ok(log)
    }

    fn open_as(
        store: Arc<dyn ObjectStore>,
        transport: Arc<dyn Transport>,
        from: NodeId,
        retry: RetryPolicy,
    ) -> StorageResult<Self> {
        let mut log = Self {
            store,
            next_seq: AtomicU64::new(1),
            term: 0,
            from,
            transport,
            retry,
        };
        let max_seq = Self::scan(&log)?.iter().map(|(_, s)| *s).max().unwrap_or(0);
        log.next_seq = AtomicU64::new(max_seq + 1);
        Ok(log)
    }

    /// Parsed `(term, seq)` keys currently in the store, listed over this
    /// log's transport link.
    fn scan(&self) -> StorageResult<Vec<(u64, u64)>> {
        let keys = rpc(
            &*self.transport,
            self.from,
            NodeId::Storage,
            "log_list",
            &self.retry,
            true,
            || self.store.list("wal/"),
        )?;
        Ok(keys.iter().filter_map(|k| parse_log_key(k)).collect())
    }

    /// Term (takeover generation) this instance ships under.
    pub fn term(&self) -> u64 {
        self.term
    }

    fn append(&self, make: impl FnOnce(u64) -> LogRecord) -> StorageResult<u64> {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst);
        let rec = make(seq);
        let blob = Bytes::from(serde_json::to_vec(&rec)?);
        let key = log_key(self.term, seq);
        if self.transport.is_direct() {
            self.store.put(&key, blob)?;
        } else {
            // Acknowledged shipping: the put must round-trip before the
            // writer acks the client. Retried drops re-put the same key
            // with the same bytes, so duplicates are harmless.
            rpc(
                &*self.transport,
                self.from,
                NodeId::Storage,
                "log_ship",
                &self.retry,
                true,
                || self.store.put(&key, blob.clone()),
            )?;
        }
        obs::counter(obs::LOG_SHIP_RECORDS, "shared").inc();
        Ok(seq)
    }

    /// Ship an insert; returns its sequence number. `op_id` is the client's
    /// operation id — replay and client retries dedupe against it.
    pub fn ship_insert(&self, batch: InsertBatch, op_id: Option<u64>) -> StorageResult<u64> {
        self.append(|lsn| LogRecord::Insert { lsn, op_id, batch })
    }

    /// Ship a delete.
    pub fn ship_delete(&self, ids: Vec<i64>) -> StorageResult<u64> {
        self.append(|lsn| LogRecord::Delete { lsn, ids })
    }

    /// Ship a flush checkpoint: every record `<= upto_seq` of this term (and
    /// every record of earlier terms) is now durable in segments; replay
    /// starts after it.
    pub fn ship_checkpoint(&self, upto_seq: u64) -> StorageResult<u64> {
        self.append(|_| LogRecord::FlushCheckpoint { lsn: upto_seq })
    }

    /// All shipped entries, sorted by `(term, seq)`, read directly from the
    /// store.
    pub fn entries(store: &Arc<dyn ObjectStore>) -> StorageResult<Vec<LogEntry>> {
        Self::entries_with_transport(
            store,
            &(Arc::new(Direct) as Arc<dyn Transport>),
            NodeId::Writer,
            &RetryPolicy::default(),
        )
    }

    /// All shipped entries, sorted by `(term, seq)`, with every `list`/`get`
    /// routed over the `from → Storage` link — recovery reads see the same
    /// drops, delays and duplicates as any other traffic.
    pub fn entries_with_transport(
        store: &Arc<dyn ObjectStore>,
        transport: &Arc<dyn Transport>,
        from: NodeId,
        retry: &RetryPolicy,
    ) -> StorageResult<Vec<LogEntry>> {
        let keys = rpc(&**transport, from, NodeId::Storage, "log_list", retry, true, || {
            store.list("wal/")
        })?;
        let mut parsed: Vec<((u64, u64), String)> = keys
            .into_iter()
            .filter_map(|k| parse_log_key(&k).map(|ts| (ts, k)))
            .collect();
        parsed.sort_by_key(|(ts, _)| *ts);
        let mut entries = Vec::with_capacity(parsed.len());
        for ((term, seq), key) in parsed {
            let blob = rpc(&**transport, from, NodeId::Storage, "log_get", retry, true, || {
                store.get(&key)
            })?;
            entries.push(LogEntry { term, seq, record: serde_json::from_slice(&blob)? });
        }
        Ok(entries)
    }

    /// The single cut rule shared by replay and truncation: the checkpoint
    /// with the maximum `(term, covered lsn)` wins. `None` when no
    /// checkpoint has been shipped.
    pub fn find_cut(entries: &[LogEntry]) -> Option<LogCut> {
        entries
            .iter()
            .filter_map(|e| match &e.record {
                LogRecord::FlushCheckpoint { lsn } => {
                    Some(LogCut { term: e.term, upto: *lsn, cp_seq: e.seq })
                }
                _ => None,
            })
            .max_by_key(|c| (c.term, c.upto))
    }

    /// Records after the cut, in `(term, seq)` order — what a standby
    /// writer must replay.
    pub fn replay_tail(store: &Arc<dyn ObjectStore>) -> StorageResult<Vec<LogRecord>> {
        let entries = Self::entries(store)?;
        Ok(Self::tail_of(entries).into_iter().map(|e| e.record).collect())
    }

    /// [`SharedLog::replay_tail`] with recovery reads routed over the
    /// transport, returning full entries.
    pub fn replay_tail_with_transport(
        store: &Arc<dyn ObjectStore>,
        transport: &Arc<dyn Transport>,
        from: NodeId,
        retry: &RetryPolicy,
    ) -> StorageResult<Vec<LogEntry>> {
        let entries = Self::entries_with_transport(store, transport, from, retry)?;
        Ok(Self::tail_of(entries))
    }

    fn tail_of(entries: Vec<LogEntry>) -> Vec<LogEntry> {
        let cut = Self::find_cut(&entries);
        let tail: Vec<LogEntry> = entries
            .into_iter()
            .filter(|e| {
                !matches!(e.record, LogRecord::FlushCheckpoint { .. })
                    && cut.is_none_or(|c| !c.covers(e.term, e.seq))
            })
            .collect();
        obs::counter(obs::LOG_APPLY_RECORDS, "shared").add(tail.len() as u64);
        tail
    }

    /// The sequence number of the most recently shipped record.
    pub fn last_seq(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst).saturating_sub(1)
    }

    /// Drop records covered by the cut (log truncation). Keeps exactly the
    /// records [`SharedLog::replay_tail`] would return, plus the cut
    /// checkpoint itself — the two can never disagree because they share
    /// [`SharedLog::find_cut`].
    pub fn truncate(&self) -> StorageResult<usize> {
        let entries = Self::entries(&self.store)?;
        let Some(cut) = Self::find_cut(&entries) else { return Ok(0) };
        let mut removed = 0;
        for e in &entries {
            let is_cut_checkpoint = e.term == cut.term && e.seq == cut.cp_seq;
            if cut.covers(e.term, e.seq) && !is_cut_checkpoint {
                self.store.delete(&log_key(e.term, e.seq))?;
                removed += 1;
            } else if matches!(e.record, LogRecord::FlushCheckpoint { .. }) && !is_cut_checkpoint
            {
                // Superseded checkpoints are covered metadata, never replayed.
                self.store.delete(&log_key(e.term, e.seq))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use milvus_index::VectorSet;
    use milvus_storage::object_store::MemoryStore;

    fn batch(ids: Vec<i64>) -> InsertBatch {
        let n = ids.len();
        InsertBatch::single(ids, VectorSet::from_flat(2, vec![0.0; n * 2]))
    }

    #[test]
    fn ship_and_replay() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let log = SharedLog::open(Arc::clone(&store)).unwrap();
        log.ship_insert(batch(vec![1, 2]), Some(7)).unwrap();
        log.ship_delete(vec![1]).unwrap();
        let tail = SharedLog::replay_tail(&store).unwrap();
        assert_eq!(tail.len(), 2);
        let LogRecord::Insert { op_id, .. } = &tail[0] else { panic!() };
        assert_eq!(*op_id, Some(7));
        assert!(matches!(tail[1], LogRecord::Delete { .. }));
    }

    #[test]
    fn checkpoint_limits_replay() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let log = SharedLog::open(Arc::clone(&store)).unwrap();
        let s1 = log.ship_insert(batch(vec![1]), None).unwrap();
        log.ship_checkpoint(s1).unwrap();
        log.ship_insert(batch(vec![2]), None).unwrap();
        let tail = SharedLog::replay_tail(&store).unwrap();
        assert_eq!(tail.len(), 1);
        let LogRecord::Insert { batch: b, .. } = &tail[0] else { panic!() };
        assert_eq!(b.ids, vec![2]);
    }

    #[test]
    fn sequence_resumes_after_reopen() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        {
            let log = SharedLog::open(Arc::clone(&store)).unwrap();
            log.ship_insert(batch(vec![1]), None).unwrap();
        }
        let log = SharedLog::open(Arc::clone(&store)).unwrap();
        let seq = log.ship_insert(batch(vec![2]), None).unwrap();
        assert!(seq >= 2);
    }

    #[test]
    fn truncation_drops_checkpointed_records() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let log = SharedLog::open(Arc::clone(&store)).unwrap();
        let s1 = log.ship_insert(batch(vec![1]), None).unwrap();
        let s2 = log.ship_delete(vec![1]).unwrap();
        log.ship_checkpoint(s2).unwrap();
        log.ship_insert(batch(vec![2]), None).unwrap();
        let removed = log.truncate().unwrap();
        assert_eq!(removed, 2, "records {s1} and {s2} should be truncated");
        // Replay still yields only the post-checkpoint tail.
        let tail = SharedLog::replay_tail(&store).unwrap();
        assert_eq!(tail.len(), 1);
    }

    #[test]
    fn legacy_untermed_keys_parse_as_term_zero() {
        assert_eq!(parse_log_key("wal/0000000000000042.json"), Some((0, 42)));
        assert_eq!(parse_log_key("wal/00000003-0000000000000042.json"), Some((3, 42)));
        assert_eq!(parse_log_key("wal/garbage"), None);
    }

    #[test]
    fn standby_term_fences_and_wins_cut() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let log0 = SharedLog::open(Arc::clone(&store)).unwrap();
        let s = log0.ship_insert(batch(vec![1]), None).unwrap();
        log0.ship_checkpoint(s).unwrap();
        log0.ship_insert(batch(vec![2]), None).unwrap();
        let direct: Arc<dyn Transport> = Arc::new(Direct);
        let log1 = SharedLog::open_standby(
            Arc::clone(&store),
            Arc::clone(&direct),
            NodeId::Standby(1),
            RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(log1.term(), 1);
        // Standby replays, flushes, checkpoints: the new term's checkpoint
        // covers every earlier-term record.
        log1.ship_checkpoint(log1.last_seq()).unwrap();
        let tail = SharedLog::replay_tail(&store).unwrap();
        assert!(tail.is_empty(), "term-1 checkpoint must cover all of term 0: {tail:?}");
        // And a record the standby ships after the checkpoint is replayed.
        log1.ship_insert(batch(vec![3]), None).unwrap();
        let tail = SharedLog::replay_tail(&store).unwrap();
        assert_eq!(tail.len(), 1);
    }

    /// Replay and truncation share one cut rule: whatever replay would
    /// return must survive truncation, byte for byte, even when the store
    /// holds checkpoints of several terms in overlapping key ranges.
    #[test]
    fn truncate_preserves_exactly_the_replay_tail() {
        let store: Arc<dyn ObjectStore> = Arc::new(MemoryStore::new());
        let log0 = SharedLog::open(Arc::clone(&store)).unwrap();
        for ids in [vec![1], vec![2], vec![3]] {
            log0.ship_insert(batch(ids), None).unwrap();
        }
        log0.ship_checkpoint(2).unwrap(); // stale: covers only seq <= 2
        log0.ship_checkpoint(3).unwrap(); // newer payload
        log0.ship_insert(batch(vec![4]), None).unwrap();
        let before: Vec<String> =
            SharedLog::replay_tail(&store).unwrap().iter().map(|r| format!("{r:?}")).collect();
        log0.truncate().unwrap();
        let after: Vec<String> =
            SharedLog::replay_tail(&store).unwrap().iter().map(|r| format!("{r:?}")).collect();
        assert_eq!(before, after, "truncation changed the replay tail");
    }
}
